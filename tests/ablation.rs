//! Accuracy-side ablations of the design choices DESIGN.md calls out.
//! (The cost side lives in `crates/bench/benches/bench_ablation.rs`.)

use clustering::metrics::adjusted_rand_index;
use graphint_repro::prelude::*;
use kgraph::consensus::{consensus_labels, consensus_labels_kmeans, consensus_matrix};

fn base_config(k: usize) -> KGraphConfig {
    KGraphConfig {
        n_lengths: 4,
        psi: 16,
        pca_sample: 600,
        n_init: 3,
        ..KGraphConfig::new(k).with_seed(17)
    }
}

#[test]
fn consensus_vs_best_single_length() {
    // The consensus should be at least as good as the *median* single
    // length — it exists to stabilise across lengths.
    let ds = graphint_repro::datasets::cbf::cbf(10, 128, 17);
    let truth = ds.labels().unwrap().to_vec();
    let model = KGraph::new(base_config(3)).fit(&ds);
    let consensus_ari = adjusted_rand_index(&truth, &model.labels);
    let mut single: Vec<f64> = model
        .layers
        .iter()
        .map(|l| adjusted_rand_index(&truth, &l.labels))
        .collect();
    single.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = single[single.len() / 2];
    assert!(
        consensus_ari >= median - 0.1,
        "consensus {consensus_ari:.3} vs median single-length {median:.3} ({single:?})"
    );
}

#[test]
fn node_and_edge_features_vs_single_family() {
    let ds = graphint_repro::datasets::shapes::trace_like(10, 120, 17);
    let truth = ds.labels().unwrap().to_vec();
    let both = KGraph::new(base_config(4)).fit(&ds);
    let node_only = KGraph::new(KGraphConfig {
        edge_features: false,
        ..base_config(4)
    })
    .fit(&ds);
    let edge_only = KGraph::new(KGraphConfig {
        node_features: false,
        ..base_config(4)
    })
    .fit(&ds);
    let a_both = adjusted_rand_index(&truth, &both.labels);
    let a_node = adjusted_rand_index(&truth, &node_only.labels);
    let a_edge = adjusted_rand_index(&truth, &edge_only.labels);
    // All three must work; the combined features must not be clearly the
    // worst of the three (that would mean the families conflict).
    assert!(a_both > 0.3, "both {a_both}");
    assert!(a_node > 0.2, "node-only {a_node}");
    assert!(a_edge > 0.2, "edge-only {a_edge}");
    assert!(
        a_both >= a_node.min(a_edge) - 0.1,
        "combined {a_both:.3} vs node {a_node:.3} / edge {a_edge:.3}"
    );
}

#[test]
fn spectral_vs_kmeans_consensus() {
    let ds = graphint_repro::datasets::cbf::cbf(8, 96, 18);
    let truth = ds.labels().unwrap().to_vec();
    let model = KGraph::new(base_config(3)).fit(&ds);
    let partitions: Vec<Vec<usize>> = model.layers.iter().map(|l| l.labels.clone()).collect();
    let mc = consensus_matrix(&partitions);
    let spectral = consensus_labels(&mc, 3, 18);
    let kmeans = consensus_labels_kmeans(&mc, 3, 18);
    let a_spec = adjusted_rand_index(&truth, &spectral);
    let a_km = adjusted_rand_index(&truth, &kmeans);
    // Both consensus mechanisms must produce sane partitions.
    assert!(a_spec > 0.3, "spectral consensus {a_spec}");
    assert!(a_km > 0.1, "k-means consensus {a_km}");
}

#[test]
fn psi_resolution_tradeoff() {
    // Coarser radial resolution → fewer nodes; the graph must stay usable
    // at ψ = 8 and gain nodes at ψ = 32. (Dataset seed picked for margin:
    // the local rand shim's stream differs from upstream rand's, and seed
    // 19 draws a CBF instance that is borderline at every ψ.)
    let ds = graphint_repro::datasets::cbf::cbf(8, 96, 21);
    let coarse = KGraph::new(KGraphConfig {
        psi: 8,
        ..base_config(3)
    })
    .fit(&ds);
    let fine = KGraph::new(KGraphConfig {
        psi: 32,
        ..base_config(3)
    })
    .fit(&ds);
    let nodes_coarse: usize = coarse.layers.iter().map(|l| l.graph.node_count()).sum();
    let nodes_fine: usize = fine.layers.iter().map(|l| l.graph.node_count()).sum();
    assert!(nodes_fine > nodes_coarse, "{nodes_fine} vs {nodes_coarse}");
    let truth = ds.labels().unwrap().to_vec();
    assert!(adjusted_rand_index(&truth, &coarse.labels) > 0.3);
    assert!(adjusted_rand_index(&truth, &fine.labels) > 0.3);
}

#[test]
fn stride_speed_quality_tradeoff() {
    // Strided extraction (stride 2) must stay in the same accuracy
    // neighbourhood as exhaustive extraction on an easy dataset.
    let ds = graphint_repro::datasets::cbf::cbf(8, 96, 20);
    let truth = ds.labels().unwrap().to_vec();
    let exhaustive = KGraph::new(base_config(3)).fit(&ds);
    let strided = KGraph::new(KGraphConfig {
        stride: 2,
        ..base_config(3)
    })
    .fit(&ds);
    let a_full = adjusted_rand_index(&truth, &exhaustive.labels);
    let a_strided = adjusted_rand_index(&truth, &strided.labels);
    assert!(
        a_strided >= a_full - 0.3,
        "strided {a_strided:.3} collapsed vs exhaustive {a_full:.3}"
    );
}
