//! Loopback integration tests for the `graphserve` subsystem: many
//! concurrent clients against one shared immutable model, admission
//! control under overload, and graceful drain on shutdown.

use graphserve::{ModelStore, Server, ServerConfig};
use kgraph::{KGraph, KGraphConfig};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;
use tscore::{Dataset, DatasetKind, TimeSeries};

/// Fits one small model (named `demo`) into a fresh store.
fn demo_store() -> Arc<ModelStore> {
    let series: Vec<TimeSeries> = (0..8)
        .map(|p| TimeSeries::new((0..80).map(|i| ((i + p) as f64 * 0.3).sin()).collect()))
        .collect();
    let dataset = Dataset::new("demo", DatasetKind::Simulated, series);
    let cfg = KGraphConfig {
        n_lengths: 1,
        psi: 10,
        pca_sample: 300,
        n_init: 2,
        ..KGraphConfig::new(2)
    }
    .with_lengths(vec![16]);
    let store = Arc::new(ModelStore::new(0));
    store.insert("demo", Arc::new(KGraph::new(cfg).fit(&dataset)));
    store
}

/// Sends one raw HTTP request and returns `(status, body)`.
fn request(addr: std::net::SocketAddr, method: &str, target: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    write!(
        stream,
        "{method} {target} HTTP/1.1\r\nhost: t\r\ncontent-length: {}\r\n\r\n{body}",
        body.len()
    )
    .expect("write request");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    parse_response(&raw)
}

fn parse_response(raw: &str) -> (u16, String) {
    let status: u16 = raw
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad response: {raw:?}"));
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn series_json(phase: usize) -> String {
    let values: Vec<String> = (0..80)
        .map(|i| ((i + phase) as f64 * 0.3).sin().to_string())
        .collect();
    format!("[{}]", values.join(","))
}

#[test]
fn concurrent_clients_share_one_model() {
    let server = Server::start(
        ServerConfig {
            workers: 4,
            queue_capacity: 256,
            ..ServerConfig::default()
        },
        demo_store(),
    )
    .expect("start server");
    let addr = server.addr();

    // 36 concurrent clients, mixing every read endpoint; all of them hit
    // the same Arc-shared model. The expected score body is fetched once
    // up front so every concurrent scorer can assert byte-equality.
    let (status, expected_scores) = request(
        addr,
        "POST",
        "/models/demo/score?context=3",
        &series_json(0),
    );
    assert_eq!(status, 200, "{expected_scores}");

    let handles: Vec<_> = (0..36)
        .map(|i| {
            let expected = expected_scores.clone();
            std::thread::spawn(move || match i % 4 {
                0 => {
                    let (status, body) = request(
                        addr,
                        "POST",
                        "/models/demo/score?context=3",
                        &series_json(0),
                    );
                    assert_eq!(status, 200, "{body}");
                    assert_eq!(body, expected, "identical input, identical scores");
                }
                1 => {
                    let (status, body) = request(addr, "GET", "/models/demo/render?format=svg", "");
                    assert_eq!(status, 200);
                    assert!(body.contains("<svg"), "{body}");
                }
                2 => {
                    let batch = format!("[{},{}]", series_json(i), series_json(i + 1));
                    let (status, body) =
                        request(addr, "POST", "/models/demo/batch?op=predict", &batch);
                    assert_eq!(status, 200, "{body}");
                    assert!(body.contains("\"cluster\":"), "{body}");
                }
                _ => {
                    let (status, body) =
                        request(addr, "POST", "/models/demo/features", &series_json(i));
                    assert_eq!(status, 200, "{body}");
                    assert!(body.starts_with("{\"features\":["), "{body}");
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client thread");
    }

    let stats = server.stats();
    assert!(
        stats.served.load(std::sync::atomic::Ordering::Relaxed) >= 37,
        "all requests served"
    );
    server.shutdown();
}

#[test]
fn batch_is_bit_identical_to_single_requests_over_the_wire() {
    let server = Server::start(
        ServerConfig {
            workers: 2,
            ..ServerConfig::default()
        },
        demo_store(),
    )
    .expect("start server");
    let addr = server.addr();

    let rows: Vec<String> = (0..4).map(series_json).collect();
    let batch_body = format!("[{}]", rows.join(","));
    let (status, batch) = request(
        addr,
        "POST",
        "/models/demo/batch?op=score&context=3",
        &batch_body,
    );
    assert_eq!(status, 200, "{batch}");

    // The batch body is `{"results":[…,…]}` — each slot must equal the
    // body of the corresponding single request, byte for byte.
    let inner = batch
        .strip_prefix("{\"results\":[")
        .and_then(|s| s.strip_suffix("]}"))
        .expect("batch envelope");
    let mut rest = inner;
    for row in &rows {
        let (status, single) = request(addr, "POST", "/models/demo/score?context=3", row);
        assert_eq!(status, 200);
        assert!(
            rest.starts_with(single.as_str()),
            "batch slot diverges from single response:\nbatch …{}\nsingle {}",
            &rest[..rest.len().min(80)],
            &single[..single.len().min(80)]
        );
        rest = rest[single.len()..].trim_start_matches(',');
    }
    assert!(rest.is_empty(), "no extra batch slots");
    server.shutdown();
}

#[test]
fn overload_sheds_with_503_and_retry_after() {
    // One worker, admission queue of one: a sleeping request occupies the
    // worker, a second fills the only queue slot, and every further
    // connection must be refused at the door with a fast 503.
    let server = Server::start(
        ServerConfig {
            workers: 1,
            queue_capacity: 1,
            ..ServerConfig::default()
        },
        demo_store(),
    )
    .expect("start server");
    let addr = server.addr();

    // Stagger the occupiers: the first must reach the worker before the
    // second arrives, otherwise the second is itself shed at the door and
    // the queue slot stays free for the burst.
    let occupiers: Vec<_> = (0..2)
        .map(|_| {
            let h = std::thread::spawn(move || request(addr, "GET", "/debug/sleep?ms=1200", "").0);
            std::thread::sleep(Duration::from_millis(200));
            h
        })
        .collect();

    let mut shed = 0usize;
    let mut retry_after_seen = false;
    for _ in 0..10 {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        write!(stream, "GET /health HTTP/1.1\r\nhost: t\r\n\r\n").unwrap();
        let mut raw = String::new();
        stream.read_to_string(&mut raw).expect("read");
        let (status, _) = parse_response(&raw);
        if status == 503 {
            shed += 1;
            retry_after_seen |= raw.to_ascii_lowercase().contains("retry-after:");
        }
    }
    assert!(shed >= 8, "expected most of the burst shed, got {shed}/10");
    assert!(retry_after_seen, "503 responses carry Retry-After");

    for h in occupiers {
        assert_eq!(h.join().unwrap(), 200, "occupiers still complete");
    }
    // Once the occupiers drained, the server serves normally again.
    let (status, _) = request(addr, "GET", "/health", "");
    assert_eq!(status, 200);
    assert!(
        server
            .stats()
            .shed
            .load(std::sync::atomic::Ordering::Relaxed)
            >= shed as u64,
        "shed counter tracks refusals"
    );
    server.shutdown();
}

#[test]
fn shutdown_drains_in_flight_requests() {
    let server = Server::start(
        ServerConfig {
            workers: 2,
            ..ServerConfig::default()
        },
        demo_store(),
    )
    .expect("start server");
    let addr = server.addr();

    // A slow request is mid-flight when shutdown begins; it must still
    // complete with a 200 because workers drain admitted connections.
    let slow = std::thread::spawn(move || request(addr, "GET", "/debug/sleep?ms=700", ""));
    std::thread::sleep(Duration::from_millis(200));
    server.shutdown();

    let (status, body) = slow.join().expect("slow client");
    assert_eq!(status, 200, "in-flight request drained: {body}");
    assert!(
        TcpStream::connect_timeout(&addr, Duration::from_millis(300)).is_err(),
        "listener is gone after shutdown"
    );
}

#[test]
fn streaming_ingest_updates_scores_without_refit() {
    // Refresh on every ingest, compact every second refresh: one test
    // exercises the whole append → refresh → compact → publish cycle.
    let server = Server::start(
        ServerConfig {
            workers: 4,
            stream: streamfit::StreamConfig {
                refresh_every: 0,
                compact_every: 2,
                context: 3,
            },
            ..ServerConfig::default()
        },
        demo_store(),
    )
    .expect("start server");
    let addr = server.addr();

    // No session yet.
    let (status, body) = request(addr, "GET", "/models/demo/stream-status", "");
    assert_eq!(status, 200);
    assert!(body.contains("\"active\":false"), "{body}");

    // First ingest: an in-distribution wave. The refresh cadence fires
    // inside the call, so scores are immediately visible.
    let wave: Vec<String> = (0..60)
        .map(|i| (i as f64 * 0.3).sin().to_string())
        .collect();
    let ingest_body = format!("{{\"series\":0,\"points\":[{}]}}", wave.join(","));
    let (status, body) = request(addr, "POST", "/models/demo/ingest", &ingest_body);
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"refreshed\":true"), "{body}");

    let (status, body) = request(addr, "GET", "/models/demo/stream-status", "");
    assert_eq!(status, 200);
    assert!(body.contains("\"active\":true"), "{body}");
    assert!(body.contains("\"points_total\":60"), "{body}");
    let mean_before = extract_f64(&body, "\"mean_score\":");

    // Concurrent readers keep scoring the published snapshot while the
    // writer ingests an out-of-distribution burst; nobody blocks, nobody
    // errors.
    let readers: Vec<_> = (0..6)
        .map(|_| {
            std::thread::spawn(move || {
                for _ in 0..5 {
                    let (status, body) = request(
                        addr,
                        "POST",
                        "/models/demo/score?context=3",
                        &series_json(0),
                    );
                    assert_eq!(status, 200, "{body}");
                    assert!(body.starts_with("{\"scores\":["), "{body}");
                }
            })
        })
        .collect();
    // Second ingest (compaction cadence fires → a compacted model is
    // published into the store, no refit): a flat burst the training
    // waves never produced.
    let burst = vec!["0.0"; 48].join(",");
    let (status, body) = request(
        addr,
        "POST",
        "/models/demo/ingest",
        &format!("{{\"series\":0,\"points\":[{burst}]}}"),
    );
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"compacted\":true"), "{body}");
    for h in readers {
        h.join().expect("reader thread");
    }

    // The session rescored the series against the merged view: same
    // session, more points, different mean.
    let (status, body) = request(addr, "GET", "/models/demo/stream-status", "");
    assert_eq!(status, 200);
    assert!(body.contains("\"points_total\":108"), "{body}");
    assert!(body.contains("\"compactions\":1"), "{body}");
    assert!(body.contains("\"delta_edges\":0"), "{body}");
    let mean_after = extract_f64(&body, "\"mean_score\":");
    assert_ne!(
        mean_before, mean_after,
        "refresh recomputed the scores: {body}"
    );

    // The model was never refit: still the 8-series fit from the seed
    // store, now backed by the compacted base.
    let (status, body) = request(addr, "GET", "/models/demo", "");
    assert_eq!(status, 200);
    assert!(body.contains("\"n_series\":8"), "{body}");
    let (status, body) = request(addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    assert!(
        body.contains("graphserve_route_requests_total{route=\"ingest\"} 2"),
        "{body}"
    );
    server.shutdown();
}

/// Pulls the first number following `key` out of a JSON body.
fn extract_f64(body: &str, key: &str) -> f64 {
    let rest = &body[body.find(key).expect(key) + key.len()..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().expect("numeric value")
}

#[test]
fn fit_score_and_evict_over_the_wire() {
    let server = Server::start(
        ServerConfig {
            workers: 2,
            ..ServerConfig::default()
        },
        Arc::new(ModelStore::new(0)),
    )
    .expect("start server");
    let addr = server.addr();

    // Empty registry: model routes 404, health is fine.
    let (status, _) = request(addr, "POST", "/models/demo/score", "[1,2,3]");
    assert_eq!(status, 404);
    let (status, _) = request(addr, "GET", "/health", "");
    assert_eq!(status, 200);

    // Fit a model over the wire, then serve from it.
    let rows: Vec<String> = (0..6)
        .map(|p| {
            (0..60)
                .map(|i| ((i + p) as f64 * 0.4).sin().to_string())
                .collect::<Vec<_>>()
                .join(",")
        })
        .collect();
    let (status, body) = request(addr, "PUT", "/models/wired?k=2&seed=3", &rows.join("\n"));
    assert_eq!(status, 201, "{body}");
    let (status, body) = request(addr, "GET", "/models", "");
    assert_eq!(status, 200);
    assert!(body.contains("\"name\":\"wired\""), "{body}");
    let (status, body) = request(addr, "POST", "/models/wired/predict", &series_json(0));
    assert_eq!(status, 200, "{body}");

    // And remove it again.
    let (status, _) = request(addr, "DELETE", "/models/wired", "");
    assert_eq!(status, 200);
    let (status, _) = request(addr, "POST", "/models/wired/predict", &series_json(0));
    assert_eq!(status, 404);
    server.shutdown();
}
