//! Property-based tests (proptest) over the core invariants of the
//! system: metrics, transforms, distances, consensus and graphoids.

use clustering::metrics::{
    adjusted_mutual_information, adjusted_rand_index, normalized_mutual_information, purity,
    rand_index,
};
use proptest::prelude::*;

fn labelings(n: usize, k: usize) -> impl Strategy<Value = (Vec<usize>, Vec<usize>)> {
    (
        proptest::collection::vec(0..k, n..=n),
        proptest::collection::vec(0..k, n..=n),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn ari_bounded_and_reflexive((a, b) in labelings(24, 4)) {
        let ari = adjusted_rand_index(&a, &b);
        prop_assert!((-1.0..=1.0).contains(&ari));
        prop_assert!((adjusted_rand_index(&a, &a) - 1.0).abs() < 1e-12);
        // Symmetry.
        prop_assert!((ari - adjusted_rand_index(&b, &a)).abs() < 1e-12);
    }

    #[test]
    fn ari_invariant_to_label_permutation(a in proptest::collection::vec(0..3usize, 20..=20)) {
        // Relabel 0→2, 1→0, 2→1.
        let perm: Vec<usize> = a.iter().map(|&l| (l + 2) % 3).collect();
        prop_assert!((adjusted_rand_index(&a, &perm) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn metric_family_bounds((a, b) in labelings(20, 3)) {
        prop_assert!((0.0..=1.0).contains(&rand_index(&a, &b)));
        prop_assert!((0.0..=1.0).contains(&normalized_mutual_information(&a, &b)));
        prop_assert!((-1.0..=1.0).contains(&adjusted_mutual_information(&a, &b)));
        let p = purity(&a, &b);
        prop_assert!(p > 0.0 && p <= 1.0);
    }

    #[test]
    fn znorm_properties(xs in proptest::collection::vec(-100.0..100.0f64, 4..64)) {
        let z = tscore::transform::znorm(&xs);
        prop_assert_eq!(z.len(), xs.len());
        let mean = tscore::stats::mean(&z);
        prop_assert!(mean.abs() < 1e-9);
        let sd = tscore::stats::std(&z);
        // Either unit std, or the input was constant (then all-zero).
        prop_assert!((sd - 1.0).abs() < 1e-9 || z.iter().all(|v| v.abs() < 1e-9));
    }

    #[test]
    fn resample_preserves_endpoints(
        xs in proptest::collection::vec(-10.0..10.0f64, 2..50),
        target in 2usize..80,
    ) {
        let r = tscore::transform::resample(&xs, target).unwrap();
        prop_assert_eq!(r.len(), target);
        prop_assert!((r[0] - xs[0]).abs() < 1e-9);
        prop_assert!((r[target - 1] - xs[xs.len() - 1]).abs() < 1e-9);
        // Interpolation stays within the input envelope.
        let lo = tscore::stats::min(&xs) - 1e-9;
        let hi = tscore::stats::max(&xs) + 1e-9;
        prop_assert!(r.iter().all(|&v| v >= lo && v <= hi));
    }

    #[test]
    fn euclidean_is_a_metric(
        a in proptest::collection::vec(-10.0..10.0f64, 8..=8),
        b in proptest::collection::vec(-10.0..10.0f64, 8..=8),
        c in proptest::collection::vec(-10.0..10.0f64, 8..=8),
    ) {
        let d = |x: &[f64], y: &[f64]| tscore::distance::euclidean(x, y).unwrap();
        prop_assert!(d(&a, &b) >= 0.0);
        prop_assert!((d(&a, &b) - d(&b, &a)).abs() < 1e-9);
        prop_assert!(d(&a, &a) < 1e-12);
        prop_assert!(d(&a, &c) <= d(&a, &b) + d(&b, &c) + 1e-9);
    }

    #[test]
    fn sbd_bounds_and_symmetry(
        a in proptest::collection::vec(-10.0..10.0f64, 8..=8),
        b in proptest::collection::vec(-10.0..10.0f64, 8..=8),
    ) {
        let d = tscore::distance::sbd(&a, &b).unwrap();
        prop_assert!((-1e-9..=2.0 + 1e-9).contains(&d));
        // SBD is symmetric (NCC of (a,b) mirrors (b,a)).
        let d2 = tscore::distance::sbd(&b, &a).unwrap();
        prop_assert!((d - d2).abs() < 1e-9);
    }

    #[test]
    fn fft_ncc_matches_direct(
        a in proptest::collection::vec(-5.0..5.0f64, 4..32),
    ) {
        let b: Vec<f64> = a.iter().rev().copied().collect();
        let direct = tscore::distance::ncc(&a, &b).unwrap();
        let fast = clustering::kshape::ncc_fft(&a, &b);
        prop_assert_eq!(direct.len(), fast.len());
        for (x, y) in direct.iter().zip(&fast) {
            prop_assert!((x - y).abs() < 1e-6, "direct {} vs fft {}", x, y);
        }
    }

    #[test]
    fn dtw_never_exceeds_euclidean(
        a in proptest::collection::vec(-5.0..5.0f64, 6..=6),
        b in proptest::collection::vec(-5.0..5.0f64, 6..=6),
    ) {
        // The identity warping path is admissible, so unconstrained DTW is
        // bounded above by the Euclidean distance.
        let dtw = tscore::dtw::dtw(&a, &b, tscore::dtw::DtwOptions::default()).unwrap();
        let eu = tscore::distance::euclidean(&a, &b).unwrap();
        prop_assert!(dtw <= eu + 1e-9, "dtw {} > euclid {}", dtw, eu);
        prop_assert!(dtw >= 0.0);
    }

    #[test]
    fn consensus_matrix_properties(
        partitions in proptest::collection::vec(
            proptest::collection::vec(0..3usize, 12..=12),
            1..5,
        ),
    ) {
        let mc = kgraph::consensus::consensus_matrix(&partitions);
        prop_assert!(mc.is_symmetric(1e-12));
        for i in 0..12 {
            prop_assert!((mc[(i, i)] - 1.0).abs() < 1e-12);
            for j in 0..12 {
                prop_assert!((0.0..=1.0 + 1e-12).contains(&mc[(i, j)]));
            }
        }
    }

    #[test]
    fn quantile_monotone(
        xs in proptest::collection::vec(-100.0..100.0f64, 2..40),
        q1 in 0.0..1.0f64,
        q2 in 0.0..1.0f64,
    ) {
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        prop_assert!(tscore::stats::quantile(&xs, lo) <= tscore::stats::quantile(&xs, hi) + 1e-12);
    }

    #[test]
    fn kde_density_nonnegative(
        pts in proptest::collection::vec(-50.0..50.0f64, 1..30),
        x in -100.0..100.0f64,
    ) {
        let kde = linalg::kde::Kde::silverman(pts);
        prop_assert!(kde.density(x) >= 0.0);
        prop_assert!(kde.density(x).is_finite());
    }

    #[test]
    fn jacobi_reconstructs_random_symmetric(
        seedvals in proptest::collection::vec(-3.0..3.0f64, 10..=10),
    ) {
        // Build a 4x4 symmetric matrix from the 10 free entries.
        let mut m = linalg::Matrix::zeros(4, 4);
        let mut it = seedvals.into_iter();
        for i in 0..4 {
            for j in i..4 {
                let v = it.next().unwrap();
                m[(i, j)] = v;
                m[(j, i)] = v;
            }
        }
        let e = linalg::symmetric_eigen(&m);
        let mut lam = linalg::Matrix::zeros(4, 4);
        for i in 0..4 {
            lam[(i, i)] = e.values[i];
        }
        let rec = e.vectors.matmul(&lam).matmul(&e.vectors.transpose());
        prop_assert!(rec.sub(&m).frobenius() < 1e-7);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn lambda_graphoid_monotone_on_random_partitions(
        seed in 0u64..500,
        lambda_lo in 0.0..0.5f64,
        delta in 0.0..0.5f64,
    ) {
        // One shared fixture graph (cheap), random thresholds.
        use std::sync::OnceLock;
        static FIXTURE: OnceLock<(kgraph::GraphLayer, Vec<usize>)> = OnceLock::new();
        let (layer, labels) = FIXTURE.get_or_init(|| {
            let ds = datasets::cbf::cbf(5, 64, 9);
            let proj = kgraph::embed::project_subsequences(&ds, 16, 1, 400);
            let assign = kgraph::nodes::radial_scan(&proj, 12, 64, 0.05);
            let layer = kgraph::build::build_graph(&ds, &proj, &assign);
            (layer, ds.labels().unwrap().to_vec())
        });
        let _ = seed;
        let stats = kgraph::graphoid::ClusterStats::compute(layer, labels, 3);
        let lambda_hi = (lambda_lo + delta).min(1.0);
        for c in 0..3 {
            let loose = kgraph::graphoid::lambda_graphoid(&stats, layer, c, lambda_lo);
            let tight = kgraph::graphoid::lambda_graphoid(&stats, layer, c, lambda_hi);
            prop_assert!(tight.nodes.len() <= loose.nodes.len());
            for n in &tight.nodes {
                prop_assert!(loose.nodes.contains(n));
            }
            let gl = kgraph::graphoid::gamma_graphoid(&stats, layer, c, lambda_lo);
            let gt = kgraph::graphoid::gamma_graphoid(&stats, layer, c, lambda_hi);
            prop_assert!(gt.nodes.len() <= gl.nodes.len());
        }
    }
}
