//! Smoke test of the E1 harness path: a quick benchmark run through the
//! Benchmark frame, exercising records → filters → box plot → CSV.

use bench_harness::*;

// The `bench` crate is not a dependency of the umbrella crate (it is a
// binary-oriented member); replicate its thin helpers here against the
// public APIs so the integration surface stays covered.
mod bench_harness {
    pub use clustering::method::{ClusteringMethod, MethodKind};
    pub use clustering::metrics::*;
    pub use graphint::csvout::to_csv;
    pub use graphint::frames::benchmark::*;
    pub use kgraph::{KGraph, KGraphConfig};
}

fn record(ds: &tscore::Dataset, method: &str, labels: &[usize]) -> BenchmarkRecord {
    let truth = ds.labels().unwrap();
    BenchmarkRecord {
        dataset: ds.name().to_string(),
        kind: ds.kind(),
        length: ds.min_len(),
        n_series: ds.len(),
        n_classes: ds.n_classes(),
        method: method.to_string(),
        ari: adjusted_rand_index(truth, labels),
        ri: rand_index(truth, labels),
        nmi: normalized_mutual_information(truth, labels),
        ami: adjusted_mutual_information(truth, labels),
    }
}

#[test]
fn quick_benchmark_roundtrip() {
    let specs = datasets::quick_collection();
    let mut records = Vec::new();
    for spec in &specs {
        let ds = (spec.build)();
        let k = ds.n_classes().max(2);
        let cfg = KGraphConfig {
            n_lengths: 2,
            psi: 12,
            pca_sample: 400,
            n_init: 2,
            ..KGraphConfig::new(k).with_seed(1)
        };
        let model = KGraph::new(cfg).fit(&ds);
        records.push(record(&ds, "k-Graph", &model.labels));
        for kind in [MethodKind::KMeansZnorm, MethodKind::AggloWard] {
            let labels = ClusteringMethod::new(kind, k, 1).run(&ds);
            records.push(record(&ds, kind.name(), &labels));
        }
    }
    let frame = BenchmarkFrame::new(records);
    assert_eq!(frame.methods().len(), 3);

    // All four measures render and tabulate.
    for measure in Measure::ALL {
        let svg = frame.render_boxplot(measure, &Filter::default(), Some("k-Graph"));
        assert!(svg.contains("Benchmark"));
        let table = frame.summary_table(measure, &Filter::default());
        assert!(table.contains("k-Graph"));
    }

    // Filters prune as expected.
    let sim_only = Filter {
        kinds: Some(vec![tscore::DatasetKind::Simulated]),
        ..Default::default()
    };
    let all = frame.scores_by_method(Measure::Ari, &Filter::default());
    let filtered = frame.scores_by_method(Measure::Ari, &sim_only);
    assert!(filtered[0].1.len() <= all[0].1.len());

    // CSV serialisation includes a row per record + header.
    let rows: Vec<Vec<String>> = std::iter::once(vec!["method".to_string(), "ari".to_string()])
        .chain(
            frame
                .records
                .iter()
                .map(|r| vec![r.method.clone(), format!("{:.3}", r.ari)]),
        )
        .collect();
    let csv = to_csv(&rows);
    assert_eq!(csv.lines().count(), frame.records.len() + 1);
}

#[test]
fn kgraph_competitive_on_quick_collection() {
    // The headline shape of E1: across the quick collection, k-Graph's
    // mean ARI should land in the top half of the methods run here.
    let specs = datasets::quick_collection();
    let mut records = Vec::new();
    for spec in &specs {
        let ds = (spec.build)();
        let k = ds.n_classes().max(2);
        let cfg = KGraphConfig {
            n_lengths: 3,
            psi: 16,
            pca_sample: 600,
            n_init: 3,
            ..KGraphConfig::new(k).with_seed(2)
        };
        let model = KGraph::new(cfg).fit(&ds);
        records.push(record(&ds, "k-Graph", &model.labels));
        for kind in [MethodKind::KMeansRaw, MethodKind::Gmm, MethodKind::Dbscan] {
            let labels = ClusteringMethod::new(kind, k, 2).run(&ds);
            records.push(record(&ds, kind.name(), &labels));
        }
    }
    let frame = BenchmarkFrame::new(records);
    let kg = frame
        .mean_score("k-Graph", Measure::Ari, &Filter::default())
        .unwrap();
    let better = frame
        .methods()
        .iter()
        .filter(|m| {
            frame
                .mean_score(m, Measure::Ari, &Filter::default())
                .is_some_and(|s| s > kg + 1e-9)
        })
        .count();
    assert!(
        better <= 1,
        "k-Graph mean ARI {kg:.3} beaten by {better} of 3 weak baselines"
    );
}
