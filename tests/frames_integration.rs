//! Integration: every Graphint frame built on top of one fitted model,
//! assembled into the HTML report — the full Figure 2 path.

use graphint_repro::prelude::*;

fn fixture() -> (Dataset, KGraphModel) {
    let ds = graphint_repro::datasets::cbf::cbf(8, 96, 3);
    let cfg = KGraphConfig {
        n_lengths: 3,
        psi: 16,
        pca_sample: 500,
        n_init: 3,
        ..KGraphConfig::new(3).with_seed(3)
    };
    let model = KGraph::new(cfg).fit(&ds);
    (ds, model)
}

#[test]
fn all_five_frames_render() {
    let (ds, model) = fixture();

    // 1.1 comparison
    let kmeans = ClusteringMethod::new(MethodKind::KMeansZnorm, 3, 3).run(&ds);
    let comparison = ComparisonFrame::build(
        &ds,
        &[
            MethodPartition {
                name: "k-Graph".into(),
                labels: model.labels.clone(),
            },
            MethodPartition {
                name: "k-Means".into(),
                labels: kmeans.clone(),
            },
        ],
    );
    assert_eq!(comparison.panels.len(), 3);
    assert!(comparison.summary().contains("k-Graph"));

    // 1.2 benchmark (two records suffice for the frame logic)
    let records = vec![
        bench_record(&ds, "k-Graph", &model.labels),
        bench_record(&ds, "k-Means", &kmeans),
    ];
    let benchmark = BenchmarkFrame::new(records);
    let svg = benchmark.render_boxplot(Measure::Ari, &Filter::default(), Some("k-Graph"));
    assert!(svg.contains("k-Graph"));

    // 2 graph
    let graph_frame = GraphFrame::with_auto_thresholds(&model);
    assert!(graph_frame.render_graph().contains("svg"));
    assert!(graph_frame
        .colored_nodes_per_cluster()
        .iter()
        .all(|&c| c >= 1));

    // 3 quiz
    let quiz = QuizFrame::run(
        &ds,
        QuizConfig {
            trials: 3,
            ..QuizConfig::new(3, 3)
        },
        Some(KGraphConfig {
            n_lengths: 2,
            psi: 12,
            pca_sample: 400,
            n_init: 2,
            ..KGraphConfig::new(3).with_seed(3)
        }),
    );
    assert_eq!(quiz.scores.len(), 3);

    // 4 under the hood
    let hood = UnderTheHoodFrame::new(&model);
    assert!(hood.render_length_selection().contains("Length selection"));
    assert!(hood.render_feature_matrix().contains("Feature matrix"));
    assert!(hood.render_consensus_matrix().contains("Consensus matrix"));

    // Assemble the report.
    let mut report = Report::new("integration");
    report.section("comparison");
    for (_, svg) in &comparison.panels {
        report.add_svg(svg);
    }
    report.section("benchmark");
    report.add_svg(&svg);
    report.section("graph");
    report.add_svg(&graph_frame.render_graph());
    report.section("quiz");
    report.add_pre(&quiz.summary());
    report.section("under the hood");
    report.add_svg(&hood.render_consensus_matrix());
    let html = report.to_html();
    assert!(html.contains("<h2>comparison</h2>"));
    assert!(html.matches("<svg").count() >= 6);
}

fn bench_record(
    ds: &Dataset,
    method: &str,
    labels: &[usize],
) -> graphint_repro::graphint::frames::benchmark::BenchmarkRecord {
    let truth = ds.labels().unwrap();
    graphint_repro::graphint::frames::benchmark::BenchmarkRecord {
        dataset: ds.name().to_string(),
        kind: ds.kind(),
        length: ds.min_len(),
        n_series: ds.len(),
        n_classes: ds.n_classes(),
        method: method.to_string(),
        ari: adjusted_rand_index(truth, labels),
        ri: rand_index(truth, labels),
        nmi: normalized_mutual_information(truth, labels),
        ami: adjusted_mutual_information(truth, labels),
    }
}

#[test]
fn graph_frame_highlights_are_within_series() {
    let (ds, model) = fixture();
    let frame = GraphFrame::new(&model, 0.3, 0.5);
    let node = model.best().paths[0][0].index();
    for (start, len) in frame.node_windows(0, node) {
        assert!(start + len <= ds.series()[0].len());
        assert_eq!(len, model.best_length());
    }
    let svg = frame.render_highlighted_series(0, node, &ds);
    assert!(svg.contains("polyline"));
}

#[test]
fn quiz_scores_bounded_and_reproducible() {
    let (ds, _) = fixture();
    let cfg = QuizConfig {
        trials: 4,
        ..QuizConfig::new(3, 5)
    };
    let kg_cfg = KGraphConfig {
        n_lengths: 2,
        psi: 12,
        pca_sample: 400,
        n_init: 2,
        ..KGraphConfig::new(3).with_seed(5)
    };
    let a = QuizFrame::run(&ds, cfg, Some(kg_cfg.clone()));
    let b = QuizFrame::run(&ds, cfg, Some(kg_cfg));
    for (x, y) in a.scores.iter().zip(&b.scores) {
        assert_eq!(x.fractions, y.fractions);
        assert!(x.fractions.iter().all(|f| (0.0..=1.0).contains(f)));
    }
}
