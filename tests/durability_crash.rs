//! Crash-recovery integration test: a live `graphserve` server is
//! SIGKILLed mid-ingest and restarted against the same state directory.
//! The restarted server must serve exactly the acknowledged prefix of the
//! stream — and its stream status and anomaly scores must match, byte for
//! byte, a control server that ingested that prefix and was never killed.
//!
//! The killed server runs as a child process: this test binary re-executes
//! itself with `GRAPHSERVE_CRASH_ROLE=child`, which turns the (otherwise
//! no-op) [`crash_child_server_helper`] test into a real server that loads
//! a pre-fitted model, recovers its state directory, listens on an
//! ephemeral port and parks until killed.

use graphserve::durability::{Durability, DurabilityConfig};
use graphserve::http::{Request, Response};
use graphserve::routes::{self, RouteContext};
use graphserve::{recover, ModelStore, Server, ServerConfig, ServerStats};
use kgraph::pipeline::KGraphModel;
use kgraph::{KGraph, KGraphConfig};
use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use streamfit::{SessionRegistry, StreamConfig, StreamSession};
use tscore::{Dataset, DatasetKind, TimeSeries};

/// Streaming cadences shared by the child servers and the control: small
/// enough that a modest burst crosses refreshes, compactions *and*
/// snapshots, so the crash window covers every stage of the write path.
fn stream_config() -> StreamConfig {
    StreamConfig {
        refresh_every: 16,
        compact_every: 2,
        context: 3,
    }
}

fn durability_config(dir: &Path) -> DurabilityConfig {
    DurabilityConfig {
        state_dir: dir.to_path_buf(),
        wal_sync_every: 1,
        snapshot_every: 4,
        ..DurabilityConfig::default()
    }
}

/// The deterministic ingest stream: record `i` appends 8 points to
/// session series `i % 2`.
fn record_series(i: usize) -> usize {
    i % 2
}

fn record_points(i: usize) -> Vec<f64> {
    (0..8)
        .map(|j| (((i * 8 + j) as f64) * 0.21).sin() + if i.is_multiple_of(2) { 0.0 } else { 0.4 })
        .collect()
}

fn record_body(i: usize) -> String {
    let points: Vec<String> = record_points(i).iter().map(f64::to_string).collect();
    format!(
        "{{\"series\":{},\"points\":[{}]}}",
        record_series(i),
        points.join(",")
    )
}

fn probe_series() -> String {
    let values: Vec<String> = (0..80)
        .map(|i| ((i as f64) * 0.21).sin().to_string())
        .collect();
    format!("[{}]", values.join(","))
}

// ---------------------------------------------------------------------------
// Child mode
// ---------------------------------------------------------------------------

/// When re-executed with `GRAPHSERVE_CRASH_ROLE=child`, this "test" is a
/// real durable server: it loads the model the parent fitted, recovers the
/// shared state directory, writes its address to the port file and parks
/// until the parent kills it. Without the env var it is a no-op.
#[test]
fn crash_child_server_helper() {
    if std::env::var("GRAPHSERVE_CRASH_ROLE").as_deref() != Ok("child") {
        return;
    }
    let state_dir = PathBuf::from(std::env::var("GRAPHSERVE_CRASH_STATE").unwrap());
    let model_path = PathBuf::from(std::env::var("GRAPHSERVE_CRASH_MODEL").unwrap());
    let port_file = PathBuf::from(std::env::var("GRAPHSERVE_CRASH_PORT_FILE").unwrap());

    let bytes = std::fs::read(&model_path).expect("read model file");
    let model = Arc::new(kgraph::serial::read_model(&bytes).expect("decode model"));
    let store = Arc::new(ModelStore::new(0));
    store.insert("demo", model);

    let durability = Arc::new(Durability::new(durability_config(&state_dir)));
    let sessions = Arc::new(SessionRegistry::new(stream_config()));
    recover(&durability, &store, &sessions);

    let server = Server::start_with(
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            stream: stream_config(),
            ..ServerConfig::default()
        },
        store,
        sessions,
        durability,
    )
    .expect("start child server");
    std::fs::write(&port_file, server.addr().to_string()).expect("write port file");
    loop {
        std::thread::park();
    }
}

// ---------------------------------------------------------------------------
// Parent-side plumbing
// ---------------------------------------------------------------------------

struct TempDir(PathBuf);

impl TempDir {
    fn new() -> TempDir {
        let path = std::env::temp_dir().join(format!("graphserve-crash-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&path);
        std::fs::create_dir_all(&path).expect("create temp dir");
        TempDir(path)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Kills the child on drop so a failing assertion cannot leak servers.
struct ChildGuard(Child);

impl Drop for ChildGuard {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

fn spawn_child(dir: &Path, port_file: &Path) -> ChildGuard {
    let exe = std::env::current_exe().expect("current test binary");
    let child = Command::new(exe)
        .args(["crash_child_server_helper", "--exact", "--nocapture"])
        .env("GRAPHSERVE_CRASH_ROLE", "child")
        .env("GRAPHSERVE_CRASH_STATE", dir.join("state"))
        .env("GRAPHSERVE_CRASH_MODEL", dir.join("model.kgm"))
        .env("GRAPHSERVE_CRASH_PORT_FILE", port_file)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn child server");
    ChildGuard(child)
}

fn wait_for_port(path: &Path) -> SocketAddr {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        if let Ok(text) = std::fs::read_to_string(path) {
            if let Ok(addr) = text.trim().parse() {
                return addr;
            }
        }
        assert!(
            Instant::now() < deadline,
            "child server never wrote {}",
            path.display()
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// One HTTP request over a fresh connection; `Err` when the server died.
fn try_request(
    addr: SocketAddr,
    method: &str,
    target: &str,
    body: &str,
) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    write!(
        stream,
        "{method} {target} HTTP/1.1\r\nhost: t\r\ncontent-length: {}\r\n\r\n{body}",
        body.len()
    )?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    let status: u16 = raw
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| std::io::Error::other(format!("bad response: {raw:?}")))?;
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    Ok((status, body))
}

fn request(addr: SocketAddr, method: &str, target: &str, body: &str) -> (u16, String) {
    try_request(addr, method, target, body).expect("request")
}

fn extract_u64(body: &str, key: &str) -> u64 {
    let rest = &body[body.find(key).unwrap_or_else(|| panic!("{key} in {body}")) + key.len()..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().expect("numeric value")
}

fn fit_model() -> KGraphModel {
    let series: Vec<TimeSeries> = (0..8)
        .map(|p| TimeSeries::new((0..80).map(|i| ((i + p) as f64 * 0.3).sin()).collect()))
        .collect();
    let ds = Dataset::new("demo", DatasetKind::Simulated, series);
    let cfg = KGraphConfig {
        n_lengths: 1,
        psi: 10,
        pca_sample: 300,
        n_init: 2,
        ..KGraphConfig::new(2)
    }
    .with_lengths(vec![16]);
    KGraph::new(cfg).fit(&ds)
}

/// The never-killed control: the same model, the same cadences, exactly
/// the first `n` records of the same stream — served through the same
/// route handlers, in process.
struct Control {
    store: ModelStore,
    sessions: SessionRegistry,
    stats: ServerStats,
    durability: Durability,
}

impl Control {
    fn ingest_prefix(model: Arc<KGraphModel>, n: usize) -> Control {
        let mut session = StreamSession::new(model, stream_config());
        for i in 0..n {
            session
                .append(record_series(i), &record_points(i))
                .expect("control append");
        }
        let store = ModelStore::new(0);
        store.insert("demo", Arc::clone(session.model()));
        let sessions = SessionRegistry::new(stream_config());
        sessions.install("demo", session);
        Control {
            store,
            sessions,
            stats: ServerStats::default(),
            durability: Durability::disabled(),
        }
    }

    fn handle(&self, method: &str, target: &str, body: &str) -> (u16, String) {
        let raw = format!(
            "{method} {target} HTTP/1.1\r\ncontent-length: {}\r\n\r\n{body}",
            body.len()
        );
        let req = Request::read_from(&mut std::io::Cursor::new(raw.into_bytes()), 1 << 20)
            .expect("well-formed request");
        let mut reader = self.store.reader();
        let resp: Response = routes::handle(
            &req,
            &mut reader,
            &RouteContext {
                store: &self.store,
                sessions: &self.sessions,
                stats: &self.stats,
                durability: &self.durability,
            },
        );
        (resp.status, String::from_utf8(resp.body).unwrap())
    }
}

// ---------------------------------------------------------------------------
// The test
// ---------------------------------------------------------------------------

#[test]
fn sigkill_mid_ingest_recovers_the_acknowledged_prefix_bit_identically() {
    if std::env::var("GRAPHSERVE_CRASH_ROLE").is_ok() {
        return; // never recurse inside a child
    }
    let dir = TempDir::new();
    let dir = &dir.0;

    // Fit once, persist: the killed server, the restarted server and the
    // control all load these exact bytes.
    let model = fit_model();
    std::fs::write(dir.join("model.kgm"), kgraph::serial::write_model(&model)).unwrap();

    // ---- Generation 1: serve, ingest, die. --------------------------------
    let port1 = dir.join("port1");
    let mut child = spawn_child(dir, &port1);
    let addr = wait_for_port(&port1);

    let acked = Arc::new(AtomicUsize::new(0));
    let ingester = {
        let acked = Arc::clone(&acked);
        std::thread::spawn(move || {
            let mut sent = 0usize;
            for i in 0..5_000 {
                sent = i + 1;
                match try_request(addr, "POST", "/models/demo/ingest", &record_body(i)) {
                    Ok((200, _)) => {
                        acked.fetch_add(1, Ordering::SeqCst);
                    }
                    _ => break, // the server is gone (or refused): stop
                }
            }
            sent
        })
    };

    // Let the burst cross several refresh/compaction/snapshot boundaries,
    // then SIGKILL with requests still in flight.
    let deadline = Instant::now() + Duration::from_secs(30);
    while acked.load(Ordering::SeqCst) < 24 {
        assert!(Instant::now() < deadline, "ingest burst never progressed");
        std::thread::sleep(Duration::from_millis(5));
    }
    child.0.kill().expect("SIGKILL child");
    child.0.wait().expect("reap child");
    let sent = ingester.join().expect("ingester thread");
    let acked = acked.load(Ordering::SeqCst);
    eprintln!("[crash-test] sent {sent}, acknowledged {acked} before SIGKILL");
    assert!(acked >= 24, "killed before the burst crossed the cadences");

    // ---- Generation 2: restart on the same state directory. ---------------
    let port2 = dir.join("port2");
    let _child2 = spawn_child(dir, &port2);
    let addr2 = wait_for_port(&port2);

    let (status, health) = request(addr2, "GET", "/healthz", "");
    assert_eq!(status, 200, "{health}");
    assert!(health.contains("\"status\":\"ok\""), "{health}");

    // Every acknowledged record survived (wal_sync_every = 1: the fsync
    // happens before the 200), nothing beyond the burst was invented, and
    // only whole records exist — a torn tail never yields partial points.
    let (status, stream) = request(addr2, "GET", "/models/demo/stream-status", "");
    assert_eq!(status, 200, "{stream}");
    let points_total = extract_u64(&stream, "\"points_total\":");
    assert_eq!(points_total % 8, 0, "partial record replayed: {stream}");
    let survived = (points_total / 8) as usize;
    assert!(
        survived >= acked,
        "data loss: {acked} acknowledged, {survived} recovered"
    );
    assert!(
        survived <= sent,
        "invented records: {sent} sent, {survived} recovered"
    );

    // ---- Bit-identical to the never-killed control. -----------------------
    let control = Control::ingest_prefix(
        Arc::new(
            kgraph::serial::read_model(&std::fs::read(dir.join("model.kgm")).unwrap()).unwrap(),
        ),
        survived,
    );
    let (status, control_stream) = control.handle("GET", "/models/demo/stream-status", "");
    assert_eq!(status, 200, "{control_stream}");
    assert_eq!(
        stream, control_stream,
        "recovered stream state diverges from the control"
    );

    let probe = probe_series();
    let (status, scores) = request(addr2, "POST", "/models/demo/score?context=3", &probe);
    assert_eq!(status, 200, "{scores}");
    let (status, control_scores) = control.handle("POST", "/models/demo/score?context=3", &probe);
    assert_eq!(status, 200, "{control_scores}");
    assert_eq!(
        scores, control_scores,
        "recovered scores diverge from the control"
    );

    // The recovered server is writable: the stream picks up where the
    // acknowledged prefix left off.
    let (status, body) = request(addr2, "POST", "/models/demo/ingest", &record_body(survived));
    assert_eq!(status, 200, "{body}");
}
