//! Integration tests for the extension features built on top of the
//! paper's scope: out-of-sample prediction, anomaly scoring, automatic k
//! selection and PageRank-based node exploration.

use clustering::metrics::adjusted_rand_index;
use graphint_repro::prelude::*;

fn quick(k: usize, seed: u64) -> KGraphConfig {
    KGraphConfig {
        n_lengths: 3,
        psi: 16,
        pca_sample: 600,
        n_init: 3,
        ..KGraphConfig::new(k).with_seed(seed)
    }
}

#[test]
fn train_test_split_prediction_generalises() {
    // Fit on one CBF sample, predict a fresh sample from the same
    // generators; predictions must align with the model's own structure.
    let train = graphint_repro::datasets::cbf::cbf(12, 128, 100);
    let test = graphint_repro::datasets::cbf::cbf(8, 128, 200);
    let model = KGraph::new(quick(3, 1)).fit(&train);
    let train_ari = adjusted_rand_index(train.labels().unwrap(), &model.labels);
    // Only meaningful when training succeeded at all.
    assert!(train_ari > 0.4, "training ARI {train_ari}");
    let predicted = model.predict_dataset(&test);
    let test_ari = adjusted_rand_index(test.labels().unwrap(), &predicted);
    assert!(
        test_ari > train_ari - 0.35,
        "out-of-sample ARI {test_ari:.3} collapsed vs in-sample {train_ari:.3}"
    );
}

#[test]
fn anomaly_scoring_on_benchmark_dataset() {
    // Fit on smooth chirp sweeps, inject a *shape* discord (high-frequency
    // sawtooth) into a fresh series. Note: a pure amplitude spike would be
    // z-normalised away by design — the embedding sees shapes, not gains.
    let ds = graphint_repro::datasets::shapes::chirp_like(12, 160, 7);
    let cfg = KGraphConfig {
        n_lengths: 1,
        psi: 16,
        ..KGraphConfig::new(3)
    }
    .with_lengths(vec![20]);
    let model = KGraph::new(cfg).fit(&ds);
    let mut fresh = ds.series()[0].values().to_vec();
    for (j, v) in fresh.iter_mut().skip(80).take(20).enumerate() {
        *v = if j % 2 == 0 { 1.5 } else { -1.5 };
    }
    let scores = graphint_repro::kgraph::anomaly::anomaly_scores(model.best(), &fresh, 5).unwrap();
    let top = graphint_repro::kgraph::anomaly::top_anomalies(&scores, 1, 10);
    assert_eq!(top.len(), 1);
    // Window length 20 ⇒ windows 60..100 overlap the injected 80..100 zone.
    assert!(
        (60..=100).contains(&top[0]),
        "discord at 80..100, top window {} (scores len {})",
        top[0],
        scores.len()
    );
}

#[test]
fn select_k_recovers_class_count_on_feature_space() {
    // Three well-separated CBF classes in the FeatTS feature space.
    let ds = graphint_repro::datasets::shapes::device_like(15, 96, 9);
    let mut feats: Vec<Vec<f64>> = ds
        .series()
        .iter()
        .map(|s| clustering::features::extract_features(s.values()))
        .collect();
    clustering::features::zscore_columns(&mut feats);
    let (candidates, best) = clustering::validation::select_k(&feats, 2..=6, 0);
    assert!(!candidates.is_empty());
    assert!(
        (2..=4).contains(&best),
        "expected ~3 clusters, chose {best}: {candidates:?}"
    );
}

#[test]
fn exploration_order_integrates_with_graph_frame() {
    let ds = graphint_repro::datasets::cbf::cbf(8, 96, 11);
    let model = KGraph::new(quick(3, 11)).fit(&ds);
    let frame = GraphFrame::with_auto_thresholds(&model);
    let order = frame.exploration_order();
    assert_eq!(order.len(), model.best().graph.node_count());
    // Permutation check.
    let mut sorted = order.clone();
    sorted.sort_unstable();
    assert_eq!(sorted, (0..order.len()).collect::<Vec<_>>());
    // The top node must be inspectable through the frame API.
    let detail = frame.node_detail(order[0]);
    assert!(detail.count > 0);
}

#[test]
fn validation_indices_agree_on_obvious_structure() {
    // Two far-apart waveform families in raw space.
    let mut rows = Vec::new();
    for c in 0..2 {
        for i in 0..15 {
            let base = c as f64 * 50.0;
            rows.push(vec![
                base + (i % 3) as f64 * 0.1,
                base - (i % 5) as f64 * 0.1,
                base * 0.5,
            ]);
        }
    }
    let truth: Vec<usize> = (0..30).map(|i| i / 15).collect();
    let noise: Vec<usize> = (0..30).map(|i| i % 2).collect();
    assert!(
        clustering::validation::calinski_harabasz(&rows, &truth)
            > clustering::validation::calinski_harabasz(&rows, &noise)
    );
    assert!(
        clustering::validation::davies_bouldin(&rows, &truth)
            < clustering::validation::davies_bouldin(&rows, &noise)
    );
}
