//! End-to-end integration: the k-Graph pipeline against the synthetic
//! dataset generators, exercising every crate together.

use graphint_repro::prelude::*;

fn quick(k: usize, seed: u64) -> KGraphConfig {
    KGraphConfig {
        n_lengths: 3,
        psi: 16,
        pca_sample: 600,
        n_init: 3,
        ..KGraphConfig::new(k).with_seed(seed)
    }
}

#[test]
fn kgraph_solves_cbf() {
    let ds = graphint_repro::datasets::cbf::cbf(12, 128, 1);
    let model = KGraph::new(quick(3, 1)).fit(&ds);
    let ari = adjusted_rand_index(ds.labels().unwrap(), &model.labels);
    assert!(ari > 0.5, "CBF ARI {ari}");
}

#[test]
fn kgraph_solves_trace_like() {
    let ds = graphint_repro::datasets::shapes::trace_like(10, 120, 2);
    let model = KGraph::new(quick(4, 2)).fit(&ds);
    let ari = adjusted_rand_index(ds.labels().unwrap(), &model.labels);
    assert!(ari > 0.5, "TraceLike ARI {ari}");
}

#[test]
fn kgraph_solves_device_like() {
    let ds = graphint_repro::datasets::shapes::device_like(12, 96, 3);
    let model = KGraph::new(quick(3, 3)).fit(&ds);
    let ari = adjusted_rand_index(ds.labels().unwrap(), &model.labels);
    assert!(ari > 0.5, "DeviceLike ARI {ari}");
}

#[test]
fn kgraph_beats_raw_kmeans_on_motif_positions() {
    // Classes differ by *where* a motif sits; raw k-Means is position
    // sensitive, k-Graph is not — the paper's core motivation.
    let ds = graphint_repro::datasets::shapes::trace_like(12, 120, 4);
    let truth = ds.labels().unwrap().to_vec();
    let model = KGraph::new(quick(4, 4)).fit(&ds);
    let kg_ari = adjusted_rand_index(&truth, &model.labels);
    let km = ClusteringMethod::new(MethodKind::KMeansRaw, 4, 4).run(&ds);
    let km_ari = adjusted_rand_index(&truth, &km);
    assert!(
        kg_ari > km_ari - 0.05,
        "k-Graph ({kg_ari:.3}) should not lose clearly to raw k-Means ({km_ari:.3})"
    );
}

#[test]
fn model_invariants_hold_across_datasets() {
    for (ds, k) in [
        (graphint_repro::datasets::cbf::cbf(6, 64, 5), 3usize),
        (
            graphint_repro::datasets::two_patterns::two_patterns(5, 64, 5),
            4,
        ),
        (graphint_repro::datasets::shapes::spectro_like(6, 100, 5), 4),
    ] {
        let model = KGraph::new(quick(k, 5)).fit(&ds);
        assert_eq!(model.labels.len(), ds.len());
        assert!(model.labels.iter().all(|&l| l < k));
        // Consensus matrix: symmetric, unit diagonal, entries in [0, 1].
        let mc = &model.consensus;
        assert!(mc.is_symmetric(1e-12));
        for i in 0..mc.rows() {
            assert!((mc[(i, i)] - 1.0).abs() < 1e-12);
            for j in 0..mc.cols() {
                assert!((0.0..=1.0 + 1e-12).contains(&mc[(i, j)]));
            }
        }
        // Scores valid; best layer argmax.
        let best = model.scores[model.best_layer].product();
        for s in &model.scores {
            assert!((0.0..=1.0).contains(&s.wc));
            assert!((0.0..=1.0).contains(&s.we));
            assert!(best >= s.product() - 1e-12);
        }
        // Every layer's graph non-trivial and paths well-formed.
        for layer in &model.layers {
            assert!(layer.graph.node_count() > 0);
            assert_eq!(layer.paths.len(), ds.len());
            for path in &layer.paths {
                assert!(!path.is_empty());
                for n in path {
                    assert!(n.index() < layer.graph.node_count());
                }
            }
        }
    }
}

#[test]
fn graphoid_exclusivity_partition_property() {
    let ds = graphint_repro::datasets::cbf::cbf(8, 96, 6);
    let model = KGraph::new(quick(3, 6)).fit(&ds);
    let stats = model.best_stats();
    let layer = model.best();
    for n in 0..layer.graph.node_count() {
        let total: f64 = (0..3).map(|c| stats.node_exclusivity(c, n)).sum();
        let crossed: usize = (0..3).map(|c| stats.node_crossings[c][n]).sum();
        if crossed > 0 {
            assert!(
                (total - 1.0).abs() < 1e-9,
                "node {n} exclusivity sum {total}"
            );
        }
    }
}

#[test]
fn variable_length_series_handled_by_baselines_and_kgraph() {
    // k-Graph can consume variable lengths directly (windows are
    // per-series); baselines resample internally.
    let mut series = Vec::new();
    let mut labels = Vec::new();
    for (label, f) in [0.2f64, 0.9].into_iter().enumerate() {
        for p in 0..5 {
            let n = 70 + p * 5;
            series.push(TimeSeries::new(
                (0..n).map(|i| ((i + p) as f64 * f).sin()).collect(),
            ));
            labels.push(label);
        }
    }
    let ds = Dataset::with_labels("varlen", DatasetKind::Other, series, labels).unwrap();
    let model = KGraph::new(quick(2, 7)).fit(&ds);
    assert_eq!(model.labels.len(), ds.len());
    let km = ClusteringMethod::new(MethodKind::KMeansZnorm, 2, 7).run(&ds);
    assert_eq!(km.len(), ds.len());
}
