//! Local shim for the `rand` 0.8 API subset this workspace uses.
//!
//! Provides [`rngs::StdRng`] (xoshiro256++ seeded via SplitMix64),
//! [`SeedableRng::seed_from_u64`] and [`Rng::gen_range`] over integer and
//! float ranges. Deterministic given a seed, which is all the callers rely
//! on; there is no `thread_rng`, no distributions module and no `gen` —
//! extend the shim if a future caller needs more.

use std::ops::{Range, RangeInclusive};

/// Minimal core trait: a source of uniform 64-bit words.
pub trait RngCore {
    /// The next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// A uniform `f64` in `[0, 1)` (53 mantissa bits).
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be drawn uniformly from a range — the single-impl shape
/// (mirroring rand's `SampleUniform`) is what lets `gen_range(-3.0..3.0)`
/// infer `f64` from the unsuffixed float literal.
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform draw from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`.
    fn sample_uniform<G: RngCore + ?Sized>(
        lo: Self,
        hi: Self,
        inclusive: bool,
        rng: &mut G,
    ) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<G: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut G,
            ) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + inclusive as u128;
                assert!(span > 0, "empty range in gen_range");
                let draw = (rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

impl SampleUniform for f64 {
    fn sample_uniform<G: RngCore + ?Sized>(
        lo: Self,
        hi: Self,
        inclusive: bool,
        rng: &mut G,
    ) -> Self {
        assert!(
            if inclusive { lo <= hi } else { lo < hi },
            "empty range in gen_range"
        );
        lo + (hi - lo) * rng.next_f64()
    }
}

impl SampleUniform for f32 {
    fn sample_uniform<G: RngCore + ?Sized>(
        lo: Self,
        hi: Self,
        inclusive: bool,
        rng: &mut G,
    ) -> Self {
        assert!(
            if inclusive { lo <= hi } else { lo < hi },
            "empty range in gen_range"
        );
        lo + (hi - lo) * rng.next_f64() as f32
    }
}

/// Range sampling, mirroring `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws a uniform sample from the range.
    fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> T {
        T::sample_uniform(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> T {
        T::sample_uniform(*self.start(), *self.end(), true, rng)
    }
}

/// User-facing trait: everything that can sample ranges.
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open or inclusive).
    fn gen_range<T: SampleUniform, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<T: RngCore> Rng for T {}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — fast, high-quality, deterministic. Stands in for
    /// rand's `StdRng` (callers only rely on determinism given a seed).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            // Unsuffixed float literals must infer f64, as with real rand.
            let v = rng.gen_range(-3.0..3.0);
            assert!((-3.0..3.0).contains(&v));
            let i = rng.gen_range(2usize..=5);
            assert!((2..=5).contains(&i));
            let n = rng.gen_range(-10i64..-2);
            assert!((-10..-2).contains(&n));
        }
    }

    #[test]
    fn roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 4];
        for _ in 0..4000 {
            counts[rng.gen_range(0usize..4)] += 1;
        }
        for &c in &counts {
            assert!((800..1200).contains(&c), "counts {counts:?}");
        }
    }
}
