//! Local shim for the `proptest` API subset this workspace uses.
//!
//! Implements the `proptest!` macro, `prop_assert!`/`prop_assert_eq!`/
//! `prop_assume!`, range/tuple strategies, `collection::vec` and
//! `prop_map`/`prop_flat_map` over a deterministic RNG. Cases are pure
//! random generation — there is **no shrinking**; a failure reports the
//! case index and message, and re-running reproduces it (fixed seed).

use rand::rngs::StdRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// Test-runner configuration. Only `cases` is modelled.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Why a single case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// An assertion failed: the property is violated.
    Fail(String),
    /// The inputs were rejected by `prop_assume!`; the case is skipped.
    Reject(String),
}

impl TestCaseError {
    /// Constructs a failure.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Constructs a rejection.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// A generator of random values of an output type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<F, O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Feeds generated values into a strategy-producing `f` (dependent
    /// generation).
    fn prop_flat_map<F, S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> S,
        S: Strategy,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, F: Fn(S::Value) -> O, O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, F: Fn(S::Value) -> S2, S2: Strategy> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Constant strategy.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{StdRng, Strategy};
    use rand::Rng;

    /// Inclusive length bounds for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy generating `Vec<S::Value>` with length in `size`.
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let len = rng.gen_range(self.size.lo..=self.size.hi);
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// Vector of values drawn from `elem`, with length drawn from `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }
}

/// One-stop imports mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, ProptestConfig,
        Strategy, TestCaseError,
    };
}

#[doc(hidden)]
pub mod __runner {
    pub use rand::rngs::StdRng;
    pub use rand::SeedableRng;

    /// Runs `cases` random cases of `body` over values drawn from
    /// `make_strategy`, panicking on the first failed case.
    pub fn run<S, F>(name: &str, cases: u32, make_strategy: impl Fn() -> S, mut body: F)
    where
        S: super::Strategy,
        F: FnMut(S::Value) -> Result<(), super::TestCaseError>,
    {
        // Fixed seed: failures are reproducible run-to-run; the test name
        // decorrelates sibling properties.
        let mut seed = 0x0051_C0FF_EE00_0000u64;
        for b in name.bytes() {
            seed = seed.wrapping_mul(31).wrapping_add(b as u64);
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rejected = 0u32;
        let mut case = 0u32;
        // Bound the total attempts so aggressive prop_assume! cannot spin
        // forever (mirrors proptest's global rejection cap).
        let max_attempts = cases.saturating_mul(20).max(cases);
        let mut attempts = 0u32;
        while case < cases && attempts < max_attempts {
            attempts += 1;
            let value = make_strategy().generate(&mut rng);
            match body(value) {
                Ok(()) => case += 1,
                Err(super::TestCaseError::Reject(_)) => rejected += 1,
                Err(super::TestCaseError::Fail(msg)) => {
                    panic!(
                        "proptest '{name}' failed at case {case} (after {rejected} rejects): {msg}"
                    )
                }
            }
        }
    }
}

/// Property-test entry point: declares `#[test]` functions whose arguments
/// are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr); $( $(#[$meta:meta])* fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                $crate::__runner::run(
                    stringify!($name),
                    config.cases,
                    || ( $($strat,)+ ),
                    |values| {
                        let ( $($pat,)+ ) = values;
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    },
                );
            }
        )*
    };
}

/// Asserts a condition inside `proptest!`, failing the case (not the whole
/// process) with an optional formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}: {}",
                stringify!($cond),
                format_args!($($fmt)+)
            )));
        }
    };
}

/// Equality assertion inside `proptest!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {} ({:?} vs {:?})",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {} ({:?} vs {:?}): {}",
                stringify!($left),
                stringify!($right),
                l,
                r,
                format_args!($($fmt)+)
            )));
        }
    }};
}

/// Inequality assertion inside `proptest!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} != {} (both {:?})",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

/// Rejects the current case (skips it) when the assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 0usize..10, y in -2.0..2.0f64) {
            prop_assert!(x < 10);
            prop_assert!((-2.0..2.0).contains(&y), "y = {y}");
        }

        #[test]
        fn vec_lengths((n, v) in (1usize..5, crate::collection::vec(0u32..3, 2..=6))) {
            prop_assert!(v.len() >= 2 && v.len() <= 6);
            prop_assert!(n >= 1);
            prop_assert_eq!(v.len(), v.len());
        }

        #[test]
        fn flat_map_dependent(v in (1usize..4).prop_flat_map(|n| crate::collection::vec(0usize..9, n..=n))) {
            prop_assert!(!v.is_empty() && v.len() < 4);
        }

        #[test]
        fn assume_skips(x in 0usize..10) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }
    }

    #[test]
    #[should_panic(expected = "proptest 'failing'")]
    fn failures_panic_with_context() {
        crate::__runner::run(
            "failing",
            8,
            || 0usize..4,
            |x| {
                prop_assert!(x < 2);
                Ok(())
            },
        );
    }
}
