//! Local shim for the `crossbeam` API subset this workspace uses:
//! [`thread::scope`] with scoped [`thread::Scope::spawn`], backed by
//! `std::thread::scope`.
//!
//! Behavioural difference kept deliberately: a panicking child re-panics
//! on scope exit (std semantics) instead of surfacing through the returned
//! `Result` — every caller `.expect()`s the result anyway.

pub mod thread {
    /// Scoped-thread handle mirroring `crossbeam::thread::Scope`.
    ///
    /// Wraps `std::thread::Scope`; the wrapper is what lets spawned
    /// closures receive a `&Scope` argument for nested spawns, matching
    /// crossbeam's `spawn(|scope| ...)` signature.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread; the closure receives the scope so it
        /// can spawn further threads.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Runs `f` with a scope in which borrowed-data threads can be
    /// spawned; returns once all of them finished.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_stack_data() {
        let data = vec![1u64, 2, 3, 4];
        let mut out = vec![0u64; 4];
        super::thread::scope(|s| {
            for (slot, &v) in out.iter_mut().zip(&data) {
                s.spawn(move |_| *slot = v * 10);
            }
        })
        .expect("no panics");
        assert_eq!(out, vec![10, 20, 30, 40]);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let total = std::sync::atomic::AtomicUsize::new(0);
        super::thread::scope(|s| {
            s.spawn(|inner| {
                inner.spawn(|_| {
                    total.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                });
            });
        })
        .expect("no panics");
        assert_eq!(total.load(std::sync::atomic::Ordering::SeqCst), 1);
    }
}
