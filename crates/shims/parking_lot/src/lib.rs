//! Local shim for the `parking_lot` API subset this workspace uses: a
//! [`Mutex`] whose `lock()` returns the guard directly (no poisoning),
//! backed by `std::sync::Mutex`.

use std::sync::{Mutex as StdMutex, MutexGuard as StdGuard, PoisonError};

/// Non-poisoning mutex with parking_lot's `lock()` signature.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(StdMutex<T>);

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = StdGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex(StdMutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, ignoring poisoning (parking_lot semantics).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_and_into_inner() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }
}
