//! Local shim for the `criterion` API subset this workspace uses.
//!
//! It measures for real — each benchmark closure is timed over
//! `sample_size` samples after a calibration pass that picks an iteration
//! count targeting a few milliseconds per sample — and prints
//! `name  time: [min mean max]` lines, but does no statistical analysis,
//! HTML reports or comparison against saved baselines.
//!
//! Results are additionally collected in-process; [`write_baseline`]
//! (called by `criterion_main!` after every group has run) persists them
//! as `BENCH_<name>.json` in the working directory so the repo can track
//! a perf trajectory. Set `BENCH_BASELINE_PATH` to redirect the file, or
//! `BENCH_BASELINE_PATH=-` to skip writing.

use std::sync::Mutex;
use std::time::{Duration, Instant};

/// One finished benchmark: label plus nanosecond stats.
///
/// `min`/`mean`/`max` are computed after Tukey outlier rejection (samples
/// outside `[Q1 − 1.5·IQR, Q3 + 1.5·IQR]` are discarded), so a single
/// scheduler hiccup cannot poison a baseline. `median_ns` is the median of
/// *all* samples — the robust location estimate regression comparisons
/// should use. `samples` counts the surviving samples.
struct BenchRecord {
    label: String,
    min_ns: u128,
    mean_ns: u128,
    median_ns: u128,
    max_ns: u128,
    samples: usize,
}

static RESULTS: Mutex<Vec<BenchRecord>> = Mutex::new(Vec::new());

/// The baseline file name for this process: `bench_graph-1a2b3c` →
/// `BENCH_graph.json`.
fn default_baseline_path() -> std::path::PathBuf {
    let stem = std::env::args()
        .next()
        .map(std::path::PathBuf::from)
        .and_then(|p| p.file_stem().map(|s| s.to_string_lossy().into_owned()))
        .unwrap_or_else(|| "bench".to_string());
    // Strip cargo's trailing `-<hash>` and a leading `bench_`.
    let stem = match stem.rsplit_once('-') {
        Some((head, tail)) if tail.chars().all(|c| c.is_ascii_hexdigit()) => head.to_string(),
        _ => stem,
    };
    let name = stem.strip_prefix("bench_").unwrap_or(&stem);
    std::path::PathBuf::from(format!("BENCH_{name}.json"))
}

/// Writes every recorded result as a JSON baseline file. A no-op when no
/// benchmark ran or `BENCH_BASELINE_PATH=-`.
pub fn write_baseline() {
    let results = RESULTS.lock().unwrap_or_else(|e| e.into_inner());
    if results.is_empty() {
        return;
    }
    let path = match std::env::var("BENCH_BASELINE_PATH") {
        Ok(p) if p == "-" => return,
        Ok(p) => std::path::PathBuf::from(p),
        Err(_) => default_baseline_path(),
    };
    let mut out = String::from("{\n  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"min_ns\": {}, \"mean_ns\": {}, \"median_ns\": {}, \"max_ns\": {}, \"samples\": {}}}",
            r.label.replace('"', "'"),
            r.min_ns,
            r.mean_ns,
            r.median_ns,
            r.max_ns,
            r.samples
        ));
    }
    out.push_str("\n  ]\n}\n");
    match std::fs::write(&path, out) {
        Ok(()) => eprintln!("baseline written to {}", path.display()),
        Err(e) => eprintln!("could not write baseline {}: {e}", path.display()),
    }
}

/// Opaque identity function preventing the optimiser from deleting the
/// benchmarked computation.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// A benchmark id: function name plus a parameter, rendered `name/param`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Times closures handed to [`Bencher::iter`].
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Runs `f` repeatedly, collecting `sample_size` timed samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibrate: aim for ~2 ms per sample, at least one iteration.
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let iters = (Duration::from_millis(2).as_nanos() / once.as_nanos()).clamp(1, 10_000) as u64;
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            self.samples.push(start.elapsed() / iters as u32);
        }
    }

    fn report(&self, label: &str) {
        if self.samples.is_empty() {
            println!("{label:<40} (no samples)");
            return;
        }
        let mut sorted: Vec<u128> = self.samples.iter().map(Duration::as_nanos).collect();
        sorted.sort_unstable();
        let median = sorted[sorted.len() / 2];
        let kept = reject_outliers(&sorted);
        let min = *kept.first().expect("non-empty after rejection");
        let max = *kept.last().expect("non-empty after rejection");
        let mean = kept.iter().sum::<u128>() / kept.len() as u128;
        println!(
            "{label:<48} time: [{:>12} {:>12} {:>12}]",
            format_ns(min),
            format_ns(median),
            format_ns(max)
        );
        RESULTS
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(BenchRecord {
                label: label.to_string(),
                min_ns: min,
                mean_ns: mean,
                median_ns: median,
                max_ns: max,
                samples: kept.len(),
            });
    }
}

/// Tukey fences: keeps the samples inside `[Q1 − 1.5·IQR, Q3 + 1.5·IQR]`.
/// `sorted` must be ascending and non-empty; at least one sample (the
/// median) always survives.
fn reject_outliers(sorted: &[u128]) -> Vec<u128> {
    if sorted.len() < 4 {
        return sorted.to_vec();
    }
    let q1 = sorted[sorted.len() / 4];
    let q3 = sorted[(3 * sorted.len()) / 4];
    let iqr = q3 - q1;
    let lo = q1.saturating_sub(iqr + iqr / 2);
    let hi = q3 + iqr + iqr / 2;
    let kept: Vec<u128> = sorted
        .iter()
        .copied()
        .filter(|&s| (lo..=hi).contains(&s))
        .collect();
    if kept.is_empty() {
        vec![sorted[sorted.len() / 2]]
    } else {
        kept
    }
}

fn format_ns(ns: u128) -> String {
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// A named group of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(1);
        self
    }

    /// Benchmarks `f` under `id` (any `Display`, typically a `&str` or
    /// [`BenchmarkId`]).
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.criterion.sample_size,
        };
        f(&mut b);
        b.report(&label);
        self
    }

    /// Benchmarks `f` with an input reference, criterion-style.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.criterion.sample_size,
        };
        f(&mut b, input);
        b.report(&label);
        self
    }

    /// Ends the group (printing is incremental; nothing to flush).
    pub fn finish(&mut self) {}
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the default number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("== group {name}");
        BenchmarkGroup {
            name,
            criterion: self,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = id.to_string();
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b);
        b.report(&label);
        self
    }
}

/// Declares a benchmark group: plain `criterion_group!(name, fn, ...)` or
/// the struct form with `name = ...; config = ...; targets = ...`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main()` running the given groups (requires `harness = false`)
/// and persisting the collected results as a `BENCH_*.json` baseline.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::write_baseline();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_reports() {
        let mut c = Criterion::default().sample_size(3);
        let mut group = c.benchmark_group("shim");
        let mut ran = 0u64;
        group.bench_function("noop", |b| {
            b.iter(|| {
                ran += 1;
                black_box(ran)
            })
        });
        group.bench_with_input(BenchmarkId::new("sum", 8), &8u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
        assert!(ran > 0, "closure must actually run");
    }

    #[test]
    fn outlier_rejection_drops_spikes() {
        // Nine tight samples and one 100x spike: the spike must go.
        let mut sorted = vec![100u128, 101, 102, 103, 104, 105, 106, 107, 108, 10_000];
        sorted.sort_unstable();
        let kept = reject_outliers(&sorted);
        assert_eq!(kept.len(), 9);
        assert!(!kept.contains(&10_000));
        // Tiny sample sets are passed through untouched.
        assert_eq!(reject_outliers(&[5, 9_999]), vec![5, 9_999]);
    }

    #[test]
    fn outlier_rejection_never_empties() {
        let sorted = vec![1u128, 1, 1, 1_000_000];
        let kept = reject_outliers(&sorted);
        assert!(!kept.is_empty());
    }
}
