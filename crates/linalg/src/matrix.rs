//! Dense row-major matrix.

use std::fmt;
use std::ops::{Index, IndexMut};

/// Dense `rows × cols` matrix of `f64`, row-major storage.
///
/// Deliberately minimal: only the operations the k-Graph pipeline needs.
/// Indexing is `m[(r, c)]`.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// All-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds from row vectors; panics if rows are ragged.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows in Matrix::from_rows");
            data.extend_from_slice(row);
        }
        Matrix {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Builds from a flat row-major vector; panics on size mismatch.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "size mismatch in Matrix::from_vec");
        Matrix { rows, cols, data }
    }

    /// Builds by evaluating `f(r, c)` at every position.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Matrix::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m[(r, c)] = f(r, c);
            }
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Borrow of row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable borrow of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies column `c` out as an owned vector.
    pub fn col(&self, c: usize) -> Vec<f64> {
        (0..self.rows).map(|r| self[(r, c)]).collect()
    }

    /// Flat row-major data.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out[(c, r)] = self[(r, c)];
            }
        }
        out
    }

    /// Matrix product `self · other`; panics on inner-dimension mismatch.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul inner dimension mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        // ikj loop order keeps the inner loop contiguous in both operands.
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                let orow = other.row(k);
                let out_row = out.row_mut(i);
                for (j, &b) in orow.iter().enumerate() {
                    out_row[j] += a * b;
                }
            }
        }
        out
    }

    /// Matrix-vector product; panics if `v.len() != cols`.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.cols, "matvec dimension mismatch");
        (0..self.rows)
            .map(|r| self.row(r).iter().zip(v).map(|(a, b)| a * b).sum())
            .collect()
    }

    /// In-place scalar multiplication.
    pub fn scale(&mut self, s: f64) {
        for x in &mut self.data {
            *x *= s;
        }
    }

    /// Element-wise sum; panics on shape mismatch.
    pub fn add(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "add shape mismatch");
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a + b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Element-wise difference; panics on shape mismatch.
    pub fn sub(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "sub shape mismatch");
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a - b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Frobenius norm.
    pub fn frobenius(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Whether the matrix is symmetric within `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.rows != self.cols {
            return false;
        }
        for r in 0..self.rows {
            for c in (r + 1)..self.cols {
                if (self[(r, c)] - self[(c, r)]).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Column means (the centroid of the row cloud).
    pub fn col_means(&self) -> Vec<f64> {
        let mut means = vec![0.0; self.cols];
        if self.rows == 0 {
            return means;
        }
        for r in 0..self.rows {
            for (c, m) in means.iter_mut().enumerate() {
                *m += self[(r, c)];
            }
        }
        for m in &mut means {
            *m /= self.rows as f64;
        }
        means
    }

    /// Returns a copy with column means removed (row cloud centred).
    pub fn centered(&self) -> Matrix {
        let means = self.col_means();
        let mut out = self.clone();
        for r in 0..out.rows {
            for c in 0..out.cols {
                out[(r, c)] -= means[c];
            }
        }
        out
    }

    /// Sample covariance of the columns: `Xᶜᵀ·Xᶜ / (n − 1)` where `Xᶜ` is
    /// the centred matrix. Returns a `cols × cols` symmetric matrix.
    pub fn covariance(&self) -> Matrix {
        let n = self.rows;
        let centred = self.centered();
        let mut cov = Matrix::zeros(self.cols, self.cols);
        if n < 2 {
            return cov;
        }
        for r in 0..n {
            let row = centred.row(r);
            for i in 0..self.cols {
                let xi = row[i];
                if xi == 0.0 {
                    continue;
                }
                for j in i..self.cols {
                    cov[(i, j)] += xi * row[j];
                }
            }
        }
        let denom = (n - 1) as f64;
        for i in 0..self.cols {
            for j in i..self.cols {
                let v = cov[(i, j)] / denom;
                cov[(i, j)] = v;
                cov[(j, i)] = v;
            }
        }
        cov
    }

    /// Extracts rows as owned vectors.
    pub fn to_rows(&self) -> Vec<Vec<f64>> {
        (0..self.rows).map(|r| self.row(r).to_vec()).collect()
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(6) {
            write!(f, "  [")?;
            for c in 0..self.cols.min(8) {
                write!(f, "{:9.4}", self[(r, c)])?;
                if c + 1 < self.cols.min(8) {
                    write!(f, ", ")?;
                }
            }
            writeln!(f, "{}]", if self.cols > 8 { ", …" } else { "" })?;
        }
        if self.rows > 6 {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.shape(), (2, 3));
        assert!(z.as_slice().iter().all(|&x| x == 0.0));

        let i = Matrix::identity(3);
        assert_eq!(i[(0, 0)], 1.0);
        assert_eq!(i[(0, 1)], 0.0);

        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(m[(1, 0)], 3.0);

        let v = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(v, m);

        let f = Matrix::from_fn(2, 2, |r, c| (r * 2 + c) as f64 + 1.0);
        assert_eq!(f, m);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_panic() {
        Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]);
    }

    #[test]
    fn rows_cols_access() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(m.col(2), vec![3.0, 6.0]);
        assert_eq!(m.to_rows()[0], vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn transpose_roundtrip() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let t = m.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t[(2, 1)], 6.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.to_rows(), vec![vec![19.0, 22.0], vec![43.0, 50.0]]);
        let i = Matrix::identity(2);
        assert_eq!(a.matmul(&i), a);
    }

    #[test]
    fn matvec_known() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(a.matvec(&[1.0, 1.0]), vec![3.0, 7.0]);
    }

    #[test]
    fn arithmetic() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0]]);
        let b = Matrix::from_rows(&[vec![3.0, 5.0]]);
        assert_eq!(a.add(&b).row(0), &[4.0, 7.0]);
        assert_eq!(b.sub(&a).row(0), &[2.0, 3.0]);
        let mut c = a.clone();
        c.scale(2.0);
        assert_eq!(c.row(0), &[2.0, 4.0]);
        assert!((Matrix::identity(2).frobenius() - 2f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn symmetry_check() {
        let s = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 3.0]]);
        assert!(s.is_symmetric(1e-12));
        let ns = Matrix::from_rows(&[vec![2.0, 1.0], vec![0.0, 3.0]]);
        assert!(!ns.is_symmetric(1e-12));
        let rect = Matrix::zeros(2, 3);
        assert!(!rect.is_symmetric(1e-12));
    }

    #[test]
    fn centering_and_covariance() {
        let m = Matrix::from_rows(&[vec![1.0, 10.0], vec![3.0, 14.0], vec![5.0, 18.0]]);
        assert_eq!(m.col_means(), vec![3.0, 14.0]);
        let c = m.centered();
        assert_eq!(c.col_means(), vec![0.0, 0.0]);
        let cov = m.covariance();
        assert!(cov.is_symmetric(1e-12));
        // Var(x) = 4, Var(y) = 16, Cov = 8 (sample, n−1 = 2).
        assert!((cov[(0, 0)] - 4.0).abs() < 1e-12);
        assert!((cov[(1, 1)] - 16.0).abs() < 1e-12);
        assert!((cov[(0, 1)] - 8.0).abs() < 1e-12);
    }

    #[test]
    fn covariance_degenerate() {
        let one_row = Matrix::from_rows(&[vec![1.0, 2.0]]);
        let cov = one_row.covariance();
        assert_eq!(cov.frobenius(), 0.0);
        let empty = Matrix::zeros(0, 2);
        assert_eq!(empty.col_means(), vec![0.0, 0.0]);
    }

    #[test]
    fn debug_does_not_flood() {
        let big = Matrix::zeros(100, 100);
        let s = format!("{big:?}");
        assert!(s.len() < 2000);
        assert!(s.contains("100x100"));
    }
}
