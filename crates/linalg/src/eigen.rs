//! Eigendecomposition of symmetric matrices.
//!
//! The cyclic Jacobi method: numerically robust, simple, and O(n³) — which
//! is fine for the matrix orders this workspace produces (consensus and
//! affinity matrices of up to a few thousand series, covariance matrices of
//! dimension 2–64).

use crate::matrix::Matrix;

/// Result of a symmetric eigendecomposition.
///
/// Eigenpairs are sorted by **descending** eigenvalue. `vectors` holds the
/// eigenvectors as *columns*: `vectors[(i, j)]` is component `i` of the
/// eigenvector for `values[j]`.
#[derive(Debug, Clone)]
pub struct EigenDecomposition {
    /// Eigenvalues, descending.
    pub values: Vec<f64>,
    /// Orthonormal eigenvectors, one per column, same order as `values`.
    pub vectors: Matrix,
}

impl EigenDecomposition {
    /// The eigenvector for `values[j]` as an owned vector.
    pub fn vector(&self, j: usize) -> Vec<f64> {
        self.vectors.col(j)
    }
}

/// Cyclic Jacobi eigendecomposition of a symmetric matrix.
///
/// Panics if the matrix is not square; symmetry is assumed (only the upper
/// triangle drives rotations, which matches how all call sites build their
/// matrices). Converges when the off-diagonal Frobenius mass drops below
/// `1e-12` relative to the matrix norm, or after 100 sweeps.
pub fn symmetric_eigen(m: &Matrix) -> EigenDecomposition {
    assert_eq!(
        m.rows(),
        m.cols(),
        "symmetric_eigen requires a square matrix"
    );
    let n = m.rows();
    let mut a = m.clone();
    let mut v = Matrix::identity(n);
    if n <= 1 {
        return EigenDecomposition {
            values: (0..n).map(|i| a[(i, i)]).collect(),
            vectors: v,
        };
    }

    let norm = a.frobenius().max(f64::MIN_POSITIVE);
    let tol = 1e-12 * norm;
    for _sweep in 0..100 {
        let mut off = 0.0;
        for i in 0..n {
            for j in (i + 1)..n {
                off += a[(i, j)] * a[(i, j)];
            }
        }
        if off.sqrt() <= tol {
            break;
        }
        for p in 0..n - 1 {
            for q in (p + 1)..n {
                let apq = a[(p, q)];
                if apq.abs() <= tol / (n as f64) {
                    continue;
                }
                let app = a[(p, p)];
                let aqq = a[(q, q)];
                // Classic Jacobi rotation computation.
                let theta = (aqq - app) / (2.0 * apq);
                let t = if theta >= 0.0 {
                    1.0 / (theta + (1.0 + theta * theta).sqrt())
                } else {
                    -1.0 / (-theta + (1.0 + theta * theta).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;

                // Update A = Jᵀ A J, touching only rows/cols p and q.
                for k in 0..n {
                    let akp = a[(k, p)];
                    let akq = a[(k, q)];
                    a[(k, p)] = c * akp - s * akq;
                    a[(k, q)] = s * akp + c * akq;
                }
                for k in 0..n {
                    let apk = a[(p, k)];
                    let aqk = a[(q, k)];
                    a[(p, k)] = c * apk - s * aqk;
                    a[(q, k)] = s * apk + c * aqk;
                }
                // Accumulate rotations into the eigenvector matrix.
                for k in 0..n {
                    let vkp = v[(k, p)];
                    let vkq = v[(k, q)];
                    v[(k, p)] = c * vkp - s * vkq;
                    v[(k, q)] = s * vkp + c * vkq;
                }
            }
        }
    }

    // Sort eigenpairs by descending eigenvalue.
    let mut order: Vec<usize> = (0..n).collect();
    let diag: Vec<f64> = (0..n).map(|i| a[(i, i)]).collect();
    order.sort_by(|&i, &j| diag[j].partial_cmp(&diag[i]).expect("NaN eigenvalue"));

    let values: Vec<f64> = order.iter().map(|&i| diag[i]).collect();
    let mut vectors = Matrix::zeros(n, n);
    for (new_col, &old_col) in order.iter().enumerate() {
        for r in 0..n {
            vectors[(r, new_col)] = v[(r, old_col)];
        }
    }
    EigenDecomposition { values, vectors }
}

/// Power iteration for the dominant eigenvector of a symmetric matrix.
///
/// Cheap when only the top eigenpair is needed (k-Shape's shape extraction).
/// Deterministic: starts from an all-ones vector (falling back to a basis
/// vector if that lies in the nullspace). Returns `(eigenvalue, vector)`.
pub fn power_iteration(m: &Matrix, max_iter: usize, tol: f64) -> (f64, Vec<f64>) {
    assert_eq!(
        m.rows(),
        m.cols(),
        "power_iteration requires a square matrix"
    );
    let n = m.rows();
    if n == 0 {
        return (0.0, Vec::new());
    }
    let mut v = vec![1.0 / (n as f64).sqrt(); n];
    let mut lambda = 0.0;
    for it in 0..max_iter {
        let mut w = m.matvec(&v);
        let norm = w.iter().map(|x| x * x).sum::<f64>().sqrt();
        if norm <= f64::MIN_POSITIVE {
            // v was (numerically) in the nullspace; restart from e_{it % n}.
            v = vec![0.0; n];
            v[it % n] = 1.0;
            continue;
        }
        for x in &mut w {
            *x /= norm;
        }
        let new_lambda: f64 = {
            let mv = m.matvec(&w);
            w.iter().zip(&mv).map(|(a, b)| a * b).sum()
        };
        let delta: f64 = w
            .iter()
            .zip(&v)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        v = w;
        // Sign flips (eigenvalue < 0) make `delta` oscillate; compare λ too.
        if delta < tol || (new_lambda - lambda).abs() < tol * lambda.abs().max(1.0) {
            lambda = new_lambda;
            break;
        }
        lambda = new_lambda;
    }
    (lambda, v)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} !~ {b}");
    }

    #[test]
    fn eigen_of_diagonal() {
        let m = Matrix::from_rows(&[
            vec![3.0, 0.0, 0.0],
            vec![0.0, 1.0, 0.0],
            vec![0.0, 0.0, 2.0],
        ]);
        let e = symmetric_eigen(&m);
        assert_close(e.values[0], 3.0, 1e-10);
        assert_close(e.values[1], 2.0, 1e-10);
        assert_close(e.values[2], 1.0, 1e-10);
    }

    #[test]
    fn eigen_known_2x2() {
        // [[2, 1], [1, 2]] has eigenvalues 3 and 1.
        let m = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 2.0]]);
        let e = symmetric_eigen(&m);
        assert_close(e.values[0], 3.0, 1e-10);
        assert_close(e.values[1], 1.0, 1e-10);
        // Eigenvector for 3 is (1,1)/√2 up to sign.
        let v = e.vector(0);
        assert_close(v[0].abs(), 1.0 / 2f64.sqrt(), 1e-8);
        assert_close(v[1].abs(), 1.0 / 2f64.sqrt(), 1e-8);
        assert!(v[0] * v[1] > 0.0);
    }

    #[test]
    fn eigenvectors_orthonormal() {
        let m = Matrix::from_rows(&[
            vec![4.0, 1.0, 0.5],
            vec![1.0, 3.0, 0.2],
            vec![0.5, 0.2, 1.0],
        ]);
        let e = symmetric_eigen(&m);
        for i in 0..3 {
            for j in 0..3 {
                let dot: f64 = e
                    .vector(i)
                    .iter()
                    .zip(e.vector(j))
                    .map(|(a, b)| a * b)
                    .sum();
                let expected = if i == j { 1.0 } else { 0.0 };
                assert_close(dot, expected, 1e-8);
            }
        }
    }

    #[test]
    fn reconstruction() {
        let m = Matrix::from_rows(&[
            vec![5.0, 2.0, 1.0],
            vec![2.0, 4.0, 0.0],
            vec![1.0, 0.0, 3.0],
        ]);
        let e = symmetric_eigen(&m);
        // A = V Λ Vᵀ
        let mut lam = Matrix::zeros(3, 3);
        for i in 0..3 {
            lam[(i, i)] = e.values[i];
        }
        let rec = e.vectors.matmul(&lam).matmul(&e.vectors.transpose());
        assert!(rec.sub(&m).frobenius() < 1e-8);
    }

    #[test]
    fn eigen_trivial_sizes() {
        let e0 = symmetric_eigen(&Matrix::zeros(0, 0));
        assert!(e0.values.is_empty());
        let e1 = symmetric_eigen(&Matrix::from_rows(&[vec![7.0]]));
        assert_eq!(e1.values, vec![7.0]);
    }

    #[test]
    fn eigen_handles_negative_eigenvalues() {
        // [[0, 1], [1, 0]] has eigenvalues 1 and −1.
        let m = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        let e = symmetric_eigen(&m);
        assert_close(e.values[0], 1.0, 1e-10);
        assert_close(e.values[1], -1.0, 1e-10);
    }

    #[test]
    fn power_iteration_matches_jacobi() {
        let m = Matrix::from_rows(&[
            vec![4.0, 1.0, 0.0],
            vec![1.0, 3.0, 1.0],
            vec![0.0, 1.0, 2.0],
        ]);
        let full = symmetric_eigen(&m);
        let (lambda, v) = power_iteration(&m, 1000, 1e-12);
        assert_close(lambda, full.values[0], 1e-6);
        // Same direction up to sign.
        let reference = full.vector(0);
        let dot: f64 = v.iter().zip(&reference).map(|(a, b)| a * b).sum();
        assert_close(dot.abs(), 1.0, 1e-5);
    }

    #[test]
    fn power_iteration_zero_matrix() {
        let (lambda, v) = power_iteration(&Matrix::zeros(3, 3), 50, 1e-10);
        assert!(lambda.abs() < 1e-12 || lambda == 0.0);
        assert_eq!(v.len(), 3);
        let (l0, v0) = power_iteration(&Matrix::zeros(0, 0), 10, 1e-10);
        assert_eq!(l0, 0.0);
        assert!(v0.is_empty());
    }
}
