//! # linalg — dense linear algebra for the k-Graph pipeline
//!
//! From-scratch, dependency-free numerics used across the workspace:
//!
//! * [`Matrix`] — dense row-major `f64` matrix with the handful of
//!   operations the pipeline needs (products, transpose, covariance),
//! * [`eigen`] — Jacobi eigendecomposition for symmetric matrices plus
//!   power iteration (used by spectral clustering, PCA and k-Shape),
//! * [`pca`] — principal component analysis (the 2-D projection behind
//!   k-Graph's graph embedding),
//! * [`fft`] — iterative radix-2 FFT and FFT-backed cross-correlation
//!   (speeds up k-Shape's NCC from O(m²) to O(m log m)),
//! * [`kde`] — 1-D Gaussian kernel density estimation with local-maxima
//!   extraction (node creation along each radial scan sector).
//!
//! Sizes here are small (hundreds to a few thousands), so clarity wins over
//! blocked/SIMD kernels; everything is O(n³) or better and deterministic.

pub mod eigen;
pub mod fft;
pub mod kde;
pub mod matrix;
pub mod pca;

pub use eigen::{power_iteration, symmetric_eigen, EigenDecomposition};
pub use fft::{cross_correlation_fft, Complex};
pub use kde::Kde;
pub use matrix::Matrix;
pub use pca::Pca;
