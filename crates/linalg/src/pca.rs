//! Principal Component Analysis.
//!
//! k-Graph's graph embedding projects every subsequence of length ℓ into a
//! 2-D space via PCA "while retaining their essential shapes" (paper §II-A).
//! This implementation fits on the covariance matrix with Jacobi
//! eigendecomposition, which is exact and deterministic.
//!
//! When ℓ is large, computing an ℓ × ℓ covariance is wasteful for a 2-D
//! projection, but ℓ ≤ a few hundred here and the covariance accumulation —
//! not the eigendecomposition — dominates; both are fine at this scale.

use crate::eigen::symmetric_eigen;
use crate::matrix::Matrix;

/// A fitted PCA model.
#[derive(Debug, Clone)]
pub struct Pca {
    /// Column means of the training data (subtracted before projection).
    mean: Vec<f64>,
    /// Principal axes, one per *row*, orthonormal, sorted by variance.
    components: Matrix,
    /// Variance explained by each retained component.
    explained_variance: Vec<f64>,
    /// Total variance of the training data (sum over all directions).
    total_variance: f64,
}

impl Pca {
    /// Fits a PCA with `n_components` axes on the rows of `data`.
    ///
    /// `n_components` is clamped to `min(rows, cols)`. Degenerate inputs
    /// (no rows / no columns) produce an empty model that projects to zeros.
    pub fn fit(data: &Matrix, n_components: usize) -> Pca {
        let cols = data.cols();
        let keep = n_components.min(cols).min(data.rows().max(1));
        if data.rows() == 0 || cols == 0 {
            return Pca {
                mean: vec![0.0; cols],
                components: Matrix::zeros(0, cols),
                explained_variance: Vec::new(),
                total_variance: 0.0,
            };
        }
        let mean = data.col_means();
        let cov = data.covariance();
        let total_variance: f64 = (0..cols).map(|i| cov[(i, i)]).sum();
        let eig = symmetric_eigen(&cov);
        let mut components = Matrix::zeros(keep, cols);
        let mut explained = Vec::with_capacity(keep);
        for c in 0..keep {
            // Numerical noise can push tiny eigenvalues below zero.
            explained.push(eig.values[c].max(0.0));
            for r in 0..cols {
                components[(c, r)] = eig.vectors[(r, c)];
            }
        }
        Pca {
            mean,
            components,
            explained_variance: explained,
            total_variance,
        }
    }

    /// Reassembles a PCA from its raw parts (the inverse of the accessors
    /// below) — the hook model serialization uses to round-trip a fitted
    /// projection without refitting. `components` must be one axis per row
    /// with `mean.len()` columns and one `explained_variance` entry per
    /// axis.
    pub fn from_parts(
        mean: Vec<f64>,
        components: Matrix,
        explained_variance: Vec<f64>,
        total_variance: f64,
    ) -> Pca {
        assert_eq!(
            components.cols(),
            mean.len(),
            "component width must match mean length"
        );
        assert_eq!(
            components.rows(),
            explained_variance.len(),
            "one explained-variance entry per component"
        );
        Pca {
            mean,
            components,
            explained_variance,
            total_variance,
        }
    }

    /// Number of retained components.
    pub fn n_components(&self) -> usize {
        self.components.rows()
    }

    /// The principal axes (one per row).
    pub fn components(&self) -> &Matrix {
        &self.components
    }

    /// Column means learned at fit time.
    pub fn mean(&self) -> &[f64] {
        &self.mean
    }

    /// Variance captured by each retained component.
    pub fn explained_variance(&self) -> &[f64] {
        &self.explained_variance
    }

    /// Total variance of the training data (all directions, not just the
    /// retained ones).
    pub fn total_variance(&self) -> f64 {
        self.total_variance
    }

    /// Fraction of total variance captured by each retained component.
    pub fn explained_variance_ratio(&self) -> Vec<f64> {
        if self.total_variance <= f64::MIN_POSITIVE {
            return vec![0.0; self.explained_variance.len()];
        }
        self.explained_variance
            .iter()
            .map(|v| v / self.total_variance)
            .collect()
    }

    /// Projects a single observation onto the retained axes.
    pub fn project(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(
            x.len(),
            self.mean.len(),
            "PCA projection dimension mismatch"
        );
        let centred: Vec<f64> = x.iter().zip(&self.mean).map(|(a, m)| a - m).collect();
        (0..self.components.rows())
            .map(|c| {
                self.components
                    .row(c)
                    .iter()
                    .zip(&centred)
                    .map(|(w, v)| w * v)
                    .sum()
            })
            .collect()
    }

    /// Projects a single observation onto the first two retained axes
    /// without allocating. Missing axes (fewer than two components) yield
    /// zero coordinates.
    ///
    /// The accumulation order per axis is identical to [`Self::project`]
    /// (sequential `w[i] · (x[i] − mean[i])`), so the coordinates are
    /// bit-identical to `project(x)[0..2]` — callers can mix the two forms
    /// freely without ulp drift between fit-time and serve-time paths.
    pub fn project2(&self, x: &[f64]) -> (f64, f64) {
        assert_eq!(
            x.len(),
            self.mean.len(),
            "PCA projection dimension mismatch"
        );
        let mut out = [0.0f64; 2];
        for (c, slot) in out.iter_mut().enumerate().take(self.components.rows()) {
            let mut acc = 0.0;
            for ((w, xv), m) in self.components.row(c).iter().zip(x).zip(&self.mean) {
                acc += w * (xv - m);
            }
            *slot = acc;
        }
        (out[0], out[1])
    }

    /// Projects every row of `data`; returns a `rows × n_components` matrix.
    pub fn transform(&self, data: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(data.rows(), self.n_components());
        for r in 0..data.rows() {
            let p = self.project(data.row(r));
            out.row_mut(r).copy_from_slice(&p);
        }
        out
    }

    /// Convenience: fit and transform in one call.
    pub fn fit_transform(data: &Matrix, n_components: usize) -> (Pca, Matrix) {
        let pca = Pca::fit(data, n_components);
        let projected = pca.transform(data);
        (pca, projected)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Rows scattered along the direction (1, 1) with tiny orthogonal noise.
    fn diagonal_cloud() -> Matrix {
        let mut rows = Vec::new();
        for i in 0..40 {
            let t = i as f64 / 4.0;
            let noise = if i % 2 == 0 { 0.01 } else { -0.01 };
            rows.push(vec![t + noise, t - noise]);
        }
        Matrix::from_rows(&rows)
    }

    #[test]
    fn from_parts_round_trips_projections() {
        let data = diagonal_cloud();
        let pca = Pca::fit(&data, 2);
        let rebuilt = Pca::from_parts(
            pca.mean().to_vec(),
            pca.components().clone(),
            pca.explained_variance().to_vec(),
            pca.total_variance(),
        );
        assert_eq!(rebuilt.total_variance(), pca.total_variance());
        for r in 0..data.rows() {
            assert_eq!(rebuilt.project(data.row(r)), pca.project(data.row(r)));
        }
    }

    #[test]
    fn first_component_follows_spread() {
        let data = diagonal_cloud();
        let pca = Pca::fit(&data, 2);
        let c0 = pca.components().row(0);
        // Should align with (1,1)/√2 up to sign.
        let target = 1.0 / 2f64.sqrt();
        assert!((c0[0].abs() - target).abs() < 1e-3);
        assert!((c0[1].abs() - target).abs() < 1e-3);
        assert!(c0[0] * c0[1] > 0.0, "both components same sign");
        let ratio = pca.explained_variance_ratio();
        assert!(ratio[0] > 0.99, "first axis must dominate, got {ratio:?}");
    }

    #[test]
    fn projection_is_centred() {
        let data = diagonal_cloud();
        let (pca, proj) = Pca::fit_transform(&data, 2);
        assert_eq!(proj.shape(), (40, 2));
        let means = proj.col_means();
        assert!(means[0].abs() < 1e-9);
        assert!(means[1].abs() < 1e-9);
        assert_eq!(pca.n_components(), 2);
    }

    #[test]
    fn variance_preserved_by_full_projection() {
        let data = diagonal_cloud();
        let (pca, proj) = Pca::fit_transform(&data, 2);
        // Total variance of projections equals total variance of data.
        let pv = proj.covariance();
        let var_sum = pv[(0, 0)] + pv[(1, 1)];
        let explained: f64 = pca.explained_variance().iter().sum();
        assert!((var_sum - explained).abs() < 1e-8);
    }

    #[test]
    fn clamps_components() {
        let data = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 1.0], vec![0.0, 0.5]]);
        let pca = Pca::fit(&data, 10);
        assert_eq!(pca.n_components(), 2);
    }

    #[test]
    fn degenerate_inputs() {
        let empty = Matrix::zeros(0, 3);
        let pca = Pca::fit(&empty, 2);
        assert_eq!(pca.n_components(), 0);
        assert!(pca.explained_variance_ratio().is_empty());

        let constant = Matrix::from_rows(&[vec![5.0, 5.0], vec![5.0, 5.0]]);
        let p2 = Pca::fit(&constant, 1);
        let proj = p2.transform(&constant);
        // Constant data projects to (numerically) zero.
        assert!(proj.frobenius() < 1e-9);
        assert_eq!(p2.explained_variance_ratio(), vec![0.0]);
    }

    #[test]
    fn orthonormal_components() {
        let data = diagonal_cloud();
        let pca = Pca::fit(&data, 2);
        let c = pca.components();
        for i in 0..2 {
            for j in 0..2 {
                let dot: f64 = c.row(i).iter().zip(c.row(j)).map(|(a, b)| a * b).sum();
                let expected = if i == j { 1.0 } else { 0.0 };
                assert!((dot - expected).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn project2_bit_identical_to_project() {
        let data = diagonal_cloud();
        let pca = Pca::fit(&data, 2);
        for r in 0..data.rows() {
            let full = pca.project(data.row(r));
            let (x, y) = pca.project2(data.row(r));
            assert_eq!(x, full[0]);
            assert_eq!(y, full[1]);
        }
        // One retained axis: the second coordinate is exactly zero.
        let p1 = Pca::fit(&data, 1);
        let (x, y) = p1.project2(data.row(0));
        assert_eq!(x, p1.project(data.row(0))[0]);
        assert_eq!(y, 0.0);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn project_wrong_dims_panics() {
        let data = diagonal_cloud();
        let pca = Pca::fit(&data, 1);
        pca.project(&[1.0, 2.0, 3.0]);
    }
}
