//! One-dimensional Gaussian kernel density estimation.
//!
//! k-Graph creates graph nodes at the *local maxima of the radial density*
//! inside each angular sector of the PCA projection. [`Kde`] estimates the
//! density of the radial distances; [`Kde::local_maxima_on_grid`] extracts
//! the modes that become nodes.

/// A 1-D Gaussian KDE over a sample of points.
#[derive(Debug, Clone)]
pub struct Kde {
    points: Vec<f64>,
    bandwidth: f64,
}

impl Kde {
    /// Creates a KDE with an explicit bandwidth (> 0).
    pub fn with_bandwidth(points: Vec<f64>, bandwidth: f64) -> Self {
        assert!(bandwidth > 0.0, "KDE bandwidth must be positive");
        Kde { points, bandwidth }
    }

    /// Creates a KDE with Silverman's rule-of-thumb bandwidth:
    /// `0.9 · min(σ̂, IQR/1.34) · n^{−1/5}` (floored to a small epsilon so
    /// near-constant samples still work).
    pub fn silverman(points: Vec<f64>) -> Self {
        let bw = silverman_bandwidth(&points).max(1e-6);
        Kde {
            points,
            bandwidth: bw,
        }
    }

    /// The sample the KDE was built from.
    pub fn points(&self) -> &[f64] {
        &self.points
    }

    /// The bandwidth in use.
    pub fn bandwidth(&self) -> f64 {
        self.bandwidth
    }

    /// Density estimate at `x`.
    pub fn density(&self, x: f64) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        let h = self.bandwidth;
        let norm = 1.0 / ((2.0 * std::f64::consts::PI).sqrt() * h * self.points.len() as f64);
        self.points
            .iter()
            .map(|&p| {
                let u = (x - p) / h;
                (-0.5 * u * u).exp()
            })
            .sum::<f64>()
            * norm
    }

    /// Evaluates the density on `n` equally spaced points of `[lo, hi]`.
    ///
    /// Returns `(grid, densities)`.
    pub fn evaluate_grid(&self, lo: f64, hi: f64, n: usize) -> (Vec<f64>, Vec<f64>) {
        if n == 0 || hi < lo {
            return (Vec::new(), Vec::new());
        }
        if n == 1 {
            let x = (lo + hi) / 2.0;
            return (vec![x], vec![self.density(x)]);
        }
        let step = (hi - lo) / (n - 1) as f64;
        let grid: Vec<f64> = (0..n).map(|i| lo + step * i as f64).collect();
        let dens: Vec<f64> = grid.iter().map(|&x| self.density(x)).collect();
        (grid, dens)
    }

    /// Finds local maxima of the density on a grid over the sample range
    /// (padded by one bandwidth on each side).
    ///
    /// A grid point is a local maximum when its density is strictly greater
    /// than both neighbours (plateaus report their left edge) and at least
    /// `min_density_ratio` times the global peak. Returns the mode
    /// locations, most prominent first.
    pub fn local_maxima_on_grid(&self, grid_size: usize, min_density_ratio: f64) -> Vec<f64> {
        if self.points.is_empty() || grid_size < 3 {
            return Vec::new();
        }
        let lo = self.points.iter().cloned().fold(f64::INFINITY, f64::min) - self.bandwidth;
        let hi = self
            .points
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max)
            + self.bandwidth;
        let (grid, dens) = self.evaluate_grid(lo, hi, grid_size);
        let peak = dens.iter().cloned().fold(0.0f64, f64::max);
        if peak <= 0.0 {
            return Vec::new();
        }
        let threshold = peak * min_density_ratio.clamp(0.0, 1.0);
        let mut maxima: Vec<(f64, f64)> = Vec::new();
        for i in 1..grid.len() - 1 {
            if dens[i] >= dens[i - 1] && dens[i] > dens[i + 1] && dens[i] >= threshold {
                // Skip plateau interiors: require a strict rise somewhere
                // to the left.
                let mut j = i;
                while j > 0 && dens[j - 1] == dens[i] {
                    j -= 1;
                }
                if j == 0 || dens[j - 1] < dens[i] {
                    maxima.push((grid[i], dens[i]));
                }
            }
        }
        // Interior-free edge case: single-mode density can peak at an
        // endpoint of the padded grid only if the pad is too small; with a
        // 1-bandwidth pad the Gaussian tails guarantee interior maxima.
        maxima.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("NaN density"));
        maxima.into_iter().map(|(x, _)| x).collect()
    }
}

/// Silverman's rule-of-thumb bandwidth for a 1-D sample.
pub fn silverman_bandwidth(points: &[f64]) -> f64 {
    let n = points.len();
    if n < 2 {
        return 1.0;
    }
    let mean = points.iter().sum::<f64>() / n as f64;
    let var = points.iter().map(|p| (p - mean) * (p - mean)).sum::<f64>() / n as f64;
    let sd = var.sqrt();
    let mut sorted = points.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in KDE sample"));
    let q = |f: f64| {
        let h = f * (n - 1) as f64;
        let lo = h.floor() as usize;
        let hi = h.ceil() as usize;
        if lo == hi {
            sorted[lo]
        } else {
            sorted[lo] + (h - lo as f64) * (sorted[hi] - sorted[lo])
        }
    };
    let iqr = q(0.75) - q(0.25);
    let spread = if iqr > 0.0 { sd.min(iqr / 1.34) } else { sd };
    0.9 * spread.max(f64::MIN_POSITIVE) * (n as f64).powf(-0.2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn density_integrates_to_one() {
        let kde = Kde::with_bandwidth(vec![0.0, 1.0, 2.0, 1.5, 0.5], 0.3);
        let (grid, dens) = kde.evaluate_grid(-3.0, 5.0, 2001);
        let step = grid[1] - grid[0];
        let integral: f64 = dens.iter().sum::<f64>() * step;
        assert!((integral - 1.0).abs() < 1e-3, "integral {integral}");
    }

    #[test]
    fn density_peaks_near_data() {
        let kde = Kde::with_bandwidth(vec![5.0; 10], 0.5);
        assert!(kde.density(5.0) > kde.density(6.0));
        assert!(kde.density(5.0) > kde.density(4.0));
    }

    #[test]
    fn bimodal_sample_has_two_modes() {
        let mut pts = Vec::new();
        for i in 0..50 {
            pts.push(0.0 + (i % 5) as f64 * 0.01);
            pts.push(10.0 + (i % 5) as f64 * 0.01);
        }
        let kde = Kde::with_bandwidth(pts, 0.5);
        let modes = kde.local_maxima_on_grid(512, 0.1);
        assert_eq!(modes.len(), 2, "expected 2 modes, got {modes:?}");
        let mut sorted = modes.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!((sorted[0] - 0.02).abs() < 0.5);
        assert!((sorted[1] - 10.02).abs() < 0.5);
    }

    #[test]
    fn unimodal_sample_has_one_mode() {
        let pts: Vec<f64> = (0..100).map(|i| (i as f64 - 50.0) / 25.0).collect();
        let kde = Kde::silverman(pts);
        let modes = kde.local_maxima_on_grid(512, 0.1);
        assert_eq!(modes.len(), 1, "got {modes:?}");
        assert!(modes[0].abs() < 0.5);
    }

    #[test]
    fn min_density_ratio_filters_small_bumps() {
        let mut pts = vec![0.0; 100];
        pts.extend(std::iter::repeat_n(8.0, 3)); // tiny side bump
        let kde = Kde::with_bandwidth(pts, 0.4);
        let strict = kde.local_maxima_on_grid(512, 0.5);
        assert_eq!(strict.len(), 1);
        let lax = kde.local_maxima_on_grid(512, 0.0);
        assert_eq!(lax.len(), 2);
    }

    #[test]
    fn modes_sorted_by_prominence() {
        let mut pts = vec![0.0; 60];
        pts.extend(std::iter::repeat_n(5.0, 20));
        let kde = Kde::with_bandwidth(pts, 0.4);
        let modes = kde.local_maxima_on_grid(512, 0.0);
        assert_eq!(modes.len(), 2);
        assert!(modes[0].abs() < 0.5, "biggest mode first: {modes:?}");
    }

    #[test]
    fn degenerate_inputs() {
        let empty = Kde::with_bandwidth(Vec::new(), 1.0);
        assert_eq!(empty.density(0.0), 0.0);
        assert!(empty.local_maxima_on_grid(128, 0.1).is_empty());
        let (g, d) = empty.evaluate_grid(0.0, 1.0, 0);
        assert!(g.is_empty() && d.is_empty());
        let kde = Kde::silverman(vec![1.0]);
        assert!(kde.bandwidth() > 0.0);
        assert!(kde.density(1.0) > 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_bandwidth_panics() {
        Kde::with_bandwidth(vec![1.0], 0.0);
    }

    #[test]
    fn silverman_scales_with_spread() {
        let tight: Vec<f64> = (0..100).map(|i| (i % 10) as f64 * 0.01).collect();
        let wide: Vec<f64> = (0..100).map(|i| (i % 10) as f64).collect();
        assert!(silverman_bandwidth(&wide) > silverman_bandwidth(&tight));
        assert_eq!(silverman_bandwidth(&[1.0]), 1.0);
    }
}
