//! Iterative radix-2 FFT and FFT-backed cross-correlation.
//!
//! Used by k-Shape: the normalised cross-correlation of two length-m series
//! is a size-(2m−1) correlation, computed here by zero-padding to the next
//! power of two and multiplying spectra — O(m log m) instead of O(m²).

/// Minimal complex number (we only need +, −, ×, conj).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Creates a complex number.
    #[inline]
    pub fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Zero.
    #[inline]
    pub fn zero() -> Self {
        Complex { re: 0.0, im: 0.0 }
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex {
            re: self.re,
            im: -self.im,
        }
    }

    /// Product.
    // Named methods (not the std ops traits) are kept deliberately: the
    // hot FFT loops read better without operator sugar, and implementing
    // `Mul` alone would trip the same lint on `Add`/`Sub`.
    #[allow(clippy::should_implement_trait)]
    #[inline]
    pub fn mul(self, other: Complex) -> Self {
        Complex {
            re: self.re * other.re - self.im * other.im,
            im: self.re * other.im + self.im * other.re,
        }
    }

    /// Sum.
    #[allow(clippy::should_implement_trait)]
    #[inline]
    pub fn add(self, other: Complex) -> Self {
        Complex {
            re: self.re + other.re,
            im: self.im + other.im,
        }
    }

    /// Difference.
    #[allow(clippy::should_implement_trait)]
    #[inline]
    pub fn sub(self, other: Complex) -> Self {
        Complex {
            re: self.re - other.re,
            im: self.im - other.im,
        }
    }
}

/// Next power of two ≥ `n` (and ≥ 1).
pub fn next_pow2(n: usize) -> usize {
    n.max(1).next_power_of_two()
}

/// In-place iterative radix-2 FFT. Panics if `buf.len()` is not a power of
/// two. `inverse = true` computes the unscaled inverse transform (callers
/// divide by `n`).
pub fn fft_inplace(buf: &mut [Complex], inverse: bool) {
    let n = buf.len();
    assert!(
        n.is_power_of_two(),
        "FFT length must be a power of two, got {n}"
    );
    if n <= 1 {
        return;
    }
    // Bit-reversal permutation.
    let mut j = 0usize;
    for i in 1..n {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
        if i < j {
            buf.swap(i, j);
        }
    }
    // Butterfly stages.
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let wlen = Complex::new(ang.cos(), ang.sin());
        let mut i = 0;
        while i < n {
            let mut w = Complex::new(1.0, 0.0);
            for k in 0..len / 2 {
                let u = buf[i + k];
                let v = buf[i + k + len / 2].mul(w);
                buf[i + k] = u.add(v);
                buf[i + k + len / 2] = u.sub(v);
                w = w.mul(wlen);
            }
            i += len;
        }
        len <<= 1;
    }
}

/// Forward FFT of a real signal zero-padded to `size` (a power of two).
pub fn rfft(signal: &[f64], size: usize) -> Vec<Complex> {
    assert!(size.is_power_of_two() && size >= signal.len());
    let mut buf = vec![Complex::zero(); size];
    for (i, &x) in signal.iter().enumerate() {
        buf[i] = Complex::new(x, 0.0);
    }
    fft_inplace(&mut buf, false);
    buf
}

/// Full (linear) cross-correlation of `a` and `b` via FFT.
///
/// Output has length `2m − 1` where `m = a.len() = b.len()`; index `s`
/// corresponds to shift `s − (m−1)`, matching
/// `tscore::distance::ncc`'s layout (but *unnormalised*: raw dot products).
pub fn cross_correlation_fft(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "cross-correlation requires equal lengths");
    let m = a.len();
    if m == 0 {
        return Vec::new();
    }
    let size = next_pow2(2 * m - 1);
    let fa = rfft(a, size);
    let fb = rfft(b, size);
    // corr(a, b)[k] = Σ_i a[i]·b[i−k]  ⇔  IFFT(FFT(a) · conj(FFT(b)))
    let mut prod: Vec<Complex> = fa.iter().zip(&fb).map(|(x, y)| x.mul(y.conj())).collect();
    fft_inplace(&mut prod, true);
    let scale = 1.0 / size as f64;
    // Shifts −(m−1)..−1 live at the tail of the circular buffer.
    let mut out = Vec::with_capacity(2 * m - 1);
    for s in 0..(2 * m - 1) {
        let k = s as isize - (m as isize - 1);
        let idx = if k >= 0 {
            k as usize
        } else {
            size - (-k) as usize
        };
        out.push(prod[idx].re * scale);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn direct_cross_correlation(a: &[f64], b: &[f64]) -> Vec<f64> {
        let m = a.len();
        let mut out = vec![0.0; 2 * m - 1];
        for (s, slot) in out.iter_mut().enumerate() {
            let k = s as isize - (m as isize - 1);
            let mut acc = 0.0;
            for i in 0..m as isize {
                let j = i - k;
                if j >= 0 && j < m as isize {
                    acc += a[i as usize] * b[j as usize];
                }
            }
            *slot = acc;
        }
        out
    }

    #[test]
    fn fft_roundtrip() {
        let signal = [1.0, 2.0, 3.0, 4.0, 0.0, -1.0, -2.0, 0.5];
        let mut buf: Vec<Complex> = signal.iter().map(|&x| Complex::new(x, 0.0)).collect();
        fft_inplace(&mut buf, false);
        fft_inplace(&mut buf, true);
        for (i, c) in buf.iter().enumerate() {
            assert!((c.re / 8.0 - signal[i]).abs() < 1e-12);
            assert!(c.im.abs() < 1e-12);
        }
    }

    #[test]
    fn fft_of_impulse_is_flat() {
        let mut buf = vec![Complex::zero(); 8];
        buf[0] = Complex::new(1.0, 0.0);
        fft_inplace(&mut buf, false);
        for c in &buf {
            assert!((c.re - 1.0).abs() < 1e-12);
            assert!(c.im.abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn fft_rejects_non_pow2() {
        let mut buf = vec![Complex::zero(); 6];
        fft_inplace(&mut buf, false);
    }

    #[test]
    fn next_pow2_values() {
        assert_eq!(next_pow2(0), 1);
        assert_eq!(next_pow2(1), 1);
        assert_eq!(next_pow2(5), 8);
        assert_eq!(next_pow2(8), 8);
        assert_eq!(next_pow2(9), 16);
    }

    #[test]
    fn cross_correlation_matches_direct() {
        let a = [1.0, 2.0, -1.0, 0.5, 3.0];
        let b = [0.5, -1.0, 2.0, 1.0, -0.5];
        let fast = cross_correlation_fft(&a, &b);
        let slow = direct_cross_correlation(&a, &b);
        assert_eq!(fast.len(), slow.len());
        for (f, s) in fast.iter().zip(&slow) {
            assert!((f - s).abs() < 1e-9, "{f} vs {s}");
        }
    }

    #[test]
    fn cross_correlation_peak_location() {
        // b is a copy of a shifted right by 3 → peak at shift −3... verify
        // against the direct computation's argmax rather than re-deriving.
        let mut a = vec![0.0; 16];
        a[4] = 1.0;
        let mut b = vec![0.0; 16];
        b[7] = 1.0;
        let fast = cross_correlation_fft(&a, &b);
        let slow = direct_cross_correlation(&a, &b);
        let am_fast = fast
            .iter()
            .enumerate()
            .max_by(|x, y| x.1.partial_cmp(y.1).unwrap())
            .unwrap()
            .0;
        let am_slow = slow
            .iter()
            .enumerate()
            .max_by(|x, y| x.1.partial_cmp(y.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(am_fast, am_slow);
        let shift = am_fast as isize - 15;
        assert_eq!(shift, -3);
    }

    #[test]
    fn cross_correlation_empty_and_len1() {
        assert!(cross_correlation_fft(&[], &[]).is_empty());
        let out = cross_correlation_fft(&[2.0], &[3.0]);
        assert_eq!(out.len(), 1);
        assert!((out[0] - 6.0).abs() < 1e-12);
    }

    #[test]
    fn complex_ops() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(3.0, -1.0);
        let p = a.mul(b);
        assert!((p.re - 5.0).abs() < 1e-12);
        assert!((p.im - 5.0).abs() < 1e-12);
        assert_eq!(a.conj().im, -2.0);
        assert_eq!(a.add(b).re, 4.0);
        assert_eq!(a.sub(b).im, 3.0);
    }
}
