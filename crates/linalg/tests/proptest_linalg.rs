//! Property-based tests for the linalg substrate.

use linalg::fft::{cross_correlation_fft, fft_inplace, next_pow2, Complex};
use linalg::matrix::Matrix;
use linalg::pca::Pca;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn matmul_associative_on_small_matrices(
        a in proptest::collection::vec(-3.0..3.0f64, 4..=4),
        b in proptest::collection::vec(-3.0..3.0f64, 4..=4),
        c in proptest::collection::vec(-3.0..3.0f64, 4..=4),
    ) {
        let ma = Matrix::from_vec(2, 2, a);
        let mb = Matrix::from_vec(2, 2, b);
        let mc = Matrix::from_vec(2, 2, c);
        let left = ma.matmul(&mb).matmul(&mc);
        let right = ma.matmul(&mb.matmul(&mc));
        prop_assert!(left.sub(&right).frobenius() < 1e-9);
    }

    #[test]
    fn transpose_involution(vals in proptest::collection::vec(-5.0..5.0f64, 12..=12)) {
        let m = Matrix::from_vec(3, 4, vals);
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn covariance_psd_diagonal(
        rows in proptest::collection::vec(
            proptest::collection::vec(-10.0..10.0f64, 3..=3),
            2..20,
        ),
    ) {
        let m = Matrix::from_rows(&rows);
        let cov = m.covariance();
        prop_assert!(cov.is_symmetric(1e-9));
        for i in 0..3 {
            prop_assert!(cov[(i, i)] >= -1e-9, "negative variance {}", cov[(i, i)]);
        }
    }

    #[test]
    fn eigenvalues_sum_to_trace(vals in proptest::collection::vec(-4.0..4.0f64, 6..=6)) {
        // Build 3x3 symmetric from 6 free entries.
        let mut m = Matrix::zeros(3, 3);
        let mut it = vals.into_iter();
        for i in 0..3 {
            for j in i..3 {
                let v = it.next().unwrap();
                m[(i, j)] = v;
                m[(j, i)] = v;
            }
        }
        let trace: f64 = (0..3).map(|i| m[(i, i)]).sum();
        let e = linalg::symmetric_eigen(&m);
        let sum: f64 = e.values.iter().sum();
        prop_assert!((trace - sum).abs() < 1e-8, "trace {trace} vs eigsum {sum}");
        // Sorted descending.
        prop_assert!(e.values.windows(2).all(|w| w[0] >= w[1] - 1e-12));
    }

    #[test]
    fn fft_parseval(signal in proptest::collection::vec(-5.0..5.0f64, 1..32)) {
        let size = next_pow2(signal.len());
        let mut buf: Vec<Complex> = signal
            .iter()
            .map(|&x| Complex::new(x, 0.0))
            .chain(std::iter::repeat(Complex::zero()))
            .take(size)
            .collect();
        let time_energy: f64 = signal.iter().map(|x| x * x).sum();
        fft_inplace(&mut buf, false);
        let freq_energy: f64 =
            buf.iter().map(|c| c.re * c.re + c.im * c.im).sum::<f64>() / size as f64;
        prop_assert!((time_energy - freq_energy).abs() < 1e-6 * (1.0 + time_energy));
    }

    #[test]
    fn cross_correlation_zero_shift_is_dot_product(
        a in proptest::collection::vec(-5.0..5.0f64, 2..24),
    ) {
        let b: Vec<f64> = a.iter().map(|x| x * 0.5 + 1.0).collect();
        let cc = cross_correlation_fft(&a, &b);
        let dot: f64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        let centre = a.len() - 1;
        prop_assert!((cc[centre] - dot).abs() < 1e-6, "{} vs {}", cc[centre], dot);
    }

    #[test]
    fn pca_projection_dims_and_finiteness(
        rows in proptest::collection::vec(
            proptest::collection::vec(-10.0..10.0f64, 5..=5),
            3..20,
        ),
    ) {
        let m = Matrix::from_rows(&rows);
        let (pca, proj) = Pca::fit_transform(&m, 2);
        prop_assert_eq!(proj.shape(), (rows.len(), 2));
        prop_assert!(proj.as_slice().iter().all(|v| v.is_finite()));
        // Explained variance is non-negative and ratios ≤ 1.
        for r in pca.explained_variance_ratio() {
            prop_assert!((-1e-9..=1.0 + 1e-9).contains(&r));
        }
    }

    #[test]
    fn kde_density_symmetric_around_lonely_point(x0 in -10.0..10.0f64, h in 0.1..3.0f64) {
        let kde = linalg::kde::Kde::with_bandwidth(vec![x0], h);
        let left = kde.density(x0 - 1.3);
        let right = kde.density(x0 + 1.3);
        prop_assert!((left - right).abs() < 1e-12);
        prop_assert!(kde.density(x0) >= left);
    }
}
