//! Fault-injection tests for the durability layer: every fault a real
//! disk produces — torn writes, lying short writes, failing fsyncs,
//! `ENOSPC`, bit rot — must end in a *served* state: a retryable `503`, a
//! degraded read-only model, or a clean recovery of the surviving prefix.
//! Never a panic, never a silent divergence between the log and the
//! session.
//!
//! The tests drive the real route handlers through [`routes::handle`]
//! with a [`Durability`] built over [`FailFs`], so the code path is
//! byte-for-byte the production one; only the filesystem lies.

use graphserve::durability::{Durability, DurabilityConfig, IngestLog};
use graphserve::fsio::{FailFs, FaultPlan, Fs, StdFs, WalFile};
use graphserve::http::{Request, Response};
use graphserve::recovery::recover;
use graphserve::routes::{self, RouteContext};
use graphserve::wal;
use graphserve::{ModelStore, ServerStats};
use kgraph::pipeline::KGraphModel;
use kgraph::{KGraph, KGraphConfig};
use proptest::prelude::*;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use streamfit::{SessionRegistry, StreamConfig};
use tscore::{Dataset, DatasetKind, TimeSeries};

// ---------------------------------------------------------------------------
// Harness
// ---------------------------------------------------------------------------

/// A scratch directory removed on drop.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let path =
            std::env::temp_dir().join(format!("graphserve-faults-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&path);
        std::fs::create_dir_all(&path).expect("create temp dir");
        TempDir(path)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn demo_model() -> Arc<KGraphModel> {
    let series: Vec<TimeSeries> = (0..8)
        .map(|p| TimeSeries::new((0..80).map(|i| ((i + p) as f64 * 0.3).sin()).collect()))
        .collect();
    let ds = Dataset::new("demo", DatasetKind::Simulated, series);
    let cfg = KGraphConfig {
        n_lengths: 1,
        psi: 10,
        pca_sample: 300,
        n_init: 2,
        ..KGraphConfig::new(2)
    }
    .with_lengths(vec![16]);
    Arc::new(KGraph::new(cfg).fit(&ds))
}

fn stream_config() -> StreamConfig {
    // Refresh on every ingest so snapshot cadences are easy to trigger.
    StreamConfig {
        refresh_every: 0,
        compact_every: 2,
        context: 3,
    }
}

fn durability_config(dir: &Path, snapshot_every: u64) -> DurabilityConfig {
    DurabilityConfig {
        state_dir: dir.to_path_buf(),
        wal_sync_every: 1,
        snapshot_every,
        retry_backoff: std::time::Duration::from_millis(1),
        ..DurabilityConfig::default()
    }
}

/// The server's request-handling state, minus the sockets: the tests call
/// the same `routes::handle` the worker threads do.
struct Harness {
    store: ModelStore,
    sessions: SessionRegistry,
    stats: ServerStats,
    durability: Durability,
}

impl Harness {
    /// Builds a store with one model `demo` registered with `durability`.
    fn new(durability: Durability) -> Harness {
        let store = ModelStore::new(0);
        let model = demo_model();
        store.insert("demo", Arc::clone(&model));
        let sessions = SessionRegistry::new(stream_config());
        durability.persist_initial("demo", &model, sessions.config());
        Harness {
            store,
            sessions,
            stats: ServerStats::default(),
            durability,
        }
    }

    /// Like [`Harness::new`] but without registering the model — the
    /// recovery tests populate the store themselves.
    fn empty(durability: Durability) -> Harness {
        Harness {
            store: ModelStore::new(0),
            sessions: SessionRegistry::new(stream_config()),
            stats: ServerStats::default(),
            durability,
        }
    }

    fn handle(&self, method: &str, target: &str, body: &str) -> Response {
        let raw = format!(
            "{method} {target} HTTP/1.1\r\ncontent-length: {}\r\n\r\n{body}",
            body.len()
        );
        let req = Request::read_from(&mut std::io::Cursor::new(raw.into_bytes()), 1 << 20)
            .expect("well-formed test request");
        let mut reader = self.store.reader();
        routes::handle(
            &req,
            &mut reader,
            &RouteContext {
                store: &self.store,
                sessions: &self.sessions,
                stats: &self.stats,
                durability: &self.durability,
            },
        )
    }
}

fn body_text(resp: &Response) -> &str {
    std::str::from_utf8(&resp.body).unwrap()
}

fn has_retry_after(resp: &Response) -> bool {
    resp.headers
        .iter()
        .any(|(name, _)| name.eq_ignore_ascii_case("retry-after"))
}

/// One 8-point ingest record, deterministic in `i`.
fn ingest_body(i: usize) -> String {
    let points: Vec<String> = (0..8)
        .map(|j| (((i * 8 + j) as f64) * 0.3).sin().to_string())
        .collect();
    format!("{{\"series\":0,\"points\":[{}]}}", points.join(","))
}

fn probe_series() -> String {
    let values: Vec<String> = (0..80)
        .map(|i| ((i as f64) * 0.3).sin().to_string())
        .collect();
    format!("[{}]", values.join(","))
}

/// Rotation-targeted faults [`FaultPlan`] cannot express: fail the nth
/// `write` to a specific file name, every `open_wal` from the nth call
/// on, or the first `sync_dir` after the nth rename onto `wal.log`.
#[derive(Default)]
struct FlakyPlan {
    /// Fail every `write` to a path with this file name, from the nth
    /// (0-based) such write on.
    fail_writes_named_from: Option<(&'static str, u64)>,
    /// Fail every `open_wal` from the nth (0-based) call on.
    fail_open_wal_from: Option<u64>,
    /// After the nth (0-based) rename onto `wal.log`, fail the next
    /// `sync_dir` call (one-shot).
    fail_sync_dir_after_wal_rename: Option<u64>,
}

struct FlakyFs {
    inner: Arc<dyn Fs>,
    plan: FlakyPlan,
    named_writes: AtomicU64,
    wal_opens: AtomicU64,
    wal_renames: AtomicU64,
    sync_dir_armed: AtomicBool,
}

impl FlakyFs {
    fn new(plan: FlakyPlan) -> Arc<FlakyFs> {
        Arc::new(FlakyFs {
            inner: Arc::new(StdFs),
            plan,
            named_writes: AtomicU64::new(0),
            wal_opens: AtomicU64::new(0),
            wal_renames: AtomicU64::new(0),
            sync_dir_armed: AtomicBool::new(false),
        })
    }
}

impl Fs for FlakyFs {
    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        self.inner.create_dir_all(path)
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        self.inner.read(path)
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        if let Some((name, from)) = self.plan.fail_writes_named_from {
            if path.file_name().and_then(|n| n.to_str()) == Some(name)
                && self.named_writes.fetch_add(1, Ordering::Relaxed) >= from
            {
                return Err(io::Error::other("injected write failure"));
            }
        }
        self.inner.write(path, bytes)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        let result = self.inner.rename(from, to);
        if result.is_ok() && to.file_name().and_then(|n| n.to_str()) == Some("wal.log") {
            if let Some(nth) = self.plan.fail_sync_dir_after_wal_rename {
                if self.wal_renames.fetch_add(1, Ordering::Relaxed) == nth {
                    self.sync_dir_armed.store(true, Ordering::Relaxed);
                }
            }
        }
        result
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        self.inner.remove_file(path)
    }

    fn remove_dir_all(&self, path: &Path) -> io::Result<()> {
        self.inner.remove_dir_all(path)
    }

    fn read_dir(&self, path: &Path) -> io::Result<Vec<PathBuf>> {
        self.inner.read_dir(path)
    }

    fn sync_dir(&self, path: &Path) -> io::Result<()> {
        if self.sync_dir_armed.swap(false, Ordering::Relaxed) {
            return Err(io::Error::other("injected dir fsync failure"));
        }
        self.inner.sync_dir(path)
    }

    fn exists(&self, path: &Path) -> bool {
        self.inner.exists(path)
    }

    fn open_wal(&self, path: &Path) -> io::Result<Box<dyn WalFile>> {
        if let Some(from) = self.plan.fail_open_wal_from {
            if self.wal_opens.fetch_add(1, Ordering::Relaxed) >= from {
                return Err(io::Error::other("injected open failure"));
            }
        }
        self.inner.open_wal(path)
    }
}

/// The model's `points_total` as the stream-status route reports it.
fn points_total(h: &Harness) -> u64 {
    let resp = h.handle("GET", "/models/demo/stream-status", "");
    body_text(&resp)
        .split("\"points_total\":")
        .nth(1)
        .and_then(|s| s.split([',', '}']).next())
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

/// Runs registration once over a fault-free [`FailFs`] and reports how
/// many bytes and fsyncs it costs, so fault thresholds can be aimed at
/// the first WAL append that follows.
fn setup_cost() -> (u64, u64) {
    let dir = TempDir::new("measure");
    let fs = FailFs::new(Arc::new(StdFs), FaultPlan::default());
    let durability =
        Durability::with_fs(durability_config(dir.path(), 1_000), Arc::new(fs.clone()));
    let _ = Harness::new(durability);
    (fs.bytes_written(), fs.syncs())
}

// ---------------------------------------------------------------------------
// Write faults: refused retryably, reads keep serving
// ---------------------------------------------------------------------------

/// Injects `plan` aimed at the first WAL append and asserts the ingest is
/// refused with `503` + `Retry-After` while reads and health stay intact.
fn assert_wal_write_fault_is_retryable(tag: &str, plan: FaultPlan) {
    let dir = TempDir::new(tag);
    let durability = Durability::with_fs(
        durability_config(dir.path(), 1_000),
        Arc::new(FailFs::new(Arc::new(StdFs), plan)),
    );
    let h = Harness::new(durability);

    let resp = h.handle("POST", "/models/demo/ingest", &ingest_body(0));
    assert_eq!(resp.status, 503, "{}", body_text(&resp));
    assert!(
        body_text(&resp).contains("ingest journal unavailable"),
        "{}",
        body_text(&resp)
    );
    assert!(
        has_retry_after(&resp),
        "retryable refusal carries Retry-After"
    );

    // The rollback succeeded: not degraded, nothing acknowledged, and the
    // session was never touched (journal first, apply second).
    let resp = h.handle("GET", "/healthz", "");
    assert_eq!(resp.status, 200);
    assert!(
        body_text(&resp).contains("\"status\":\"ok\""),
        "{}",
        body_text(&resp)
    );
    let resp = h.handle("GET", "/models/demo/stream-status", "");
    assert!(
        body_text(&resp).contains("\"points_total\":0")
            || body_text(&resp).contains("\"active\":false"),
        "no partial append: {}",
        body_text(&resp)
    );
    assert_eq!(
        h.durability
            .counters()
            .wal_records_written
            .load(Ordering::Relaxed),
        0,
        "a failed append is never acknowledged"
    );

    // Reads are untouched.
    let resp = h.handle("POST", "/models/demo/score?context=3", &probe_series());
    assert_eq!(resp.status, 200, "{}", body_text(&resp));
}

#[test]
fn torn_wal_write_refuses_ingest_retryably() {
    let (bytes, _) = setup_cost();
    assert_wal_write_fault_is_retryable(
        "torn",
        FaultPlan {
            torn_write_after: Some(bytes),
            ..FaultPlan::default()
        },
    );
}

#[test]
fn enospc_refuses_ingest_retryably() {
    let (bytes, _) = setup_cost();
    assert_wal_write_fault_is_retryable(
        "enospc",
        FaultPlan {
            enospc_after: Some(bytes),
            ..FaultPlan::default()
        },
    );
}

#[test]
fn fsync_failure_refuses_ingest_retryably() {
    let (_, syncs) = setup_cost();
    assert_wal_write_fault_is_retryable(
        "fsync",
        FaultPlan {
            fail_syncs_after: Some(syncs),
            ..FaultPlan::default()
        },
    );
}

#[test]
fn failed_rollback_degrades_the_model_read_only() {
    let (bytes, _) = setup_cost();
    let dir = TempDir::new("poisoned");
    let durability = Durability::with_fs(
        durability_config(dir.path(), 1_000),
        Arc::new(FailFs::new(
            Arc::new(StdFs),
            FaultPlan {
                torn_write_after: Some(bytes),
                fail_set_len: true,
                ..FaultPlan::default()
            },
        )),
    );
    let h = Harness::new(durability);

    // The append fails AND the rollback fails: the on-disk tail is
    // unknown, so the model must stop taking writes.
    let resp = h.handle("POST", "/models/demo/ingest", &ingest_body(0));
    assert_eq!(resp.status, 503, "{}", body_text(&resp));
    assert!(
        body_text(&resp).contains("degraded"),
        "{}",
        body_text(&resp)
    );
    assert!(
        !has_retry_after(&resp),
        "degradation is not retryable without operator action"
    );

    // Sticky: the next ingest is refused up front.
    let resp = h.handle("POST", "/models/demo/ingest", &ingest_body(1));
    assert_eq!(resp.status, 503);
    assert!(
        body_text(&resp).contains("degraded read-only"),
        "{}",
        body_text(&resp)
    );

    // Surfaced via /healthz and /metrics; reads still serve.
    let resp = h.handle("GET", "/healthz", "");
    assert_eq!(resp.status, 200, "degraded still serves reads");
    assert!(
        body_text(&resp).contains("\"status\":\"degraded\""),
        "{}",
        body_text(&resp)
    );
    assert!(
        body_text(&resp).contains("\"model\":\"demo\""),
        "{}",
        body_text(&resp)
    );
    let resp = h.handle("GET", "/metrics", "");
    assert!(
        body_text(&resp).contains("graphserve_models_degraded 1"),
        "{}",
        body_text(&resp)
    );
    let resp = h.handle("POST", "/models/demo/score?context=3", &probe_series());
    assert_eq!(resp.status, 200, "{}", body_text(&resp));
}

// ---------------------------------------------------------------------------
// Silent faults and corruption: caught at recovery, never a panic
// ---------------------------------------------------------------------------

#[test]
fn lying_short_write_is_surfaced_at_recovery() {
    let (bytes, _) = setup_cost();
    let dir = TempDir::new("short");
    // A disk that silently drops everything 20 bytes into the first WAL
    // record but reports success: the server acknowledges ingests it
    // cannot actually keep — indistinguishable from a crash before sync.
    let durability = Durability::with_fs(
        durability_config(dir.path(), 1_000),
        Arc::new(FailFs::new(
            Arc::new(StdFs),
            FaultPlan {
                short_write_after: Some(bytes + 20),
                ..FaultPlan::default()
            },
        )),
    );
    let h = Harness::new(durability);
    let mut acked = 0;
    for i in 0..3 {
        if h.handle("POST", "/models/demo/ingest", &ingest_body(i))
            .status
            == 200
        {
            acked += 1;
        }
    }
    assert!(acked > 0, "the lying disk acknowledges ingests");
    drop(h);

    // Restart against the same directory with an honest filesystem:
    // recovery must stop cleanly at the last whole record (here: none)
    // and surface the truncation, not panic or fabricate points.
    let durability = Durability::new(durability_config(dir.path(), 1_000));
    let h = Harness::empty(durability);
    let report = recover(&h.durability, &h.store, &h.sessions);
    assert_eq!(report.recovered, vec!["demo".to_string()], "{report:?}");
    assert_eq!(report.replayed_records, 0, "the torn tail is discarded");
    assert!(
        h.durability
            .counters()
            .wal_records_truncated
            .load(Ordering::Relaxed)
            > 0,
        "the loss is counted, not silent"
    );
    let resp = h.handle("GET", "/healthz", "");
    assert!(
        body_text(&resp).contains("\"status\":\"ok\""),
        "{}",
        body_text(&resp)
    );
    let resp = h.handle("POST", "/models/demo/score?context=3", &probe_series());
    assert_eq!(resp.status, 200, "{}", body_text(&resp));
}

#[test]
fn wal_bit_flip_on_disk_replays_the_clean_prefix() {
    let dir = TempDir::new("walflip");
    let durability = Durability::new(durability_config(dir.path(), 1_000));
    let h = Harness::new(durability);
    for i in 0..4 {
        let resp = h.handle("POST", "/models/demo/ingest", &ingest_body(i));
        assert_eq!(resp.status, 200, "{}", body_text(&resp));
    }
    drop(h);

    // Flip one bit in the last record's payload.
    let wal_path = dir.path().join("demo").join("wal.log");
    let mut bytes = std::fs::read(&wal_path).expect("wal exists");
    let n = bytes.len();
    bytes[n - 10] ^= 0x04;
    std::fs::write(&wal_path, &bytes).expect("rewrite wal");

    let durability = Durability::new(durability_config(dir.path(), 1_000));
    let h = Harness::empty(durability);
    let report = recover(&h.durability, &h.store, &h.sessions);
    assert_eq!(report.recovered, vec!["demo".to_string()], "{report:?}");
    assert_eq!(
        report.replayed_records, 3,
        "records before the flip survive"
    );
    let resp = h.handle("GET", "/models/demo/stream-status", "");
    assert!(
        body_text(&resp).contains("\"points_total\":24"),
        "exactly the clean prefix, no partial record: {}",
        body_text(&resp)
    );
    // Writable again: the healing snapshot retired the torn tail.
    let resp = h.handle("POST", "/models/demo/ingest", &ingest_body(4));
    assert_eq!(resp.status, 200, "{}", body_text(&resp));
}

#[test]
fn corrupt_newest_snapshot_with_newer_wal_degrades_read_only() {
    let dir = TempDir::new("snapgap");
    // Snapshot on every refresh: each acknowledged ingest advances the
    // snapshot generation and restarts the WAL past it.
    let durability = Durability::new(durability_config(dir.path(), 0));
    let h = Harness::new(durability);
    for i in 0..2 {
        let resp = h.handle("POST", "/models/demo/ingest", &ingest_body(i));
        assert_eq!(resp.status, 200, "{}", body_text(&resp));
    }
    drop(h);

    // Rot both files of the newest snapshot generation. The WAL's
    // base_seq now points past every readable snapshot: acknowledged
    // records are unreachable, so the model must refuse writes instead of
    // silently diverging.
    let model_dir = dir.path().join("demo");
    let mut snaps: Vec<PathBuf> = std::fs::read_dir(&model_dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("snap-"))
        })
        .collect();
    snaps.sort();
    let newest: Vec<PathBuf> = snaps.split_off(snaps.len() - 2);
    for path in &newest {
        let mut bytes = std::fs::read(path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(path, &bytes).unwrap();
    }

    let durability = Durability::new(durability_config(dir.path(), 0));
    let h = Harness::empty(durability);
    let report = recover(&h.durability, &h.store, &h.sessions);
    assert_eq!(report.degraded.len(), 1, "{report:?}");
    assert!(report.recovered.is_empty(), "{report:?}");

    // Served read-only: reads 200, writes 503, health says degraded.
    let resp = h.handle("POST", "/models/demo/score?context=3", &probe_series());
    assert_eq!(resp.status, 200, "{}", body_text(&resp));
    let resp = h.handle("POST", "/models/demo/ingest", &ingest_body(9));
    assert_eq!(resp.status, 503, "{}", body_text(&resp));
    assert!(
        body_text(&resp).contains("degraded read-only"),
        "{}",
        body_text(&resp)
    );
    let resp = h.handle("GET", "/healthz", "");
    assert_eq!(resp.status, 200);
    assert!(
        body_text(&resp).contains("\"status\":\"degraded\""),
        "{}",
        body_text(&resp)
    );
}

#[test]
fn bit_rot_on_every_read_never_panics_recovery() {
    let dir = TempDir::new("rot");
    let durability = Durability::new(durability_config(dir.path(), 1_000));
    let h = Harness::new(durability);
    for i in 0..2 {
        assert_eq!(
            h.handle("POST", "/models/demo/ingest", &ingest_body(i))
                .status,
            200
        );
    }
    drop(h);

    // Every read comes back with byte 40 flipped — model, session state
    // and WAL alike. Nothing is recoverable, but recovery must say so
    // explicitly instead of panicking or serving rotten data.
    let durability = Durability::with_fs(
        durability_config(dir.path(), 1_000),
        Arc::new(FailFs::new(
            Arc::new(StdFs),
            FaultPlan {
                flip_on_read: Some((40, 0x20)),
                ..FaultPlan::default()
            },
        )),
    );
    let h = Harness::empty(durability);
    let report = recover(&h.durability, &h.store, &h.sessions);
    assert!(report.recovered.is_empty(), "{report:?}");
    assert_eq!(
        report.degraded.len() + report.failed.len(),
        1,
        "the rot is surfaced, not swallowed: {report:?}"
    );
}

// ---------------------------------------------------------------------------
// WAL rotation faults: an acknowledged ingest is never silently lost
// ---------------------------------------------------------------------------

#[test]
fn rotation_failure_before_rename_falls_back_to_the_old_journal() {
    let dir = TempDir::new("rotfallback");
    // Every journal rotation after the initial registration fails while
    // writing the replacement header — before anything replaces the live
    // wal.log. The model must keep accepting writes, covered by the old
    // journal, and a crash must lose nothing that was acknowledged.
    let fs = FlakyFs::new(FlakyPlan {
        fail_writes_named_from: Some(("wal.tmp", 1)),
        ..FlakyPlan::default()
    });
    let durability = Durability::with_fs(durability_config(dir.path(), 0), fs);
    let h = Harness::new(durability);
    for i in 0..3 {
        let resp = h.handle("POST", "/models/demo/ingest", &ingest_body(i));
        assert_eq!(resp.status, 200, "{}", body_text(&resp));
    }
    let resp = h.handle("GET", "/healthz", "");
    assert!(
        body_text(&resp).contains("\"status\":\"ok\""),
        "rotation failure with an intact journal is not a degradation: {}",
        body_text(&resp)
    );
    assert!(
        h.durability
            .counters()
            .snapshot_failures
            .load(Ordering::Relaxed)
            >= 3,
        "each failed rotation is counted"
    );
    drop(h);

    // Crash + honest restart: snapshots landed before every failed
    // rotation and the old journal covers the rest — all 3 acknowledged
    // ingests survive.
    let durability = Durability::new(durability_config(dir.path(), 0));
    let h = Harness::empty(durability);
    let report = recover(&h.durability, &h.store, &h.sessions);
    assert_eq!(report.recovered, vec!["demo".to_string()], "{report:?}");
    assert_eq!(points_total(&h), 24, "every acknowledged ingest survives");
}

/// Drives ingests against a harness whose first journal rotation breaks
/// *after* a usable fallback is gone, then asserts the fail-safe: the
/// first ingest (acknowledged before the rotation) survives a crash, and
/// every later write is refused as degraded rather than acknowledged
/// into a journal no recovery will read.
fn assert_unusable_rotation_degrades(tag: &str, plan: FlakyPlan) {
    let dir = TempDir::new(tag);
    let durability = Durability::with_fs(durability_config(dir.path(), 0), FlakyFs::new(plan));
    let h = Harness::new(durability);
    let resp = h.handle("POST", "/models/demo/ingest", &ingest_body(0));
    assert_eq!(resp.status, 200, "{}", body_text(&resp));
    let resp = h.handle("POST", "/models/demo/ingest", &ingest_body(1));
    assert_eq!(resp.status, 503, "{}", body_text(&resp));
    assert!(
        body_text(&resp).contains("degraded"),
        "{}",
        body_text(&resp)
    );
    let resp = h.handle("GET", "/healthz", "");
    assert!(
        body_text(&resp).contains("\"status\":\"degraded\""),
        "{}",
        body_text(&resp)
    );
    drop(h);

    let durability = Durability::new(durability_config(dir.path(), 0));
    let h = Harness::empty(durability);
    let report = recover(&h.durability, &h.store, &h.sessions);
    assert_eq!(report.recovered, vec!["demo".to_string()], "{report:?}");
    assert_eq!(
        points_total(&h),
        8,
        "the acknowledged ingest survives, the refused ones never existed"
    );
}

#[test]
fn unopenable_replacement_journal_degrades_instead_of_losing_acks() {
    // open #0 is the initial registration's; #1 (the rotation's handle on
    // the temp header) and #2 (reopening the old journal) both fail.
    assert_unusable_rotation_degrades(
        "rotopen",
        FlakyPlan {
            fail_open_wal_from: Some(1),
            ..FlakyPlan::default()
        },
    );
}

#[test]
fn dir_fsync_failure_after_rename_degrades_instead_of_losing_acks() {
    // rename #0 onto wal.log is the initial registration's; after #1 (the
    // first rotation) the directory fsync fails — the empty replacement
    // journal is already live, so there is nothing to fall back to.
    assert_unusable_rotation_degrades(
        "rotsyncdir",
        FlakyPlan {
            fail_sync_dir_after_wal_rename: Some(1),
            ..FlakyPlan::default()
        },
    );
}

// ---------------------------------------------------------------------------
// Revocation: the journal never holds a record the session did not apply
// ---------------------------------------------------------------------------

#[test]
fn revoked_wal_record_is_gone_from_journal_and_replay() {
    let dir = TempDir::new("revoke");
    let durability = Durability::new(durability_config(dir.path(), 1_000));
    let h = Harness::new(durability);
    for i in 0..2 {
        let resp = h.handle("POST", "/models/demo/ingest", &ingest_body(i));
        assert_eq!(resp.status, 200, "{}", body_text(&resp));
    }
    // Journal a record and revoke it, as the ingest route does when the
    // in-memory apply fails after journaling.
    let seq = match h.durability.log_ingest("demo", 0, &[0.25; 8]) {
        IngestLog::Logged { seq } => seq,
        other => panic!("journaling failed: {other:?}"),
    };
    assert_eq!(seq, 3);
    h.durability.revoke_ingest("demo", seq);
    // The next ingest reuses the sequence — no gap, no orphaned record.
    let resp = h.handle("POST", "/models/demo/ingest", &ingest_body(2));
    assert_eq!(resp.status, 200, "{}", body_text(&resp));
    assert_eq!(
        h.durability
            .counters()
            .wal_records_written
            .load(Ordering::Relaxed),
        3,
        "the revoked record is not counted as written"
    );
    drop(h);

    let wal_bytes = std::fs::read(dir.path().join("demo").join("wal.log")).expect("wal exists");
    let rep = wal::replay(&wal_bytes).expect("valid journal");
    assert_eq!(rep.records.len(), 3, "exactly the applied records remain");
    assert!(!rep.torn, "revocation leaves a clean tail");
    assert!(
        rep.records.iter().all(|r| r.points != vec![0.25; 8]),
        "the revoked record is gone from the journal"
    );

    let durability = Durability::new(durability_config(dir.path(), 1_000));
    let h = Harness::empty(durability);
    let report = recover(&h.durability, &h.store, &h.sessions);
    assert_eq!(report.recovered, vec!["demo".to_string()], "{report:?}");
    assert_eq!(report.replayed_records, 3);
    assert_eq!(points_total(&h), 24, "exactly the applied records replay");
}

// ---------------------------------------------------------------------------
// Gauge accounting
// ---------------------------------------------------------------------------

#[test]
fn refit_resets_the_records_since_snapshot_gauge() {
    let dir = TempDir::new("gauge");
    let durability = Durability::new(durability_config(dir.path(), 1_000));
    let h = Harness::new(durability);
    for i in 0..3 {
        let resp = h.handle("POST", "/models/demo/ingest", &ingest_body(i));
        assert_eq!(resp.status, 200, "{}", body_text(&resp));
    }
    let counters = Arc::clone(h.durability.counters());
    assert_eq!(counters.records_since_snapshot.load(Ordering::Relaxed), 3);
    // Re-fit: re-registering resets the model's sequence to 0. The gauge
    // must drop by the records the fresh journal discards — not by the
    // new-seq-minus-old-snapshot-seq difference, which is zero here.
    let model = {
        let mut reader = h.store.reader();
        reader.get("demo").expect("demo is registered")
    };
    h.durability
        .persist_initial("demo", &model, h.sessions.config());
    assert_eq!(
        counters.records_since_snapshot.load(Ordering::Relaxed),
        0,
        "the gauge returns to zero after the re-fit snapshot"
    );
    assert!(
        counters.wal_records_truncated.load(Ordering::Relaxed) >= 3,
        "the discarded records count as truncated"
    );
}

// ---------------------------------------------------------------------------
// Ingest error mapping (regression)
// ---------------------------------------------------------------------------

#[test]
fn ingest_error_mapping_is_stable() {
    let dir = TempDir::new("mapping");
    let durability = Durability::new(durability_config(dir.path(), 1_000));
    let h = Harness::new(durability);

    // Malformed bodies blame the client: 400, nothing journaled.
    for bad in ["{not json", "{\"series\":0,\"points\":[\"x\"]}", "", "[]"] {
        let resp = h.handle("POST", "/models/demo/ingest", bad);
        assert_eq!(resp.status, 400, "{bad:?} → {}", body_text(&resp));
    }
    // A series index that cannot be appended is refused before the WAL
    // sees it: 422, still nothing journaled.
    let resp = h.handle(
        "POST",
        "/models/demo/ingest",
        "{\"series\":7,\"points\":[1,2]}",
    );
    assert_eq!(resp.status, 422, "{}", body_text(&resp));
    assert_eq!(
        h.durability
            .counters()
            .wal_records_written
            .load(Ordering::Relaxed),
        0,
        "invalid requests never reach the journal"
    );

    // A valid ingest is journaled and applied.
    let resp = h.handle("POST", "/models/demo/ingest", &ingest_body(0));
    assert_eq!(resp.status, 200, "{}", body_text(&resp));
    assert_eq!(
        h.durability
            .counters()
            .wal_records_written
            .load(Ordering::Relaxed),
        1
    );
}

// ---------------------------------------------------------------------------
// WAL replay properties: arbitrary truncation and bit flips
// ---------------------------------------------------------------------------

/// Builds a valid WAL image plus its decoded records.
fn build_wal(base_seq: u64, specs: &[(u32, Vec<f64>)]) -> (Vec<u8>, Vec<wal::WalRecord>) {
    let mut bytes = wal::encode_header(base_seq);
    let mut records = Vec::new();
    for (i, (series, points)) in specs.iter().enumerate() {
        let seq = base_seq + 1 + i as u64;
        bytes.extend_from_slice(&wal::encode_record(seq, *series, points));
        records.push(wal::WalRecord {
            seq,
            series: *series as usize,
            points: points.clone(),
        });
    }
    (bytes, records)
}

/// `got` must be a prefix of `all` — replay may only ever lose a suffix.
fn assert_prefix(got: &[wal::WalRecord], all: &[wal::WalRecord]) -> Result<(), TestCaseError> {
    prop_assert!(got.len() <= all.len(), "more records than were written");
    for (g, a) in got.iter().zip(all) {
        prop_assert_eq!(g, a, "replayed record diverges from what was logged");
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn truncated_wal_replays_to_a_clean_prefix(
        (base_seq, specs, cut_frac) in (
            0u64..1_000,
            proptest::collection::vec((0u32..4, proptest::collection::vec(-1.0..1.0f64, 0..6)), 0..8),
            0.0..1.0f64,
        )
    ) {
        let (bytes, records) = build_wal(base_seq, &specs);
        let cut = ((bytes.len() + 1) as f64 * cut_frac) as usize;
        let cut = cut.min(bytes.len());
        let rep = match wal::replay(&bytes[..cut]) {
            Ok(rep) => rep,
            // Truncation preserves the magic prefix, so a parse error can
            // only mean the cut landed inside the magic itself.
            Err(_) => {
                prop_assert!(cut < 4, "parse error on a magic-intact prefix");
                return Ok(());
            }
        };
        assert_prefix(&rep.records, &records)?;
        if cut == bytes.len() {
            prop_assert_eq!(rep.records.len(), records.len(), "whole log replays whole");
            prop_assert!(!rep.torn, "an intact log is not torn");
        }
        if cut >= 12 {
            prop_assert_eq!(rep.base_seq, base_seq);
            prop_assert!(rep.valid_bytes <= cut as u64);
        }
    }

    #[test]
    fn bit_flipped_wal_never_panics_and_never_invents_records(
        (base_seq, specs, pos_frac, bit) in (
            0u64..1_000,
            proptest::collection::vec((0u32..4, proptest::collection::vec(-1.0..1.0f64, 0..6)), 1..8),
            0.0..1.0f64,
            0u32..8,
        )
    ) {
        let (mut bytes, records) = build_wal(base_seq, &specs);
        let pos = ((bytes.len() as f64) * pos_frac) as usize;
        let pos = pos.min(bytes.len() - 1);
        bytes[pos] ^= 1 << bit;
        match wal::replay(&bytes) {
            // Flips inside the magic are rejected wholesale.
            Err(_) => prop_assert!(pos < 4, "parse error from a flip at {pos}"),
            Ok(rep) => {
                assert_prefix(&rep.records, &records)?;
                // A flip strictly after the last valid byte cannot shrink
                // the valid prefix; one inside it must.
                prop_assert!(
                    rep.records.len() < records.len() || pos as u64 >= rep.valid_bytes,
                    "a corrupt record at {pos} survived replay"
                );
            }
        }
    }
}
