//! The `KGW1` per-model write-ahead ingest journal.
//!
//! Layout (little-endian throughout):
//!
//! ```text
//! header:  b"KGW1" | u64 base_seq
//! record:  u32 len | payload | u32 crc32(payload)
//! payload: u64 seq | u32 series | u32 n_points | n_points × f64
//! ```
//!
//! `base_seq` is the sequence number already covered by the snapshot the
//! log was opened against; records carry `base_seq + 1, base_seq + 2, …`
//! contiguously. Replay stops cleanly at the first record that is torn,
//! fails its CRC, or breaks the sequence — everything before it is applied,
//! everything after it is discarded, and nothing ever panics on arbitrary
//! bytes. That is exactly the crash contract: a record is durable once its
//! bytes and checksum hit the disk, and a crash mid-record loses only that
//! record (which was never acknowledged if `sync_every == 1`).
//!
//! The writer acknowledges an append only after the record bytes are
//! written and — on the group-commit cadence — fsync'd. On a failed append
//! it rolls the file back to the previous record boundary so a retry
//! cannot produce a duplicate; when even the rollback fails the WAL is
//! poisoned and the caller must stop accepting writes for this model.

use crate::fsio::{Fs, WalFile};
use kgraph::serial::{put_f64, put_u64, Cursor};
use std::io;
use std::path::Path;
use tscore::error::TsError;
use tsgraph::checksum::crc32;

/// Magic prefix of a WAL file.
pub const WAL_MAGIC: &[u8; 4] = b"KGW1";

/// Header length: magic + base sequence.
pub const WAL_HEADER_LEN: u64 = 12;

/// Hard cap on one record's payload — an ingest body is already bounded
/// by the server's `max_body_bytes`, so anything larger is corruption,
/// not data.
const MAX_RECORD_LEN: u32 = 64 << 20;

/// One logged ingest.
#[derive(Debug, Clone, PartialEq)]
pub struct WalRecord {
    /// Sequence number (contiguous from `base_seq + 1`).
    pub seq: u64,
    /// Session-local series index the points were appended to.
    pub series: usize,
    /// The appended points.
    pub points: Vec<f64>,
}

/// Serialises one record (length prefix + payload + CRC trailer).
pub fn encode_record(seq: u64, series: u32, points: &[f64]) -> Vec<u8> {
    let mut payload = Vec::with_capacity(16 + points.len() * 8);
    put_u64(&mut payload, seq);
    payload.extend_from_slice(&series.to_le_bytes());
    payload.extend_from_slice(&(points.len() as u32).to_le_bytes());
    for &p in points {
        put_f64(&mut payload, p);
    }
    let mut out = Vec::with_capacity(payload.len() + 8);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    let crc = crc32(&payload);
    out.extend_from_slice(&payload);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Serialises the 12-byte WAL header.
pub fn encode_header(base_seq: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(WAL_HEADER_LEN as usize);
    out.extend_from_slice(WAL_MAGIC);
    put_u64(&mut out, base_seq);
    out
}

/// What a WAL replay recovered.
#[derive(Debug, Clone)]
pub struct WalReplay {
    /// Sequence number covered by the snapshot this WAL extends.
    pub base_seq: u64,
    /// Valid records, in sequence order.
    pub records: Vec<WalRecord>,
    /// Byte offset of the end of the last valid record — the truncation
    /// point for healing a torn tail.
    pub valid_bytes: u64,
    /// Whether trailing bytes after the valid prefix were discarded.
    pub torn: bool,
}

/// Decodes a WAL image, stopping cleanly at the first torn, corrupt or
/// out-of-sequence record.
///
/// # Errors
///
/// [`TsError::Parse`] only when the file cannot be a `KGW1` log at all
/// (wrong magic with at least 4 bytes present). A header shorter than 12
/// bytes whose bytes are a prefix of a valid header is treated as a torn
/// creation — no records, nothing lost — because the header is the first
/// thing written to a brand-new log and rewrites go through atomic
/// renames.
pub fn replay(bytes: &[u8]) -> Result<WalReplay, TsError> {
    if bytes.len() >= 4 && &bytes[..4] != WAL_MAGIC {
        return Err(TsError::Parse(format!(
            "not a KGW1 write-ahead log (magic {:?})",
            &bytes[..4]
        )));
    }
    if (bytes.len() as u64) < WAL_HEADER_LEN {
        return Ok(WalReplay {
            base_seq: 0,
            records: Vec::new(),
            valid_bytes: bytes.len() as u64,
            torn: !bytes.is_empty(),
        });
    }
    let mut c = Cursor::new(bytes);
    let _ = c.take(4);
    let base_seq = c.u64().expect("header length checked");
    let mut records = Vec::new();
    let mut valid_bytes = WAL_HEADER_LEN;
    let mut next_seq = base_seq + 1;
    loop {
        let record_start = c.pos();
        if c.remaining() == 0 {
            return Ok(WalReplay {
                base_seq,
                records,
                valid_bytes,
                torn: false,
            });
        }
        let torn = |records: Vec<WalRecord>| {
            Ok(WalReplay {
                base_seq,
                records,
                valid_bytes,
                torn: true,
            })
        };
        if c.remaining() < 4 {
            return torn(records);
        }
        let len_bytes = c.take(4).expect("checked remaining");
        let len = u32::from_le_bytes(len_bytes.try_into().expect("4 bytes"));
        if !(16..=MAX_RECORD_LEN).contains(&len) || c.remaining() < len as usize + 4 {
            return torn(records);
        }
        let payload = c.take(len as usize).expect("checked remaining");
        let crc_bytes = c.take(4).expect("checked remaining");
        let stored = u32::from_le_bytes(crc_bytes.try_into().expect("4 bytes"));
        if crc32(payload) != stored {
            return torn(records);
        }
        let mut p = Cursor::new(payload);
        let (seq, series, n_points) = match (|| {
            let seq = p.u64()?;
            let series = u32::from_le_bytes(
                p.take(4)?
                    .try_into()
                    .map_err(|_| TsError::Parse("short".into()))?,
            );
            let n = u32::from_le_bytes(
                p.take(4)?
                    .try_into()
                    .map_err(|_| TsError::Parse("short".into()))?,
            );
            Ok::<_, TsError>((seq, series, n))
        })() {
            Ok(t) => t,
            Err(_) => return torn(records),
        };
        if seq != next_seq || p.remaining() != n_points as usize * 8 {
            return torn(records);
        }
        let points = match (0..n_points)
            .map(|_| p.f64())
            .collect::<Result<Vec<_>, _>>()
        {
            Ok(points) => points,
            Err(_) => return torn(records),
        };
        records.push(WalRecord {
            seq,
            series: series as usize,
            points,
        });
        next_seq += 1;
        valid_bytes = record_start as u64 + 4 + len as u64 + 4;
    }
}

/// Why creating a replacement log failed, and how far it got.
#[derive(Debug)]
pub struct WalCreateError {
    /// The underlying I/O error.
    pub io: io::Error,
    /// When true, the new (empty) header was already renamed over the
    /// live log path: the previous journal is gone from the directory,
    /// so a caller that keeps (or reopens) its old handle would append
    /// to bytes no recovery will ever read. When false, the live log is
    /// untouched and falling back to it is safe.
    pub renamed: bool,
}

/// An append error, flagging whether the log was left in an unknown state.
#[derive(Debug)]
pub struct WalError {
    /// The underlying I/O error.
    pub io: io::Error,
    /// When true, the failed bytes could not be rolled back: the on-disk
    /// tail is unknown and the WAL must not accept further appends.
    pub poisoned: bool,
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.poisoned {
            write!(f, "WAL poisoned (rollback failed): {}", self.io)
        } else {
            write!(f, "WAL append failed (rolled back): {}", self.io)
        }
    }
}

/// The per-model WAL writer.
pub struct Wal {
    file: Box<dyn WalFile>,
    /// Length up to the end of the last fully-written record.
    len: u64,
    next_seq: u64,
    sync_every: u64,
    appends_since_sync: u64,
    /// Length before the most recent successful append, while that
    /// record is still revocable (nothing appended after it).
    last_boundary: Option<u64>,
}

impl Wal {
    /// Creates a fresh log at `path` (truncating any predecessor via an
    /// atomic rename) with `base_seq` covered by the current snapshot.
    /// The header is synced before the constructor returns.
    ///
    /// The append handle is opened on the *temp* file before the rename,
    /// so a usable `Wal` exists the instant the new log becomes live (the
    /// handle follows the inode across the rename). Every failure before
    /// the rename leaves the previous log untouched; the only step after
    /// it is the directory fsync, whose failure is reported with
    /// [`WalCreateError::renamed`]` == true` so the caller knows falling
    /// back to the old journal is no longer possible.
    pub fn create(
        fs: &dyn Fs,
        path: &Path,
        base_seq: u64,
        sync_every: u64,
    ) -> Result<Wal, WalCreateError> {
        let before = |io| WalCreateError { io, renamed: false };
        let tmp = path.with_extension("tmp");
        fs.write(&tmp, &encode_header(base_seq)).map_err(before)?;
        let mut file = fs.open_wal(&tmp).map_err(before)?;
        let len = file.len().map_err(before)?;
        fs.rename(&tmp, path).map_err(before)?;
        if let Some(dir) = path.parent() {
            // The empty log is already live: if its directory entry cannot
            // be made durable, a crash could resurrect the old log while
            // acknowledged appends sit in an unreachable inode.
            fs.sync_dir(dir)
                .map_err(|io| WalCreateError { io, renamed: true })?;
        }
        Ok(Wal {
            file,
            len,
            next_seq: base_seq + 1,
            sync_every: sync_every.max(1),
            appends_since_sync: 0,
            last_boundary: None,
        })
    }

    /// Reopens the existing log at `path` for appending, continuing at
    /// `next_seq`. The caller guarantees the file ends at a record
    /// boundary — true whenever the previous handle was dropped cleanly,
    /// because failed appends are rolled back before the error surfaces.
    pub fn reopen(fs: &dyn Fs, path: &Path, next_seq: u64, sync_every: u64) -> io::Result<Wal> {
        let mut file = fs.open_wal(path)?;
        let len = file.len()?;
        Ok(Wal {
            file,
            len,
            next_seq,
            sync_every: sync_every.max(1),
            appends_since_sync: 0,
            last_boundary: None,
        })
    }

    /// The sequence number the next append will get.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Appends one ingest record and group-commits on the configured
    /// cadence. Returns the record's sequence number and whether this
    /// append triggered an fsync.
    ///
    /// # Errors
    ///
    /// [`WalError`] with `poisoned == false` when the append failed but the
    /// file was rolled back to the previous record boundary (the caller may
    /// retry); `poisoned == true` when the rollback itself failed and the
    /// log must be retired.
    pub fn append(&mut self, series: u32, points: &[f64]) -> Result<(u64, bool), WalError> {
        let seq = self.next_seq;
        let record = encode_record(seq, series, points);
        let result = self.file.append(&record).and_then(|()| {
            if self.appends_since_sync + 1 >= self.sync_every {
                self.file.sync()?;
                Ok(true)
            } else {
                Ok(false)
            }
        });
        match result {
            Ok(synced) => {
                self.appends_since_sync = if synced {
                    0
                } else {
                    self.appends_since_sync + 1
                };
                self.last_boundary = Some(self.len);
                self.len += record.len() as u64;
                self.next_seq += 1;
                Ok((seq, synced))
            }
            Err(io) => {
                // Undo the partial record so a retry cannot duplicate it.
                let rolled_back = self.file.set_len(self.len).is_ok();
                Err(WalError {
                    io,
                    poisoned: !rolled_back,
                })
            }
        }
    }

    /// Revokes the most recent append: truncates the file back to the
    /// boundary before it and rewinds the sequence counter. Used when
    /// the in-memory apply that follows journaling fails — the log must
    /// never retain a record the session did not apply, or replay would
    /// stop at it and discard every later acknowledged record.
    ///
    /// # Errors
    ///
    /// [`io::ErrorKind::InvalidInput`] when there is no revocable record
    /// (nothing appended through this handle, or the last record was
    /// already revoked); otherwise the truncation error. On error the
    /// on-disk tail may still hold the record and the caller must stop
    /// accepting writes for this model.
    pub fn revoke_last(&mut self) -> io::Result<()> {
        let Some(boundary) = self.last_boundary else {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "no revocable record",
            ));
        };
        self.file.set_len(boundary)?;
        self.last_boundary = None;
        self.len = boundary;
        self.next_seq -= 1;
        self.appends_since_sync = self.appends_since_sync.saturating_sub(1);
        Ok(())
    }

    /// Forces an fsync now, resetting the group-commit countdown.
    pub fn sync(&mut self) -> io::Result<()> {
        self.file.sync()?;
        self.appends_since_sync = 0;
        Ok(())
    }
}
