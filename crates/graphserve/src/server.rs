//! The threaded server: accept loop, bounded admission queue, worker pool,
//! graceful shutdown.
//!
//! ## Threading model
//!
//! One accept thread pulls connections off the listener and *tries* to
//! admit them into a [`BoundedQueue`]. When the queue is full, the accept
//! thread itself writes a tiny `503 Service Unavailable` with a
//! `Retry-After` hint and drops the connection — load is shed at the door
//! in O(µs) instead of queueing unboundedly. A fixed pool of worker
//! threads pops admitted connections, parses one request each
//! (`Connection: close`), dispatches through [`crate::routes::handle`]
//! with a per-worker [`StoreReader`] (lock-free model lookup in steady
//! state) and writes the response. Socket read/write timeouts bound each
//! request's wall-clock cost.
//!
//! ## Shutdown
//!
//! [`Server::shutdown`] flips a flag, closes the queue and pokes the
//! listener with a loopback connection so `accept` returns. Workers drain
//! every connection that was already admitted before exiting — in-flight
//! requests complete, new ones are refused.

use crate::durability::Durability;
use crate::http::{HttpError, Request, Response};
use crate::queue::{BoundedQueue, PushError};
use crate::routes::{self, RouteContext};
use crate::store::ModelStore;
use std::io::ErrorKind;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;
use streamfit::{SessionRegistry, StreamConfig};

/// Tunables for [`Server::start`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; use port 0 for an ephemeral port.
    pub addr: String,
    /// Worker threads (0 = one per hardware thread).
    pub workers: usize,
    /// Admission-queue capacity; connections beyond it get a fast 503.
    pub queue_capacity: usize,
    /// Socket read timeout per request.
    pub read_timeout: Duration,
    /// Socket write timeout per response.
    pub write_timeout: Duration,
    /// `Retry-After` seconds advertised when shedding.
    pub retry_after_secs: u32,
    /// Largest accepted request body.
    pub max_body_bytes: usize,
    /// Cadences of the streaming ingest sessions opened by
    /// `POST /models/{name}/ingest`.
    pub stream: StreamConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 0,
            queue_capacity: 64,
            read_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(10),
            retry_after_secs: 1,
            max_body_bytes: 8 * 1024 * 1024,
            stream: StreamConfig::default(),
        }
    }
}

/// Route labels tracked by the per-route request counters, in counter
/// order. `routes::handle` classifies every request into exactly one.
pub const ROUTE_LABELS: [&str; 17] = [
    "health",
    "healthz",
    "models",
    "model_info",
    "fit",
    "delete",
    "score",
    "features",
    "predict",
    "batch",
    "graphoid",
    "render",
    "ingest",
    "stream_status",
    "metrics",
    "debug_sleep",
    "other",
];

/// Monotonic counters, shared by all server threads.
#[derive(Debug)]
pub struct ServerStats {
    /// Requests admitted to the queue.
    pub admitted: AtomicU64,
    /// Connections shed with a 503.
    pub shed: AtomicU64,
    /// Responses written by workers.
    pub served: AtomicU64,
    /// Highest admission-queue depth observed by the accept thread.
    pub queue_high_water: AtomicU64,
    /// Requests dispatched per route, indexed like [`ROUTE_LABELS`].
    routes: [AtomicU64; ROUTE_LABELS.len()],
}

impl Default for ServerStats {
    fn default() -> Self {
        ServerStats {
            admitted: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            served: AtomicU64::new(0),
            queue_high_water: AtomicU64::new(0),
            routes: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl ServerStats {
    /// Bumps the counter of `label`; unknown labels count as `"other"`.
    pub fn bump_route(&self, label: &str) {
        let idx = ROUTE_LABELS
            .iter()
            .position(|l| *l == label)
            .unwrap_or(ROUTE_LABELS.len() - 1);
        self.routes[idx].fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot of the per-route counters, in [`ROUTE_LABELS`] order.
    pub fn route_counts(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        ROUTE_LABELS
            .iter()
            .zip(&self.routes)
            .map(|(label, n)| (*label, n.load(Ordering::Relaxed)))
    }
}

/// A running server. Dropping it without [`Server::shutdown`] detaches the
/// threads (they keep serving until the process exits).
pub struct Server {
    addr: SocketAddr,
    queue: Arc<BoundedQueue<TcpStream>>,
    stats: Arc<ServerStats>,
    sessions: Arc<SessionRegistry>,
    shutting_down: Arc<AtomicBool>,
    accept_handle: Option<JoinHandle<()>>,
    worker_handles: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds and starts serving `store` in background threads, without
    /// durability (nothing is persisted across restarts).
    pub fn start(config: ServerConfig, store: Arc<ModelStore>) -> std::io::Result<Server> {
        let sessions = Arc::new(SessionRegistry::new(config.stream.clone()));
        Self::start_with(config, store, sessions, Arc::new(Durability::disabled()))
    }

    /// Binds and starts serving with an externally built session registry
    /// and durability layer — the entry point used after startup recovery,
    /// which installs recovered sessions into `sessions` before the first
    /// request can race them.
    pub fn start_with(
        config: ServerConfig,
        store: Arc<ModelStore>,
        sessions: Arc<SessionRegistry>,
        durability: Arc<Durability>,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let queue = Arc::new(BoundedQueue::new(config.queue_capacity));
        let stats = Arc::new(ServerStats::default());
        let shutting_down = Arc::new(AtomicBool::new(false));

        let accept_handle = {
            let queue = Arc::clone(&queue);
            let stats = Arc::clone(&stats);
            let shutting_down = Arc::clone(&shutting_down);
            let retry_after = config.retry_after_secs;
            std::thread::Builder::new()
                .name("graphserve-accept".into())
                .spawn(move || accept_loop(listener, &queue, &stats, &shutting_down, retry_after))?
        };

        let n_workers = if config.workers == 0 {
            std::thread::available_parallelism().map_or(2, |p| p.get())
        } else {
            config.workers
        };
        let mut worker_handles = Vec::with_capacity(n_workers);
        for i in 0..n_workers {
            let queue = Arc::clone(&queue);
            let stats = Arc::clone(&stats);
            let store = Arc::clone(&store);
            let sessions = Arc::clone(&sessions);
            let durability = Arc::clone(&durability);
            let cfg = config.clone();
            worker_handles.push(
                std::thread::Builder::new()
                    .name(format!("graphserve-worker-{i}"))
                    .spawn(move || {
                        worker_loop(&queue, &stats, &store, &sessions, &durability, &cfg)
                    })?,
            );
        }

        Ok(Server {
            addr,
            queue,
            stats,
            sessions,
            shutting_down,
            accept_handle: Some(accept_handle),
            worker_handles,
        })
    }

    /// The bound address (useful with ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Shared request counters.
    pub fn stats(&self) -> &ServerStats {
        &self.stats
    }

    /// The streaming-session registry backing the ingest endpoints.
    pub fn sessions(&self) -> &Arc<SessionRegistry> {
        &self.sessions
    }

    /// Stops accepting, drains in-flight requests, joins every thread.
    pub fn shutdown(mut self) {
        self.shutting_down.store(true, Ordering::SeqCst);
        // Poke the blocking accept() so it observes the flag. The woken
        // connection is dropped unanswered, which is fine: it is ours.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_handle.take() {
            let _ = handle.join();
        }
        // No new admissions past this point; close the queue so workers
        // drain what was already admitted and then exit.
        self.queue.close();
        for handle in self.worker_handles.drain(..) {
            let _ = handle.join();
        }
    }
}

fn accept_loop(
    listener: TcpListener,
    queue: &BoundedQueue<TcpStream>,
    stats: &ServerStats,
    shutting_down: &AtomicBool,
    retry_after_secs: u32,
) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if shutting_down.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if shutting_down.load(Ordering::SeqCst) {
            return;
        }
        match queue.try_push(stream) {
            Ok(()) => {
                stats.admitted.fetch_add(1, Ordering::Relaxed);
                stats
                    .queue_high_water
                    .fetch_max(queue.len() as u64, Ordering::Relaxed);
            }
            Err(PushError::Full(mut stream)) => {
                stats.shed.fetch_add(1, Ordering::Relaxed);
                // Shed at the door: cheap fixed response, then drop. Short
                // timeouts keep a slow peer from stalling the accept loop.
                let _ = stream.set_write_timeout(Some(Duration::from_millis(250)));
                let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
                let resp = Response::error(503, "server is at capacity, try again")
                    .with_header("retry-after", retry_after_secs.to_string());
                let _ = resp.write_to(&mut stream);
                // Closing with the request still unread would RST the
                // connection and can discard the 503 before the client
                // reads it. Signal end-of-response, then drain until the
                // peer closes (or the short timeout fires).
                let _ = stream.shutdown(std::net::Shutdown::Write);
                let mut sink = [0u8; 1024];
                while matches!(std::io::Read::read(&mut stream, &mut sink), Ok(n) if n > 0) {}
            }
            Err(PushError::Closed(_)) => return,
        }
    }
}

fn worker_loop(
    queue: &BoundedQueue<TcpStream>,
    stats: &ServerStats,
    store: &ModelStore,
    sessions: &SessionRegistry,
    durability: &Durability,
    cfg: &ServerConfig,
) {
    let mut reader = store.reader();
    let ctx = RouteContext {
        store,
        sessions,
        stats,
        durability,
    };
    while let Some(mut stream) = queue.pop() {
        let _ = stream.set_read_timeout(Some(cfg.read_timeout));
        let _ = stream.set_write_timeout(Some(cfg.write_timeout));
        let response = match Request::read_from(&mut stream, cfg.max_body_bytes) {
            Ok(request) => routes::handle(&request, &mut reader, &ctx),
            Err(HttpError::BodyTooLarge { declared, limit }) => Response::error(
                413,
                &format!("body of {declared} bytes exceeds limit {limit}"),
            ),
            Err(HttpError::Io(e))
                if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) =>
            {
                Response::error(408, "timed out reading request")
            }
            // Peer vanished mid-request; nothing to answer.
            Err(HttpError::Io(_)) => continue,
            Err(HttpError::Malformed(m)) => Response::error(400, &m),
        };
        let _ = response.write_to(&mut stream);
        stats.served.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};

    fn get(addr: SocketAddr, target: &str) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "GET {target} HTTP/1.1\r\nhost: t\r\n\r\n").unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        out
    }

    #[test]
    fn serves_health_and_shuts_down() {
        let store = Arc::new(ModelStore::new(0));
        let server = Server::start(
            ServerConfig {
                workers: 2,
                ..ServerConfig::default()
            },
            store,
        )
        .unwrap();
        let addr = server.addr();
        let resp = get(addr, "/health");
        assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");
        assert!(resp.contains("\"status\":\"ok\""));
        assert_eq!(server.stats().served.load(Ordering::Relaxed), 1);
        server.shutdown();
        // The port stops answering after shutdown.
        assert!(TcpStream::connect_timeout(&addr, Duration::from_millis(300)).is_err());
    }

    #[test]
    fn malformed_requests_get_400() {
        let store = Arc::new(ModelStore::new(0));
        let server = Server::start(
            ServerConfig {
                workers: 1,
                ..ServerConfig::default()
            },
            store,
        )
        .unwrap();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream.write_all(b"THIS IS NOT HTTP\r\n\r\n").unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        assert!(out.starts_with("HTTP/1.1 400"), "{out}");
        server.shutdown();
    }
}
