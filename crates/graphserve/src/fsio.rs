//! Filesystem seam for the durability layer.
//!
//! Every byte the durability layer puts on (or reads off) disk goes
//! through the [`Fs`] trait, so tests can interpose [`FailFs`] and inject
//! the faults a real disk produces — torn writes, silent short writes,
//! `ENOSPC`, failing fsyncs, bit rot on read — without conditional
//! compilation or test-only hooks in the production code path. Production
//! uses [`StdFs`], a thin veneer over `std::fs` that adds the fsync calls
//! `std::fs::write` omits.

use std::fs::{File, OpenOptions};
use std::io::{self, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// An append-only log file handle.
#[allow(clippy::len_without_is_empty)] // len needs &mut (it seeks); is_empty can't match the trait shape
pub trait WalFile: Send {
    /// Appends `bytes` at the end of the file.
    fn append(&mut self, bytes: &[u8]) -> io::Result<()>;
    /// Flushes buffered data *and* metadata to stable storage.
    fn sync(&mut self) -> io::Result<()>;
    /// Truncates (or extends) the file to `len` bytes — the WAL's rollback
    /// primitive after a failed append.
    fn set_len(&mut self, len: u64) -> io::Result<()>;
    /// Current length in bytes.
    fn len(&mut self) -> io::Result<u64>;
}

/// The filesystem operations durability needs. All paths are absolute or
/// relative to the process working directory, exactly as with `std::fs`.
pub trait Fs: Send + Sync {
    /// Creates `path` and any missing parents.
    fn create_dir_all(&self, path: &Path) -> io::Result<()>;
    /// Reads a whole file.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// Creates (truncating) `path` with `bytes` and fsyncs the file. Not
    /// atomic on its own — callers write to a temp name and [`rename`]
    /// over the target.
    ///
    /// [`rename`]: Fs::rename
    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;
    /// Atomically renames `from` over `to`.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Removes a file; `NotFound` is surfaced, not swallowed.
    fn remove_file(&self, path: &Path) -> io::Result<()>;
    /// Removes a directory and everything under it.
    fn remove_dir_all(&self, path: &Path) -> io::Result<()>;
    /// The entries of a directory (files and subdirectories, unsorted).
    fn read_dir(&self, path: &Path) -> io::Result<Vec<PathBuf>>;
    /// Fsyncs a *directory*, making renames/creates within it durable.
    fn sync_dir(&self, path: &Path) -> io::Result<()>;
    /// Whether `path` exists.
    fn exists(&self, path: &Path) -> bool;
    /// Opens (creating if missing) an append-mode log file.
    fn open_wal(&self, path: &Path) -> io::Result<Box<dyn WalFile>>;
}

// ---------------------------------------------------------------------------
// StdFs
// ---------------------------------------------------------------------------

/// The real filesystem.
#[derive(Debug, Default, Clone, Copy)]
pub struct StdFs;

struct StdWalFile {
    file: File,
}

impl WalFile for StdWalFile {
    fn append(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.file.seek(SeekFrom::End(0))?;
        self.file.write_all(bytes)
    }

    fn sync(&mut self) -> io::Result<()> {
        self.file.sync_all()
    }

    fn set_len(&mut self, len: u64) -> io::Result<()> {
        self.file.set_len(len)
    }

    fn len(&mut self) -> io::Result<u64> {
        Ok(self.file.metadata()?.len())
    }
}

impl Fs for StdFs {
    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        std::fs::create_dir_all(path)
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let mut file = File::create(path)?;
        file.write_all(bytes)?;
        file.sync_all()
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }

    fn remove_dir_all(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_dir_all(path)
    }

    fn read_dir(&self, path: &Path) -> io::Result<Vec<PathBuf>> {
        std::fs::read_dir(path)?
            .map(|e| e.map(|e| e.path()))
            .collect()
    }

    fn sync_dir(&self, path: &Path) -> io::Result<()> {
        // Windows cannot open directories; directory fsync is a
        // Unix-durability refinement, so fall back to a no-op there.
        #[cfg(unix)]
        {
            File::open(path)?.sync_all()
        }
        #[cfg(not(unix))]
        {
            let _ = path;
            Ok(())
        }
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }

    fn open_wal(&self, path: &Path) -> io::Result<Box<dyn WalFile>> {
        let file = OpenOptions::new()
            .read(true)
            .create(true)
            .append(true)
            .open(path)?;
        Ok(Box::new(StdWalFile { file }))
    }
}

// ---------------------------------------------------------------------------
// FailFs — fault injection
// ---------------------------------------------------------------------------

/// Which faults [`FailFs`] injects. All byte thresholds count *cumulative
/// bytes written through the wrapper* (WAL appends and snapshot writes
/// alike), so a test dials "the disk dies after N bytes" and the failure
/// lands wherever the durability layer happens to be at that point.
#[derive(Debug, Default, Clone)]
pub struct FaultPlan {
    /// After this many bytes: write a partial prefix of the current
    /// buffer, then return an I/O error — a torn write, as a crash or
    /// kernel error mid-`write(2)` produces.
    pub torn_write_after: Option<u64>,
    /// After this many bytes: silently drop everything past the
    /// threshold and report success — a lying disk.
    pub short_write_after: Option<u64>,
    /// After this many bytes: partial write, then `ErrorKind::StorageFull`
    /// (`ENOSPC`).
    pub enospc_after: Option<u64>,
    /// Let this many `sync` calls succeed, then fail every later one.
    pub fail_syncs_after: Option<u64>,
    /// Fail every `set_len` — defeats the WAL's rollback and forces the
    /// degraded path.
    pub fail_set_len: bool,
    /// XOR this mask into the byte at this offset of every `read` —
    /// bit rot.
    pub flip_on_read: Option<(usize, u8)>,
}

#[derive(Default)]
struct FaultState {
    written: AtomicU64,
    syncs: AtomicU64,
}

/// An [`Fs`] decorator injecting the faults of a [`FaultPlan`] on top of
/// an inner filesystem. Clone-cheap: clones share the fault counters, so
/// one plan governs every handle a test hands out.
#[derive(Clone)]
pub struct FailFs {
    inner: Arc<dyn Fs>,
    plan: FaultPlan,
    state: Arc<FaultState>,
}

impl FailFs {
    /// Wraps `inner` with `plan`.
    pub fn new(inner: Arc<dyn Fs>, plan: FaultPlan) -> Self {
        FailFs {
            inner,
            plan,
            state: Arc::new(FaultState::default()),
        }
    }

    /// Total bytes the wrapper has admitted to the inner filesystem.
    pub fn bytes_written(&self) -> u64 {
        self.state.written.load(Ordering::Relaxed)
    }

    /// Total fsync-class calls (file and directory) seen by the wrapper.
    pub fn syncs(&self) -> u64 {
        self.state.syncs.load(Ordering::Relaxed)
    }

    /// Applies the write-fault plan to a buffer about to be written.
    /// Returns the prefix to actually write and the error (if any) to
    /// report after writing it.
    fn plan_write(&self, len: u64) -> (usize, Option<io::Error>, bool) {
        let before = self.state.written.fetch_add(len, Ordering::Relaxed);
        let crosses = |t: Option<u64>| {
            t.filter(|&t| before + len > t)
                .map(|t| t.saturating_sub(before) as usize)
        };
        if let Some(keep) = crosses(self.plan.torn_write_after) {
            return (keep, Some(io::Error::other("injected torn write")), false);
        }
        if let Some(keep) = crosses(self.plan.enospc_after) {
            return (
                keep,
                Some(io::Error::new(
                    io::ErrorKind::StorageFull,
                    "injected ENOSPC",
                )),
                false,
            );
        }
        if let Some(keep) = crosses(self.plan.short_write_after) {
            // Silent: partial data, successful return.
            return (keep, None, true);
        }
        (len as usize, None, false)
    }

    fn sync_fault(&self) -> Option<io::Error> {
        let n = self.state.syncs.fetch_add(1, Ordering::Relaxed);
        match self.plan.fail_syncs_after {
            Some(limit) if n >= limit => Some(io::Error::other("injected fsync failure")),
            _ => None,
        }
    }

    fn corrupt(&self, mut bytes: Vec<u8>) -> Vec<u8> {
        if let Some((pos, mask)) = self.plan.flip_on_read {
            if pos < bytes.len() {
                bytes[pos] ^= mask;
            }
        }
        bytes
    }
}

struct FailWalFile {
    inner: Box<dyn WalFile>,
    fs: FailFs,
}

impl WalFile for FailWalFile {
    fn append(&mut self, bytes: &[u8]) -> io::Result<()> {
        let (keep, err, _silent) = self.fs.plan_write(bytes.len() as u64);
        self.inner.append(&bytes[..keep.min(bytes.len())])?;
        match err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    fn sync(&mut self) -> io::Result<()> {
        if let Some(e) = self.fs.sync_fault() {
            return Err(e);
        }
        self.inner.sync()
    }

    fn set_len(&mut self, len: u64) -> io::Result<()> {
        if self.fs.plan.fail_set_len {
            return Err(io::Error::other("injected set_len failure"));
        }
        self.inner.set_len(len)
    }

    fn len(&mut self) -> io::Result<u64> {
        self.inner.len()
    }
}

impl Fs for FailFs {
    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        self.inner.create_dir_all(path)
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        Ok(self.corrupt(self.inner.read(path)?))
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let (keep, err, _silent) = self.plan_write(bytes.len() as u64);
        self.inner.write(path, &bytes[..keep.min(bytes.len())])?;
        if let Some(e) = err {
            return Err(e);
        }
        if let Some(e) = self.sync_fault() {
            return Err(e);
        }
        Ok(())
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        self.inner.rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        self.inner.remove_file(path)
    }

    fn remove_dir_all(&self, path: &Path) -> io::Result<()> {
        self.inner.remove_dir_all(path)
    }

    fn read_dir(&self, path: &Path) -> io::Result<Vec<PathBuf>> {
        self.inner.read_dir(path)
    }

    fn sync_dir(&self, path: &Path) -> io::Result<()> {
        if let Some(e) = self.sync_fault() {
            return Err(e);
        }
        self.inner.sync_dir(path)
    }

    fn exists(&self, path: &Path) -> bool {
        self.inner.exists(path)
    }

    fn open_wal(&self, path: &Path) -> io::Result<Box<dyn WalFile>> {
        let inner = self.inner.open_wal(path)?;
        Ok(Box::new(FailWalFile {
            inner,
            fs: self.clone(),
        }))
    }
}
