//! # graphserve — a concurrent query server over shared immutable k-Graph models
//!
//! Serving layer for the k-Graph pipeline: fitted models are immutable
//! (CSR graphs, PCA embeddings, label vectors), so any number of threads
//! can score, embed, classify and render against one `Arc<KGraphModel>`
//! without synchronisation. This crate adds the machinery around that
//! fact:
//!
//! - [`store::ModelStore`] — a named registry of `Arc`-shared models with
//!   a versioned-snapshot read path (zero locks in steady state) and LRU
//!   eviction under a byte budget; models load from `*.kgm` files
//!   ([`kgraph::serial`]) or are fitted on demand.
//! - [`server::Server`] — a hand-rolled threaded HTTP/1.1 server (the
//!   image carries no async runtime): one accept thread, a bounded
//!   admission queue that sheds overload with a fast `503` +
//!   `Retry-After`, a worker pool, per-request socket timeouts and a
//!   drain-then-exit graceful shutdown.
//! - [`routes`] — `score` / `features` / `predict` / `graphoid` /
//!   `render` / `batch` endpoints speaking JSON (and CSV on request);
//!   the batch endpoint fans rows over a bounded in-process pool using
//!   the same per-series code as the single endpoints, so results are
//!   bit-identical. Streaming ingest (`POST /models/{name}/ingest`,
//!   `GET /models/{name}/stream-status`) appends points to a
//!   [`streamfit::StreamSession`] and publishes compacted models back
//!   into the store; `GET /metrics` exposes the shared counters as
//!   plain text.
//!
//! See `crates/graphserve/README.md` for the wire format and
//! `examples/serve_quickstart.rs` for an end-to-end walkthrough.

#![warn(missing_docs)]

pub mod durability;
pub mod fsio;
pub mod http;
pub mod json;
pub mod queue;
pub mod recovery;
pub mod routes;
pub mod server;
pub mod store;
pub mod wal;

pub use durability::{Durability, DurabilityConfig};
pub use recovery::{recover, RecoveryReport};
pub use routes::RouteContext;
pub use server::{Server, ServerConfig, ServerStats};
pub use store::{ModelStore, StoreReader};
