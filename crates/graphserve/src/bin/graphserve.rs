//! `graphserve` — serve fitted k-Graph models over HTTP.
//!
//! ```text
//! graphserve [--addr 127.0.0.1:7878] [--models-dir DIR] [--demo]
//!            [--workers N] [--queue N] [--budget-mb N] [--port-file PATH]
//!            [--refresh-every N] [--compact-every N]
//!            [--state-dir DIR] [--wal-sync-every N] [--snapshot-every N]
//! ```
//!
//! `--models-dir` loads every `*.kgm` file at startup (file stem = model
//! name). `--demo` fits a small model named `demo` on the synthetic CBF
//! dataset so the server is immediately usable. `--port-file` writes the
//! bound address to a file once listening — that is how scripts (and CI)
//! discover an ephemeral port. `--refresh-every` / `--compact-every` set
//! the streaming-ingest cadences (points per rescore, refreshes per
//! compaction).
//!
//! `--state-dir` turns on crash-safe durability: ingests are journaled to
//! a per-model WAL before being acknowledged, snapshots are written
//! atomically every `--snapshot-every` refreshes, and startup recovers the
//! newest snapshot plus WAL tail from the same directory.
//! `--wal-sync-every` sets the group-commit cadence (1 = fsync every
//! record; larger values trade the tail of a crash for throughput).

use graphserve::{recover, Durability, DurabilityConfig, ModelStore, Server, ServerConfig};
use kgraph::{KGraph, KGraphConfig};
use std::path::PathBuf;
use std::sync::Arc;
use streamfit::{SessionRegistry, StreamConfig};

struct Args {
    addr: String,
    models_dir: Option<PathBuf>,
    demo: bool,
    workers: usize,
    queue: usize,
    budget_mb: usize,
    port_file: Option<PathBuf>,
    stream: StreamConfig,
    state_dir: Option<PathBuf>,
    wal_sync_every: u64,
    snapshot_every: u64,
}

fn usage() -> ! {
    eprintln!(
        "usage: graphserve [--addr HOST:PORT] [--models-dir DIR] [--demo] \
         [--workers N] [--queue N] [--budget-mb N] [--port-file PATH] \
         [--refresh-every N] [--compact-every N] \
         [--state-dir DIR] [--wal-sync-every N] [--snapshot-every N]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        addr: "127.0.0.1:7878".to_string(),
        models_dir: None,
        demo: false,
        workers: 0,
        queue: 64,
        budget_mb: 0,
        port_file: None,
        stream: StreamConfig::default(),
        state_dir: None,
        wal_sync_every: 1,
        snapshot_every: DurabilityConfig::default().snapshot_every,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage()
            })
        };
        match flag.as_str() {
            "--addr" => args.addr = value("--addr"),
            "--models-dir" => args.models_dir = Some(PathBuf::from(value("--models-dir"))),
            "--demo" => args.demo = true,
            "--workers" => args.workers = value("--workers").parse().unwrap_or_else(|_| usage()),
            "--queue" => args.queue = value("--queue").parse().unwrap_or_else(|_| usage()),
            "--budget-mb" => {
                args.budget_mb = value("--budget-mb").parse().unwrap_or_else(|_| usage())
            }
            "--port-file" => args.port_file = Some(PathBuf::from(value("--port-file"))),
            "--refresh-every" => {
                args.stream.refresh_every =
                    value("--refresh-every").parse().unwrap_or_else(|_| usage())
            }
            "--compact-every" => {
                args.stream.compact_every =
                    value("--compact-every").parse().unwrap_or_else(|_| usage())
            }
            "--state-dir" => args.state_dir = Some(PathBuf::from(value("--state-dir"))),
            "--wal-sync-every" => {
                args.wal_sync_every = value("--wal-sync-every")
                    .parse()
                    .unwrap_or_else(|_| usage())
            }
            "--snapshot-every" => {
                args.snapshot_every = value("--snapshot-every")
                    .parse()
                    .unwrap_or_else(|_| usage())
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other}");
                usage();
            }
        }
    }
    args
}

fn main() {
    let args = parse_args();
    let store = Arc::new(ModelStore::new(args.budget_mb * 1024 * 1024));

    if let Some(dir) = &args.models_dir {
        match store.load_dir(dir) {
            Ok(n) => eprintln!("loaded {n} model(s) from {}", dir.display()),
            Err(e) => {
                eprintln!("failed to load models from {}: {e}", dir.display());
                std::process::exit(1);
            }
        }
    }
    if args.demo {
        eprintln!("fitting demo model on CBF…");
        let dataset = datasets::cbf::cbf(10, 128, 42);
        let cfg = KGraphConfig {
            n_lengths: 3,
            ..KGraphConfig::new(3)
        }
        .with_seed(42);
        let model = KGraph::new(cfg).fit(&dataset);
        let bytes = store.insert("demo", Arc::new(model));
        eprintln!("demo model ready ({bytes} bytes)");
    }

    let config = ServerConfig {
        addr: args.addr,
        workers: args.workers,
        queue_capacity: args.queue,
        stream: args.stream,
        ..ServerConfig::default()
    };

    let durability = match &args.state_dir {
        Some(dir) => Arc::new(Durability::new(DurabilityConfig {
            state_dir: dir.clone(),
            wal_sync_every: args.wal_sync_every,
            snapshot_every: args.snapshot_every,
            ..DurabilityConfig::default()
        })),
        None => Arc::new(Durability::disabled()),
    };
    let sessions = Arc::new(SessionRegistry::new(config.stream.clone()));
    // Recover AFTER the store is populated (models-dir / demo) so models
    // with durable state win over their freshly loaded versions and the
    // rest are adopted into the state directory.
    recover(&durability, &store, &sessions);

    let server = match Server::start_with(config, store, sessions, durability) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("failed to start: {e}");
            std::process::exit(1);
        }
    };
    let addr = server.addr();
    eprintln!("graphserve listening on http://{addr}");
    if let Some(path) = &args.port_file {
        if let Err(e) = std::fs::write(path, addr.to_string()) {
            eprintln!("failed to write {}: {e}", path.display());
            std::process::exit(1);
        }
    }

    // Serve until killed. The worker/accept threads hold the process open;
    // parking the main thread costs nothing.
    loop {
        std::thread::park();
    }
}
