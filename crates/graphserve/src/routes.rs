//! Request routing and endpoint handlers.
//!
//! Every data endpoint resolves its model to an `Arc<KGraphModel>` through
//! the worker's [`StoreReader`] (lock-free in steady state) and then reads
//! only immutable state. Single-series and batch endpoints share the same
//! per-series core functions, so a batch response is bit-identical to the
//! equivalent sequence of single requests.
//!
//! Error mapping follows the [`TsError`] contract: caller-side problems
//! (short series, bad parameters) are 4xx, model-side degeneracy is 5xx,
//! unparseable bodies are 400.

use crate::durability::{Durability, IngestLog};
use crate::http::{Request, Response};
use crate::json::{f64s_to_json, write_json_string, Json};
use crate::server::ServerStats;
use crate::store::{ModelStore, StoreReader};
use graphint::frames::graph::GraphFrame;
use graphint::plot::{DetailLevel, RenderBudget};
use kgraph::anomaly::anomaly_scores;
use kgraph::features::feature_row;
use kgraph::graphoid::{gamma_graphoid, lambda_graphoid};
use kgraph::pipeline::{KGraph, KGraphModel};
use kgraph::KGraphConfig;
use std::sync::Arc;
use streamfit::{SessionRegistry, StreamStatus};
use tscore::error::TsError;
use tscore::{Dataset, DatasetKind, TimeSeries};
use tsgraph::layout::LayoutEngine;

/// Everything a handler can reach besides the per-worker [`StoreReader`]:
/// the store (admin routes), the streaming-session registry (ingest
/// routes) and the shared counters (metrics).
pub struct RouteContext<'a> {
    /// The model registry; only admin routes (fit/delete/ingest
    /// publication) write to it.
    pub store: &'a ModelStore,
    /// Streaming sessions keyed by model name.
    pub sessions: &'a SessionRegistry,
    /// Shared monotonic counters.
    pub stats: &'a ServerStats,
    /// The durability layer (WAL + snapshots); a disabled instance when
    /// the server runs without a state directory.
    pub durability: &'a Durability,
}

/// Maximum number of series accepted in one batch request.
const MAX_BATCH_ROWS: usize = 4096;

/// Upper bound on `/debug/sleep` (milliseconds) so the route cannot be
/// used to park workers indefinitely.
const MAX_SLEEP_MS: u64 = 5_000;

/// Maps a domain error onto an HTTP status: model-side degeneracy is the
/// server's fault (500), everything else blames the request (422).
fn status_for(e: &TsError) -> u16 {
    match e {
        TsError::Degenerate(_) => 500,
        _ => 422,
    }
}

fn error_response(e: &TsError) -> Response {
    Response::error(status_for(e), &e.to_string())
}

// ---------------------------------------------------------------------------
// Per-series cores (shared by single and batch endpoints)
// ---------------------------------------------------------------------------

fn score_series(model: &KGraphModel, values: &[f64], context: usize) -> Result<Vec<f64>, TsError> {
    anomaly_scores(model.best(), values, context)
}

fn features_series(model: &KGraphModel, values: &[f64]) -> Result<Vec<f64>, TsError> {
    let layer = model.best();
    if layer.graph.node_count() == 0 {
        return Err(TsError::Degenerate("selected layer has no nodes".into()));
    }
    if values.len() < layer.length {
        return Err(TsError::TooShort {
            required: layer.length,
            actual: values.len(),
        });
    }
    let path = layer
        .assign_path(values)
        .expect("preconditions checked above");
    Ok(feature_row(
        layer,
        &path,
        model.config.node_features,
        model.config.edge_features,
    ))
}

fn predict_series(model: &KGraphModel, values: &[f64]) -> Result<usize, TsError> {
    model.predict(values).ok_or(TsError::TooShort {
        required: model.best_length(),
        actual: values.len(),
    })
}

// ---------------------------------------------------------------------------
// Body decoding
// ---------------------------------------------------------------------------

fn body_str(req: &Request) -> Result<&str, Response> {
    std::str::from_utf8(&req.body).map_err(|_| Response::error(400, "body is not UTF-8"))
}

fn is_json_body(req: &Request) -> bool {
    req.header("content-type")
        .is_some_and(|ct| ct.contains("json"))
        || req.body.trim_ascii_start().starts_with(b"[")
        || req.body.trim_ascii_start().starts_with(b"{")
}

/// One series: a JSON array, a JSON object with a `series` member, or CSV
/// (all numbers, commas and/or newlines).
fn parse_series(req: &Request) -> Result<Vec<f64>, Response> {
    let text = body_str(req)?;
    let values = if is_json_body(req) {
        let v = Json::parse(text).map_err(|e| Response::error(400, &e))?;
        let arr = v.get("series").unwrap_or(&v);
        arr.to_f64s().map_err(|e| Response::error(400, &e))?
    } else {
        parse_csv_row(text).map_err(|e| Response::error(400, &e))?
    };
    if values.is_empty() {
        return Err(Response::error(400, "empty series"));
    }
    Ok(values)
}

/// Many series: a JSON array of arrays (optionally under `series`), or CSV
/// with one series per line.
fn parse_series_batch(req: &Request) -> Result<Vec<Vec<f64>>, Response> {
    let text = body_str(req)?;
    let rows: Vec<Vec<f64>> = if is_json_body(req) {
        let v = Json::parse(text).map_err(|e| Response::error(400, &e))?;
        let arr = v.get("series").unwrap_or(&v);
        let items = arr
            .as_arr()
            .ok_or_else(|| Response::error(400, "expected an array of series"))?;
        items
            .iter()
            .map(|row| row.to_f64s())
            .collect::<Result<_, _>>()
            .map_err(|e| Response::error(400, &e))?
    } else {
        text.lines()
            .filter(|l| !l.trim().is_empty())
            .map(parse_csv_row)
            .collect::<Result<_, _>>()
            .map_err(|e| Response::error(400, &e))?
    };
    if rows.is_empty() {
        return Err(Response::error(400, "empty batch"));
    }
    if rows.len() > MAX_BATCH_ROWS {
        return Err(Response::error(
            413,
            &format!(
                "batch of {} rows exceeds limit {MAX_BATCH_ROWS}",
                rows.len()
            ),
        ));
    }
    Ok(rows)
}

fn parse_csv_row(line: &str) -> Result<Vec<f64>, String> {
    line.split([',', ' ', '\t', '\n', '\r'])
        .filter(|t| !t.trim().is_empty())
        .map(|t| {
            t.trim()
                .parse::<f64>()
                .map_err(|_| format!("bad number {:?}", t.trim()))
        })
        .collect()
}

fn query_usize(req: &Request, name: &str, default: usize) -> Result<usize, Response> {
    match req.query_param(name) {
        None => Ok(default),
        Some(v) => v
            .parse::<usize>()
            .map_err(|_| Response::error(400, &format!("bad {name} parameter {v:?}"))),
    }
}

fn query_f64(req: &Request, name: &str, default: f64) -> Result<f64, Response> {
    match req.query_param(name) {
        None => Ok(default),
        Some(v) => v
            .parse::<f64>()
            .map_err(|_| Response::error(400, &format!("bad {name} parameter {v:?}"))),
    }
}

// ---------------------------------------------------------------------------
// Routing
// ---------------------------------------------------------------------------

/// The metrics label of one parsed request; must return a member of
/// [`crate::server::ROUTE_LABELS`].
fn route_label(method: &str, segments: &[&str]) -> &'static str {
    match (method, segments) {
        ("GET", ["health"]) => "health",
        ("GET", ["healthz"]) => "healthz",
        ("GET", ["metrics"]) => "metrics",
        ("GET", ["models"]) => "models",
        ("PUT", ["models", _]) => "fit",
        ("DELETE", ["models", _]) => "delete",
        ("POST", ["models", _, "score"]) => "score",
        ("POST", ["models", _, "features"]) => "features",
        ("POST", ["models", _, "predict"]) => "predict",
        ("POST", ["models", _, "batch"]) => "batch",
        ("POST", ["models", _, "ingest"]) => "ingest",
        ("GET", ["models", _, "graphoid"]) => "graphoid",
        ("GET", ["models", _, "render"]) => "render",
        ("GET", ["models", _, "stream-status"]) => "stream_status",
        ("GET", ["models", _]) => "model_info",
        ("GET", ["debug", "sleep"]) => "debug_sleep",
        _ => "other",
    }
}

/// Dispatches one parsed request. `reader` is the calling worker's cached
/// registry view; `ctx` carries the store (admin routes), the streaming
/// sessions (ingest routes) and the shared counters (metrics).
pub fn handle(req: &Request, reader: &mut StoreReader<'_>, ctx: &RouteContext<'_>) -> Response {
    let segments: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
    ctx.stats
        .bump_route(route_label(req.method.as_str(), &segments));
    let store = ctx.store;
    match (req.method.as_str(), segments.as_slice()) {
        ("GET", ["health"]) => health(store),
        ("GET", ["healthz"]) => healthz(ctx),
        ("GET", ["metrics"]) => metrics_endpoint(ctx),
        ("GET", ["models"]) => list_models(store),
        ("PUT", ["models", name]) => fit_model(req, ctx, name),
        ("DELETE", ["models", name]) => {
            if store.remove(name) {
                // The streaming session buffers node ids of the deleted
                // graph; drop it with the model, along with its durable
                // state.
                ctx.sessions.remove(name);
                ctx.durability.remove_model(name);
                Response::json(200, format!("{{\"deleted\":\"{name}\"}}"))
            } else {
                Response::error(404, &format!("no model named {name:?}"))
            }
        }
        ("POST", ["models", name, "score"]) => with_model(reader, name, |m| score_endpoint(req, m)),
        ("POST", ["models", name, "features"]) => {
            with_model(reader, name, |m| features_endpoint(req, m))
        }
        ("POST", ["models", name, "predict"]) => {
            with_model(reader, name, |m| predict_endpoint(req, m))
        }
        ("POST", ["models", name, "batch"]) => with_model(reader, name, |m| batch_endpoint(req, m)),
        ("POST", ["models", name, "ingest"]) => ingest_endpoint(req, reader, ctx, name),
        ("GET", ["models", name, "graphoid"]) => {
            with_model(reader, name, |m| graphoid_endpoint(req, m))
        }
        ("GET", ["models", name, "render"]) => {
            with_model(reader, name, |m| render_endpoint(req, m))
        }
        ("GET", ["models", name, "stream-status"]) => stream_status_endpoint(reader, ctx, name),
        ("GET", ["models", name]) => with_model(reader, name, model_info),
        ("GET", ["debug", "sleep"]) => debug_sleep(req),
        (method, _) if !matches!(method, "GET" | "POST" | "PUT" | "DELETE") => {
            Response::error(405, &format!("method {method} not supported"))
        }
        _ => Response::error(404, &format!("no route for {} {}", req.method, req.path)),
    }
}

fn with_model(
    reader: &mut StoreReader<'_>,
    name: &str,
    f: impl FnOnce(&KGraphModel) -> Response,
) -> Response {
    match reader.get(name) {
        Some(model) => f(&model),
        None => Response::error(404, &format!("no model named {name:?}")),
    }
}

fn health(store: &ModelStore) -> Response {
    Response::json(
        200,
        format!(
            "{{\"status\":\"ok\",\"models\":{},\"bytes\":{}}}",
            store.len(),
            store.total_bytes()
        ),
    )
}

/// `GET /healthz` — readiness + recovery state. `"recovering"` (503) while
/// startup recovery runs, `"degraded"` (200 — reads still serve) when any
/// model is read-only, `"ok"` otherwise.
fn healthz(ctx: &RouteContext<'_>) -> Response {
    let degraded = ctx.durability.degraded_models();
    let (status, code) = if ctx.durability.is_recovering() {
        ("recovering", 503)
    } else if !degraded.is_empty() {
        ("degraded", 200)
    } else {
        ("ok", 200)
    };
    let mut body = format!(
        "{{\"status\":\"{status}\",\"durability\":{},\"models\":{},\"degraded\":[",
        ctx.durability.enabled(),
        ctx.store.len()
    );
    for (i, (name, reason)) in degraded.iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        body.push_str("{\"model\":");
        write_json_string(&mut body, name);
        body.push_str(",\"reason\":");
        write_json_string(&mut body, reason);
        body.push('}');
    }
    body.push_str("]}");
    Response::json(code, body)
}

fn list_models(store: &ModelStore) -> Response {
    let mut body = String::from("[");
    for (i, (name, bytes, k, best_len)) in store.list().into_iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        body.push_str("{\"name\":");
        write_json_string(&mut body, &name);
        body.push_str(&format!(
            ",\"bytes\":{bytes},\"k\":{k},\"best_length\":{best_len}}}"
        ));
    }
    body.push(']');
    Response::json(200, body)
}

fn model_info(model: &KGraphModel) -> Response {
    let layer = model.best();
    let score = &model.scores[model.best_layer];
    let mut body = String::from("{");
    body.push_str(&format!("\"k\":{},", model.k()));
    body.push_str(&format!("\"n_series\":{},", model.labels.len()));
    body.push_str(&format!("\"best_length\":{},", model.best_length()));
    body.push_str(&format!("\"n_layers\":{},", model.layers.len()));
    body.push_str(&format!(
        "\"nodes\":{},\"edges\":{},",
        layer.graph.node_count(),
        layer.graph.edge_count()
    ));
    body.push_str("\"wc\":");
    crate::json::write_json_f64(&mut body, score.wc);
    body.push_str(",\"we\":");
    crate::json::write_json_f64(&mut body, score.we);
    body.push_str(",\"lengths\":");
    let lengths: Vec<f64> = model.layers.iter().map(|l| l.length as f64).collect();
    body.push_str(&f64s_to_json(&lengths));
    body.push('}');
    Response::json(200, body)
}

/// `PUT /models/{name}` — fit on demand from a posted dataset (CSV rows or
/// JSON array-of-arrays), `?k=` clusters (default 2), `?seed=`,
/// `?n_lengths=`.
fn fit_model(req: &Request, ctx: &RouteContext<'_>, name: &str) -> Response {
    let store = ctx.store;
    let rows = match parse_series_batch(req) {
        Ok(rows) => rows,
        Err(resp) => return resp,
    };
    let k = match query_usize(req, "k", 2) {
        Ok(v) => v,
        Err(resp) => return resp,
    };
    let seed = match query_usize(req, "seed", 0) {
        Ok(v) => v,
        Err(resp) => return resp,
    };
    let n_lengths = match query_usize(req, "n_lengths", 3) {
        Ok(v) => v,
        Err(resp) => return resp,
    };
    if k < 1 || rows.len() < k {
        return Response::error(
            422,
            &format!("need at least k={k} series, got {}", rows.len()),
        );
    }
    let min_len = rows.iter().map(Vec::len).min().unwrap_or(0);
    if min_len < 8 {
        return Response::error(
            422,
            &format!("series too short to fit (min length {min_len}, need >= 8)"),
        );
    }
    let series: Vec<TimeSeries> = rows.into_iter().map(TimeSeries::new).collect();
    let dataset = Dataset::new(name, DatasetKind::Other, series);
    let cfg = KGraphConfig {
        n_lengths: n_lengths.clamp(1, 16),
        ..KGraphConfig::new(k)
    }
    .with_seed(seed as u64);
    let model = Arc::new(KGraph::new(cfg).fit(&dataset));
    let bytes = store.insert(name, Arc::clone(&model));
    // Make the fresh model durable (initial snapshot + empty WAL) so a
    // restart recovers it even before the first ingest.
    ctx.durability
        .persist_initial(name, &model, ctx.sessions.config());
    let mut body = String::from("{\"fitted\":");
    write_json_string(&mut body, name);
    body.push_str(&format!(",\"bytes\":{bytes}}}"));
    Response::json(201, body)
}

/// `POST /models/{name}/score?context=` — anomaly scores for one series.
fn score_endpoint(req: &Request, model: &KGraphModel) -> Response {
    let values = match parse_series(req) {
        Ok(v) => v,
        Err(resp) => return resp,
    };
    let context = match query_usize(req, "context", 5) {
        Ok(v) => v,
        Err(resp) => return resp,
    };
    match score_series(model, &values, context) {
        Ok(scores) if req.wants_csv() => {
            let mut csv = String::from("score\n");
            for s in &scores {
                csv.push_str(&format!("{s}\n"));
            }
            Response::csv(200, csv)
        }
        Ok(scores) => Response::json(200, format!("{{\"scores\":{}}}", f64s_to_json(&scores))),
        Err(e) => error_response(&e),
    }
}

/// `POST /models/{name}/features` — crossing-feature vector of one series.
fn features_endpoint(req: &Request, model: &KGraphModel) -> Response {
    let values = match parse_series(req) {
        Ok(v) => v,
        Err(resp) => return resp,
    };
    match features_series(model, &values) {
        Ok(features) if req.wants_csv() => {
            let mut csv = String::from("feature\n");
            for f in &features {
                csv.push_str(&format!("{f}\n"));
            }
            Response::csv(200, csv)
        }
        Ok(features) => {
            Response::json(200, format!("{{\"features\":{}}}", f64s_to_json(&features)))
        }
        Err(e) => error_response(&e),
    }
}

/// `POST /models/{name}/predict` — cluster assignment of one series.
fn predict_endpoint(req: &Request, model: &KGraphModel) -> Response {
    let values = match parse_series(req) {
        Ok(v) => v,
        Err(resp) => return resp,
    };
    match predict_series(model, &values) {
        Ok(cluster) => Response::json(200, format!("{{\"cluster\":{cluster}}}")),
        Err(e) => error_response(&e),
    }
}

/// `POST /models/{name}/batch?op=score|features|predict&context=` — many
/// series in one request, fanned over a bounded worker pool. Per-row
/// failures do not fail the batch: each result slot is either the row's
/// payload or an `{"error": …}` object.
fn batch_endpoint(req: &Request, model: &KGraphModel) -> Response {
    let rows = match parse_series_batch(req) {
        Ok(rows) => rows,
        Err(resp) => return resp,
    };
    let op = req.query_param("op").unwrap_or("score");
    let context = match query_usize(req, "context", 5) {
        Ok(v) => v,
        Err(resp) => return resp,
    };
    if !matches!(op, "score" | "features" | "predict") {
        return Response::error(400, &format!("unknown batch op {op:?}"));
    }

    // Fan rows over a bounded pool: one worker per hardware thread at
    // most, each writing results into its disjoint slot chunk — the same
    // discipline as `KGraph::fit` and `feature_rows_for_paths`. Row order
    // is preserved, so the response is bit-identical to issuing the rows
    // as individual requests in order.
    let run_row = |values: &[f64]| -> Result<String, TsError> {
        match op {
            "score" => score_series(model, values, context)
                .map(|s| format!("{{\"scores\":{}}}", f64s_to_json(&s))),
            "features" => features_series(model, values)
                .map(|f| format!("{{\"features\":{}}}", f64s_to_json(&f))),
            _ => predict_series(model, values).map(|c| format!("{{\"cluster\":{c}}}")),
        }
    };
    let hw = std::thread::available_parallelism().map_or(1, |p| p.get());
    let workers = hw.min(rows.len());
    let mut slots: Vec<Option<Result<String, TsError>>> = vec![None; rows.len()];
    if workers > 1 {
        let chunk = rows.len().div_ceil(workers);
        crossbeam::thread::scope(|scope| {
            for (slot_chunk, row_chunk) in slots.chunks_mut(chunk).zip(rows.chunks(chunk)) {
                scope.spawn(move |_| {
                    for (slot, row) in slot_chunk.iter_mut().zip(row_chunk) {
                        *slot = Some(run_row(row));
                    }
                });
            }
        })
        .expect("batch row job panicked");
    } else {
        for (slot, row) in slots.iter_mut().zip(&rows) {
            *slot = Some(run_row(row));
        }
    }

    let mut body = String::from("{\"results\":[");
    for (i, slot) in slots.into_iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        match slot.expect("every slot filled") {
            Ok(payload) => body.push_str(&payload),
            Err(e) => {
                body.push_str("{\"error\":");
                write_json_string(&mut body, &e.to_string());
                body.push_str(&format!(",\"status\":{}}}", status_for(&e)));
            }
        }
    }
    body.push_str("]}");
    Response::json(200, body)
}

/// `GET /models/{name}/graphoid?cluster=&kind=gamma|lambda&threshold=` —
/// the interpretable subgraph of one cluster.
fn graphoid_endpoint(req: &Request, model: &KGraphModel) -> Response {
    let cluster = match query_usize(req, "cluster", 0) {
        Ok(v) => v,
        Err(resp) => return resp,
    };
    if cluster >= model.k() {
        return Response::error(
            422,
            &format!("cluster {cluster} out of range 0..{}", model.k()),
        );
    }
    let threshold = match query_f64(req, "threshold", 0.7) {
        Ok(v) => v,
        Err(resp) => return resp,
    };
    let kind = req.query_param("kind").unwrap_or("gamma");
    let stats = model.best_stats();
    let graphoid = match kind {
        "gamma" => gamma_graphoid(&stats, model.best(), cluster, threshold),
        "lambda" => lambda_graphoid(&stats, model.best(), cluster, threshold),
        other => return Response::error(400, &format!("unknown graphoid kind {other:?}")),
    };
    let graph = &model.best().graph;
    let mut body = String::from("{");
    body.push_str(&format!(
        "\"cluster\":{cluster},\"kind\":\"{kind}\",\"threshold\":"
    ));
    crate::json::write_json_f64(&mut body, threshold);
    body.push_str(",\"nodes\":[");
    for (i, n) in graphoid.nodes.iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        body.push_str(&format!("{}", n.index()));
    }
    body.push_str("],\"edges\":[");
    for (i, e) in graphoid.edges.iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        let (s, t) = graph.endpoints(*e);
        body.push_str(&format!(
            "{{\"src\":{},\"dst\":{},\"weight\":",
            s.index(),
            t.index()
        ));
        crate::json::write_json_f64(&mut body, *graph.edge(*e));
        body.push('}');
    }
    body.push_str("]}");
    Response::json(200, body)
}

/// Hard ceiling on the SVG element count any single render may cost the
/// server. Requests whose *explicit* detail level would exceed it are
/// refused with 413 before any layout work happens — that is the
/// admission-control contract: a render request has bounded cost no
/// matter how large the model is.
const MAX_RENDER_ELEMENTS: usize = 50_000;

/// Default render budget when the client does not pass `?budget=`. Small
/// models resolve to full detail well inside it (so existing clients see
/// byte-identical output); 10k+-node layers degrade to aggregated or
/// glyph detail instead of emitting multi-megabyte documents.
const DEFAULT_RENDER_BUDGET: usize = 20_000;

/// `GET /models/{name}/render?format=svg|ascii&detail=&layout=&budget=`
/// — the Graph frame, rendered headlessly from the shared model.
///
/// * `detail` — `auto` (default) | `full` | `aggregated` | `glyph`.
///   `auto` degrades until the element budget fits.
/// * `layout` — `auto` (default) | `circular` | `exact` | `bh`.
/// * `budget` — element cap for `auto` detail, clamped to the server's
///   hard ceiling.
///
/// The response carries `x-render-elements` with the emitted element
/// count so smoke tests (and clients) can verify the budget held.
fn render_endpoint(req: &Request, model: &KGraphModel) -> Response {
    match req.query_param("format").unwrap_or("svg") {
        "svg" => {
            let detail = match req.query_param("detail") {
                None => DetailLevel::Auto,
                Some(s) => match DetailLevel::parse(s) {
                    Some(d) => d,
                    None => return Response::error(400, &format!("unknown detail level {s:?}")),
                },
            };
            let engine = match req.query_param("layout") {
                None => LayoutEngine::Auto,
                Some(s) => match LayoutEngine::parse(s) {
                    Some(e) => e,
                    None => return Response::error(400, &format!("unknown layout engine {s:?}")),
                },
            };
            let budget = match query_usize(req, "budget", DEFAULT_RENDER_BUDGET) {
                Ok(v) => v.clamp(1, MAX_RENDER_ELEMENTS),
                Err(resp) => return resp,
            };
            // Admission control: an explicit detail level states its cost
            // up front; refuse before spending any layout time on it.
            let g = &model.best().graph;
            let k = model.k();
            let fixed = 3 + 2 * k;
            let estimate = match detail {
                DetailLevel::Full => fixed + 3 * g.edge_count() + g.node_count(),
                // The direct-edge quota self-limits to the budget (≤ the
                // ceiling); nodes are the irreducible cost.
                DetailLevel::Aggregated => fixed + g.node_count() + k + 1,
                // Auto degrades to fit the (clamped) budget; Glyph is O(k).
                DetailLevel::Auto | DetailLevel::Glyph => 0,
            };
            if estimate > MAX_RENDER_ELEMENTS {
                return Response::error(
                    413,
                    &format!(
                        "detail level would emit ~{estimate} elements (limit {MAX_RENDER_ELEMENTS}); use detail=auto"
                    ),
                );
            }
            let (svg, elements) = GraphFrame::with_auto_thresholds(model).render_graph_with(
                engine,
                detail,
                RenderBudget::capped(budget),
            );
            Response::svg(svg).with_header("x-render-elements", elements.to_string())
        }
        "ascii" => {
            let layer = model.best();
            let mut text = format!(
                "k-Graph model: k={} ℓ̄={} nodes={} edges={}\n",
                model.k(),
                model.best_length(),
                layer.graph.node_count(),
                layer.graph.edge_count()
            );
            text.push_str(&graphint::ascii::partition_summary(&model.labels));
            text.push('\n');
            // The most central patterns, as sparklines.
            let frame = GraphFrame::with_auto_thresholds(model);
            for &n in frame.exploration_order().iter().take(5) {
                let pattern = &layer.graph.node(tsgraph::NodeId(n as u32)).pattern;
                text.push_str(&format!(
                    "node {n:>3} {}\n",
                    graphint::ascii::sparkline(pattern)
                ));
            }
            Response::text(200, text)
        }
        other => Response::error(400, &format!("unknown render format {other:?}")),
    }
}

// ---------------------------------------------------------------------------
// Streaming ingest
// ---------------------------------------------------------------------------

/// Ingest body: `{"series": 0, "points": [...]}` selects the series
/// in-band; a bare JSON array or a CSV row carries points only and the
/// series index comes from `?series=` (default 0).
fn parse_ingest(req: &Request) -> Result<(Option<usize>, Vec<f64>), Response> {
    let text = body_str(req)?;
    let (index, points) = if is_json_body(req) {
        let v = Json::parse(text).map_err(|e| Response::error(400, &e))?;
        if let Some(points) = v.get("points") {
            let index = match v.get("series") {
                None => None,
                Some(s) => Some(
                    s.as_f64()
                        .filter(|f| f.fract() == 0.0 && *f >= 0.0)
                        .ok_or_else(|| {
                            Response::error(400, "series must be a non-negative integer")
                        })? as usize,
                ),
            };
            let points = points.to_f64s().map_err(|e| Response::error(400, &e))?;
            (index, points)
        } else {
            let arr = v.get("series").unwrap_or(&v);
            (None, arr.to_f64s().map_err(|e| Response::error(400, &e))?)
        }
    } else {
        (
            None,
            parse_csv_row(text).map_err(|e| Response::error(400, &e))?,
        )
    };
    if points.is_empty() {
        return Err(Response::error(400, "empty points"));
    }
    Ok((index, points))
}

/// `POST /models/{name}/ingest?series=` — appends points to an open
/// series of the model's streaming session. New complete windows are
/// routed through the stored embeddings and buffered as transition
/// triples; the session's refresh cadence rescores against the merged
/// base+delta view, and its compaction cadence publishes a fresh base CSR
/// back into the store. Readers are never blocked: they keep scoring
/// whatever `Arc` snapshot they hold.
fn ingest_endpoint(
    req: &Request,
    reader: &mut StoreReader<'_>,
    ctx: &RouteContext<'_>,
    name: &str,
) -> Response {
    let model = match reader.get(name) {
        Some(model) => model,
        None => return Response::error(404, &format!("no model named {name:?}")),
    };
    let (body_index, points) = match parse_ingest(req) {
        Ok(parsed) => parsed,
        Err(resp) => return resp,
    };
    let index = match body_index {
        Some(i) => i,
        None => match query_usize(req, "series", 0) {
            Ok(i) => i,
            Err(resp) => return resp,
        },
    };
    let session = ctx.sessions.session_for(name, &model);
    let mut guard = session.lock().unwrap_or_else(|e| e.into_inner());
    // Definitely-invalid appends are refused *before* the WAL sees them:
    // a journaled record must be replayable.
    if index > guard.open_series() {
        return error_response(&TsError::InvalidParameter(format!(
            "series index {index} out of range (session has {}; the next new index is {})",
            guard.open_series(),
            guard.open_series()
        )));
    }
    // Journal first, apply second, both under the session lock — the WAL
    // order is the apply order. A WAL failure refuses the ingest without
    // touching the session, so the two can never silently diverge.
    let wal_seq = match ctx.durability.log_ingest(name, index as u32, &points) {
        IngestLog::Logged { seq } => seq,
        IngestLog::Unavailable { reason } => {
            return Response::error(503, &format!("ingest journal unavailable: {reason}"))
                .with_header("retry-after", "1".to_string());
        }
        IngestLog::Degraded { reason } => {
            return Response::error(
                503,
                &format!("model {name:?} is degraded read-only: {reason}"),
            );
        }
    };
    match guard.append(index, &points) {
        Ok(outcome) => {
            if let Some(next) = &outcome.compacted {
                // Publish the compacted base: a new snapshot version for
                // future readers; in-flight readers keep the old Arc.
                ctx.store.insert(name, Arc::clone(next));
            }
            // Snapshot on the refresh cadence (still under the session
            // lock, so the pair is a consistent point-in-time image).
            ctx.durability.after_append(name, &guard, outcome.refreshed);
            Response::json(
                200,
                format!(
                    "{{\"series\":{index},\"appended\":{},\"new_windows\":{},\
                     \"refreshed\":{},\"compacted\":{}}}",
                    points.len(),
                    outcome.new_windows,
                    outcome.refreshed,
                    outcome.compacted.is_some()
                ),
            )
        }
        Err(e) => {
            // The journal holds a record the session refused: revoke it
            // (still under the session lock) so replay can never apply
            // what the live session did not.
            ctx.durability.revoke_ingest(name, wal_seq);
            error_response(&e)
        }
    }
}

fn stream_status_json(status: &StreamStatus) -> String {
    let mut body = String::from("{\"active\":true,");
    body.push_str(&format!(
        "\"points_total\":{},\"points_pending\":{},\"refreshes\":{},\
         \"compactions\":{},\"pending_triples\":{},\"delta_edges\":{},",
        status.points_total,
        status.points_pending,
        status.refreshes,
        status.compactions,
        status.pending_triples,
        status.delta_edges
    ));
    body.push_str("\"series\":[");
    for (i, s) in status.series.iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        body.push_str(&format!(
            "{{\"index\":{},\"points\":{},\"windows\":{},\"mean_score\":",
            s.index, s.points, s.windows
        ));
        match s.mean_score {
            Some(v) => crate::json::write_json_f64(&mut body, v),
            None => body.push_str("null"),
        }
        body.push_str(",\"max_score\":");
        match s.max_score {
            Some(v) => crate::json::write_json_f64(&mut body, v),
            None => body.push_str("null"),
        }
        body.push('}');
    }
    body.push_str("]}");
    body
}

/// `GET /models/{name}/stream-status` — the model's streaming-session
/// summary, or `{"active":false}` when nothing has been ingested yet.
fn stream_status_endpoint(
    reader: &mut StoreReader<'_>,
    ctx: &RouteContext<'_>,
    name: &str,
) -> Response {
    if reader.get(name).is_none() {
        return Response::error(404, &format!("no model named {name:?}"));
    }
    match ctx.sessions.get(name) {
        None => Response::json(200, "{\"active\":false,\"series\":[]}".to_string()),
        Some(session) => {
            let status = session.lock().unwrap_or_else(|e| e.into_inner()).status();
            Response::json(200, stream_status_json(&status))
        }
    }
}

/// `GET /metrics` — plain-text counters: admission-control totals, queue
/// depth high-water, per-route request counts, store and session gauges.
fn metrics_endpoint(ctx: &RouteContext<'_>) -> Response {
    use std::sync::atomic::Ordering;
    let stats = ctx.stats;
    let mut out = String::new();
    out.push_str(&format!(
        "graphserve_requests_admitted_total {}\n",
        stats.admitted.load(Ordering::Relaxed)
    ));
    out.push_str(&format!(
        "graphserve_requests_shed_total {}\n",
        stats.shed.load(Ordering::Relaxed)
    ));
    out.push_str(&format!(
        "graphserve_responses_served_total {}\n",
        stats.served.load(Ordering::Relaxed)
    ));
    out.push_str(&format!(
        "graphserve_queue_depth_high_water {}\n",
        stats.queue_high_water.load(Ordering::Relaxed)
    ));
    for (label, count) in stats.route_counts() {
        out.push_str(&format!(
            "graphserve_route_requests_total{{route=\"{label}\"}} {count}\n"
        ));
    }
    out.push_str(&format!("graphserve_models {}\n", ctx.store.len()));
    out.push_str(&format!(
        "graphserve_model_bytes {}\n",
        ctx.store.total_bytes()
    ));
    out.push_str(&format!(
        "graphserve_stream_sessions {}\n",
        ctx.sessions.len()
    ));
    out.push_str(&format!(
        "graphserve_durability_enabled {}\n",
        u8::from(ctx.durability.enabled())
    ));
    let d = ctx.durability.counters();
    for (name, value) in [
        ("wal_records_written_total", &d.wal_records_written),
        ("wal_records_replayed_total", &d.wal_records_replayed),
        ("wal_records_truncated_total", &d.wal_records_truncated),
        ("wal_syncs_total", &d.wal_syncs),
        ("snapshots_written_total", &d.snapshots_written),
        ("snapshot_failures_total", &d.snapshot_failures),
        ("io_retries_total", &d.io_retries),
        ("records_since_snapshot", &d.records_since_snapshot),
        ("recovery_duration_ms", &d.recovery_duration_ms),
        ("models_recovered", &d.models_recovered),
        ("models_degraded", &d.models_degraded),
    ] {
        out.push_str(&format!(
            "graphserve_{name} {}\n",
            value.load(Ordering::Relaxed)
        ));
    }
    Response::text(200, out)
}

/// `GET /debug/sleep?ms=` — parks the worker briefly; exists so operators
/// (and the integration tests) can exercise admission control on demand.
fn debug_sleep(req: &Request) -> Response {
    let ms = match query_usize(req, "ms", 50) {
        Ok(v) => v,
        Err(resp) => return resp,
    };
    let ms = (ms as u64).min(MAX_SLEEP_MS);
    std::thread::sleep(std::time::Duration::from_millis(ms));
    Response::json(200, format!("{{\"slept_ms\":{ms}}}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request(method: &str, target: &str, body: &[u8]) -> Request {
        let raw = format!(
            "{method} {target} HTTP/1.1\r\ncontent-length: {}\r\n\r\n",
            body.len()
        );
        let mut bytes = raw.into_bytes();
        bytes.extend_from_slice(body);
        Request::read_from(&mut std::io::Cursor::new(bytes), 1 << 20).unwrap()
    }

    /// Store + session registry + stats + durability, so the tests below
    /// can keep the old three-argument call shape via the local `handle`
    /// wrapper.
    struct TestCtx {
        store: ModelStore,
        sessions: SessionRegistry,
        stats: ServerStats,
        durability: Durability,
    }

    impl TestCtx {
        fn reader(&self) -> StoreReader<'_> {
            self.store.reader()
        }
    }

    /// Shadows `super::handle`: adapts a [`TestCtx`] into a
    /// [`RouteContext`].
    fn handle(req: &Request, reader: &mut StoreReader<'_>, ctx: &TestCtx) -> Response {
        super::handle(
            req,
            reader,
            &RouteContext {
                store: &ctx.store,
                sessions: &ctx.sessions,
                stats: &ctx.stats,
                durability: &ctx.durability,
            },
        )
    }

    fn demo_store() -> TestCtx {
        let store = ModelStore::new(0);
        let series: Vec<TimeSeries> = (0..8)
            .map(|p| TimeSeries::new((0..80).map(|i| ((i + p) as f64 * 0.3).sin()).collect()))
            .collect();
        let ds = Dataset::new("demo", DatasetKind::Simulated, series);
        let cfg = KGraphConfig {
            n_lengths: 1,
            psi: 10,
            pca_sample: 300,
            n_init: 2,
            ..KGraphConfig::new(2)
        }
        .with_lengths(vec![16]);
        store.insert("demo", Arc::new(KGraph::new(cfg).fit(&ds)));
        TestCtx {
            store,
            sessions: SessionRegistry::new(streamfit::StreamConfig::default()),
            stats: ServerStats::default(),
            durability: Durability::disabled(),
        }
    }

    fn body_text(resp: &Response) -> &str {
        std::str::from_utf8(&resp.body).unwrap()
    }

    #[test]
    fn health_and_listing() {
        let store = demo_store();
        let mut reader = store.reader();
        let resp = handle(&request("GET", "/health", b""), &mut reader, &store);
        assert_eq!(resp.status, 200);
        assert!(body_text(&resp).contains("\"models\":1"));
        let resp = handle(&request("GET", "/models", b""), &mut reader, &store);
        assert!(body_text(&resp).contains("\"name\":\"demo\""));
        let resp = handle(&request("GET", "/models/demo", b""), &mut reader, &store);
        assert!(body_text(&resp).contains("\"best_length\":16"));
    }

    #[test]
    fn score_json_and_csv() {
        let store = demo_store();
        let mut reader = store.reader();
        let series: Vec<f64> = (0..80).map(|i| (i as f64 * 0.3).sin()).collect();
        let body = crate::json::f64s_to_json(&series);
        let resp = handle(
            &request("POST", "/models/demo/score?context=3", body.as_bytes()),
            &mut reader,
            &store,
        );
        assert_eq!(resp.status, 200, "{}", body_text(&resp));
        assert!(body_text(&resp).starts_with("{\"scores\":["));

        // CSV body, CSV accept.
        let csv_body: String = series
            .iter()
            .map(f64::to_string)
            .collect::<Vec<_>>()
            .join(",");
        let raw = format!(
            "POST /models/demo/score HTTP/1.1\r\naccept: text/csv\r\ncontent-length: {}\r\n\r\n{csv_body}",
            csv_body.len()
        );
        let req = Request::read_from(&mut std::io::Cursor::new(raw.into_bytes()), 1 << 20).unwrap();
        let resp = handle(&req, &mut reader, &store);
        assert_eq!(resp.status, 200);
        assert!(body_text(&resp).starts_with("score\n"));
    }

    #[test]
    fn short_series_is_422_unknown_model_404() {
        let store = demo_store();
        let mut reader = store.reader();
        let resp = handle(
            &request("POST", "/models/demo/score", b"[1,2,3]"),
            &mut reader,
            &store,
        );
        assert_eq!(resp.status, 422);
        assert!(body_text(&resp).contains("too short"));
        let resp = handle(
            &request("POST", "/models/nope/score", b"[1,2,3]"),
            &mut reader,
            &store,
        );
        assert_eq!(resp.status, 404);
    }

    #[test]
    fn bad_bodies_are_400() {
        let store = demo_store();
        let mut reader = store.reader();
        for body in [&b"{\"series\": \"x\"}"[..], b"not,numbers,at,all", b"[1,2,"] {
            let resp = handle(
                &request("POST", "/models/demo/score", body),
                &mut reader,
                &store,
            );
            assert_eq!(resp.status, 400, "body {body:?}: {}", body_text(&resp));
        }
    }

    #[test]
    fn batch_matches_single_requests_bit_for_bit() {
        let store = demo_store();
        let mut reader = store.reader();
        let rows: Vec<Vec<f64>> = (0..5)
            .map(|p| (0..80).map(|i| ((i + p) as f64 * 0.3).sin()).collect())
            .collect();
        for op in ["score", "features", "predict"] {
            let mut batch_body = String::from("[");
            for (i, row) in rows.iter().enumerate() {
                if i > 0 {
                    batch_body.push(',');
                }
                batch_body.push_str(&crate::json::f64s_to_json(row));
            }
            batch_body.push(']');
            let resp = handle(
                &request(
                    "POST",
                    &format!("/models/demo/batch?op={op}&context=3"),
                    batch_body.as_bytes(),
                ),
                &mut reader,
                &store,
            );
            assert_eq!(resp.status, 200, "{}", body_text(&resp));
            let batch = Json::parse(body_text(&resp)).unwrap();
            let results = batch.get("results").unwrap().as_arr().unwrap();
            assert_eq!(results.len(), rows.len());
            for (row, result) in rows.iter().zip(results) {
                let single = handle(
                    &request(
                        "POST",
                        &format!("/models/demo/{op}?context=3"),
                        crate::json::f64s_to_json(row).as_bytes(),
                    ),
                    &mut reader,
                    &store,
                );
                let single = Json::parse(body_text(&single)).unwrap();
                assert_eq!(*result, single, "batch row differs from single {op}");
            }
        }
    }

    #[test]
    fn batch_isolates_per_row_errors() {
        let store = demo_store();
        let mut reader = store.reader();
        // Second row is too short; first and third must still succeed.
        let good: Vec<f64> = (0..80).map(|i| (i as f64 * 0.3).sin()).collect();
        let body = format!(
            "[{},[1,2,3],{}]",
            crate::json::f64s_to_json(&good),
            crate::json::f64s_to_json(&good)
        );
        let resp = handle(
            &request("POST", "/models/demo/batch?op=predict", body.as_bytes()),
            &mut reader,
            &store,
        );
        assert_eq!(resp.status, 200);
        let parsed = Json::parse(body_text(&resp)).unwrap();
        let results = parsed.get("results").unwrap().as_arr().unwrap();
        assert!(results[0].get("cluster").is_some());
        assert!(results[1].get("error").is_some());
        assert_eq!(results[1].get("status").unwrap().as_f64(), Some(422.0));
        assert!(results[2].get("cluster").is_some());
    }

    #[test]
    fn graphoid_and_render() {
        let store = demo_store();
        let mut reader = store.reader();
        let resp = handle(
            &request(
                "GET",
                "/models/demo/graphoid?cluster=0&kind=gamma&threshold=0.1",
                b"",
            ),
            &mut reader,
            &store,
        );
        assert_eq!(resp.status, 200);
        assert!(body_text(&resp).contains("\"nodes\":["));
        let resp = handle(
            &request("GET", "/models/demo/graphoid?cluster=9", b""),
            &mut reader,
            &store,
        );
        assert_eq!(resp.status, 422);

        let resp = handle(
            &request("GET", "/models/demo/render?format=svg", b""),
            &mut reader,
            &store,
        );
        assert_eq!(resp.status, 200);
        assert!(body_text(&resp).contains("<svg"));
        let resp = handle(
            &request("GET", "/models/demo/render?format=ascii", b""),
            &mut reader,
            &store,
        );
        assert_eq!(resp.status, 200);
        assert!(body_text(&resp).contains("k-Graph model"));
    }

    #[test]
    fn fit_on_demand_then_serve() {
        let store = demo_store();
        let mut reader = store.reader();
        let rows: Vec<String> = (0..6)
            .map(|p| {
                (0..40)
                    .map(|i| ((i + p) as f64 * 0.4).sin().to_string())
                    .collect::<Vec<_>>()
                    .join(",")
            })
            .collect();
        let body = rows.join("\n");
        let resp = handle(
            &request("PUT", "/models/fresh?k=2&seed=7", body.as_bytes()),
            &mut reader,
            &store,
        );
        assert_eq!(resp.status, 201, "{}", body_text(&resp));
        let series: Vec<f64> = (0..40).map(|i| (i as f64 * 0.4).sin()).collect();
        let resp = handle(
            &request(
                "POST",
                "/models/fresh/predict",
                crate::json::f64s_to_json(&series).as_bytes(),
            ),
            &mut reader,
            &store,
        );
        assert_eq!(resp.status, 200, "{}", body_text(&resp));
        // And delete it again.
        let resp = handle(
            &request("DELETE", "/models/fresh", b""),
            &mut reader,
            &store,
        );
        assert_eq!(resp.status, 200);
        // Fit rejects short series.
        let resp = handle(
            &request("PUT", "/models/tiny", b"1,2\n3,4"),
            &mut reader,
            &store,
        );
        assert_eq!(resp.status, 422);
    }

    #[test]
    fn unknown_routes_and_methods() {
        let store = demo_store();
        let mut reader = store.reader();
        let resp = handle(&request("GET", "/nope", b""), &mut reader, &store);
        assert_eq!(resp.status, 404);
        let resp = handle(&request("PATCH", "/models/demo", b""), &mut reader, &store);
        assert_eq!(resp.status, 405);
    }

    #[test]
    fn ingest_and_stream_status() {
        let store = demo_store();
        let mut reader = store.reader();
        // Before any ingest: model exists, session does not.
        let resp = handle(
            &request("GET", "/models/demo/stream-status", b""),
            &mut reader,
            &store,
        );
        assert_eq!(resp.status, 200);
        assert!(body_text(&resp).contains("\"active\":false"));

        // Ingest a full wave via the object form.
        let points: Vec<f64> = (0..60).map(|i| (i as f64 * 0.3).sin()).collect();
        let body = format!("{{\"series\":0,\"points\":{}}}", f64s_to_json(&points));
        let resp = handle(
            &request("POST", "/models/demo/ingest", body.as_bytes()),
            &mut reader,
            &store,
        );
        assert_eq!(resp.status, 200, "{}", body_text(&resp));
        let parsed = Json::parse(body_text(&resp)).unwrap();
        assert_eq!(parsed.get("series").unwrap().as_f64(), Some(0.0));
        assert_eq!(parsed.get("appended").unwrap().as_f64(), Some(60.0));
        assert!(parsed.get("new_windows").unwrap().as_f64().unwrap() > 0.0);

        // CSV body with ?series= opens a second series.
        let csv: String = points
            .iter()
            .map(f64::to_string)
            .collect::<Vec<_>>()
            .join(",");
        let resp = handle(
            &request("POST", "/models/demo/ingest?series=1", csv.as_bytes()),
            &mut reader,
            &store,
        );
        assert_eq!(resp.status, 200, "{}", body_text(&resp));

        let resp = handle(
            &request("GET", "/models/demo/stream-status", b""),
            &mut reader,
            &store,
        );
        assert_eq!(resp.status, 200);
        let status = Json::parse(body_text(&resp)).unwrap();
        assert_eq!(status.get("points_total").unwrap().as_f64(), Some(120.0));
        assert_eq!(
            status.get("series").unwrap().as_arr().map(|s| s.len()),
            Some(2)
        );

        // Out-of-range series index maps to 422; bad bodies to 400.
        let resp = handle(
            &request("POST", "/models/demo/ingest?series=9", b"[1,2,3]"),
            &mut reader,
            &store,
        );
        assert_eq!(resp.status, 422, "{}", body_text(&resp));
        let resp = handle(
            &request("POST", "/models/demo/ingest", b"{\"points\":[]}"),
            &mut reader,
            &store,
        );
        assert_eq!(resp.status, 400);
        let resp = handle(
            &request("POST", "/models/nope/ingest", b"[1,2]"),
            &mut reader,
            &store,
        );
        assert_eq!(resp.status, 404);
    }

    #[test]
    fn delete_drops_the_stream_session() {
        let store = demo_store();
        let mut reader = store.reader();
        let points: Vec<f64> = (0..40).map(|i| (i as f64 * 0.3).sin()).collect();
        let resp = handle(
            &request(
                "POST",
                "/models/demo/ingest",
                f64s_to_json(&points).as_bytes(),
            ),
            &mut reader,
            &store,
        );
        assert_eq!(resp.status, 200, "{}", body_text(&resp));
        assert_eq!(store.sessions.len(), 1);
        let resp = handle(&request("DELETE", "/models/demo", b""), &mut reader, &store);
        assert_eq!(resp.status, 200);
        assert!(store.sessions.is_empty(), "session died with its model");
    }

    #[test]
    fn metrics_reports_route_counts() {
        let store = demo_store();
        let mut reader = store.reader();
        for _ in 0..3 {
            handle(&request("GET", "/health", b""), &mut reader, &store);
        }
        handle(&request("GET", "/nope", b""), &mut reader, &store);
        let resp = handle(&request("GET", "/metrics", b""), &mut reader, &store);
        assert_eq!(resp.status, 200);
        let text = body_text(&resp);
        assert!(
            text.contains("graphserve_route_requests_total{route=\"health\"} 3"),
            "{text}"
        );
        assert!(
            text.contains("graphserve_route_requests_total{route=\"other\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("graphserve_route_requests_total{route=\"metrics\"} 1"),
            "{text}"
        );
        assert!(text.contains("graphserve_models 1"), "{text}");
        assert!(
            text.contains("graphserve_queue_depth_high_water 0"),
            "{text}"
        );
    }
}
