//! Minimal HTTP/1.1 message handling over blocking streams.
//!
//! The image has no async runtime or HTTP crates, so this is a small,
//! strict subset of RFC 9112 — exactly what the server and its tests
//! need: one request per connection (`Connection: close` semantics),
//! request-line + headers + `Content-Length` body, and length-delimited
//! responses. Limits are enforced while reading so a malformed or hostile
//! peer cannot balloon memory.

use std::io::{Read, Write};

/// Hard cap on the request head (request line + headers).
const MAX_HEAD_BYTES: usize = 16 * 1024;

/// A parse-level failure, mapped by the caller onto a 4xx response.
#[derive(Debug)]
pub enum HttpError {
    /// Connection closed or timed out mid-request.
    Io(std::io::Error),
    /// Malformed request line / headers / length.
    Malformed(String),
    /// Declared body exceeds the configured maximum.
    BodyTooLarge {
        /// Declared `Content-Length`.
        declared: usize,
        /// Configured cap.
        limit: usize,
    },
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Io(e) => write!(f, "io: {e}"),
            HttpError::Malformed(m) => write!(f, "malformed request: {m}"),
            HttpError::BodyTooLarge { declared, limit } => {
                write!(f, "body of {declared} bytes exceeds limit {limit}")
            }
        }
    }
}

/// A parsed request.
#[derive(Debug)]
pub struct Request {
    /// Upper-cased method (`GET`, `POST`, …).
    pub method: String,
    /// Decoded path without the query string (e.g. `/models/cbf/score`).
    pub path: String,
    /// Query parameters in order of appearance.
    pub query: Vec<(String, String)>,
    /// Headers with lower-cased names.
    pub headers: Vec<(String, String)>,
    /// Raw body bytes.
    pub body: Vec<u8>,
}

impl Request {
    /// Reads and parses one request from `stream`, refusing bodies larger
    /// than `max_body`.
    pub fn read_from(stream: &mut impl Read, max_body: usize) -> Result<Request, HttpError> {
        // Read byte-wise until the blank line; the head is tiny and the
        // stream is buffered by the kernel, so this stays simple and never
        // over-reads into the body.
        let mut head = Vec::with_capacity(256);
        let mut byte = [0u8; 1];
        while !head.ends_with(b"\r\n\r\n") {
            if head.len() >= MAX_HEAD_BYTES {
                return Err(HttpError::Malformed("request head too large".into()));
            }
            match stream.read(&mut byte) {
                Ok(0) => {
                    return Err(HttpError::Malformed("connection closed mid-head".into()));
                }
                Ok(_) => head.push(byte[0]),
                Err(e) => return Err(HttpError::Io(e)),
            }
        }
        let head = String::from_utf8(head)
            .map_err(|_| HttpError::Malformed("head is not UTF-8".into()))?;
        let mut lines = head.split("\r\n");
        let request_line = lines
            .next()
            .ok_or_else(|| HttpError::Malformed("empty head".into()))?;
        let mut parts = request_line.split(' ');
        let method = parts
            .next()
            .filter(|m| !m.is_empty())
            .ok_or_else(|| HttpError::Malformed("missing method".into()))?
            .to_ascii_uppercase();
        let target = parts
            .next()
            .ok_or_else(|| HttpError::Malformed("missing request target".into()))?;
        match parts.next() {
            Some(v) if v.starts_with("HTTP/1.") => {}
            _ => return Err(HttpError::Malformed("expected HTTP/1.x version".into())),
        }

        let (path, query_str) = match target.split_once('?') {
            Some((p, q)) => (p, q),
            None => (target, ""),
        };
        let query = query_str
            .split('&')
            .filter(|kv| !kv.is_empty())
            .map(|kv| match kv.split_once('=') {
                Some((k, v)) => (k.to_string(), v.to_string()),
                None => (kv.to_string(), String::new()),
            })
            .collect();

        let mut headers = Vec::new();
        for line in lines {
            if line.is_empty() {
                continue;
            }
            let (name, value) = line
                .split_once(':')
                .ok_or_else(|| HttpError::Malformed(format!("bad header line {line:?}")))?;
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
        }

        let mut req = Request {
            method,
            path: path.to_string(),
            query,
            headers,
            body: Vec::new(),
        };
        let declared = match req.header("content-length") {
            Some(v) => v
                .parse::<usize>()
                .map_err(|_| HttpError::Malformed(format!("bad content-length {v:?}")))?,
            None => 0,
        };
        if declared > max_body {
            return Err(HttpError::BodyTooLarge {
                declared,
                limit: max_body,
            });
        }
        let mut body = vec![0u8; declared];
        stream.read_exact(&mut body).map_err(HttpError::Io)?;
        req.body = body;
        Ok(req)
    }

    /// First header with the given lower-case name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// First query parameter with the given name.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the client prefers CSV responses (`Accept: text/csv`).
    pub fn wants_csv(&self) -> bool {
        self.header("accept")
            .is_some_and(|a| a.contains("text/csv"))
    }
}

/// A response under construction.
#[derive(Debug)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Extra headers beyond `Content-Type`/`Content-Length`/`Connection`.
    pub headers: Vec<(String, String)>,
    /// Media type of the body.
    pub content_type: &'static str,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// JSON response with the given status.
    pub fn json(status: u16, body: String) -> Response {
        Response {
            status,
            headers: Vec::new(),
            content_type: "application/json",
            body: body.into_bytes(),
        }
    }

    /// Plain-text response.
    pub fn text(status: u16, body: String) -> Response {
        Response {
            status,
            headers: Vec::new(),
            content_type: "text/plain; charset=utf-8",
            body: body.into_bytes(),
        }
    }

    /// CSV response.
    pub fn csv(status: u16, body: String) -> Response {
        Response {
            status,
            headers: Vec::new(),
            content_type: "text/csv; charset=utf-8",
            body: body.into_bytes(),
        }
    }

    /// SVG response.
    pub fn svg(body: String) -> Response {
        Response {
            status: 200,
            headers: Vec::new(),
            content_type: "image/svg+xml",
            body: body.into_bytes(),
        }
    }

    /// Standard JSON error envelope `{"error": …}`.
    pub fn error(status: u16, message: &str) -> Response {
        let mut body = String::from("{\"error\":");
        crate::json::write_json_string(&mut body, message);
        body.push('}');
        Response::json(status, body)
    }

    /// Adds a header (builder style).
    pub fn with_header(mut self, name: &str, value: String) -> Response {
        self.headers.push((name.to_string(), value));
        self
    }

    /// The canonical reason phrase for the codes this server emits.
    pub fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            201 => "Created",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            408 => "Request Timeout",
            413 => "Payload Too Large",
            422 => "Unprocessable Entity",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            _ => "Unknown",
        }
    }

    /// Serialises the response (with `Connection: close`) onto `stream`.
    pub fn write_to(&self, stream: &mut impl Write) -> std::io::Result<()> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\nconnection: close\r\n",
            self.status,
            self.reason(),
            self.content_type,
            self.body.len()
        );
        for (name, value) in &self.headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str("\r\n");
        stream.write_all(head.as_bytes())?;
        stream.write_all(&self.body)?;
        stream.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(raw: &[u8]) -> Result<Request, HttpError> {
        Request::read_from(&mut std::io::Cursor::new(raw.to_vec()), 1024)
    }

    #[test]
    fn parses_get_with_query() {
        let req =
            parse(b"GET /models/cbf/render?format=svg&x=1 HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/models/cbf/render");
        assert_eq!(req.query_param("format"), Some("svg"));
        assert_eq!(req.query_param("x"), Some("1"));
        assert_eq!(req.query_param("missing"), None);
        assert!(req.body.is_empty());
    }

    #[test]
    fn parses_post_with_body() {
        let req = parse(
            b"POST /models/m/score HTTP/1.1\r\nContent-Length: 5\r\nAccept: text/csv\r\n\r\nhello",
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.body, b"hello");
        assert!(req.wants_csv());
        assert_eq!(req.header("content-length"), Some("5"));
    }

    #[test]
    fn rejects_oversized_body() {
        let raw = b"POST / HTTP/1.1\r\nContent-Length: 99999\r\n\r\n";
        assert!(matches!(
            parse(raw),
            Err(HttpError::BodyTooLarge {
                declared: 99999,
                ..
            })
        ));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse(b"NOT A REQUEST\r\n\r\n").is_err());
        assert!(parse(b"GET /x\r\n\r\n").is_err(), "missing version");
        assert!(parse(b"").is_err(), "empty stream");
    }

    #[test]
    fn response_wire_format() {
        let resp =
            Response::json(200, "{\"ok\":true}".into()).with_header("retry-after", "2".into());
        let mut out = Vec::new();
        resp.write_to(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("content-length: 11\r\n"));
        assert!(text.contains("retry-after: 2\r\n"));
        assert!(text.contains("connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"ok\":true}"));
    }

    #[test]
    fn error_envelope_escapes() {
        let resp = Response::error(400, "bad \"series\"");
        let body = String::from_utf8(resp.body).unwrap();
        assert_eq!(body, "{\"error\":\"bad \\\"series\\\"\"}");
    }
}
