//! A bounded MPMC queue — the server's admission-control primitive.
//!
//! Producers (the accept loop) use [`BoundedQueue::try_push`], which fails
//! *immediately* when the queue is full instead of blocking: that is what
//! lets the server shed load with a fast 503 rather than queueing
//! unboundedly. Consumers (the worker pool) block in [`BoundedQueue::pop`].
//!
//! Shutdown is graceful by construction: [`BoundedQueue::close`] rejects
//! new work but `pop` keeps draining whatever was already admitted; only
//! when the queue is both closed *and* empty do consumers receive `None`
//! and exit.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why a [`BoundedQueue::try_push`] was refused. The rejected item is
/// handed back so the caller can respond to it (e.g. write a 503).
#[derive(Debug)]
pub enum PushError<T> {
    /// The queue is at capacity — shed the item.
    Full(T),
    /// The queue was closed — the server is shutting down.
    Closed(T),
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// Bounded multi-producer multi-consumer queue (mutex + condvar; the lock
/// guards only the tiny push/pop critical sections, never request work).
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    ready: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue admitting at most `capacity` items (min 1).
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Admits `item` if there is room; never blocks.
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if inner.closed {
            return Err(PushError::Closed(item));
        }
        if inner.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        inner.items.push_back(item);
        drop(inner);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks until an item is available (returning it) or the queue is
    /// closed *and* drained (returning `None`).
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.ready.wait(inner).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Closes the queue: future pushes fail, consumers drain then exit.
    pub fn close(&self) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.closed = true;
        drop(inner);
        self.ready.notify_all();
    }

    /// Items currently queued (racy; for monitoring only).
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .items
            .len()
    }

    /// Whether the queue is currently empty (racy; for monitoring only).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn push_pop_fifo() {
        let q = BoundedQueue::new(4);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
    }

    #[test]
    fn full_queue_sheds() {
        let q = BoundedQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        match q.try_push(3) {
            Err(PushError::Full(3)) => {}
            other => panic!("expected Full(3), got {other:?}"),
        }
    }

    #[test]
    fn close_drains_then_ends() {
        let q = BoundedQueue::new(4);
        q.try_push(7).unwrap();
        q.close();
        assert!(matches!(q.try_push(8), Err(PushError::Closed(8))));
        assert_eq!(q.pop(), Some(7), "admitted work drains after close");
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn close_wakes_blocked_consumers() {
        let q = Arc::new(BoundedQueue::<u8>::new(1));
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || q.pop())
            })
            .collect();
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        for h in handles {
            assert_eq!(h.join().unwrap(), None);
        }
    }

    #[test]
    fn concurrent_producers_consumers_deliver_everything() {
        let q = Arc::new(BoundedQueue::new(8));
        let total = 200u64;
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut sum = 0u64;
                    while let Some(v) = q.pop() {
                        sum += v;
                    }
                    sum
                })
            })
            .collect();
        let mut pushed = 0u64;
        for v in 1..=total {
            loop {
                match q.try_push(v) {
                    Ok(()) => {
                        pushed += v;
                        break;
                    }
                    Err(PushError::Full(_)) => std::thread::yield_now(),
                    Err(PushError::Closed(_)) => unreachable!(),
                }
            }
        }
        q.close();
        let consumed: u64 = consumers.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(consumed, pushed);
    }
}
