//! Startup recovery: rebuilds the served state from the durability
//! directory.
//!
//! For every model directory under the state root, recovery
//!
//! 1. scans for the **newest valid snapshot pair** — a `snap-<seq>.kgm`
//!    model whose checksum verifies plus the matching `snap-<seq>.kgs`
//!    session state that restores over it; corrupt or half-renamed pairs
//!    fall back to the previous generation;
//! 2. **replays the WAL tail**: records with sequence numbers above the
//!    snapshot's are re-applied through the restored
//!    [`StreamSession`](streamfit::StreamSession) in log order. A torn or
//!    corrupt tail stops the replay cleanly at the last valid record —
//!    normal crash semantics, not an error;
//! 3. **heals**: takes a fresh snapshot of the recovered state and starts
//!    an empty WAL, so torn tails and stale generations are retired;
//! 4. **degrades instead of dying** when the state is contradictory (the
//!    WAL demonstrably starts *after* the newest readable snapshot, or is
//!    not a WAL at all) or the heal cannot be made durable: the last-good
//!    snapshot is served read-only and the condition is surfaced through
//!    `/healthz`, `/metrics` and the log.
//!
//! Models present in the store (e.g. loaded from `--models`) but absent
//! from the state directory are *adopted*: an initial snapshot and empty
//! WAL are created so their future ingests are durable too.

use crate::durability::{durable_name, snapshot_seq_of, Durability};
use crate::store::ModelStore;
use crate::wal;
use std::path::Path;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use streamfit::{SessionRegistry, StreamSession};

/// What startup recovery did, for logs and tests.
#[derive(Debug, Default)]
pub struct RecoveryReport {
    /// Models fully recovered (snapshot + WAL tail) and writable.
    pub recovered: Vec<String>,
    /// Models from the store that had no state directory and were given
    /// one.
    pub adopted: Vec<String>,
    /// Models served read-only from their last good snapshot, with the
    /// reason.
    pub degraded: Vec<(String, String)>,
    /// Model directories nothing could be recovered from, with the
    /// reason. These are left on disk for the operator and not served.
    pub failed: Vec<(String, String)>,
    /// WAL records re-applied across all models.
    pub replayed_records: u64,
}

/// Restores every model under the durability state directory into `store`
/// and `sessions`, then adopts store models that have no durable state.
/// Never panics and never aborts the startup: each model independently
/// recovers, degrades or is skipped.
pub fn recover(
    durability: &Durability,
    store: &ModelStore,
    sessions: &SessionRegistry,
) -> RecoveryReport {
    let mut report = RecoveryReport::default();
    if !durability.enabled() {
        return report;
    }
    let started = std::time::Instant::now();
    durability.set_recovering(true);
    let fs = Arc::clone(durability.fs());
    let root = durability.config().state_dir.clone();
    if let Err(e) = fs.create_dir_all(&root) {
        eprintln!("[recovery] cannot create state dir {}: {e}", root.display());
        durability.set_recovering(false);
        return report;
    }
    let dirs = match fs.read_dir(&root) {
        Ok(dirs) => dirs,
        Err(e) => {
            eprintln!("[recovery] cannot list state dir {}: {e}", root.display());
            durability.set_recovering(false);
            return report;
        }
    };
    for dir in dirs {
        if !dir.is_dir() {
            continue;
        }
        let Some(name) = dir.file_name().and_then(|n| n.to_str()).map(str::to_string) else {
            continue;
        };
        if !durable_name(&name) {
            eprintln!("[recovery] skipping unsafe state dir name {name:?}");
            continue;
        }
        recover_model(durability, store, sessions, &name, &dir, &mut report);
    }

    // Adopt store models (e.g. from --models) that have no durable state
    // yet, so their future ingests are journaled too.
    let mut reader = store.reader();
    for (name, ..) in store.list() {
        if fs.exists(&root.join(&name)) || !durable_name(&name) {
            continue;
        }
        if let Some(model) = reader.get(&name) {
            durability.persist_initial(&name, &model, sessions.config());
            report.adopted.push(name);
        }
    }

    let counters = durability.counters();
    counters
        .recovery_duration_ms
        .store(started.elapsed().as_millis() as u64, Ordering::Relaxed);
    counters
        .models_recovered
        .store(report.recovered.len() as u64, Ordering::Relaxed);
    durability.set_recovering(false);
    if !report.recovered.is_empty() || !report.degraded.is_empty() || !report.failed.is_empty() {
        eprintln!(
            "[recovery] {} recovered, {} adopted, {} degraded, {} failed, {} records replayed \
             in {} ms",
            report.recovered.len(),
            report.adopted.len(),
            report.degraded.len(),
            report.failed.len(),
            report.replayed_records,
            started.elapsed().as_millis()
        );
    }
    report
}

fn recover_model(
    durability: &Durability,
    store: &ModelStore,
    sessions: &SessionRegistry,
    name: &str,
    dir: &Path,
    report: &mut RecoveryReport,
) {
    let fs = durability.fs();
    let counters = durability.counters();
    let entries = match fs.read_dir(dir) {
        Ok(e) => e,
        Err(e) => {
            report
                .failed
                .push((name.to_string(), format!("listing {}: {e}", dir.display())));
            return;
        }
    };

    // Newest-first candidate sequence numbers with both files present.
    let mut seqs: Vec<u64> = entries
        .iter()
        .filter_map(|p| snapshot_seq_of(p, "kgs"))
        .filter(|&s| entries.iter().any(|p| snapshot_seq_of(p, "kgm") == Some(s)))
        .collect();
    seqs.sort_unstable();
    seqs.dedup();
    seqs.reverse();
    if seqs.is_empty() {
        report.failed.push((
            name.to_string(),
            "no complete snapshot pair in state directory".to_string(),
        ));
        return;
    }

    // Try candidates newest-first until one decodes *and* restores.
    let mut chosen = None;
    let mut skipped = Vec::new();
    for seq in seqs {
        match load_snapshot(durability, dir, name, seq, sessions) {
            Ok(session) => {
                chosen = Some((seq, session));
                break;
            }
            Err(e) => {
                eprintln!("[recovery] {name}: snapshot {seq} unusable: {e}");
                skipped.push(seq);
            }
        }
    }
    let Some((snap_seq, mut session)) = chosen else {
        report.failed.push((
            name.to_string(),
            "every snapshot generation is corrupt".to_string(),
        ));
        return;
    };
    let fell_back = !skipped.is_empty();

    // Replay the WAL tail.
    let wal_path = dir.join("wal.log");
    let mut applied = 0u64;
    let mut degraded_reason: Option<String> = None;
    if fs.exists(&wal_path) {
        match fs.read(&wal_path) {
            Ok(bytes) => match wal::replay(&bytes) {
                Ok(rep) => {
                    if rep.base_seq > snap_seq {
                        // The WAL belongs to a newer snapshot we could not
                        // read: records between snap_seq and base_seq are
                        // lost to corruption. Serve what we have, read-only.
                        degraded_reason = Some(format!(
                            "WAL starts at sequence {} but newest readable snapshot is {}; \
                             refusing writes to avoid silent divergence",
                            rep.base_seq, snap_seq
                        ));
                    } else {
                        if rep.torn {
                            counters
                                .wal_records_truncated
                                .fetch_add(1, Ordering::Relaxed);
                        }
                        for record in &rep.records {
                            if record.seq <= snap_seq {
                                continue; // already inside the snapshot
                            }
                            match session.append(record.series, &record.points) {
                                Ok(_) => applied += 1,
                                Err(e) => {
                                    // A record that does not fit the model
                                    // is corruption the CRC cannot see:
                                    // stop cleanly at the last good one.
                                    eprintln!(
                                        "[recovery] {name}: replay stopped at seq {}: {e}",
                                        record.seq
                                    );
                                    counters
                                        .wal_records_truncated
                                        .fetch_add(1, Ordering::Relaxed);
                                    break;
                                }
                            }
                        }
                    }
                }
                Err(e) => {
                    degraded_reason = Some(format!("WAL unreadable: {e}"));
                }
            },
            Err(e) => {
                degraded_reason = Some(format!("WAL unreadable: {e}"));
            }
        }
    } else if fell_back {
        // Older snapshot, no WAL to bridge the gap: newer acknowledged
        // state existed but cannot be reconstructed.
        degraded_reason = Some(
            "newest snapshot is corrupt and no WAL bridges the gap to the previous one".to_string(),
        );
    }
    counters
        .wal_records_replayed
        .fetch_add(applied, Ordering::Relaxed);
    report.replayed_records += applied;

    // Publish: the store entry and the session must share one Arc so the
    // registry keeps the recovered session alive.
    let model = Arc::clone(session.model());
    let final_seq = snap_seq + applied;
    match degraded_reason {
        Some(reason) => {
            store.insert(name, model);
            sessions.install(name, session);
            durability.degrade(name, reason.clone());
            report.degraded.push((name.to_string(), reason));
        }
        None => {
            // Heal: fresh snapshot + empty WAL at the recovered sequence.
            match durability.install_recovered(name, &session, final_seq) {
                Ok(()) => {
                    store.insert(name, model);
                    sessions.install(name, session);
                    report.recovered.push(name.to_string());
                }
                Err(reason) => {
                    // Serve, but read-only: new writes could not be made
                    // durable.
                    store.insert(name, model);
                    sessions.install(name, session);
                    report.degraded.push((name.to_string(), reason));
                }
            }
        }
    }
}

/// Loads and restores one snapshot generation; any corruption or shape
/// mismatch is an `Err` so the caller can fall back to an older pair.
fn load_snapshot(
    durability: &Durability,
    dir: &Path,
    name: &str,
    seq: u64,
    sessions: &SessionRegistry,
) -> Result<StreamSession, String> {
    let fs = durability.fs();
    let kgm = dir.join(format!("snap-{seq:016}.kgm"));
    let kgs = dir.join(format!("snap-{seq:016}.kgs"));
    let model_bytes = fs.read(&kgm).map_err(|e| format!("reading model: {e}"))?;
    let state_bytes = fs.read(&kgs).map_err(|e| format!("reading session: {e}"))?;
    let model = kgraph::serial::read_model(&model_bytes).map_err(|e| format!("model: {e}"))?;
    let state = streamfit::read_session_state(&state_bytes).map_err(|e| format!("session: {e}"))?;
    if state.seq != seq {
        return Err(format!(
            "session state claims sequence {} but file is snap-{seq:016} ({name})",
            state.seq
        ));
    }
    StreamSession::restore(Arc::new(model), sessions.config().clone(), state)
        .map_err(|e| format!("restore: {e}"))
}
