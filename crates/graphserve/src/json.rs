//! Dependency-free JSON: a strict recursive-descent parser for request
//! bodies and a writer for responses.
//!
//! The wire format only ever carries numbers, strings, arrays and flat
//! objects, so this stays deliberately small. Non-finite floats serialise
//! as `null` (JSON has no NaN/∞); the parser enforces a depth limit so a
//! hostile body cannot overflow the stack.

use std::fmt::Write as _;

/// Maximum nesting depth accepted by the parser.
const MAX_DEPTH: usize = 64;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (always an `f64`, like JavaScript).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, preserving insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos, 0)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(value)
    }

    /// The value as a float, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as an array slice, if an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Member of an object by key.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Interprets the value as a flat numeric array.
    pub fn to_f64s(&self) -> Result<Vec<f64>, String> {
        let items = self.as_arr().ok_or("expected a JSON array of numbers")?;
        items
            .iter()
            .map(|v| v.as_f64().ok_or_else(|| "array holds a non-number".into()))
            .collect()
    }

    /// Appends the serialised value to `out`.
    pub fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => write_json_f64(out, *v),
            Json::Str(s) => write_json_string(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_json_string(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl std::fmt::Display for Json {
    /// Serialises the value (via [`Json::write`]).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

/// Appends a JSON number (`null` for non-finite values).
pub fn write_json_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        // Rust's shortest-roundtrip Display for f64 is valid JSON.
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

/// Appends a JSON string with escaping.
pub fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Serialises a numeric slice as a JSON array.
pub fn f64s_to_json(values: &[f64]) -> String {
    let mut out = String::with_capacity(values.len() * 8 + 2);
    out.push('[');
    for (i, &v) in values.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_json_f64(&mut out, v);
    }
    out.push(']');
    out
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    if depth > MAX_DEPTH {
        return Err("nesting too deep".into());
    }
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos, depth + 1)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut members = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}"));
                }
                *pos += 1;
                let value = parse_value(bytes, pos, depth + 1)?;
                members.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(members));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("bad literal at byte {pos}"))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}"));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                        let code = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                        // Surrogates are rejected rather than paired — the
                        // wire format never sends them.
                        out.push(char::from_u32(code).ok_or("invalid \\u code point")?);
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(&b) if b < 0x20 => return Err("control byte in string".into()),
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so boundaries
                // are valid).
                let s = std::str::from_utf8(&bytes[*pos..]).map_err(|_| "invalid UTF-8")?;
                let c = s.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|_| "invalid number bytes")?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("bad number {text:?} at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("-1.5e2").unwrap(), Json::Num(-150.0));
        assert_eq!(
            Json::parse("\"a\\nb\"").unwrap(),
            Json::Str("a\nb".to_string())
        );
    }

    #[test]
    fn parses_nested_structures() {
        let v = Json::parse(r#"{"series":[1,2.5,-3],"context":5,"name":"x"}"#).unwrap();
        assert_eq!(
            v.get("series").unwrap().to_f64s().unwrap(),
            vec![1.0, 2.5, -3.0]
        );
        assert_eq!(v.get("context").unwrap().as_f64(), Some(5.0));
        assert_eq!(v.get("name"), Some(&Json::Str("x".into())));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("[1,2").is_err());
        assert!(Json::parse("[1,2] trailing").is_err());
        assert!(Json::parse("{\"a\" 1}").is_err());
        assert!(Json::parse("nope").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn depth_limit_holds() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(Json::parse(&deep).is_err());
    }

    #[test]
    fn round_trips() {
        let text = r#"{"a":[1,2],"b":"x\"y","c":null,"d":false}"#;
        let v = Json::parse(text).unwrap();
        assert_eq!(Json::parse(&v.to_string()).unwrap(), v);
    }

    #[test]
    fn writes_numbers_and_non_finite() {
        assert_eq!(f64s_to_json(&[1.0, 2.5]), "[1,2.5]");
        assert_eq!(f64s_to_json(&[f64::NAN]), "[null]");
        let mut s = String::new();
        write_json_f64(&mut s, f64::INFINITY);
        assert_eq!(s, "null");
    }
}
