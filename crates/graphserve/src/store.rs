//! The in-process model registry: named, `Arc`-shared, immutable fitted
//! models with LRU eviction under a byte budget.
//!
//! ## Zero-lock read path
//!
//! A fitted [`KGraphModel`] is read-only, so the only mutable state is the
//! *registry* mapping names to models. That map is published as an
//! immutable snapshot (`Arc<HashMap<…>>`) plus a version counter: every
//! worker holds a [`StoreReader`] caching the snapshot it last saw, and a
//! request touches the mutex only when the version moved (a model was
//! inserted, removed or evicted). In steady state — the serving hot path —
//! a lookup is one atomic load, one `HashMap` probe, and an `Arc` clone;
//! all graph/feature/score reads then go straight at the shared immutable
//! CSR arrays.
//!
//! ## Eviction
//!
//! Recency is tracked with a logical clock: each hit stamps the entry's
//! atomic `last_used` (a relaxed store — no ordering needed, the stamp is
//! only a heuristic). When an insert pushes the registry past its byte
//! budget ([`kgraph::serial::model_approx_bytes`]), the least-recently
//! used entries are dropped — except the entry being inserted, so a single
//! oversized model still serves.

use kgraph::pipeline::KGraphModel;
use kgraph::serial;
use std::collections::HashMap;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use tscore::error::TsError;

/// One registered model.
pub struct ModelEntry {
    /// Registry name.
    pub name: String,
    /// The shared immutable model.
    pub model: Arc<KGraphModel>,
    /// Approximate heap footprint, fixed at insert time.
    pub bytes: usize,
    /// Logical-clock stamp of the last hit.
    last_used: AtomicU64,
}

type Snapshot = HashMap<String, Arc<ModelEntry>>;

/// The registry. Cheap to share: workers take one [`StoreReader`] each and
/// never contend on the hot path.
pub struct ModelStore {
    snapshot: Mutex<Arc<Snapshot>>,
    version: AtomicU64,
    clock: AtomicU64,
    budget_bytes: usize,
}

impl ModelStore {
    /// Creates a store evicting past `budget_bytes` (0 = unlimited).
    pub fn new(budget_bytes: usize) -> Self {
        ModelStore {
            snapshot: Mutex::new(Arc::new(HashMap::new())),
            version: AtomicU64::new(0),
            clock: AtomicU64::new(0),
            budget_bytes,
        }
    }

    /// A reader for one worker thread.
    pub fn reader(&self) -> StoreReader<'_> {
        StoreReader {
            store: self,
            cached: self.current(),
            seen_version: self.version.load(Ordering::Acquire),
        }
    }

    fn current(&self) -> Arc<Snapshot> {
        Arc::clone(&self.snapshot.lock().unwrap_or_else(|e| e.into_inner()))
    }

    /// Registers (or replaces) `name`, evicting LRU entries while the
    /// registry exceeds its budget. Returns the approximate byte size of
    /// the inserted model.
    pub fn insert(&self, name: &str, model: Arc<KGraphModel>) -> usize {
        let bytes = serial::model_approx_bytes(&model);
        let entry = Arc::new(ModelEntry {
            name: name.to_string(),
            model,
            bytes,
            last_used: AtomicU64::new(self.clock.fetch_add(1, Ordering::Relaxed) + 1),
        });
        let mut guard = self.snapshot.lock().unwrap_or_else(|e| e.into_inner());
        let mut next: Snapshot = (**guard).clone();
        next.insert(name.to_string(), entry);
        if self.budget_bytes > 0 {
            let mut total: usize = next.values().map(|e| e.bytes).sum();
            while total > self.budget_bytes && next.len() > 1 {
                let victim = next
                    .values()
                    .filter(|e| e.name != name)
                    .min_by_key(|e| e.last_used.load(Ordering::Relaxed))
                    .map(|e| e.name.clone());
                match victim {
                    Some(victim) => {
                        if let Some(dropped) = next.remove(&victim) {
                            total -= dropped.bytes;
                        }
                    }
                    None => break,
                }
            }
        }
        *guard = Arc::new(next);
        self.version.fetch_add(1, Ordering::Release);
        bytes
    }

    /// Unregisters `name`; reports whether it existed.
    pub fn remove(&self, name: &str) -> bool {
        let mut guard = self.snapshot.lock().unwrap_or_else(|e| e.into_inner());
        if !guard.contains_key(name) {
            return false;
        }
        let mut next: Snapshot = (**guard).clone();
        next.remove(name);
        *guard = Arc::new(next);
        self.version.fetch_add(1, Ordering::Release);
        true
    }

    /// Loads every `*.kgm` file of `dir` (file stem = model name).
    /// Returns the number of models loaded.
    pub fn load_dir(&self, dir: &Path) -> Result<usize, TsError> {
        let entries = std::fs::read_dir(dir)
            .map_err(|e| TsError::Parse(format!("reading {}: {e}", dir.display())))?;
        let mut loaded = 0usize;
        for entry in entries {
            let path = entry
                .map_err(|e| TsError::Parse(format!("reading {}: {e}", dir.display())))?
                .path();
            if path.extension().and_then(|e| e.to_str()) != Some("kgm") {
                continue;
            }
            let name = path
                .file_stem()
                .and_then(|s| s.to_str())
                .ok_or_else(|| TsError::Parse(format!("bad file name {}", path.display())))?
                .to_string();
            let model = serial::load_model(&path)?;
            self.insert(&name, Arc::new(model));
            loaded += 1;
        }
        Ok(loaded)
    }

    /// Snapshot of the registry for listing: `(name, bytes, k, ℓ̄)`,
    /// sorted by name.
    pub fn list(&self) -> Vec<(String, usize, usize, usize)> {
        let snap = self.current();
        let mut out: Vec<_> = snap
            .values()
            .map(|e| (e.name.clone(), e.bytes, e.model.k(), e.model.best_length()))
            .collect();
        out.sort();
        out
    }

    /// Number of registered models.
    pub fn len(&self) -> usize {
        self.current().len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total approximate bytes held.
    pub fn total_bytes(&self) -> usize {
        self.current().values().map(|e| e.bytes).sum()
    }
}

/// A worker's cached view of the registry. `get` is lock-free while the
/// registry version is unchanged.
pub struct StoreReader<'a> {
    store: &'a ModelStore,
    cached: Arc<Snapshot>,
    seen_version: u64,
}

impl StoreReader<'_> {
    /// Looks up a model, refreshing the cached snapshot only when the
    /// registry changed since the last call.
    pub fn get(&mut self, name: &str) -> Option<Arc<KGraphModel>> {
        let version = self.store.version.load(Ordering::Acquire);
        if version != self.seen_version {
            self.cached = self.store.current();
            self.seen_version = version;
        }
        let entry = self.cached.get(name)?;
        entry.last_used.store(
            self.store.clock.fetch_add(1, Ordering::Relaxed) + 1,
            Ordering::Relaxed,
        );
        Some(Arc::clone(&entry.model))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgraph::{KGraph, KGraphConfig};
    use tscore::{Dataset, DatasetKind, TimeSeries};

    fn tiny_model(seed: u64) -> Arc<KGraphModel> {
        let series: Vec<TimeSeries> = (0..6)
            .map(|p| {
                TimeSeries::new(
                    (0..60)
                        .map(|i| ((i + p) as f64 * 0.3 + seed as f64).sin())
                        .collect(),
                )
            })
            .collect();
        let ds = Dataset::new("tiny", DatasetKind::Simulated, series);
        let cfg = KGraphConfig {
            n_lengths: 1,
            psi: 8,
            pca_sample: 200,
            n_init: 1,
            ..KGraphConfig::new(2)
        }
        .with_seed(seed)
        .with_lengths(vec![12]);
        Arc::new(KGraph::new(cfg).fit(&ds))
    }

    #[test]
    fn insert_get_remove() {
        let store = ModelStore::new(0);
        assert!(store.is_empty());
        store.insert("a", tiny_model(1));
        let mut reader = store.reader();
        assert!(reader.get("a").is_some());
        assert!(reader.get("b").is_none());
        assert_eq!(store.len(), 1);
        assert!(store.remove("a"));
        assert!(!store.remove("a"));
        assert!(reader.get("a").is_none(), "reader sees the removal");
    }

    #[test]
    fn reader_cache_survives_unrelated_requests() {
        let store = ModelStore::new(0);
        store.insert("a", tiny_model(1));
        let mut reader = store.reader();
        let first = reader.get("a").unwrap();
        // Steady state: same Arc handed out again and again.
        for _ in 0..100 {
            let again = reader.get("a").unwrap();
            assert!(Arc::ptr_eq(&first, &again));
        }
    }

    #[test]
    fn lru_eviction_under_budget() {
        let store_unbounded = ModelStore::new(0);
        let bytes = store_unbounded.insert("probe", tiny_model(0));
        // Budget for two models; the third insert must evict the LRU.
        let store = ModelStore::new(bytes * 2 + bytes / 2);
        store.insert("a", tiny_model(1));
        store.insert("b", tiny_model(2));
        // Touch "a" so "b" is the LRU.
        store.reader().get("a");
        store.insert("c", tiny_model(3));
        let names: Vec<String> = store.list().into_iter().map(|(n, ..)| n).collect();
        assert_eq!(names, vec!["a", "c"], "LRU entry b evicted");
    }

    #[test]
    fn oversized_single_model_still_serves() {
        let store = ModelStore::new(1); // absurdly small budget
        store.insert("big", tiny_model(1));
        assert_eq!(store.len(), 1, "the newest model is never evicted");
        assert!(store.reader().get("big").is_some());
    }

    #[test]
    fn list_reports_metadata() {
        let store = ModelStore::new(0);
        store.insert("m", tiny_model(1));
        let listed = store.list();
        assert_eq!(listed.len(), 1);
        let (name, bytes, k, best_len) = &listed[0];
        assert_eq!(name, "m");
        assert!(*bytes > 0);
        assert_eq!(*k, 2);
        assert_eq!(*best_len, 12);
        assert_eq!(store.total_bytes(), *bytes);
    }

    #[test]
    fn concurrent_readers_share_one_model() {
        let store = Arc::new(ModelStore::new(0));
        store.insert("m", tiny_model(1));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let store = Arc::clone(&store);
                std::thread::spawn(move || {
                    let mut reader = store.reader();
                    let model = reader.get("m").unwrap();
                    model.best_length()
                })
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), 12);
        }
    }
}
