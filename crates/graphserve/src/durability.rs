//! Crash-safe durability for served models: per-model WALs, atomic
//! snapshots, degraded-mode bookkeeping and the counters `/metrics` and
//! `/healthz` expose.
//!
//! ## On-disk layout
//!
//! ```text
//! <state_dir>/<model>/
//!     snap-<seq:016>.kgm   KGM2 model at sequence <seq>
//!     snap-<seq:016>.kgs   KGS1 session state at sequence <seq>
//!     wal.log              KGW1 journal, base_seq == newest snapshot seq
//! ```
//!
//! A snapshot is the *pair* of files for one zero-padded sequence number;
//! each file lands via `tmp → fsync → rename → dir fsync`, model first,
//! then session state. Recovery treats a lone `.kgm` or `.kgs` as no
//! snapshot, so a crash between the two renames simply falls back to the
//! previous generation — whose WAL coverage is intact, because the WAL is
//! only rewritten (fresh, with the new `base_seq`) *after* both files are
//! in place. [`DurabilityConfig::keep_snapshots`] generations are retained.
//!
//! ## Write path
//!
//! The ingest route calls [`Durability::log_ingest`] *before*
//! `StreamSession::append`, holding the per-model session lock, so the WAL
//! order is exactly the apply order. Transient I/O errors are retried with
//! bounded backoff; a failed append is rolled back to the previous record
//! boundary and surfaced as retryable (`503` upstream). When even the
//! rollback fails the model flips to degraded read-only — reads keep
//! serving, writes are refused — rather than risking silent divergence
//! between the log and the in-memory state. If the apply itself fails
//! after journaling, [`Durability::revoke_ingest`] removes the record
//! again: the WAL never holds a record the session did not apply.
//!
//! ## Locking
//!
//! Durability state is per model: the registry maps names to
//! `Arc<Mutex<ModelDur>>` slots and is locked only for the lookup. All
//! I/O — WAL appends, fsyncs, retry backoff sleeps, snapshot writes —
//! runs under the *model's* lock alone, so one model's stalled disk never
//! blocks another model's ingest. (Per-model mutual exclusion is in fact
//! already guaranteed by the session lock the routes hold across
//! `log_ingest`/`after_append`; the slot mutex makes the layer safe on
//! its own.) A slot lock is never held while taking the registry lock.

use crate::fsio::{Fs, StdFs};
use crate::wal::Wal;
use kgraph::pipeline::KGraphModel;
use kgraph::serial;
use std::collections::HashMap;
use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;
use streamfit::{StreamConfig, StreamSession};

/// Tuning knobs of the durability layer.
#[derive(Debug, Clone)]
pub struct DurabilityConfig {
    /// Root directory holding one subdirectory per durable model.
    pub state_dir: PathBuf,
    /// Fsync the WAL after every N appended records (group commit).
    /// 1 = every record is durable before its ingest is acknowledged;
    /// larger values trade a bounded window of acknowledged-but-unsynced
    /// records for fewer fsyncs.
    pub wal_sync_every: u64,
    /// Take a snapshot every N session refreshes (compactions always
    /// snapshot). 0 snapshots on every refresh.
    pub snapshot_every: u64,
    /// Bounded retries for transient I/O errors.
    pub io_retries: u32,
    /// Backoff between retries (doubled per attempt).
    pub retry_backoff: Duration,
    /// Snapshot generations retained per model.
    pub keep_snapshots: usize,
}

impl Default for DurabilityConfig {
    fn default() -> Self {
        DurabilityConfig {
            state_dir: PathBuf::from("state"),
            wal_sync_every: 1,
            snapshot_every: 4,
            io_retries: 2,
            retry_backoff: Duration::from_millis(20),
            keep_snapshots: 2,
        }
    }
}

/// Shared atomic counters, surfaced by `/metrics`.
#[derive(Debug, Default)]
pub struct DurabilityCounters {
    /// WAL records appended and acknowledged.
    pub wal_records_written: AtomicU64,
    /// WAL records replayed during recovery.
    pub wal_records_replayed: AtomicU64,
    /// WAL records truncated: torn/corrupt tails discarded at recovery
    /// plus records retired by snapshot-time log rewrites.
    pub wal_records_truncated: AtomicU64,
    /// WAL fsync calls issued.
    pub wal_syncs: AtomicU64,
    /// Snapshot pairs written successfully.
    pub snapshots_written: AtomicU64,
    /// Snapshot attempts that failed (data stays WAL-covered).
    pub snapshot_failures: AtomicU64,
    /// Transient I/O retries performed.
    pub io_retries: AtomicU64,
    /// Ingest records appended since the last successful snapshot, summed
    /// over models — the deterministic "snapshot age" gauge.
    pub records_since_snapshot: AtomicU64,
    /// Wall-clock milliseconds the last startup recovery took.
    pub recovery_duration_ms: AtomicU64,
    /// Models restored from snapshot (+ replay) at startup.
    pub models_recovered: AtomicU64,
    /// Models currently degraded read-only.
    pub models_degraded: AtomicU64,
}

/// Why a model's ingest path is closed.
#[derive(Debug, Clone)]
pub struct Degraded {
    /// Human-readable cause, also logged and exported.
    pub reason: String,
}

struct ModelDur {
    /// `None` while degraded (or before registration completes).
    wal: Option<Wal>,
    /// Last acknowledged sequence number.
    seq: u64,
    /// Sequence covered by the newest on-disk snapshot.
    snapshot_seq: u64,
    /// Session refresh count at the last snapshot (cadence anchor).
    refreshes_at_snapshot: u64,
    degraded: Option<Degraded>,
}

/// Outcome of [`Durability::log_ingest`].
#[derive(Debug)]
pub enum IngestLog {
    /// The record is in the WAL (sequence number attached) — or durability
    /// is disabled / the model is non-durable, in which case `seq` is 0.
    Logged {
        /// WAL sequence, 0 when nothing was logged.
        seq: u64,
    },
    /// The WAL could not take the record but was rolled back cleanly; the
    /// ingest must be refused retryably (`503` + `Retry-After`).
    Unavailable {
        /// The underlying error, for the response body and logs.
        reason: String,
    },
    /// The model is degraded read-only; writes are refused until an
    /// operator repairs the state directory and restarts.
    Degraded {
        /// Why the model degraded.
        reason: String,
    },
}

/// The durability manager. One per server; cheap to share behind an `Arc`.
pub struct Durability {
    enabled: bool,
    fs: Arc<dyn Fs>,
    cfg: DurabilityConfig,
    counters: Arc<DurabilityCounters>,
    recovering: AtomicBool,
    /// Name → per-model slot. The registry lock covers only the lookup;
    /// every I/O runs under the slot's own lock.
    models: Mutex<HashMap<String, Arc<Mutex<ModelDur>>>>,
}

/// `true` when `name` is safe to use as a directory name under the state
/// root (no traversal, no separators, non-empty).
pub fn durable_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 128
        && name != "."
        && name != ".."
        && name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_' || b == b'.')
}

impl Durability {
    /// A live durability layer over the real filesystem.
    pub fn new(cfg: DurabilityConfig) -> Self {
        Self::with_fs(cfg, Arc::new(StdFs))
    }

    /// A live durability layer over an arbitrary [`Fs`] — the seam the
    /// fault-injection tests use.
    pub fn with_fs(cfg: DurabilityConfig, fs: Arc<dyn Fs>) -> Self {
        Durability {
            enabled: true,
            fs,
            cfg,
            counters: Arc::new(DurabilityCounters::default()),
            recovering: AtomicBool::new(false),
            models: Mutex::new(HashMap::new()),
        }
    }

    /// A no-op layer: every operation succeeds without touching disk.
    /// Used when the server runs without `--state-dir`.
    pub fn disabled() -> Self {
        Durability {
            enabled: false,
            fs: Arc::new(StdFs),
            cfg: DurabilityConfig::default(),
            counters: Arc::new(DurabilityCounters::default()),
            recovering: AtomicBool::new(false),
            models: Mutex::new(HashMap::new()),
        }
    }

    /// Whether the layer persists anything.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// The shared counters.
    pub fn counters(&self) -> &Arc<DurabilityCounters> {
        &self.counters
    }

    /// The configuration.
    pub fn config(&self) -> &DurabilityConfig {
        &self.cfg
    }

    /// The filesystem seam (recovery shares it).
    pub(crate) fn fs(&self) -> &Arc<dyn Fs> {
        &self.fs
    }

    /// Flags the startup-recovery phase for `/healthz`.
    pub fn set_recovering(&self, on: bool) {
        self.recovering.store(on, Ordering::Release);
    }

    /// Whether startup recovery is still running.
    pub fn is_recovering(&self) -> bool {
        self.recovering.load(Ordering::Acquire)
    }

    /// The slot for `name`, created empty if absent. Holds the registry
    /// lock only for the lookup.
    fn slot(&self, name: &str) -> Arc<Mutex<ModelDur>> {
        let mut models = self.models.lock().unwrap_or_else(|e| e.into_inner());
        Arc::clone(models.entry(name.to_string()).or_insert_with(|| {
            Arc::new(Mutex::new(ModelDur {
                wal: None,
                seq: 0,
                snapshot_seq: 0,
                refreshes_at_snapshot: 0,
                degraded: None,
            }))
        }))
    }

    /// The slot for `name`, or `None` when it was never registered.
    fn lookup(&self, name: &str) -> Option<Arc<Mutex<ModelDur>>> {
        self.models
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(name)
            .cloned()
    }

    /// Why `name` is degraded, if it is.
    pub fn degraded_reason(&self, name: &str) -> Option<String> {
        let slot = self.lookup(name)?;
        let entry = slot.lock().unwrap_or_else(|e| e.into_inner());
        entry.degraded.as_ref().map(|d| d.reason.clone())
    }

    /// Every degraded model with its reason, sorted by name.
    pub fn degraded_models(&self) -> Vec<(String, String)> {
        let slots: Vec<(String, Arc<Mutex<ModelDur>>)> = self
            .models
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(n, s)| (n.clone(), Arc::clone(s)))
            .collect();
        let mut out: Vec<_> = slots
            .into_iter()
            .filter_map(|(n, s)| {
                let entry = s.lock().unwrap_or_else(|e| e.into_inner());
                entry.degraded.as_ref().map(|d| (n, d.reason.clone()))
            })
            .collect();
        out.sort();
        out
    }

    fn model_dir(&self, name: &str) -> PathBuf {
        self.cfg.state_dir.join(name)
    }

    fn snapshot_path(&self, name: &str, seq: u64, ext: &str) -> PathBuf {
        self.model_dir(name).join(format!("snap-{seq:016}.{ext}"))
    }

    fn wal_path(&self, name: &str) -> PathBuf {
        self.model_dir(name).join("wal.log")
    }

    /// Runs `op` with bounded retry + doubling backoff on transient
    /// errors. Non-transient errors (`ENOSPC` and friends) fail fast.
    fn with_retries<T>(&self, mut op: impl FnMut() -> io::Result<T>) -> io::Result<T> {
        let mut backoff = self.cfg.retry_backoff;
        let mut attempt = 0u32;
        loop {
            match op() {
                Ok(v) => return Ok(v),
                Err(e) if attempt < self.cfg.io_retries && is_transient(&e) => {
                    attempt += 1;
                    self.counters.io_retries.fetch_add(1, Ordering::Relaxed);
                    std::thread::sleep(backoff);
                    backoff = backoff.saturating_mul(2);
                }
                Err(e) => return Err(e),
            }
        }
    }

    fn mark_degraded(&self, name: &str, reason: String) {
        let slot = self.slot(name);
        let mut entry = slot.lock().unwrap_or_else(|e| e.into_inner());
        self.degrade_locked(name, &mut entry, reason);
    }

    /// Degrades an already-locked slot. The first cause wins: a model
    /// that is already degraded keeps its original reason.
    fn degrade_locked(&self, name: &str, entry: &mut ModelDur, reason: String) {
        entry.wal = None;
        if entry.degraded.is_some() {
            return;
        }
        self.counters
            .models_degraded
            .fetch_add(1, Ordering::Relaxed);
        eprintln!("[durability] model {name} degraded read-only: {reason}");
        entry.degraded = Some(Degraded { reason });
    }

    /// Writes the snapshot pair for `session` at `seq` and installs a
    /// fresh WAL. Called with the per-model session lock held (the only
    /// writer), so the pair is a consistent point-in-time image.
    fn write_snapshot_locked(
        &self,
        entry: &mut ModelDur,
        name: &str,
        session: &StreamSession,
        seq: u64,
        refreshes: u64,
    ) -> io::Result<()> {
        let dir = self.model_dir(name);
        self.with_retries(|| self.fs.create_dir_all(&dir))?;
        // Model first, session state second: recovery requires the pair,
        // so a crash between the two renames falls back to the previous
        // generation.
        let model_bytes = serial::write_model(session.model());
        let state_bytes = streamfit::write_session_state(session, seq);
        for (ext, bytes) in [("kgm", &model_bytes), ("kgs", &state_bytes)] {
            let target = self.snapshot_path(name, seq, ext);
            let tmp = dir.join(format!("snap-{seq:016}.{ext}.tmp"));
            self.with_retries(|| self.fs.write(&tmp, bytes))?;
            self.with_retries(|| self.fs.rename(&tmp, &target))?;
        }
        self.with_retries(|| self.fs.sync_dir(&dir))?;
        // The pair is durable: rotate the journal. Records actually logged
        // since the previous snapshot — not a seq difference, which goes
        // to zero when a re-fit resets the sequence — drive the counters.
        let retired = entry.seq.saturating_sub(entry.snapshot_seq);
        // Drop the old handle before the replacement log is created:
        // renaming over an open file fails on Windows, and a dropped
        // handle cannot keep appending to an unlinked inode if the
        // rotation stalls midway.
        entry.wal = None;
        let wal_path = self.wal_path(name);
        match Wal::create(&*self.fs, &wal_path, seq, self.cfg.wal_sync_every) {
            Ok(wal) => entry.wal = Some(wal),
            Err(e) if !e.renamed => {
                // The live wal.log is still the previous journal: reopen
                // it so acknowledged records stay covered and later
                // appends keep landing where recovery will read them
                // (replay skips records the new snapshot already holds).
                match Wal::reopen(&*self.fs, &wal_path, entry.seq + 1, self.cfg.wal_sync_every) {
                    Ok(wal) => entry.wal = Some(wal),
                    Err(re) => self.degrade_locked(
                        name,
                        entry,
                        format!(
                            "WAL rotation failed ({}) and the previous journal could not be \
                             reopened: {re}",
                            e.io
                        ),
                    ),
                }
                return Err(e.io);
            }
            Err(e) => {
                // The fresh (empty) journal already replaced the old one
                // on disk, but no usable handle survived: any further
                // acknowledged append would be silently non-durable.
                // Refuse writes instead.
                self.degrade_locked(
                    name,
                    entry,
                    format!("WAL rotation failed after replacing the journal: {}", e.io),
                );
                return Err(e.io);
            }
        }
        entry.seq = seq;
        entry.snapshot_seq = seq;
        entry.refreshes_at_snapshot = refreshes;
        self.counters
            .wal_records_truncated
            .fetch_add(retired, Ordering::Relaxed);
        // Balanced with the per-record increments in `log_ingest`:
        // `retired` counts exactly the records logged since the previous
        // snapshot of this model.
        self.counters
            .records_since_snapshot
            .fetch_sub(retired, Ordering::Relaxed);
        self.counters
            .snapshots_written
            .fetch_add(1, Ordering::Relaxed);
        self.prune_snapshots(name, seq);
        Ok(())
    }

    /// Removes snapshot generations beyond the retention count (never the
    /// one at `keep_seq`). Best-effort: pruning failures only log.
    fn prune_snapshots(&self, name: &str, keep_seq: u64) {
        let dir = self.model_dir(name);
        let Ok(entries) = self.fs.read_dir(&dir) else {
            return;
        };
        let mut seqs: Vec<u64> = entries
            .iter()
            .filter_map(|p| snapshot_seq_of(p, "kgs"))
            .collect();
        seqs.sort_unstable();
        seqs.dedup();
        if seqs.len() <= self.cfg.keep_snapshots.max(1) {
            return;
        }
        let cut = seqs.len() - self.cfg.keep_snapshots.max(1);
        for &seq in &seqs[..cut] {
            if seq == keep_seq {
                continue;
            }
            for ext in ["kgm", "kgs"] {
                let path = self.snapshot_path(name, seq, ext);
                if let Err(e) = self.fs.remove_file(&path) {
                    eprintln!("[durability] pruning {}: {e}", path.display());
                }
            }
        }
    }

    /// Registers a freshly fitted (or adopted) model: initial snapshot at
    /// sequence 0 plus an empty WAL. On failure the model serves
    /// non-durably degraded — reads work, ingest is refused.
    pub fn persist_initial(&self, name: &str, model: &Arc<KGraphModel>, cfg: &StreamConfig) {
        if !self.enabled {
            return;
        }
        if !durable_name(name) {
            self.mark_degraded(
                name,
                format!("model name {name:?} is not a safe directory name"),
            );
            return;
        }
        // A transient session just for serialization: a fresh session's
        // state is exactly "no series, no deltas, counters at zero".
        let session = StreamSession::new(Arc::clone(model), cfg.clone());
        let slot = self.slot(name);
        let mut entry = slot.lock().unwrap_or_else(|e| e.into_inner());
        if entry.degraded.take().is_some() {
            // Re-registering (re-fit) clears a previous degradation.
            self.counters
                .models_degraded
                .fetch_sub(1, Ordering::Relaxed);
        }
        if let Err(e) = self.write_snapshot_locked(&mut entry, name, &session, 0, 0) {
            self.counters
                .snapshot_failures
                .fetch_add(1, Ordering::Relaxed);
            self.degrade_locked(name, &mut entry, format!("initial snapshot failed: {e}"));
        }
    }

    /// Installs a recovered model: its WAL restarts at `seq` behind a
    /// fresh healing snapshot of `session`. On failure the model degrades
    /// read-only (the old state files are left untouched for the
    /// operator).
    pub fn install_recovered(
        &self,
        name: &str,
        session: &StreamSession,
        seq: u64,
    ) -> Result<(), String> {
        if !self.enabled {
            return Ok(());
        }
        let slot = self.slot(name);
        let mut entry = slot.lock().unwrap_or_else(|e| e.into_inner());
        // A fresh slot starts zeroed; anchor it at the recovered sequence
        // so the retirement arithmetic sees "nothing pending".
        if entry.wal.is_none() && entry.degraded.is_none() {
            entry.seq = seq;
            entry.snapshot_seq = seq;
            entry.refreshes_at_snapshot = session.refreshes();
        }
        match self.write_snapshot_locked(&mut entry, name, session, seq, session.refreshes()) {
            Ok(()) => Ok(()),
            Err(e) => {
                self.counters
                    .snapshot_failures
                    .fetch_add(1, Ordering::Relaxed);
                let reason = format!("healing snapshot failed: {e}");
                self.degrade_locked(name, &mut entry, reason.clone());
                Err(reason)
            }
        }
    }

    /// Marks `name` degraded read-only with `reason` (recovery uses this
    /// when it can serve a snapshot but not guarantee new writes).
    pub fn degrade(&self, name: &str, reason: String) {
        if self.enabled {
            self.mark_degraded(name, reason);
        }
    }

    /// Journals one ingest. Must be called with the per-model session
    /// lock held, *before* the corresponding `StreamSession::append`.
    pub fn log_ingest(&self, name: &str, series: u32, points: &[f64]) -> IngestLog {
        if !self.enabled || !durable_name(name) {
            return IngestLog::Logged { seq: 0 };
        }
        let Some(slot) = self.lookup(name) else {
            // Served but never registered (shouldn't happen once adoption
            // runs at startup): refuse retryably rather than diverge.
            return IngestLog::Unavailable {
                reason: format!("model {name} has no durable state directory"),
            };
        };
        // Only this model's slot is held across the append, its fsync and
        // any retry backoff — a stalled disk on one model never blocks
        // another model's ingest.
        let mut guard = slot.lock().unwrap_or_else(|e| e.into_inner());
        let entry = &mut *guard;
        if let Some(d) = &entry.degraded {
            return IngestLog::Degraded {
                reason: d.reason.clone(),
            };
        }
        let Some(wal) = entry.wal.as_mut() else {
            return IngestLog::Unavailable {
                reason: format!("model {name} has no open WAL"),
            };
        };
        enum Attempt {
            Logged(u64, bool),
            Poisoned(String),
            Failed(String),
        }
        let mut backoff = self.cfg.retry_backoff;
        let mut attempt = 0u32;
        let outcome = loop {
            match wal.append(series, points) {
                Ok((seq, synced)) => {
                    entry.seq = seq;
                    break Attempt::Logged(seq, synced);
                }
                Err(e) if e.poisoned => break Attempt::Poisoned(format!("{e}")),
                Err(e) if attempt < self.cfg.io_retries && is_transient(&e.io) => {
                    attempt += 1;
                    self.counters.io_retries.fetch_add(1, Ordering::Relaxed);
                    std::thread::sleep(backoff);
                    backoff = backoff.saturating_mul(2);
                }
                Err(e) => break Attempt::Failed(format!("{e}")),
            }
        };
        match outcome {
            Attempt::Logged(seq, synced) => {
                self.counters
                    .wal_records_written
                    .fetch_add(1, Ordering::Relaxed);
                self.counters
                    .wal_syncs
                    .fetch_add(u64::from(synced), Ordering::Relaxed);
                self.counters
                    .records_since_snapshot
                    .fetch_add(1, Ordering::Relaxed);
                IngestLog::Logged { seq }
            }
            Attempt::Poisoned(reason) => {
                self.degrade_locked(name, entry, reason.clone());
                IngestLog::Degraded { reason }
            }
            Attempt::Failed(reason) => IngestLog::Unavailable { reason },
        }
    }

    /// Revokes the WAL record `seq` that [`log_ingest`](Self::log_ingest)
    /// just wrote, because the in-memory apply that follows it failed.
    /// Must be called with the per-model session lock still held, so no
    /// later record can have landed in between. If the record cannot be
    /// removed the model degrades read-only: a journal holding a record
    /// the session never applied would stop replay there on recovery and
    /// discard every later acknowledged record.
    pub fn revoke_ingest(&self, name: &str, seq: u64) {
        if !self.enabled || !durable_name(name) || seq == 0 {
            return;
        }
        let Some(slot) = self.lookup(name) else {
            return;
        };
        let mut guard = slot.lock().unwrap_or_else(|e| e.into_inner());
        let entry = &mut *guard;
        if entry.degraded.is_some() {
            return;
        }
        let Some(wal) = entry.wal.as_mut() else {
            return;
        };
        if wal.next_seq() != seq + 1 {
            // Not the most recent record — cannot happen while the
            // session lock is held, but never truncate blindly.
            self.degrade_locked(
                name,
                entry,
                format!("cannot revoke unapplied WAL record {seq}: log already advanced past it"),
            );
            return;
        }
        match wal.revoke_last() {
            Ok(()) => {
                entry.seq = seq - 1;
                self.counters
                    .wal_records_written
                    .fetch_sub(1, Ordering::Relaxed);
                self.counters
                    .records_since_snapshot
                    .fetch_sub(1, Ordering::Relaxed);
            }
            Err(e) => self.degrade_locked(
                name,
                entry,
                format!("could not revoke unapplied WAL record {seq}: {e}"),
            ),
        }
    }

    /// Called after a successful append with the session still locked:
    /// snapshots on the refresh cadence (or on compaction).
    pub fn after_append(&self, name: &str, session: &StreamSession, outcome_refreshed: bool) {
        if !self.enabled || !outcome_refreshed || !durable_name(name) {
            return;
        }
        let Some(slot) = self.lookup(name) else {
            return;
        };
        let mut guard = slot.lock().unwrap_or_else(|e| e.into_inner());
        let entry = &mut *guard;
        if entry.degraded.is_some() {
            return;
        }
        let due = session
            .refreshes()
            .saturating_sub(entry.refreshes_at_snapshot)
            >= self.cfg.snapshot_every.max(1)
            || self.cfg.snapshot_every == 0;
        if !due {
            return;
        }
        let seq = entry.seq;
        let refreshes = session.refreshes();
        if let Err(e) = self.write_snapshot_locked(entry, name, session, seq, refreshes) {
            // Not fatal: every acknowledged record is still WAL-covered.
            self.counters
                .snapshot_failures
                .fetch_add(1, Ordering::Relaxed);
            eprintln!("[durability] snapshot of {name} at seq {seq} failed: {e}");
        }
    }

    /// Forgets `name` and deletes its state directory (model deletion).
    pub fn remove_model(&self, name: &str) {
        if !self.enabled || !durable_name(name) {
            return;
        }
        let removed = {
            let mut models = self.models.lock().unwrap_or_else(|e| e.into_inner());
            models.remove(name)
        };
        if let Some(slot) = removed {
            let m = slot.lock().unwrap_or_else(|e| e.into_inner());
            if m.degraded.is_some() {
                self.counters
                    .models_degraded
                    .fetch_sub(1, Ordering::Relaxed);
            }
        }
        let dir = self.model_dir(name);
        if self.fs.exists(&dir) {
            if let Err(e) = self.fs.remove_dir_all(&dir) {
                eprintln!("[durability] removing {}: {e}", dir.display());
            }
        }
    }
}

/// Extracts the sequence number of `snap-<seq>.ext` paths.
pub(crate) fn snapshot_seq_of(path: &std::path::Path, ext: &str) -> Option<u64> {
    if path.extension().and_then(|e| e.to_str()) != Some(ext) {
        return None;
    }
    let stem = path.file_stem()?.to_str()?;
    stem.strip_prefix("snap-")?.parse().ok()
}

/// Whether an I/O error is worth a bounded retry.
fn is_transient(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::Interrupted | io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}
