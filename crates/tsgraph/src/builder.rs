//! Deduplicating graph builder: `(src, dst, weight)` triples in, CSR out.
//!
//! The k-Graph pipeline emits one triple per observed node transition —
//! millions for long series — and the old construction path probed
//! `DiGraph::edge_between` for every one of them, an O(E·deg) loop of
//! pointer-chasing scans. The builder replaces that with the sort-based
//! scheme of CSR graph frameworks:
//!
//! 1. collect raw triples (append-only, no lookups),
//! 2. sort them by `(src, dst)` — **parallel chunked sort**: the triple
//!    array is split into per-thread chunks, each chunk sorted on its own
//!    scoped thread, then the sorted runs are merged,
//! 3. one linear **run-length aggregation** pass combines duplicate
//!    `(src, dst)` pairs with the caller's merge function and writes the
//!    offset/target/weight arrays directly.
//!
//! The merge function must be commutative and associative (e.g. `+` on
//! counts); the sort is unstable and chunking varies with thread count, so
//! the *order* in which duplicates reach the merge is unspecified, while
//! the resulting graph is identical either way.

use crate::csr::CsrGraph;
use crate::digraph::NodeId;

/// Triples below this count are sorted on the calling thread; the scoped
/// thread fan-out only pays for itself on bulk loads.
const PARALLEL_SORT_THRESHOLD: usize = 1 << 15;

/// Packs `(src, dst)` into the sort key used throughout the builder,
/// spill and delta layers: `src << 32 | dst`, so key order is exactly
/// `(src, dst)` lexicographic order.
#[inline]
pub(crate) fn pack_key(src: NodeId, dst: NodeId) -> u64 {
    ((src.0 as u64) << 32) | dst.0 as u64
}

/// Accumulates `(src, dst, weight)` triples and builds a [`CsrGraph`].
///
/// ```
/// use tsgraph::builder::GraphBuilder;
/// use tsgraph::NodeId;
///
/// let mut b = GraphBuilder::new();
/// b.add_edge(NodeId(0), NodeId(1), 1.0);
/// b.add_edge(NodeId(0), NodeId(1), 1.0); // duplicate: aggregated
/// b.add_edge(NodeId(1), NodeId(0), 1.0);
/// let g = b.build(vec![(), ()], |acc, w| *acc += w);
/// assert_eq!(g.edge_count(), 2);
/// assert_eq!(g.weight_between(NodeId(0), NodeId(1)), Some(&2.0));
/// ```
#[derive(Debug, Clone, Default)]
pub struct GraphBuilder<E> {
    /// `(src << 32 | dst, weight)` — a single u64 key keeps the sort hot.
    triples: Vec<(u64, E)>,
}

#[inline]
fn key(src: NodeId, dst: NodeId) -> u64 {
    pack_key(src, dst)
}

impl<E> GraphBuilder<E> {
    /// Empty builder.
    pub fn new() -> Self {
        GraphBuilder {
            triples: Vec::new(),
        }
    }

    /// Empty builder with capacity for `edges` triples.
    pub fn with_capacity(edges: usize) -> Self {
        GraphBuilder {
            triples: Vec::with_capacity(edges),
        }
    }

    /// Records one `src → dst` observation. No deduplication happens here;
    /// duplicates are aggregated at [`build`](Self::build) time.
    #[inline]
    pub fn add_edge(&mut self, src: NodeId, dst: NodeId, weight: E) {
        self.triples.push((key(src, dst), weight));
    }

    /// Number of raw (pre-aggregation) triples recorded so far.
    pub fn len(&self) -> usize {
        self.triples.len()
    }

    /// Whether no triples were recorded.
    pub fn is_empty(&self) -> bool {
        self.triples.is_empty()
    }
}

impl<E: Send> GraphBuilder<E> {
    /// Builds the CSR graph over `node_count = nodes.len()` vertices,
    /// aggregating duplicate `(src, dst)` pairs with `merge` (called as
    /// `merge(&mut acc, next)`; must be commutative + associative).
    ///
    /// Panics if any endpoint is out of `0..nodes.len()`.
    pub fn build<N>(self, nodes: Vec<N>, merge: impl Fn(&mut E, E)) -> CsrGraph<N, E> {
        let n = nodes.len();
        let mut triples = self.triples;
        if let Some(&(max_key, _)) = triples.iter().max_by_key(|(k, _)| *k) {
            let max_src = (max_key >> 32) as usize;
            // dst of the max key is not necessarily the max dst; check all.
            let max_dst = triples
                .iter()
                .map(|(k, _)| (*k & 0xffff_ffff) as usize)
                .max()
                .unwrap();
            assert!(
                max_src < n && max_dst < n,
                "edge endpoint out of range: ({max_src} or {max_dst}) >= {n}"
            );
        }

        parallel_sort_by_key(&mut triples);
        assemble_csr(nodes, triples.into_iter(), merge)
    }
}

/// Run-length aggregation + CSR assembly in one pass over a *key-sorted*
/// `(key, weight)` stream. Duplicate keys must be adjacent (guaranteed by
/// sorting) and are combined with `merge`. Shared by [`GraphBuilder`],
/// the disk-backed [`SpillBuilder`](crate::spill::SpillBuilder) and delta
/// compaction ([`crate::delta`]), so all three construction paths produce
/// bit-identical CSR layouts from the same logical edge set.
///
/// Panics if any endpoint is out of `0..nodes.len()`.
pub(crate) fn assemble_csr<N, E>(
    nodes: Vec<N>,
    sorted: impl Iterator<Item = (u64, E)>,
    merge: impl Fn(&mut E, E),
) -> CsrGraph<N, E> {
    let n = nodes.len();
    let mut out_offsets = vec![0u32; n + 1];
    let mut out_targets: Vec<NodeId> = Vec::new();
    let mut edge_weights: Vec<E> = Vec::new();
    let mut edge_sources: Vec<NodeId> = Vec::new();
    let mut iter = sorted;
    if let Some((first_key, first_w)) = iter.next() {
        let mut cur_key = first_key;
        let mut cur_w = first_w;
        for (k, w) in iter {
            debug_assert!(k >= cur_key, "assemble_csr input must be key-sorted");
            if k == cur_key {
                merge(&mut cur_w, w);
            } else {
                push_edge(
                    cur_key,
                    cur_w,
                    n,
                    &mut out_offsets,
                    &mut out_targets,
                    &mut edge_weights,
                    &mut edge_sources,
                );
                cur_key = k;
                cur_w = w;
            }
        }
        push_edge(
            cur_key,
            cur_w,
            n,
            &mut out_offsets,
            &mut out_targets,
            &mut edge_weights,
            &mut edge_sources,
        );
    }
    // out_offsets currently holds per-node counts (shifted by one);
    // prefix-sum into offsets.
    let mut acc = 0u32;
    for o in out_offsets.iter_mut() {
        acc += *o;
        *o = acc;
    }
    // Counts were accumulated at index u+1, so after the prefix sum
    // out_offsets[u]..out_offsets[u+1] is exactly u's edge range.

    // In-adjacency: counting sort over targets keeps each in-slice
    // sorted by source for free (edge ids are (src, dst)-sorted).
    let m = out_targets.len();
    let mut in_offsets = vec![0u32; n + 1];
    for t in &out_targets {
        in_offsets[t.index() + 1] += 1;
    }
    for i in 1..=n {
        in_offsets[i] += in_offsets[i - 1];
    }
    let mut cursor: Vec<u32> = in_offsets[..n].to_vec();
    let mut in_sources = vec![NodeId(0); m];
    let mut in_edge_ids = vec![crate::EdgeId(0); m];
    for (e, &t) in out_targets.iter().enumerate() {
        let slot = cursor[t.index()] as usize;
        cursor[t.index()] += 1;
        in_sources[slot] = edge_sources[e];
        in_edge_ids[slot] = crate::EdgeId(e as u32);
    }

    CsrGraph {
        nodes,
        out_offsets,
        out_targets,
        edge_weights,
        edge_sources,
        in_offsets,
        in_sources,
        in_edge_ids,
    }
}

#[inline]
fn push_edge<E>(
    key: u64,
    w: E,
    n: usize,
    out_offsets: &mut [u32],
    out_targets: &mut Vec<NodeId>,
    edge_weights: &mut Vec<E>,
    edge_sources: &mut Vec<NodeId>,
) {
    let src = (key >> 32) as u32;
    let dst = (key & 0xffff_ffff) as u32;
    assert!(
        (src as usize) < n && (dst as usize) < n,
        "edge endpoint out of range: ({src} or {dst}) >= {n}"
    );
    // Count at src+1 so the later in-place prefix sum lands offsets[u]
    // at the start of u's range.
    out_offsets[src as usize + 1] += 1;
    out_targets.push(NodeId(dst));
    edge_weights.push(w);
    edge_sources.push(NodeId(src));
}

/// A key-sorted run of triples awaiting merge.
type Run<E> = Vec<(u64, E)>;

/// Unstable sort by the u64 key; large inputs are split into owned runs
/// sorted on scoped threads, then the runs are merged pairwise (also in
/// parallel) until one remains.
fn parallel_sort_by_key<E: Send>(triples: &mut Vec<(u64, E)>) {
    let len = triples.len();
    let threads = std::thread::available_parallelism().map_or(1, |p| p.get());
    if len < PARALLEL_SORT_THRESHOLD || threads < 2 {
        triples.sort_unstable_by_key(|(k, _)| *k);
        return;
    }
    let n_chunks = threads.min(8).min(len);
    let chunk_len = len.div_ceil(n_chunks);

    // Split into owned runs so merged rounds can move elements freely.
    let mut rest = std::mem::take(triples);
    let mut runs: Vec<Run<E>> = Vec::with_capacity(n_chunks);
    while rest.len() > chunk_len {
        let tail = rest.split_off(chunk_len);
        runs.push(rest);
        rest = tail;
    }
    runs.push(rest);

    std::thread::scope(|scope| {
        for run in runs.iter_mut() {
            scope.spawn(move || run.sort_unstable_by_key(|(k, _)| *k));
        }
    });

    while runs.len() > 1 {
        let mut pairs: Vec<(Run<E>, Run<E>)> = Vec::with_capacity(runs.len().div_ceil(2));
        let mut it = runs.into_iter();
        while let Some(a) = it.next() {
            pairs.push((a, it.next().unwrap_or_default()));
        }
        runs = std::thread::scope(|scope| {
            let handles: Vec<_> = pairs
                .into_iter()
                .map(|(a, b)| scope.spawn(move || merge_two(a, b)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("merge thread"))
                .collect()
        });
    }
    *triples = runs.pop().unwrap_or_default();
}

/// Two-pointer merge of two key-sorted runs.
fn merge_two<E>(a: Vec<(u64, E)>, b: Vec<(u64, E)>) -> Vec<(u64, E)> {
    if a.is_empty() {
        return b;
    }
    if b.is_empty() {
        return a;
    }
    let mut out = Vec::with_capacity(a.len() + b.len());
    let mut ia = a.into_iter().peekable();
    let mut ib = b.into_iter().peekable();
    loop {
        let take_a = match (ia.peek(), ib.peek()) {
            (Some(x), Some(y)) => x.0 <= y.0,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => break,
        };
        let next = if take_a { ia.next() } else { ib.next() };
        out.push(next.expect("peeked element present"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregates_duplicates_deterministically() {
        let mut b = GraphBuilder::new();
        for _ in 0..5 {
            b.add_edge(NodeId(2), NodeId(1), 1.0f64);
        }
        b.add_edge(NodeId(0), NodeId(2), 1.0);
        let g = b.build(vec![(); 3], |acc, w| *acc += w);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.weight_between(NodeId(2), NodeId(1)), Some(&5.0));
        assert_eq!(g.weight_between(NodeId(0), NodeId(2)), Some(&1.0));
    }

    #[test]
    fn insertion_order_irrelevant() {
        let edges = [(0u32, 1u32), (3, 2), (1, 1), (0, 1), (2, 3), (3, 2), (0, 3)];
        let mut fwd = GraphBuilder::new();
        for &(s, t) in &edges {
            fwd.add_edge(NodeId(s), NodeId(t), 1.0f64);
        }
        let mut rev = GraphBuilder::new();
        for &(s, t) in edges.iter().rev() {
            rev.add_edge(NodeId(s), NodeId(t), 1.0f64);
        }
        let a = fwd.build(vec![(); 4], |acc, w| *acc += w);
        let b = rev.build(vec![(); 4], |acc, w| *acc += w);
        assert_eq!(a.edge_count(), b.edge_count());
        for (e, s, t, w) in a.edges_iter() {
            assert_eq!(b.endpoints(e), (s, t));
            assert_eq!(b.edge(e), w);
        }
    }

    #[test]
    fn empty_builder_builds_vertices_only() {
        let b: GraphBuilder<f64> = GraphBuilder::new();
        assert!(b.is_empty());
        let g = b.build(vec![(); 4], |acc, w| *acc += w);
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn large_input_takes_parallel_path() {
        // Above PARALLEL_SORT_THRESHOLD triples over a small node set →
        // heavy duplication; totals must be exact.
        let n = 64u32;
        let total = super::PARALLEL_SORT_THRESHOLD + 12_345;
        let mut b = GraphBuilder::with_capacity(total);
        let mut s = 1u64;
        for _ in 0..total {
            // LCG-ish stream, deterministic.
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let src = ((s >> 33) % n as u64) as u32;
            let dst = ((s >> 13) % n as u64) as u32;
            b.add_edge(NodeId(src), NodeId(dst), 1.0f64);
        }
        assert_eq!(b.len(), total);
        let g = b.build(vec![(); n as usize], |acc, w| *acc += w);
        let sum: f64 = g.edges_iter().map(|(_, _, _, &w)| w).sum();
        assert_eq!(sum as usize, total, "every triple accounted for");
        // Sorted adjacency.
        for u in g.node_ids() {
            let nb = g.out_neighbors(u);
            assert!(nb.windows(2).all(|w| w[0] < w[1]), "sorted, deduplicated");
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_endpoint_panics() {
        let mut b = GraphBuilder::new();
        b.add_edge(NodeId(0), NodeId(9), 1.0f64);
        let _ = b.build(vec![(); 2], |acc, w| *acc += w);
    }
}
