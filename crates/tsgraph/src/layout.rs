//! 2-D node layouts for graph rendering.
//!
//! The Graph frame draws the k-Graph embedding as a node-link diagram.
//! Three layouts are provided, all reading the CSR view ([`CsrGraph`]),
//! whose deterministic edge order makes layouts stable across re-renders
//! of the same graph:
//!
//! * [`circular`] — nodes evenly on a circle; O(n), the stable fallback
//!   and the safety valve for graphs too large even for Barnes–Hut.
//! * [`reference::force_directed`] — the exact Fruchterman–Reingold
//!   layout: repulsion between *every* node pair, O(iterations · n²).
//!   Readable at the 20–200-node sizes the paper's demos produce, and
//!   kept verbatim as the parity oracle for the approximate layout.
//! * [`barnes_hut`] — the same force model with quadtree-aggregated
//!   repulsion (opening angle θ): O(iterations · n log n), the layout
//!   for full 10k–100k-node graphoid layers. θ = 0 means "no
//!   approximation" and delegates to the exact reference, so the two
//!   paths can never drift at that setting.
//!
//! [`LayoutEngine`] selects between them — explicitly, or by node count
//! with [`LayoutEngine::Auto`] (exact below
//! [`AUTO_EXACT_MAX_NODES`], Barnes–Hut up to
//! [`AUTO_BARNES_HUT_MAX_NODES`], circular beyond).

use crate::csr::CsrGraph;
use crate::quadtree::QuadTree;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A 2-D position per node, indexed by `NodeId::index()`.
pub type Layout = Vec<(f64, f64)>;

/// Largest node count [`LayoutEngine::Auto`] lays out exactly; above it
/// the O(n²) repulsion term dominates render latency.
pub const AUTO_EXACT_MAX_NODES: usize = 512;

/// Largest node count [`LayoutEngine::Auto`] hands to Barnes–Hut; beyond
/// it even O(n log n) iterations are slower than a render should be, and
/// the deterministic circular layout takes over.
pub const AUTO_BARNES_HUT_MAX_NODES: usize = 200_000;

/// Places nodes evenly on a circle of radius `radius` centred at origin.
///
/// Order follows node ids, so the layout is deterministic and stable under
/// re-rendering.
pub fn circular<N, E>(g: &CsrGraph<N, E>, radius: f64) -> Layout {
    let n = g.node_count();
    (0..n)
        .map(|i| {
            let theta = 2.0 * std::f64::consts::PI * i as f64 / n.max(1) as f64;
            (radius * theta.cos(), radius * theta.sin())
        })
        .collect()
}

/// Options for the force-directed layouts (exact and Barnes–Hut).
#[derive(Debug, Clone, Copy)]
pub struct ForceOptions {
    /// Number of relaxation iterations.
    pub iterations: usize,
    /// Side length of the square drawing area.
    pub area: f64,
    /// RNG seed for the initial scatter (layout is deterministic given it).
    pub seed: u64,
}

impl Default for ForceOptions {
    fn default() -> Self {
        ForceOptions {
            iterations: 150,
            area: 1000.0,
            seed: 42,
        }
    }
}

/// Options for [`barnes_hut`]: the force options plus the opening angle.
#[derive(Debug, Clone, Copy)]
pub struct BarnesHutOptions {
    /// Shared force-model options (iterations, area, seed).
    pub force: ForceOptions,
    /// Opening angle θ: a cell of side `s` at distance `d` aggregates when
    /// `s / d < θ`. Larger is faster and coarser; `0` disables the
    /// approximation entirely (exact reference layout).
    pub theta: f64,
}

impl Default for BarnesHutOptions {
    fn default() -> Self {
        BarnesHutOptions {
            force: ForceOptions::default(),
            theta: 0.8,
        }
    }
}

/// Exact reference layouts, kept verbatim for parity testing against the
/// approximate implementations.
pub mod reference {
    use super::*;

    /// Fruchterman–Reingold force-directed layout (exact).
    ///
    /// Repulsive forces act between every node pair, attractive forces
    /// along edges; displacement is capped by a linearly cooling
    /// temperature. Runs in O(iterations · n²) — fine at demo sizes, the
    /// oracle [`super::barnes_hut`] is pinned against at scale.
    pub fn force_directed<N, E>(g: &CsrGraph<N, E>, opts: ForceOptions) -> Layout {
        let n = g.node_count();
        if n == 0 {
            return Vec::new();
        }
        if n == 1 {
            return vec![(0.0, 0.0)];
        }
        let side = opts.area;
        let mut pos = initial_scatter(n, side, opts.seed);
        // Ideal pairwise distance for the available area.
        let k = (side * side / n as f64).sqrt();
        let mut temperature = side / 10.0;
        let cooling = temperature / (opts.iterations.max(1) as f64);

        let edges = undirected_edges(g);
        let mut disp = vec![(0.0f64, 0.0f64); n];
        for _ in 0..opts.iterations {
            disp.fill((0.0, 0.0));
            // Repulsion: f_r(d) = k² / d.
            for i in 0..n {
                for j in (i + 1)..n {
                    let dx = pos[i].0 - pos[j].0;
                    let dy = pos[i].1 - pos[j].1;
                    let dist = (dx * dx + dy * dy).sqrt().max(1e-6);
                    let force = k * k / dist;
                    let fx = dx / dist * force;
                    let fy = dy / dist * force;
                    disp[i].0 += fx;
                    disp[i].1 += fy;
                    disp[j].0 -= fx;
                    disp[j].1 -= fy;
                }
            }
            attract_and_apply(&mut pos, &mut disp, &edges, k, side, temperature);
            temperature = (temperature - cooling).max(1e-3);
        }
        pos
    }
}

/// The initial random scatter shared by the exact and Barnes–Hut layouts
/// (identical RNG stream → identical starting conditions).
fn initial_scatter(n: usize, side: f64, seed: u64) -> Layout {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            (
                rng.gen_range(-side / 2.0..side / 2.0),
                rng.gen_range(-side / 2.0..side / 2.0),
            )
        })
        .collect()
}

/// Non-loop edge endpoint pairs, in deterministic CSR order.
fn undirected_edges<N, E>(g: &CsrGraph<N, E>) -> Vec<(usize, usize)> {
    g.edges_iter()
        .map(|(_, s, t, _)| (s.index(), t.index()))
        .filter(|(s, t)| s != t)
        .collect()
}

/// The attraction + displacement half of one Fruchterman–Reingold
/// iteration, shared verbatim by the exact and Barnes–Hut paths so the
/// only difference between them is how repulsion is summed.
fn attract_and_apply(
    pos: &mut [(f64, f64)],
    disp: &mut [(f64, f64)],
    edges: &[(usize, usize)],
    k: f64,
    side: f64,
    temperature: f64,
) {
    // Attraction along edges: f_a(d) = d² / k.
    for &(s, t) in edges {
        let dx = pos[s].0 - pos[t].0;
        let dy = pos[s].1 - pos[t].1;
        let dist = (dx * dx + dy * dy).sqrt().max(1e-6);
        let force = dist * dist / k;
        let fx = dx / dist * force;
        let fy = dy / dist * force;
        disp[s].0 -= fx;
        disp[s].1 -= fy;
        disp[t].0 += fx;
        disp[t].1 += fy;
    }
    // Apply displacements, capped by temperature, clamped to the area.
    for i in 0..pos.len() {
        let (dx, dy) = disp[i];
        let len = (dx * dx + dy * dy).sqrt().max(1e-6);
        let step = len.min(temperature);
        pos[i].0 = (pos[i].0 + dx / len * step).clamp(-side / 2.0, side / 2.0);
        pos[i].1 = (pos[i].1 + dy / len * step).clamp(-side / 2.0, side / 2.0);
    }
}

/// Fruchterman–Reingold force-directed layout (exact O(n²) reference).
///
/// Alias for [`reference::force_directed`], kept under the historical name
/// for existing callers.
pub fn force_directed<N, E>(g: &CsrGraph<N, E>, opts: ForceOptions) -> Layout {
    reference::force_directed(g, opts)
}

/// Barnes–Hut force-directed layout: the Fruchterman–Reingold force model
/// with quadtree-aggregated repulsion, O(iterations · n log n).
///
/// Deterministic given the seed. With `theta == 0` the approximation is
/// disabled and the call delegates to [`reference::force_directed`] — the
/// two layouts are bit-identical at that setting. The attraction and
/// displacement steps are shared with the reference implementation, so θ
/// is the *only* source of divergence.
pub fn barnes_hut<N, E>(g: &CsrGraph<N, E>, opts: BarnesHutOptions) -> Layout {
    if opts.theta <= 0.0 {
        return reference::force_directed(g, opts.force);
    }
    let n = g.node_count();
    if n == 0 {
        return Vec::new();
    }
    if n == 1 {
        return vec![(0.0, 0.0)];
    }
    let side = opts.force.area;
    let mut pos = initial_scatter(n, side, opts.force.seed);
    let k = (side * side / n as f64).sqrt();
    let k2 = k * k;
    let mut temperature = side / 10.0;
    let cooling = temperature / (opts.force.iterations.max(1) as f64);

    let edges = undirected_edges(g);
    let mut disp = vec![(0.0f64, 0.0f64); n];
    let mut tree = QuadTree::new();
    for _ in 0..opts.force.iterations {
        tree.build(&pos);
        for (i, d) in disp.iter_mut().enumerate() {
            *d = tree.repulsion(&pos, i, opts.theta, k2);
        }
        attract_and_apply(&mut pos, &mut disp, &edges, k, side, temperature);
        temperature = (temperature - cooling).max(1e-3);
    }
    pos
}

/// Which layout algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LayoutEngine {
    /// Pick by node count: exact ≤ [`AUTO_EXACT_MAX_NODES`] <
    /// Barnes–Hut ≤ [`AUTO_BARNES_HUT_MAX_NODES`] < circular.
    Auto,
    /// Deterministic circle, O(n).
    Circular,
    /// Exact Fruchterman–Reingold, O(iterations · n²).
    Exact,
    /// Barnes–Hut approximate Fruchterman–Reingold, O(iterations · n log n).
    BarnesHut,
}

impl LayoutEngine {
    /// Parses the wire names used by the render endpoints.
    pub fn parse(s: &str) -> Option<LayoutEngine> {
        match s {
            "auto" => Some(LayoutEngine::Auto),
            "circular" | "circle" => Some(LayoutEngine::Circular),
            "exact" | "force" | "fr" => Some(LayoutEngine::Exact),
            "bh" | "barnes-hut" | "barneshut" => Some(LayoutEngine::BarnesHut),
            _ => None,
        }
    }

    /// Resolves `Auto` to a concrete engine for a graph of `n` nodes.
    pub fn resolve(self, n: usize) -> LayoutEngine {
        match self {
            LayoutEngine::Auto => {
                if n <= AUTO_EXACT_MAX_NODES {
                    LayoutEngine::Exact
                } else if n <= AUTO_BARNES_HUT_MAX_NODES {
                    LayoutEngine::BarnesHut
                } else {
                    LayoutEngine::Circular
                }
            }
            concrete => concrete,
        }
    }
}

/// Lays out `g` with the selected engine. `Auto` resolves by node count;
/// the circular engine uses `area / 2` as its radius so every engine draws
/// into the same square.
pub fn layout_graph<N, E>(
    g: &CsrGraph<N, E>,
    engine: LayoutEngine,
    opts: BarnesHutOptions,
) -> Layout {
    match engine.resolve(g.node_count()) {
        LayoutEngine::Circular => circular(g, opts.force.area / 2.0),
        LayoutEngine::Exact => reference::force_directed(g, opts.force),
        LayoutEngine::BarnesHut => barnes_hut(g, opts),
        LayoutEngine::Auto => unreachable!("resolve() never returns Auto"),
    }
}

/// Span below which an axis is treated as degenerate by
/// [`fit_to_viewport`] (single node, collinear layout): the points are
/// centred on that axis instead of having numeric noise stretched across
/// the full viewport.
const DEGENERATE_SPAN: f64 = 1e-9;

/// Rescales a layout to fit inside `[0, width] × [0, height]` with a
/// margin. An axis whose span is degenerate (single node, collinear
/// layout) is centred rather than stretched.
pub fn fit_to_viewport(layout: &[(f64, f64)], width: f64, height: f64, margin: f64) -> Layout {
    if layout.is_empty() {
        return Vec::new();
    }
    let min_x = layout.iter().map(|p| p.0).fold(f64::INFINITY, f64::min);
    let max_x = layout.iter().map(|p| p.0).fold(f64::NEG_INFINITY, f64::max);
    let min_y = layout.iter().map(|p| p.1).fold(f64::INFINITY, f64::min);
    let max_y = layout.iter().map(|p| p.1).fold(f64::NEG_INFINITY, f64::max);
    let span_x = max_x - min_x;
    let span_y = max_y - min_y;
    let usable_w = (width - 2.0 * margin).max(1.0);
    let usable_h = (height - 2.0 * margin).max(1.0);
    let map_x = |x: f64| {
        if span_x <= DEGENERATE_SPAN {
            margin + usable_w / 2.0
        } else {
            margin + (x - min_x) / span_x * usable_w
        }
    };
    let map_y = |y: f64| {
        if span_y <= DEGENERATE_SPAN {
            margin + usable_h / 2.0
        } else {
            margin + (y - min_y) / span_y * usable_h
        }
    };
    layout.iter().map(|&(x, y)| (map_x(x), map_y(y))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::digraph::NodeId;

    fn path_graph(n: usize) -> CsrGraph<(), ()> {
        let mut b = GraphBuilder::new();
        for i in 1..n {
            b.add_edge(NodeId(i as u32 - 1), NodeId(i as u32), ());
        }
        b.build(vec![(); n], |_, _| {})
    }

    #[test]
    fn circular_on_unit_circle() {
        let g = path_graph(4);
        let pos = circular(&g, 10.0);
        assert_eq!(pos.len(), 4);
        for (x, y) in &pos {
            assert!(((x * x + y * y).sqrt() - 10.0).abs() < 1e-9);
        }
        // Distinct positions.
        assert!((pos[0].0 - pos[1].0).abs() + (pos[0].1 - pos[1].1).abs() > 1.0);
    }

    #[test]
    fn force_layout_deterministic_given_seed() {
        let g = path_graph(10);
        let a = force_directed(&g, ForceOptions::default());
        let b = force_directed(&g, ForceOptions::default());
        assert_eq!(a, b);
        let c = force_directed(
            &g,
            ForceOptions {
                seed: 7,
                ..ForceOptions::default()
            },
        );
        assert_ne!(a, c);
    }

    #[test]
    fn force_layout_separates_nodes() {
        let g = path_graph(8);
        let pos = force_directed(&g, ForceOptions::default());
        for i in 0..pos.len() {
            for j in (i + 1)..pos.len() {
                let d = ((pos[i].0 - pos[j].0).powi(2) + (pos[i].1 - pos[j].1).powi(2)).sqrt();
                assert!(d > 1.0, "nodes {i} and {j} overlap: {d}");
            }
        }
    }

    #[test]
    fn force_layout_pulls_neighbors_closer_than_strangers() {
        // A path 0-1-2-...-9: endpoints should end up farther apart than
        // adjacent pairs on average.
        let g = path_graph(10);
        let pos = force_directed(
            &g,
            ForceOptions {
                iterations: 400,
                ..Default::default()
            },
        );
        let d = |i: usize, j: usize| {
            ((pos[i].0 - pos[j].0).powi(2) + (pos[i].1 - pos[j].1).powi(2)).sqrt()
        };
        let adjacent: f64 = (0..9).map(|i| d(i, i + 1)).sum::<f64>() / 9.0;
        assert!(
            d(0, 9) > adjacent,
            "endpoints {:.1} vs adjacent {:.1}",
            d(0, 9),
            adjacent
        );
    }

    #[test]
    fn barnes_hut_theta_zero_is_the_reference() {
        let g = path_graph(40);
        let exact = reference::force_directed(&g, ForceOptions::default());
        let bh = barnes_hut(
            &g,
            BarnesHutOptions {
                theta: 0.0,
                ..Default::default()
            },
        );
        assert_eq!(exact, bh);
    }

    #[test]
    fn barnes_hut_deterministic_and_finite() {
        let g = path_graph(300);
        let opts = BarnesHutOptions {
            force: ForceOptions {
                iterations: 60,
                ..Default::default()
            },
            theta: 0.8,
        };
        let a = barnes_hut(&g, opts);
        let b = barnes_hut(&g, opts);
        assert_eq!(a, b);
        assert!(a.iter().all(|p| p.0.is_finite() && p.1.is_finite()));
        let half = opts.force.area / 2.0 + 1e-9;
        assert!(a.iter().all(|p| p.0.abs() <= half && p.1.abs() <= half));
    }

    #[test]
    fn auto_engine_resolves_by_node_count() {
        assert_eq!(LayoutEngine::Auto.resolve(10), LayoutEngine::Exact);
        assert_eq!(
            LayoutEngine::Auto.resolve(AUTO_EXACT_MAX_NODES),
            LayoutEngine::Exact
        );
        assert_eq!(
            LayoutEngine::Auto.resolve(AUTO_EXACT_MAX_NODES + 1),
            LayoutEngine::BarnesHut
        );
        assert_eq!(
            LayoutEngine::Auto.resolve(AUTO_BARNES_HUT_MAX_NODES + 1),
            LayoutEngine::Circular
        );
        assert_eq!(LayoutEngine::Exact.resolve(1_000_000), LayoutEngine::Exact);
    }

    #[test]
    fn engine_parsing() {
        assert_eq!(LayoutEngine::parse("auto"), Some(LayoutEngine::Auto));
        assert_eq!(LayoutEngine::parse("bh"), Some(LayoutEngine::BarnesHut));
        assert_eq!(
            LayoutEngine::parse("barnes-hut"),
            Some(LayoutEngine::BarnesHut)
        );
        assert_eq!(LayoutEngine::parse("exact"), Some(LayoutEngine::Exact));
        assert_eq!(
            LayoutEngine::parse("circular"),
            Some(LayoutEngine::Circular)
        );
        assert_eq!(LayoutEngine::parse("nope"), None);
    }

    #[test]
    fn layout_graph_small_matches_exact() {
        let g = path_graph(12);
        let via_engine = layout_graph(&g, LayoutEngine::Auto, BarnesHutOptions::default());
        let direct = reference::force_directed(&g, ForceOptions::default());
        assert_eq!(via_engine, direct);
    }

    #[test]
    fn degenerate_graphs() {
        let empty: CsrGraph<(), ()> = CsrGraph::vertices_only(Vec::new());
        assert!(force_directed(&empty, ForceOptions::default()).is_empty());
        assert!(barnes_hut(&empty, BarnesHutOptions::default()).is_empty());
        assert!(circular(&empty, 1.0).is_empty());

        let single: CsrGraph<(), ()> = CsrGraph::vertices_only(vec![()]);
        assert_eq!(
            force_directed(&single, ForceOptions::default()),
            vec![(0.0, 0.0)]
        );
        assert_eq!(
            barnes_hut(&single, BarnesHutOptions::default()),
            vec![(0.0, 0.0)]
        );
    }

    #[test]
    fn self_loops_do_not_explode() {
        let mut b = GraphBuilder::new();
        b.add_edge(NodeId(0), NodeId(0), ());
        b.add_edge(NodeId(0), NodeId(1), ());
        let g = b.build(vec![(); 2], |_, _| {});
        let pos = force_directed(&g, ForceOptions::default());
        assert!(pos.iter().all(|p| p.0.is_finite() && p.1.is_finite()));
        let pos = barnes_hut(&g, BarnesHutOptions::default());
        assert!(pos.iter().all(|p| p.0.is_finite() && p.1.is_finite()));
    }

    #[test]
    fn viewport_fitting() {
        let layout = vec![(-5.0, -5.0), (5.0, 5.0), (0.0, 0.0)];
        let fitted = fit_to_viewport(&layout, 100.0, 50.0, 10.0);
        for (x, y) in &fitted {
            assert!(*x >= 10.0 - 1e-9 && *x <= 90.0 + 1e-9);
            assert!(*y >= 10.0 - 1e-9 && *y <= 40.0 + 1e-9);
        }
        assert_eq!(fitted[0], (10.0, 10.0));
        assert_eq!(fitted[1], (90.0, 40.0));
        assert!(fit_to_viewport(&Vec::new(), 10.0, 10.0, 1.0).is_empty());
    }

    #[test]
    fn viewport_fitting_degenerate_spans_are_centred() {
        // Single node: dead centre of the viewport, not the margin corner.
        let one = fit_to_viewport(&[(3.0, 4.0)], 100.0, 60.0, 10.0);
        assert_eq!(one, vec![(50.0, 30.0)]);

        // Horizontal collinear points: y centred, x spread normally.
        let layout = vec![(1.0, 3.0), (2.0, 3.0), (3.0, 3.0)];
        let fitted = fit_to_viewport(&layout, 100.0, 100.0, 10.0);
        assert!(fitted.iter().all(|p| (p.1 - 50.0).abs() < 1e-9));
        assert_eq!(fitted[0].0, 10.0);
        assert_eq!(fitted[2].0, 90.0);

        // Numeric-noise span (≤ 1e-9) counts as degenerate too: no
        // stretching a femtometre across the full axis.
        let noisy = vec![(0.0, 0.0), (5e-10, 1.0)];
        let fitted = fit_to_viewport(&noisy, 100.0, 100.0, 0.0);
        assert!((fitted[0].0 - 50.0).abs() < 1e-9);
        assert!((fitted[1].0 - 50.0).abs() < 1e-9);
    }
}
