//! 2-D node layouts for graph rendering.
//!
//! The Graph frame draws the k-Graph embedding as a node-link diagram. Two
//! layouts are provided: a deterministic circular layout (stable fallback)
//! and Fruchterman–Reingold force-directed layout (readable at the 20–200
//! node sizes the pipeline produces). Both read the CSR view
//! ([`CsrGraph`]); its deterministic edge order makes layouts stable
//! across re-renders of the same graph.

use crate::csr::CsrGraph;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A 2-D position per node, indexed by `NodeId::index()`.
pub type Layout = Vec<(f64, f64)>;

/// Places nodes evenly on a circle of radius `radius` centred at origin.
///
/// Order follows node ids, so the layout is deterministic and stable under
/// re-rendering.
pub fn circular<N, E>(g: &CsrGraph<N, E>, radius: f64) -> Layout {
    let n = g.node_count();
    (0..n)
        .map(|i| {
            let theta = 2.0 * std::f64::consts::PI * i as f64 / n.max(1) as f64;
            (radius * theta.cos(), radius * theta.sin())
        })
        .collect()
}

/// Options for the force-directed layout.
#[derive(Debug, Clone, Copy)]
pub struct ForceOptions {
    /// Number of relaxation iterations.
    pub iterations: usize,
    /// Side length of the square drawing area.
    pub area: f64,
    /// RNG seed for the initial scatter (layout is deterministic given it).
    pub seed: u64,
}

impl Default for ForceOptions {
    fn default() -> Self {
        ForceOptions {
            iterations: 150,
            area: 1000.0,
            seed: 42,
        }
    }
}

/// Fruchterman–Reingold force-directed layout.
///
/// Repulsive forces act between every node pair, attractive forces along
/// edges; displacement is capped by a linearly cooling temperature. Runs in
/// O(iterations · n²), fine for the graph sizes of this system.
pub fn force_directed<N, E>(g: &CsrGraph<N, E>, opts: ForceOptions) -> Layout {
    let n = g.node_count();
    if n == 0 {
        return Vec::new();
    }
    if n == 1 {
        return vec![(0.0, 0.0)];
    }
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let side = opts.area;
    let mut pos: Layout = (0..n)
        .map(|_| {
            (
                rng.gen_range(-side / 2.0..side / 2.0),
                rng.gen_range(-side / 2.0..side / 2.0),
            )
        })
        .collect();
    // Ideal pairwise distance for the available area.
    let k = (side * side / n as f64).sqrt();
    let mut temperature = side / 10.0;
    let cooling = temperature / (opts.iterations.max(1) as f64);

    let edges: Vec<(usize, usize)> = g
        .edges_iter()
        .map(|(_, s, t, _)| (s.index(), t.index()))
        .filter(|(s, t)| s != t)
        .collect();

    let mut disp = vec![(0.0f64, 0.0f64); n];
    for _ in 0..opts.iterations {
        disp.fill((0.0, 0.0));
        // Repulsion: f_r(d) = k² / d.
        for i in 0..n {
            for j in (i + 1)..n {
                let dx = pos[i].0 - pos[j].0;
                let dy = pos[i].1 - pos[j].1;
                let dist = (dx * dx + dy * dy).sqrt().max(1e-6);
                let force = k * k / dist;
                let fx = dx / dist * force;
                let fy = dy / dist * force;
                disp[i].0 += fx;
                disp[i].1 += fy;
                disp[j].0 -= fx;
                disp[j].1 -= fy;
            }
        }
        // Attraction along edges: f_a(d) = d² / k.
        for &(s, t) in &edges {
            let dx = pos[s].0 - pos[t].0;
            let dy = pos[s].1 - pos[t].1;
            let dist = (dx * dx + dy * dy).sqrt().max(1e-6);
            let force = dist * dist / k;
            let fx = dx / dist * force;
            let fy = dy / dist * force;
            disp[s].0 -= fx;
            disp[s].1 -= fy;
            disp[t].0 += fx;
            disp[t].1 += fy;
        }
        // Apply displacements, capped by temperature, clamped to the area.
        for i in 0..n {
            let (dx, dy) = disp[i];
            let len = (dx * dx + dy * dy).sqrt().max(1e-6);
            let step = len.min(temperature);
            pos[i].0 = (pos[i].0 + dx / len * step).clamp(-side / 2.0, side / 2.0);
            pos[i].1 = (pos[i].1 + dy / len * step).clamp(-side / 2.0, side / 2.0);
        }
        temperature = (temperature - cooling).max(1e-3);
    }
    pos
}

/// Rescales a layout to fit inside `[0, width] × [0, height]` with a margin.
pub fn fit_to_viewport(layout: &Layout, width: f64, height: f64, margin: f64) -> Layout {
    if layout.is_empty() {
        return Vec::new();
    }
    let min_x = layout.iter().map(|p| p.0).fold(f64::INFINITY, f64::min);
    let max_x = layout.iter().map(|p| p.0).fold(f64::NEG_INFINITY, f64::max);
    let min_y = layout.iter().map(|p| p.1).fold(f64::INFINITY, f64::min);
    let max_y = layout.iter().map(|p| p.1).fold(f64::NEG_INFINITY, f64::max);
    let span_x = (max_x - min_x).max(1e-9);
    let span_y = (max_y - min_y).max(1e-9);
    let usable_w = (width - 2.0 * margin).max(1.0);
    let usable_h = (height - 2.0 * margin).max(1.0);
    layout
        .iter()
        .map(|&(x, y)| {
            (
                margin + (x - min_x) / span_x * usable_w,
                margin + (y - min_y) / span_y * usable_h,
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::digraph::NodeId;

    fn path_graph(n: usize) -> CsrGraph<(), ()> {
        let mut b = GraphBuilder::new();
        for i in 1..n {
            b.add_edge(NodeId(i as u32 - 1), NodeId(i as u32), ());
        }
        b.build(vec![(); n], |_, _| {})
    }

    #[test]
    fn circular_on_unit_circle() {
        let g = path_graph(4);
        let pos = circular(&g, 10.0);
        assert_eq!(pos.len(), 4);
        for (x, y) in &pos {
            assert!(((x * x + y * y).sqrt() - 10.0).abs() < 1e-9);
        }
        // Distinct positions.
        assert!((pos[0].0 - pos[1].0).abs() + (pos[0].1 - pos[1].1).abs() > 1.0);
    }

    #[test]
    fn force_layout_deterministic_given_seed() {
        let g = path_graph(10);
        let a = force_directed(&g, ForceOptions::default());
        let b = force_directed(&g, ForceOptions::default());
        assert_eq!(a, b);
        let c = force_directed(
            &g,
            ForceOptions {
                seed: 7,
                ..ForceOptions::default()
            },
        );
        assert_ne!(a, c);
    }

    #[test]
    fn force_layout_separates_nodes() {
        let g = path_graph(8);
        let pos = force_directed(&g, ForceOptions::default());
        for i in 0..pos.len() {
            for j in (i + 1)..pos.len() {
                let d = ((pos[i].0 - pos[j].0).powi(2) + (pos[i].1 - pos[j].1).powi(2)).sqrt();
                assert!(d > 1.0, "nodes {i} and {j} overlap: {d}");
            }
        }
    }

    #[test]
    fn force_layout_pulls_neighbors_closer_than_strangers() {
        // A path 0-1-2-...-9: endpoints should end up farther apart than
        // adjacent pairs on average.
        let g = path_graph(10);
        let pos = force_directed(
            &g,
            ForceOptions {
                iterations: 400,
                ..Default::default()
            },
        );
        let d = |i: usize, j: usize| {
            ((pos[i].0 - pos[j].0).powi(2) + (pos[i].1 - pos[j].1).powi(2)).sqrt()
        };
        let adjacent: f64 = (0..9).map(|i| d(i, i + 1)).sum::<f64>() / 9.0;
        assert!(
            d(0, 9) > adjacent,
            "endpoints {:.1} vs adjacent {:.1}",
            d(0, 9),
            adjacent
        );
    }

    #[test]
    fn degenerate_graphs() {
        let empty: CsrGraph<(), ()> = CsrGraph::vertices_only(Vec::new());
        assert!(force_directed(&empty, ForceOptions::default()).is_empty());
        assert!(circular(&empty, 1.0).is_empty());

        let single: CsrGraph<(), ()> = CsrGraph::vertices_only(vec![()]);
        assert_eq!(
            force_directed(&single, ForceOptions::default()),
            vec![(0.0, 0.0)]
        );
    }

    #[test]
    fn self_loops_do_not_explode() {
        let mut b = GraphBuilder::new();
        b.add_edge(NodeId(0), NodeId(0), ());
        b.add_edge(NodeId(0), NodeId(1), ());
        let g = b.build(vec![(); 2], |_, _| {});
        let pos = force_directed(&g, ForceOptions::default());
        assert!(pos.iter().all(|p| p.0.is_finite() && p.1.is_finite()));
    }

    #[test]
    fn viewport_fitting() {
        let layout = vec![(-5.0, -5.0), (5.0, 5.0), (0.0, 0.0)];
        let fitted = fit_to_viewport(&layout, 100.0, 50.0, 10.0);
        for (x, y) in &fitted {
            assert!(*x >= 10.0 - 1e-9 && *x <= 90.0 + 1e-9);
            assert!(*y >= 10.0 - 1e-9 && *y <= 40.0 + 1e-9);
        }
        assert_eq!(fitted[0], (10.0, 10.0));
        assert_eq!(fitted[1], (90.0, 40.0));
        assert!(fit_to_viewport(&Vec::new(), 10.0, 10.0, 1.0).is_empty());
    }

    #[test]
    fn viewport_fitting_collinear_points() {
        let layout = vec![(1.0, 3.0), (2.0, 3.0), (3.0, 3.0)];
        let fitted = fit_to_viewport(&layout, 100.0, 100.0, 0.0);
        assert!(fitted.iter().all(|p| p.0.is_finite() && p.1.is_finite()));
    }
}
