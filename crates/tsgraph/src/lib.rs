//! # tsgraph — directed weighted graphs for k-Graph
//!
//! A small, from-scratch graph arena tailored to what the k-Graph pipeline
//! and the Graphint Graph frame need:
//!
//! * [`DiGraph`] — arena-indexed directed graph with node and edge payloads,
//!   O(1) node/edge access by id, per-node adjacency lists, and edge lookup
//!   between endpoints,
//! * [`algo`] — weakly connected components, BFS traversal, reachability and
//!   payload-predicate subgraph extraction (used for graphoid subgraphs),
//! * [`layout`] — circular and Fruchterman–Reingold force-directed 2-D
//!   layouts for rendering graphs in the Graph frame.
//!
//! This replaces `petgraph` (kept out deliberately; the dependency budget of
//! the reproduction is limited to rand/proptest/criterion/crossbeam/
//! parking_lot/bytes/serde and the required surface is tiny).

pub mod algo;
pub mod digraph;
pub mod layout;

pub use digraph::{DiGraph, EdgeId, NodeId};
