//! # tsgraph — directed weighted graphs for k-Graph
//!
//! Graph substrate of the Graphint / k-Graph reproduction. Two storage
//! layers with one clear division of labour:
//!
//! ## Architecture: `DiGraph` builds, `CsrGraph` queries
//!
//! * [`CsrGraph`] (module [`csr`]) — the **query-time** representation
//!   every consumer reads from. Compressed sparse row: per-direction
//!   offset/target/weight arrays, O(1) degrees, neighbours and per-node
//!   edge payloads as contiguous sorted slices, O(log deg) edge lookup
//!   ([`CsrGraph::edge_id`]) and deterministic iteration order. The
//!   k-Graph pipeline stores every `G_ℓ` in this form; features, graphoid
//!   statistics, anomaly scoring, the algorithms below and the Graphint
//!   Graph frame all run against it.
//! * [`builder::GraphBuilder`] — the **construction** path. Consumers emit
//!   raw `(src, dst, weight)` triples (one per observed transition, no
//!   lookups), and `build` produces the CSR graph via a parallel chunked
//!   sort followed by a run-length aggregation of duplicate edges. This
//!   replaces the old per-edge `edge_between` probing, which made graph
//!   construction O(E·deg).
//! * [`DiGraph`] (module [`digraph`]) — the mutable escape hatch for
//!   callers that genuinely need incremental node/edge insertion with
//!   stable ids (tests, ad-hoc graph assembly). Convert losslessly with
//!   [`CsrGraph::from_digraph`] (parallel edges aggregate through the
//!   supplied merge) before querying; nothing on the hot path should scan
//!   `DiGraph` adjacency lists.
//!
//! ## Streaming construction and maintenance
//!
//! * [`spill`] — [`spill::SpillBuilder`], the bounded-memory construction
//!   path: triples accumulate in fixed-size sorted runs that spill to disk
//!   (CRC-checked `TSR1` files) and k-way merge into the same CSR assembly
//!   pass the in-RAM builder uses, bit-identical for exact weights.
//! * [`delta`] — [`delta::DeltaGraph`] buffers transitions observed after
//!   a base CSR froze; [`delta::DeltaView`] serves merged base+delta reads
//!   (2-way merge per node, lock-free) and compacts into a fresh CSR.
//! * [`checksum`] — dependency-free CRC-32 (IEEE) used by spilled runs and
//!   the persisted model format.
//!
//! Supporting modules:
//!
//! * [`algo`] — CSR-native breadth-first traversal, weakly connected
//!   components, reachability, degree ordering and weighted PageRank
//!   (plus `algo::reference` DiGraph implementations kept for parity
//!   testing),
//! * [`layout`] — 2-D layouts over CSR graphs for the Graph frame:
//!   circular, the exact Fruchterman–Reingold reference
//!   (`layout::reference`) and the Barnes–Hut approximation
//!   ([`layout::barnes_hut`]) for 10k+-node layers, selected by
//!   [`layout::LayoutEngine`],
//! * [`quadtree`] — the reusable Barnes–Hut quadtree backing the
//!   approximate layout.
//!
//! This replaces `petgraph` (kept out deliberately; the dependency budget
//! of the reproduction is limited to the local shims plus the std
//! library, and the required surface is tiny).

pub mod algo;
pub mod builder;
pub mod checksum;
pub mod csr;
pub mod delta;
pub mod digraph;
pub mod layout;
pub mod quadtree;
pub mod spill;

pub use builder::GraphBuilder;
pub use csr::CsrGraph;
pub use delta::{DeltaGraph, DeltaView};
pub use digraph::{DiGraph, EdgeId, NodeId};
pub use spill::SpillBuilder;
