//! Arena-indexed directed graph.

/// Opaque node identifier (index into the node arena).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

/// Opaque edge identifier (index into the edge arena).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EdgeId(pub u32);

impl NodeId {
    /// The id as a usize index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl EdgeId {
    /// The id as a usize index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

#[derive(Debug, Clone)]
struct NodeEntry<N> {
    weight: N,
    out_edges: Vec<EdgeId>,
    in_edges: Vec<EdgeId>,
}

#[derive(Debug, Clone)]
struct EdgeEntry<E> {
    weight: E,
    source: NodeId,
    target: NodeId,
}

/// Directed graph `G = (N, E)` with node payloads `N` and edge payloads `E`.
///
/// Nodes and edges are never removed (the pipeline only builds graphs and
/// then extracts *views*), which keeps ids stable and the arena dense.
/// Parallel edges are allowed by the structure; [`DiGraph::edge_between`]
/// lets builders deduplicate when they want weighted simple graphs.
#[derive(Debug, Clone)]
pub struct DiGraph<N, E> {
    nodes: Vec<NodeEntry<N>>,
    edges: Vec<EdgeEntry<E>>,
}

impl<N, E> Default for DiGraph<N, E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<N, E> DiGraph<N, E> {
    /// Creates an empty graph.
    pub fn new() -> Self {
        DiGraph {
            nodes: Vec::new(),
            edges: Vec::new(),
        }
    }

    /// Creates an empty graph with pre-reserved capacity.
    pub fn with_capacity(nodes: usize, edges: usize) -> Self {
        DiGraph {
            nodes: Vec::with_capacity(nodes),
            edges: Vec::with_capacity(edges),
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Adds a node, returning its id.
    pub fn add_node(&mut self, weight: N) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(NodeEntry {
            weight,
            out_edges: Vec::new(),
            in_edges: Vec::new(),
        });
        id
    }

    /// Adds a directed edge `source → target`, returning its id.
    ///
    /// Panics if either endpoint is not in the graph.
    pub fn add_edge(&mut self, source: NodeId, target: NodeId, weight: E) -> EdgeId {
        assert!(
            source.index() < self.nodes.len(),
            "source node out of range"
        );
        assert!(
            target.index() < self.nodes.len(),
            "target node out of range"
        );
        let id = EdgeId(self.edges.len() as u32);
        self.edges.push(EdgeEntry {
            weight,
            source,
            target,
        });
        self.nodes[source.index()].out_edges.push(id);
        self.nodes[target.index()].in_edges.push(id);
        id
    }

    /// Node payload by id.
    pub fn node(&self, id: NodeId) -> &N {
        &self.nodes[id.index()].weight
    }

    /// Mutable node payload by id.
    pub fn node_mut(&mut self, id: NodeId) -> &mut N {
        &mut self.nodes[id.index()].weight
    }

    /// Edge payload by id.
    pub fn edge(&self, id: EdgeId) -> &E {
        &self.edges[id.index()].weight
    }

    /// Mutable edge payload by id.
    pub fn edge_mut(&mut self, id: EdgeId) -> &mut E {
        &mut self.edges[id.index()].weight
    }

    /// Endpoints `(source, target)` of an edge.
    pub fn endpoints(&self, id: EdgeId) -> (NodeId, NodeId) {
        let e = &self.edges[id.index()];
        (e.source, e.target)
    }

    /// First edge `source → target` if one exists (linear in out-degree).
    pub fn edge_between(&self, source: NodeId, target: NodeId) -> Option<EdgeId> {
        self.nodes[source.index()]
            .out_edges
            .iter()
            .copied()
            .find(|&e| self.edges[e.index()].target == target)
    }

    /// Ids of all nodes.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Ids of all edges.
    pub fn edge_ids(&self) -> impl Iterator<Item = EdgeId> + '_ {
        (0..self.edges.len() as u32).map(EdgeId)
    }

    /// Outgoing edges of a node.
    pub fn out_edges(&self, id: NodeId) -> &[EdgeId] {
        &self.nodes[id.index()].out_edges
    }

    /// Incoming edges of a node.
    pub fn in_edges(&self, id: NodeId) -> &[EdgeId] {
        &self.nodes[id.index()].in_edges
    }

    /// Out-degree.
    pub fn out_degree(&self, id: NodeId) -> usize {
        self.nodes[id.index()].out_edges.len()
    }

    /// In-degree.
    pub fn in_degree(&self, id: NodeId) -> usize {
        self.nodes[id.index()].in_edges.len()
    }

    /// Total degree (in + out).
    pub fn degree(&self, id: NodeId) -> usize {
        self.in_degree(id) + self.out_degree(id)
    }

    /// Successor nodes (targets of outgoing edges, may repeat).
    pub fn successors(&self, id: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes[id.index()]
            .out_edges
            .iter()
            .map(move |&e| self.edges[e.index()].target)
    }

    /// Predecessor nodes (sources of incoming edges, may repeat).
    pub fn predecessors(&self, id: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes[id.index()]
            .in_edges
            .iter()
            .map(move |&e| self.edges[e.index()].source)
    }

    /// Undirected neighbours (successors ∪ predecessors, may repeat).
    pub fn neighbors_undirected(&self, id: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.successors(id).chain(self.predecessors(id))
    }

    /// Iterator over `(id, payload)` for all nodes.
    pub fn nodes_iter(&self) -> impl Iterator<Item = (NodeId, &N)> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (NodeId(i as u32), &n.weight))
    }

    /// Iterator over `(id, source, target, payload)` for all edges.
    pub fn edges_iter(&self) -> impl Iterator<Item = (EdgeId, NodeId, NodeId, &E)> {
        self.edges
            .iter()
            .enumerate()
            .map(|(i, e)| (EdgeId(i as u32), e.source, e.target, &e.weight))
    }
}

impl<N: Clone, E: Clone> DiGraph<N, E> {
    /// Extracts the sub-graph induced by the nodes that satisfy `keep`.
    ///
    /// Returns the new graph together with the mapping from old to new node
    /// ids (`None` for dropped nodes). Edges survive iff both endpoints do.
    pub fn filter_nodes(
        &self,
        mut keep: impl FnMut(NodeId, &N) -> bool,
    ) -> (Self, Vec<Option<NodeId>>) {
        let mut mapping: Vec<Option<NodeId>> = vec![None; self.nodes.len()];
        let mut out = DiGraph::with_capacity(self.nodes.len(), self.edges.len());
        for (id, w) in self.nodes_iter() {
            if keep(id, w) {
                mapping[id.index()] = Some(out.add_node(w.clone()));
            }
        }
        for e in &self.edges {
            if let (Some(s), Some(t)) = (mapping[e.source.index()], mapping[e.target.index()]) {
                out.add_edge(s, t, e.weight.clone());
            }
        }
        (out, mapping)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> (DiGraph<&'static str, f64>, Vec<NodeId>) {
        // a → b → d, a → c → d
        let mut g = DiGraph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        let c = g.add_node("c");
        let d = g.add_node("d");
        g.add_edge(a, b, 1.0);
        g.add_edge(a, c, 2.0);
        g.add_edge(b, d, 3.0);
        g.add_edge(c, d, 4.0);
        (g, vec![a, b, c, d])
    }

    #[test]
    fn build_and_count() {
        let (g, ids) = diamond();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(*g.node(ids[0]), "a");
    }

    #[test]
    fn degrees_and_adjacency() {
        let (g, ids) = diamond();
        let (a, b, _c, d) = (ids[0], ids[1], ids[2], ids[3]);
        assert_eq!(g.out_degree(a), 2);
        assert_eq!(g.in_degree(a), 0);
        assert_eq!(g.in_degree(d), 2);
        assert_eq!(g.degree(b), 2);
        let succ: Vec<_> = g.successors(a).collect();
        assert_eq!(succ.len(), 2);
        let pred: Vec<_> = g.predecessors(d).collect();
        assert_eq!(pred.len(), 2);
        let undirected: Vec<_> = g.neighbors_undirected(b).collect();
        assert_eq!(undirected.len(), 2);
    }

    #[test]
    fn edge_between_lookup() {
        let (g, ids) = diamond();
        let (a, b, _c, d) = (ids[0], ids[1], ids[2], ids[3]);
        let e = g.edge_between(a, b).unwrap();
        assert_eq!(*g.edge(e), 1.0);
        assert_eq!(g.endpoints(e), (a, b));
        assert!(g.edge_between(b, a).is_none());
        assert!(g.edge_between(a, d).is_none());
    }

    #[test]
    fn mutate_payloads() {
        let (mut g, ids) = diamond();
        *g.node_mut(ids[0]) = "alpha";
        assert_eq!(*g.node(ids[0]), "alpha");
        let e = g.edge_between(ids[0], ids[1]).unwrap();
        *g.edge_mut(e) += 10.0;
        assert_eq!(*g.edge(e), 11.0);
    }

    #[test]
    fn iterators_cover_everything() {
        let (g, _) = diamond();
        assert_eq!(g.node_ids().count(), 4);
        assert_eq!(g.edge_ids().count(), 4);
        assert_eq!(g.nodes_iter().count(), 4);
        let total_weight: f64 = g.edges_iter().map(|(_, _, _, w)| *w).sum();
        assert_eq!(total_weight, 10.0);
    }

    #[test]
    fn parallel_edges_allowed() {
        let mut g: DiGraph<(), f64> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, b, 1.0);
        g.add_edge(a, b, 2.0);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.out_degree(a), 2);
        // edge_between returns the first one.
        let e = g.edge_between(a, b).unwrap();
        assert_eq!(*g.edge(e), 1.0);
    }

    #[test]
    fn self_loops() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let a = g.add_node(());
        g.add_edge(a, a, ());
        assert_eq!(g.out_degree(a), 1);
        assert_eq!(g.in_degree(a), 1);
        assert_eq!(g.degree(a), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn dangling_edge_panics() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let a = g.add_node(());
        g.add_edge(a, NodeId(5), ());
    }

    #[test]
    fn filter_nodes_keeps_induced_edges() {
        let (g, ids) = diamond();
        // Drop node b; edges a→b and b→d must disappear.
        let (sub, mapping) = g.filter_nodes(|id, _| id != ids[1]);
        assert_eq!(sub.node_count(), 3);
        assert_eq!(sub.edge_count(), 2);
        assert!(mapping[ids[1].index()].is_none());
        let new_a = mapping[ids[0].index()].unwrap();
        assert_eq!(*sub.node(new_a), "a");
    }

    #[test]
    fn filter_nodes_empty_result() {
        let (g, _) = diamond();
        let (sub, mapping) = g.filter_nodes(|_, _| false);
        assert_eq!(sub.node_count(), 0);
        assert_eq!(sub.edge_count(), 0);
        assert!(mapping.iter().all(Option::is_none));
    }

    #[test]
    fn default_and_capacity() {
        let g: DiGraph<u8, u8> = DiGraph::default();
        assert_eq!(g.node_count(), 0);
        let g2: DiGraph<u8, u8> = DiGraph::with_capacity(10, 20);
        assert_eq!(g2.node_count(), 0);
        assert_eq!(g2.edge_count(), 0);
    }
}
