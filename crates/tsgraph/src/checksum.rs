//! CRC-32 (IEEE 802.3) — bit-rot detection for on-disk graph artefacts.
//!
//! Spilled triple runs ([`crate::spill`]) and persisted k-Graph models
//! carry a CRC-32 trailer so that truncation or flipped bits are caught at
//! load time instead of silently producing a wrong graph. The polynomial
//! is the reflected IEEE one (`0xEDB88320`), matching zlib/`crc32fast`, so
//! files can be cross-checked with standard tooling (`python3 -c "import
//! zlib, sys; print(zlib.crc32(open(sys.argv[1],'rb').read()))"`).
//!
//! The table is built in a `const` context — no lazy statics, no deps.

/// The reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

/// 256-entry lookup table, one byte of input per step.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// Incremental CRC-32 state. Feed bytes with [`Crc32::update`], finish
/// with [`Crc32::finish`]. `Default` starts a fresh checksum.
#[derive(Debug, Clone, Default)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// Fresh checksum state.
    pub fn new() -> Self {
        Crc32::default()
    }

    /// Absorbs `bytes` into the running checksum.
    #[inline]
    pub fn update(&mut self, bytes: &[u8]) {
        let mut crc = !self.state;
        for &b in bytes {
            crc = TABLE[((crc ^ b as u32) & 0xff) as usize] ^ (crc >> 8);
        }
        self.state = !crc;
    }

    /// The checksum of everything absorbed so far.
    #[inline]
    pub fn finish(&self) -> u32 {
        self.state
    }
}

/// One-shot CRC-32 of a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for "123456789" under CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn incremental_matches_one_shot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        let whole = crc32(&data);
        let mut inc = Crc32::new();
        for chunk in data.chunks(37) {
            inc.update(chunk);
        }
        assert_eq!(inc.finish(), whole);
    }

    #[test]
    fn detects_single_bit_flip() {
        let mut data: Vec<u8> = (0..64).collect();
        let clean = crc32(&data);
        data[13] ^= 0x10;
        assert_ne!(crc32(&data), clean);
    }
}
