//! Incremental CSR maintenance: a sorted, run-length-deduped edge delta
//! alongside a frozen base [`CsrGraph`].
//!
//! The serving story ([`graphserve`]) publishes models as immutable `Arc`
//! snapshots — mutating a CSR in place would put a lock on the read path.
//! Instead, newly observed transitions accumulate in a [`DeltaGraph`]: a
//! compact (offsets, targets, weights) mini-CSR holding *only* the new
//! edges, re-sorted and re-aggregated on every [`DeltaGraph::ingest`].
//! Reads that must see fresh data go through a [`DeltaView`], which merges
//! the base's sorted adjacency with the delta's sorted adjacency on the fly
//! — a 2-way merge per node, no locks, no base mutation. Periodically the
//! delta is [compacted](DeltaView::compact) into a fresh base CSR via the
//! same assembly pass the batch builder uses, so the compacted graph is
//! bit-identical to a from-scratch build of the full stream (for exact
//! weight aggregation such as integer-valued `f64` counts), and the result
//! is published as a new `Arc` snapshot while readers of the old one are
//! untouched.
//!
//! `graphserve`: ../../graphserve (serving crate; not a code link to keep
//! tsgraph dependency-free).

use crate::builder::{assemble_csr, pack_key};
use crate::csr::CsrGraph;
use crate::digraph::NodeId;

/// A sorted, deduplicated buffer of edges observed *after* a base CSR was
/// built. Node ids refer to the base's node set.
///
/// ```
/// use tsgraph::builder::GraphBuilder;
/// use tsgraph::delta::{DeltaGraph, DeltaView};
/// use tsgraph::NodeId;
///
/// let mut b = GraphBuilder::new();
/// b.add_edge(NodeId(0), NodeId(1), 2.0);
/// let base = b.build(vec![(), ()], |acc, w| *acc += w);
///
/// let mut delta = DeltaGraph::new(base.node_count());
/// delta.ingest([(NodeId(0), NodeId(1), 1.0), (NodeId(1), NodeId(0), 1.0)], |a, w| *a += w);
///
/// let view = DeltaView::new(&base, &delta);
/// assert_eq!(view.weight_between(NodeId(0), NodeId(1), |a, w| *a += w), Some(3.0));
/// assert_eq!(view.weight_between(NodeId(1), NodeId(0), |a, w| *a += w), Some(1.0));
/// ```
#[derive(Debug, Clone)]
pub struct DeltaGraph<E> {
    /// Per-node offsets into `targets`/`weights`, length `n + 1`.
    offsets: Vec<u32>,
    /// Delta edge targets, sorted within each node's slice.
    targets: Vec<NodeId>,
    /// Aggregated delta edge weights, parallel to `targets`.
    weights: Vec<E>,
    /// Node count of the base graph this delta extends.
    n: usize,
    /// Raw (pre-aggregation) triples ingested over the delta's lifetime.
    raw: u64,
}

impl<E> DeltaGraph<E> {
    /// Empty delta over a base graph of `node_count` nodes.
    pub fn new(node_count: usize) -> Self {
        DeltaGraph {
            offsets: vec![0; node_count + 1],
            targets: Vec::new(),
            weights: Vec::new(),
            n: node_count,
            raw: 0,
        }
    }

    /// Node count of the base graph this delta extends.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Distinct `(src, dst)` pairs currently buffered.
    pub fn edge_count(&self) -> usize {
        self.targets.len()
    }

    /// Whether the delta holds no edges.
    pub fn is_empty(&self) -> bool {
        self.targets.is_empty()
    }

    /// Raw triples ingested since construction (before deduplication).
    pub fn raw_len(&self) -> u64 {
        self.raw
    }

    /// The delta's own weight for `(src, dst)` (ignores the base).
    pub fn weight_between(&self, src: NodeId, dst: NodeId) -> Option<&E> {
        let (lo, hi) = self.out_range(src)?;
        let slice = &self.targets[lo..hi];
        let pos = slice.binary_search(&dst).ok()?;
        Some(&self.weights[lo + pos])
    }

    /// The delta's out-slice of `src`: sorted `(target, weight)` pairs.
    pub fn out_slice(&self, src: NodeId) -> (&[NodeId], &[E]) {
        match self.out_range(src) {
            Some((lo, hi)) => (&self.targets[lo..hi], &self.weights[lo..hi]),
            None => (&[], &[]),
        }
    }

    /// All delta edges in `(src, dst)` order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, NodeId, &E)> + '_ {
        (0..self.n).flat_map(move |u| {
            let lo = self.offsets[u] as usize;
            let hi = self.offsets[u + 1] as usize;
            (lo..hi).map(move |i| (NodeId(u as u32), self.targets[i], &self.weights[i]))
        })
    }

    fn out_range(&self, src: NodeId) -> Option<(usize, usize)> {
        if src.index() >= self.n {
            return None;
        }
        Some((
            self.offsets[src.index()] as usize,
            self.offsets[src.index() + 1] as usize,
        ))
    }

    /// Absorbs new `(src, dst, weight)` triples: the batch is sorted,
    /// run-length aggregated with `merge`, then 2-way merged into the
    /// existing delta. Panics if an endpoint is out of range.
    pub fn ingest(
        &mut self,
        triples: impl IntoIterator<Item = (NodeId, NodeId, E)>,
        merge: impl Fn(&mut E, E),
    ) {
        let mut batch: Vec<(u64, E)> = triples
            .into_iter()
            .map(|(s, t, w)| {
                assert!(
                    s.index() < self.n && t.index() < self.n,
                    "delta edge endpoint out of range: ({}, {}) vs n={}",
                    s.index(),
                    t.index(),
                    self.n
                );
                (pack_key(s, t), w)
            })
            .collect();
        if batch.is_empty() {
            return;
        }
        self.raw += batch.len() as u64;
        batch.sort_unstable_by_key(|(k, _)| *k);

        // Rebuild the three arrays as a 2-way merge of the existing sorted
        // delta and the sorted batch; duplicates fold with `merge`.
        let old_targets = std::mem::take(&mut self.targets);
        let old_weights = std::mem::take(&mut self.weights);
        let old_offsets = std::mem::replace(&mut self.offsets, vec![0; self.n + 1]);
        let mut merged: Vec<(u64, E)> = Vec::with_capacity(old_targets.len() + batch.len());
        {
            let mut old_iter = {
                let mut keys = Vec::with_capacity(old_targets.len());
                for u in 0..self.n {
                    let span = old_offsets[u] as usize..old_offsets[u + 1] as usize;
                    for &t in &old_targets[span] {
                        keys.push(pack_key(NodeId(u as u32), t));
                    }
                }
                keys.into_iter().zip(old_weights).peekable()
            };
            let mut new_iter = batch.into_iter().peekable();
            loop {
                let take_old = match (old_iter.peek(), new_iter.peek()) {
                    (Some((ko, _)), Some((kn, _))) => ko <= kn,
                    (Some(_), None) => true,
                    (None, Some(_)) => false,
                    (None, None) => break,
                };
                let (k, w) = if take_old {
                    old_iter.next().expect("peeked")
                } else {
                    new_iter.next().expect("peeked")
                };
                match merged.last_mut() {
                    Some((lk, lw)) if *lk == k => merge(lw, w),
                    _ => merged.push((k, w)),
                }
            }
        }

        let mut offsets = vec![0u32; self.n + 1];
        let mut targets = Vec::with_capacity(merged.len());
        let mut weights = Vec::with_capacity(merged.len());
        for (k, w) in merged {
            let src = (k >> 32) as usize;
            offsets[src + 1] += 1;
            targets.push(NodeId((k & 0xffff_ffff) as u32));
            weights.push(w);
        }
        for i in 1..=self.n {
            offsets[i] += offsets[i - 1];
        }
        self.offsets = offsets;
        self.targets = targets;
        self.weights = weights;
    }
}

/// A read view merging a frozen base CSR with a [`DeltaGraph`] on the fly.
/// Borrowed, allocation-free, and lock-free: both sides are immutable for
/// the view's lifetime.
pub struct DeltaView<'a, N, E> {
    base: &'a CsrGraph<N, E>,
    delta: &'a DeltaGraph<E>,
}

impl<'a, N, E: Clone> DeltaView<'a, N, E> {
    /// View over `base` + `delta`. Panics if node counts disagree.
    pub fn new(base: &'a CsrGraph<N, E>, delta: &'a DeltaGraph<E>) -> Self {
        assert_eq!(
            base.node_count(),
            delta.node_count(),
            "delta must cover the base's node set"
        );
        DeltaView { base, delta }
    }

    /// The base graph.
    pub fn base(&self) -> &'a CsrGraph<N, E> {
        self.base
    }

    /// The delta.
    pub fn delta(&self) -> &'a DeltaGraph<E> {
        self.delta
    }

    /// Merged weight of `(src, dst)`: base and delta contributions folded
    /// with `merge`, or `None` if neither side has the edge.
    pub fn weight_between(&self, src: NodeId, dst: NodeId, merge: impl Fn(&mut E, E)) -> Option<E> {
        let base = self.base.weight_between(src, dst).cloned();
        let delta = self.delta.weight_between(src, dst).cloned();
        match (base, delta) {
            (Some(mut b), Some(d)) => {
                merge(&mut b, d);
                Some(b)
            }
            (Some(b), None) => Some(b),
            (None, Some(d)) => Some(d),
            (None, None) => None,
        }
    }

    /// Visits `src`'s merged out-adjacency in target order: a 2-way merge
    /// of the base's and the delta's sorted out-slices, folding shared
    /// targets with `merge`. Allocation-free.
    pub fn for_each_out(
        &self,
        src: NodeId,
        merge: impl Fn(&mut E, E),
        mut f: impl FnMut(NodeId, E),
    ) {
        let (bt, bw) = (self.base.out_neighbors(src), self.base.out_weights(src));
        let (dt, dw) = self.delta.out_slice(src);
        let (mut i, mut j) = (0usize, 0usize);
        while i < bt.len() || j < dt.len() {
            if j >= dt.len() || (i < bt.len() && bt[i] < dt[j]) {
                f(bt[i], bw[i].clone());
                i += 1;
            } else if i >= bt.len() || dt[j] < bt[i] {
                f(dt[j], dw[j].clone());
                j += 1;
            } else {
                let mut w = bw[i].clone();
                merge(&mut w, dw[j].clone());
                f(bt[i], w);
                i += 1;
                j += 1;
            }
        }
    }

    /// Merged out-degree of `src` (distinct targets across base + delta).
    pub fn out_degree(&self, src: NodeId) -> usize {
        let bt = self.base.out_neighbors(src);
        let (dt, _) = self.delta.out_slice(src);
        let mut shared = 0usize;
        let (mut i, mut j) = (0usize, 0usize);
        while i < bt.len() && j < dt.len() {
            match bt[i].cmp(&dt[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    shared += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        bt.len() + dt.len() - shared
    }

    /// Compacts base + delta into a fresh, fully indexed CSR via the same
    /// assembly pass the batch builder uses. The result is bit-identical to
    /// a from-scratch build over the full edge stream whenever `merge` is
    /// exact (integer-valued counts).
    pub fn compact(&self, merge: impl Fn(&mut E, E)) -> CsrGraph<N, E>
    where
        N: Clone,
    {
        let base = self.base;
        let mut base_iter = base
            .edges_iter()
            .map(|(_, s, t, w)| (pack_key(s, t), w.clone()))
            .peekable();
        let mut delta_iter = self
            .delta
            .iter()
            .map(|(s, t, w)| (pack_key(s, t), w.clone()))
            .peekable();
        let stream = std::iter::from_fn(move || {
            let take_base = match (base_iter.peek(), delta_iter.peek()) {
                (Some((kb, _)), Some((kd, _))) => kb <= kd,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => return None,
            };
            if take_base {
                base_iter.next()
            } else {
                delta_iter.next()
            }
        });
        assemble_csr(base.nodes.clone(), stream, merge)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn sum(acc: &mut f64, w: f64) {
        *acc += w;
    }

    fn build(n: usize, edges: &[(u32, u32)]) -> CsrGraph<(), f64> {
        let mut b = GraphBuilder::new();
        for &(s, t) in edges {
            b.add_edge(NodeId(s), NodeId(t), 1.0);
        }
        b.build(vec![(); n], sum)
    }

    #[test]
    fn merged_reads_see_base_plus_delta() {
        let base = build(4, &[(0, 1), (0, 1), (1, 2)]);
        let mut delta = DeltaGraph::new(4);
        delta.ingest(
            [
                (NodeId(0), NodeId(1), 1.0),
                (NodeId(2), NodeId(3), 1.0),
                (NodeId(2), NodeId(3), 1.0),
            ],
            sum,
        );
        let view = DeltaView::new(&base, &delta);
        assert_eq!(view.weight_between(NodeId(0), NodeId(1), sum), Some(3.0));
        assert_eq!(view.weight_between(NodeId(1), NodeId(2), sum), Some(1.0));
        assert_eq!(view.weight_between(NodeId(2), NodeId(3), sum), Some(2.0));
        assert_eq!(view.weight_between(NodeId(3), NodeId(0), sum), None);
        assert_eq!(view.out_degree(NodeId(0)), 1);
        assert_eq!(view.out_degree(NodeId(2)), 1);
    }

    #[test]
    fn for_each_out_merges_in_target_order() {
        let base = build(5, &[(0, 1), (0, 3)]);
        let mut delta = DeltaGraph::new(5);
        delta.ingest(
            [
                (NodeId(0), NodeId(0), 1.0),
                (NodeId(0), NodeId(3), 1.0),
                (NodeId(0), NodeId(4), 1.0),
            ],
            sum,
        );
        let view = DeltaView::new(&base, &delta);
        let mut seen = Vec::new();
        view.for_each_out(NodeId(0), sum, |t, w| seen.push((t.0, w)));
        assert_eq!(
            seen,
            vec![(0, 1.0), (1, 1.0), (3, 2.0), (4, 1.0)],
            "sorted, shared target folded"
        );
    }

    #[test]
    fn repeated_ingest_stays_sorted_and_deduped() {
        let mut delta: DeltaGraph<f64> = DeltaGraph::new(6);
        let mut s = 11u64;
        for _ in 0..40 {
            let batch: Vec<_> = (0..25)
                .map(|_| {
                    s = s
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    (
                        NodeId(((s >> 33) % 6) as u32),
                        NodeId(((s >> 13) % 6) as u32),
                        1.0,
                    )
                })
                .collect();
            delta.ingest(batch, sum);
        }
        assert_eq!(delta.raw_len(), 1000);
        let total: f64 = delta.iter().map(|(_, _, w)| *w).sum();
        assert_eq!(total as u64, 1000, "every triple accounted for");
        let keys: Vec<u64> = delta.iter().map(|(s, t, _)| pack_key(s, t)).collect();
        assert!(keys.windows(2).all(|w| w[0] < w[1]), "sorted, deduplicated");
        assert!(delta.edge_count() <= 36);
    }

    #[test]
    fn compaction_is_bit_identical_to_full_rebuild() {
        // Split one edge stream at an arbitrary point: prefix → base,
        // suffix → delta; compaction must equal a build of the whole.
        let mut s = 3u64;
        let edges: Vec<(u32, u32)> = (0..5_000)
            .map(|_| {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (((s >> 33) % 40) as u32, ((s >> 13) % 40) as u32)
            })
            .collect();
        for split in [0usize, 1, 2_499, 4_999, 5_000] {
            let base = build(40, &edges[..split]);
            let mut delta = DeltaGraph::new(40);
            delta.ingest(
                edges[split..]
                    .iter()
                    .map(|&(a, b)| (NodeId(a), NodeId(b), 1.0)),
                sum,
            );
            let compacted = DeltaView::new(&base, &delta).compact(sum);
            let full = build(40, &edges);
            assert_eq!(compacted.edge_count(), full.edge_count(), "split {split}");
            for (e, s_, t, w) in full.edges_iter() {
                assert_eq!(compacted.endpoints(e), (s_, t));
                assert_eq!(compacted.edge(e).to_bits(), w.to_bits(), "split {split}");
            }
            for u in full.node_ids() {
                assert_eq!(compacted.in_neighbors(u), full.in_neighbors(u));
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_ingest_panics() {
        let mut delta: DeltaGraph<f64> = DeltaGraph::new(2);
        delta.ingest([(NodeId(0), NodeId(7), 1.0)], sum);
    }
}
