//! Barnes–Hut quadtree over 2-D point sets.
//!
//! The tree recursively partitions the layout area into quadrants until
//! every cell holds at most one point (or the depth cap is hit, which
//! bounds degenerate coincident clusters). Every cell carries its centre
//! of mass and point count, so a far-away cluster of points can act on a
//! query point as a single aggregated body — the approximation that turns
//! the O(n²) all-pairs repulsion of Fruchterman–Reingold into O(n log n)
//! per iteration (`layout::barnes_hut`).
//!
//! Construction partitions an index permutation in place (no per-node
//! allocation, stable order → deterministic tree for a given point set)
//! and the tree reuses its arenas across [`QuadTree::build`] calls, so
//! the per-iteration rebuild inside a force layout allocates only while
//! the tree is still growing toward its steady-state size.

/// Cells deeper than this are never split further; coincident points
/// simply share a leaf and interact pairwise.
const MAX_DEPTH: usize = 32;

/// One cell of the quadtree.
#[derive(Debug, Clone, Copy)]
struct Cell {
    /// Centre of mass of the points in this cell.
    com: (f64, f64),
    /// Number of points in this cell.
    mass: f64,
    /// Side length of the cell's square region.
    side: f64,
    /// Indices into the node arena; `-1` when the quadrant is empty.
    children: [i32; 4],
    /// Leaf payload: range `start..start + len` into the point
    /// permutation. Internal cells have `len == 0`.
    start: u32,
    len: u32,
}

/// The per-query constants of one repulsion accumulation: the query
/// point's index and position plus the opening angle and force strength.
struct Probe {
    i: usize,
    p: (f64, f64),
    theta: f64,
    strength: f64,
}

/// A reusable Barnes–Hut quadtree.
#[derive(Debug, Default)]
pub struct QuadTree {
    cells: Vec<Cell>,
    /// Permutation of point indices; leaves own contiguous ranges.
    order: Vec<u32>,
    /// Partition scratch (one quadrant bucket at a time).
    scratch: Vec<u32>,
}

impl QuadTree {
    /// An empty tree; [`build`](Self::build) populates it.
    pub fn new() -> Self {
        QuadTree::default()
    }

    /// Rebuilds the tree over `points`, reusing the internal arenas.
    pub fn build(&mut self, points: &[(f64, f64)]) {
        self.cells.clear();
        self.order.clear();
        self.order.extend(0..points.len() as u32);
        if points.is_empty() {
            return;
        }
        // Square bounding box covering every point.
        let mut min_x = f64::INFINITY;
        let mut max_x = f64::NEG_INFINITY;
        let mut min_y = f64::INFINITY;
        let mut max_y = f64::NEG_INFINITY;
        for &(x, y) in points {
            min_x = min_x.min(x);
            max_x = max_x.max(x);
            min_y = min_y.min(y);
            max_y = max_y.max(y);
        }
        let side = (max_x - min_x).max(max_y - min_y).max(1e-9);
        let cx = (min_x + max_x) / 2.0;
        let cy = (min_y + max_y) / 2.0;
        self.subdivide(points, 0, points.len(), (cx, cy), side, 0);
    }

    /// Builds the cell over `order[start..end]` and returns its index.
    fn subdivide(
        &mut self,
        points: &[(f64, f64)],
        start: usize,
        end: usize,
        center: (f64, f64),
        side: f64,
        depth: usize,
    ) -> i32 {
        let n = end - start;
        debug_assert!(n > 0);
        let mut com = (0.0, 0.0);
        for &i in &self.order[start..end] {
            com.0 += points[i as usize].0;
            com.1 += points[i as usize].1;
        }
        com.0 /= n as f64;
        com.1 /= n as f64;
        let cell_at = self.cells.len();
        self.cells.push(Cell {
            com,
            mass: n as f64,
            side,
            children: [-1; 4],
            start: start as u32,
            len: n as u32,
        });
        if n == 1 || depth >= MAX_DEPTH {
            return cell_at as i32;
        }
        // Partition the range into the four quadrants around `center`
        // with a stable counting sort (stable order → deterministic tree
        // for a given point set). Quadrant id: bit 0 = east of centre,
        // bit 1 = south of centre. The scratch buffer is only live until
        // the write-back below, so recursive calls can reuse it.
        let quadrant = |p: (f64, f64)| -> usize {
            (usize::from(p.0 >= center.0)) | (usize::from(p.1 >= center.1) << 1)
        };
        let mut counts = [0usize; 4];
        for &i in &self.order[start..end] {
            counts[quadrant(points[i as usize])] += 1;
        }
        let mut offsets = [0usize; 4];
        for q in 1..4 {
            offsets[q] = offsets[q - 1] + counts[q - 1];
        }
        self.scratch.clear();
        self.scratch.resize(n, 0);
        let mut write = offsets;
        for k in start..end {
            let i = self.order[k];
            let q = quadrant(points[i as usize]);
            self.scratch[write[q]] = i;
            write[q] += 1;
        }
        self.order[start..end].copy_from_slice(&self.scratch[..n]);

        let half = side / 2.0;
        let quarter = side / 4.0;
        let mut children = [-1i32; 4];
        for q in 0..4 {
            if counts[q] == 0 {
                continue;
            }
            let child_center = (
                center.0 + if q & 1 == 1 { quarter } else { -quarter },
                center.1 + if q & 2 == 2 { quarter } else { -quarter },
            );
            // When every point lands in one quadrant the cell still
            // shrinks geometrically, so spread points converge; the depth
            // cap bounds truly coincident clusters.
            let q_start = start + offsets[q];
            children[q] = self.subdivide(
                points,
                q_start,
                q_start + counts[q],
                child_center,
                half,
                depth + 1,
            );
        }
        self.cells[cell_at].children = children;
        // Internal cells do not own a leaf range.
        if children.iter().any(|&c| c >= 0) {
            self.cells[cell_at].len = 0;
        }
        cell_at as i32
    }

    /// Accumulated repulsive force on point `i` with opening angle
    /// `theta`, using `f(d) = strength · mass / d` along the separating
    /// direction — the Fruchterman–Reingold repulsion with `strength =
    /// k²`. A cell whose `side / distance < theta` acts as one aggregated
    /// body at its centre of mass; otherwise it is opened. Distances are
    /// floored at `1e-6` exactly like the exact-path kernel.
    pub fn repulsion(
        &self,
        points: &[(f64, f64)],
        i: usize,
        theta: f64,
        strength: f64,
    ) -> (f64, f64) {
        if self.cells.is_empty() {
            return (0.0, 0.0);
        }
        let probe = Probe {
            i,
            p: points[i],
            theta,
            strength,
        };
        let mut force = (0.0, 0.0);
        self.repulse_from(0, points, &probe, &mut force);
        force
    }

    fn repulse_from(
        &self,
        cell: i32,
        points: &[(f64, f64)],
        probe: &Probe,
        force: &mut (f64, f64),
    ) {
        let &Probe {
            i,
            p,
            theta,
            strength,
        } = probe;
        let c = &self.cells[cell as usize];
        let dx = p.0 - c.com.0;
        let dy = p.1 - c.com.1;
        let dist = (dx * dx + dy * dy).sqrt();
        if c.len > 0 {
            // Leaf: pairwise against every resident point (skipping i).
            for &j in &self.order[c.start as usize..(c.start + c.len) as usize] {
                if j as usize == i {
                    continue;
                }
                let q = points[j as usize];
                let dx = p.0 - q.0;
                let dy = p.1 - q.1;
                let d = (dx * dx + dy * dy).sqrt().max(1e-6);
                let f = strength / d;
                force.0 += dx / d * f;
                force.1 += dy / d * f;
            }
            return;
        }
        if c.side < theta * dist {
            // Far enough: the whole cell acts as one body of mass `mass`.
            let d = dist.max(1e-6);
            let f = strength * c.mass / d;
            force.0 += dx / d * f;
            force.1 += dy / d * f;
            return;
        }
        for &child in &c.children {
            if child >= 0 {
                self.repulse_from(child, points, probe, force);
            }
        }
    }

    /// Number of cells in the current tree (diagnostics / tests).
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exact all-pairs repulsion, the oracle the tree approximates.
    fn exact_repulsion(points: &[(f64, f64)], i: usize, strength: f64) -> (f64, f64) {
        let mut force = (0.0, 0.0);
        for (j, &q) in points.iter().enumerate() {
            if j == i {
                continue;
            }
            let dx = points[i].0 - q.0;
            let dy = points[i].1 - q.1;
            let d = (dx * dx + dy * dy).sqrt().max(1e-6);
            let f = strength / d;
            force.0 += dx / d * f;
            force.1 += dy / d * f;
        }
        force
    }

    fn scatter(n: usize, seed: u64) -> Vec<(f64, f64)> {
        let mut s = seed | 1;
        let mut next = move || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (s >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n)
            .map(|_| (next() * 1000.0 - 500.0, next() * 1000.0 - 500.0))
            .collect()
    }

    #[test]
    fn tiny_theta_matches_exact() {
        // θ → 0 never aggregates, so the tree sums the same pairwise
        // terms as the oracle (different order → tiny float slack).
        let points = scatter(64, 7);
        let mut tree = QuadTree::new();
        tree.build(&points);
        for i in 0..points.len() {
            let (tx, ty) = tree.repulsion(&points, i, 1e-12, 100.0);
            let (ex, ey) = exact_repulsion(&points, i, 100.0);
            assert!((tx - ex).abs() < 1e-6 && (ty - ey).abs() < 1e-6);
        }
    }

    #[test]
    fn moderate_theta_approximates_exact() {
        let points = scatter(500, 3);
        let mut tree = QuadTree::new();
        tree.build(&points);
        for i in (0..points.len()).step_by(17) {
            let (tx, ty) = tree.repulsion(&points, i, 0.8, 100.0);
            let (ex, ey) = exact_repulsion(&points, i, 100.0);
            let mag = (ex * ex + ey * ey).sqrt().max(1e-9);
            let err = ((tx - ex).powi(2) + (ty - ey).powi(2)).sqrt();
            assert!(err / mag < 0.15, "point {i}: rel err {}", err / mag);
        }
    }

    #[test]
    fn coincident_points_terminate_and_act() {
        let mut points = vec![(1.0, 1.0); 40];
        points.push((200.0, 200.0));
        let mut tree = QuadTree::new();
        tree.build(&points);
        let (fx, fy) = tree.repulsion(&points, 40, 0.8, 100.0);
        assert!(fx.is_finite() && fy.is_finite());
        assert!(fx > 0.0 && fy > 0.0, "pushed away from the cluster");
        // Coincident points repel each other through the distance floor.
        let (fx, fy) = tree.repulsion(&points, 0, 0.8, 100.0);
        assert!(fx.is_finite() && fy.is_finite());
    }

    #[test]
    fn empty_and_single() {
        let mut tree = QuadTree::new();
        tree.build(&[]);
        assert_eq!(tree.cell_count(), 0);
        tree.build(&[(3.0, 4.0)]);
        assert_eq!(tree.cell_count(), 1);
        assert_eq!(tree.repulsion(&[(3.0, 4.0)], 0, 0.8, 100.0), (0.0, 0.0));
    }

    #[test]
    fn rebuild_reuses_and_is_deterministic() {
        let points = scatter(300, 11);
        let mut a = QuadTree::new();
        a.build(&points);
        let first: Vec<(f64, f64)> = (0..points.len())
            .map(|i| a.repulsion(&points, i, 0.7, 50.0))
            .collect();
        // Rebuild over something else, then back — identical forces.
        a.build(&scatter(100, 5));
        a.build(&points);
        let second: Vec<(f64, f64)> = (0..points.len())
            .map(|i| a.repulsion(&points, i, 0.7, 50.0))
            .collect();
        assert_eq!(first, second);
    }
}
