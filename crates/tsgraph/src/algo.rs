//! Graph algorithms: traversal, components, reachability, PageRank.
//!
//! All functions take the CSR representation ([`CsrGraph`]) so the inner
//! loops walk contiguous neighbour slices — BFS and PageRank touch memory
//! linearly per node instead of chasing per-edge indirections. Reference
//! implementations over [`DiGraph`] live in [`reference`] and exist to
//! pin behavioural parity in the property tests.

use crate::csr::CsrGraph;
use crate::digraph::NodeId;
use std::collections::VecDeque;

/// Breadth-first order of nodes reachable from `start`, treating edges as
/// **undirected** (used for weak reachability of graphoid neighbourhoods).
///
/// Neighbours are visited in sorted order (successors first, then
/// predecessors), so the order is deterministic for a given graph.
pub fn bfs_undirected<N, E>(g: &CsrGraph<N, E>, start: NodeId) -> Vec<NodeId> {
    let mut visited = vec![false; g.node_count()];
    let mut order = Vec::new();
    let mut queue = VecDeque::new();
    if start.index() >= g.node_count() {
        return order;
    }
    visited[start.index()] = true;
    queue.push_back(start);
    while let Some(u) = queue.pop_front() {
        order.push(u);
        for &v in g.out_neighbors(u).iter().chain(g.in_neighbors(u)) {
            if !visited[v.index()] {
                visited[v.index()] = true;
                queue.push_back(v);
            }
        }
    }
    order
}

/// Breadth-first order of nodes reachable from `start` along edge
/// directions.
pub fn bfs_directed<N, E>(g: &CsrGraph<N, E>, start: NodeId) -> Vec<NodeId> {
    let mut visited = vec![false; g.node_count()];
    let mut order = Vec::new();
    let mut queue = VecDeque::new();
    if start.index() >= g.node_count() {
        return order;
    }
    visited[start.index()] = true;
    queue.push_back(start);
    while let Some(u) = queue.pop_front() {
        order.push(u);
        for &v in g.out_neighbors(u) {
            if !visited[v.index()] {
                visited[v.index()] = true;
                queue.push_back(v);
            }
        }
    }
    order
}

/// Weakly connected components; returns `components[node.index()] = label`
/// with labels in `0..count`, plus the count.
pub fn weakly_connected_components<N, E>(g: &CsrGraph<N, E>) -> (Vec<usize>, usize) {
    let n = g.node_count();
    let mut label = vec![usize::MAX; n];
    let mut next = 0usize;
    for start in g.node_ids() {
        if label[start.index()] != usize::MAX {
            continue;
        }
        for u in bfs_undirected(g, start) {
            label[u.index()] = next;
        }
        next += 1;
    }
    (label, next)
}

/// Whether `target` is reachable from `source` along edge directions.
pub fn is_reachable<N, E>(g: &CsrGraph<N, E>, source: NodeId, target: NodeId) -> bool {
    bfs_directed(g, source).contains(&target)
}

/// Node ids sorted by total degree, densest first (used by the Graph frame
/// to pick label anchors). Degrees are O(1) offset subtractions on CSR.
pub fn nodes_by_degree<N, E>(g: &CsrGraph<N, E>) -> Vec<NodeId> {
    let mut ids: Vec<NodeId> = g.node_ids().collect();
    ids.sort_by_key(|&id| std::cmp::Reverse(g.degree(id)));
    ids
}

/// Weighted PageRank with damping `d` (classically 0.85).
///
/// `edge_weight` extracts a non-negative weight from each edge payload —
/// for k-Graph graphs this is the transition count, so the ranking orders
/// nodes by how central they are to the dataset's pattern flow (the Graph
/// frame's "nodes exploration" ordering). Dangling nodes redistribute
/// uniformly. Returns one score per node, summing to 1.
///
/// The push loop walks each node's target slice and weight slice in
/// lockstep — fully cache-linear on CSR.
pub fn pagerank<N, E>(
    g: &CsrGraph<N, E>,
    damping: f64,
    iterations: usize,
    edge_weight: impl Fn(&E) -> f64,
) -> Vec<f64> {
    let n = g.node_count();
    if n == 0 {
        return Vec::new();
    }
    let d = damping.clamp(0.0, 1.0);
    let uniform = 1.0 / n as f64;
    let mut rank = vec![uniform; n];
    // Precompute out-weight sums from the contiguous weight slices.
    let out_sum: Vec<f64> = g
        .node_ids()
        .map(|u| {
            g.out_weights(u)
                .iter()
                .map(|w| edge_weight(w).max(0.0))
                .sum()
        })
        .collect();
    let mut next = vec![0.0f64; n];
    for _ in 0..iterations {
        next.fill(0.0);
        let mut dangling_mass = 0.0;
        for u in g.node_ids() {
            let ui = u.index();
            if out_sum[ui] <= 1e-15 {
                dangling_mass += rank[ui];
                continue;
            }
            let push = rank[ui] / out_sum[ui];
            for (&t, w) in g.out_neighbors(u).iter().zip(g.out_weights(u)) {
                next[t.index()] += push * edge_weight(w).max(0.0);
            }
        }
        let base = (1.0 - d) * uniform + d * dangling_mass * uniform;
        for r in next.iter_mut() {
            *r = base + d * *r;
        }
        std::mem::swap(&mut rank, &mut next);
    }
    rank
}

/// Reference implementations over [`DiGraph`](crate::DiGraph), kept to
/// pin CSR/DiGraph behavioural parity in `tests/proptest_csr.rs`. Not for
/// hot paths: adjacency here is per-node `Vec<EdgeId>` indirection.
pub mod reference {
    use crate::digraph::{DiGraph, NodeId};
    use std::collections::VecDeque;

    /// BFS over undirected edges; neighbour order follows insertion order,
    /// so only the visited *set* (not the order) is comparable with the
    /// CSR implementation.
    pub fn bfs_undirected<N, E>(g: &DiGraph<N, E>, start: NodeId) -> Vec<NodeId> {
        let mut visited = vec![false; g.node_count()];
        let mut order = Vec::new();
        let mut queue = VecDeque::new();
        if start.index() >= g.node_count() {
            return order;
        }
        visited[start.index()] = true;
        queue.push_back(start);
        while let Some(u) = queue.pop_front() {
            order.push(u);
            for v in g.neighbors_undirected(u) {
                if !visited[v.index()] {
                    visited[v.index()] = true;
                    queue.push_back(v);
                }
            }
        }
        order
    }

    /// BFS along edge directions.
    pub fn bfs_directed<N, E>(g: &DiGraph<N, E>, start: NodeId) -> Vec<NodeId> {
        let mut visited = vec![false; g.node_count()];
        let mut order = Vec::new();
        let mut queue = VecDeque::new();
        if start.index() >= g.node_count() {
            return order;
        }
        visited[start.index()] = true;
        queue.push_back(start);
        while let Some(u) = queue.pop_front() {
            order.push(u);
            for v in g.successors(u) {
                if !visited[v.index()] {
                    visited[v.index()] = true;
                    queue.push_back(v);
                }
            }
        }
        order
    }

    /// Weakly connected components (see the CSR version for semantics).
    pub fn weakly_connected_components<N, E>(g: &DiGraph<N, E>) -> (Vec<usize>, usize) {
        let n = g.node_count();
        let mut label = vec![usize::MAX; n];
        let mut next = 0usize;
        for start in g.node_ids() {
            if label[start.index()] != usize::MAX {
                continue;
            }
            for u in bfs_undirected(g, start) {
                label[u.index()] = next;
            }
            next += 1;
        }
        (label, next)
    }

    /// Weighted PageRank (see the CSR version for semantics). Walks the
    /// edge arena directly so parallel edges contribute separately —
    /// numerically this matches the CSR run on the aggregated graph.
    pub fn pagerank<N, E>(
        g: &DiGraph<N, E>,
        damping: f64,
        iterations: usize,
        edge_weight: impl Fn(&E) -> f64,
    ) -> Vec<f64> {
        let n = g.node_count();
        if n == 0 {
            return Vec::new();
        }
        let d = damping.clamp(0.0, 1.0);
        let uniform = 1.0 / n as f64;
        let mut rank = vec![uniform; n];
        let out_sum: Vec<f64> = g
            .node_ids()
            .map(|u| {
                g.out_edges(u)
                    .iter()
                    .map(|&e| edge_weight(g.edge(e)).max(0.0))
                    .sum()
            })
            .collect();
        let mut next = vec![0.0f64; n];
        for _ in 0..iterations {
            next.fill(0.0);
            let mut dangling_mass = 0.0;
            for u in g.node_ids() {
                let ui = u.index();
                if out_sum[ui] <= 1e-15 {
                    dangling_mass += rank[ui];
                    continue;
                }
                for &e in g.out_edges(u) {
                    let w = edge_weight(g.edge(e)).max(0.0);
                    let (_, t) = g.endpoints(e);
                    next[t.index()] += rank[ui] * w / out_sum[ui];
                }
            }
            let base = (1.0 - d) * uniform + d * dangling_mass * uniform;
            for r in next.iter_mut() {
                *r = base + d * *r;
            }
            std::mem::swap(&mut rank, &mut next);
        }
        rank
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn csr_from_edges(n: usize, edges: &[(u32, u32)]) -> CsrGraph<(), f64> {
        let mut b = GraphBuilder::new();
        for &(s, t) in edges {
            b.add_edge(NodeId(s), NodeId(t), 1.0);
        }
        b.build(vec![(); n], |acc, w| *acc += w)
    }

    /// Two weakly connected components: 0→1→2 and 3→4.
    fn two_components() -> CsrGraph<(), f64> {
        csr_from_edges(5, &[(0, 1), (1, 2), (3, 4)])
    }

    #[test]
    fn bfs_undirected_covers_component() {
        let g = two_components();
        let order = bfs_undirected(&g, NodeId(2));
        assert_eq!(order.len(), 3);
        assert_eq!(order[0], NodeId(2));
        assert!(order.contains(&NodeId(0)));
    }

    #[test]
    fn bfs_directed_respects_direction() {
        let g = two_components();
        assert_eq!(bfs_directed(&g, NodeId(2)), vec![NodeId(2)]);
        assert_eq!(bfs_directed(&g, NodeId(0)).len(), 3);
    }

    #[test]
    fn bfs_order_deterministic_and_sorted_per_layer() {
        // Star with spokes inserted out of order: BFS from the hub must
        // visit spokes ascending (CSR slices are sorted).
        let g = csr_from_edges(5, &[(0, 4), (0, 2), (0, 1), (0, 3)]);
        assert_eq!(
            bfs_directed(&g, NodeId(0)),
            vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3), NodeId(4)]
        );
    }

    #[test]
    fn components_labelled() {
        let g = two_components();
        let (labels, count) = weakly_connected_components(&g);
        assert_eq!(count, 2);
        assert_eq!(labels[0], labels[2]);
        assert_eq!(labels[3], labels[4]);
        assert_ne!(labels[0], labels[3]);
    }

    #[test]
    fn reachability() {
        let g = two_components();
        assert!(is_reachable(&g, NodeId(0), NodeId(2)));
        assert!(!is_reachable(&g, NodeId(2), NodeId(0)));
        assert!(!is_reachable(&g, NodeId(0), NodeId(4)));
        assert!(is_reachable(&g, NodeId(0), NodeId(0)));
    }

    #[test]
    fn degree_ordering() {
        let g = csr_from_edges(3, &[(0, 1), (2, 1)]);
        let order = nodes_by_degree(&g);
        assert_eq!(order[0], NodeId(1));
    }

    #[test]
    fn empty_graph() {
        let g: CsrGraph<(), f64> = CsrGraph::vertices_only(Vec::new());
        let (labels, count) = weakly_connected_components(&g);
        assert!(labels.is_empty());
        assert_eq!(count, 0);
        assert!(bfs_undirected(&g, NodeId(0)).is_empty());
        assert!(bfs_directed(&g, NodeId(3)).is_empty());
    }

    #[test]
    fn single_node_self_loop() {
        let g = csr_from_edges(1, &[(0, 0)]);
        let (labels, count) = weakly_connected_components(&g);
        assert_eq!(count, 1);
        assert_eq!(labels, vec![0]);
        assert!(is_reachable(&g, NodeId(0), NodeId(0)));
    }

    #[test]
    fn pagerank_sums_to_one_and_ranks_hub() {
        // Star: spokes all point at a hub (node 0).
        let g = csr_from_edges(5, &[(1, 0), (2, 0), (3, 0), (4, 0)]);
        let pr = pagerank(&g, 0.85, 50, |&w| w);
        let total: f64 = pr.iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "sum {total}");
        for s in 1..5 {
            assert!(pr[0] > pr[s], "hub must dominate");
        }
    }

    #[test]
    fn pagerank_respects_edge_weights() {
        // 0 sends most weight to 1, a little to 2; return edges keep the
        // chain ergodic.
        let mut b = GraphBuilder::new();
        b.add_edge(NodeId(0), NodeId(1), 9.0);
        b.add_edge(NodeId(0), NodeId(2), 1.0);
        b.add_edge(NodeId(1), NodeId(0), 1.0);
        b.add_edge(NodeId(2), NodeId(0), 1.0);
        let g = b.build(vec![(); 3], |acc, w| *acc += w);
        let pr = pagerank(&g, 0.85, 100, |&w| w);
        assert!(pr[1] > pr[2]);
    }

    #[test]
    fn pagerank_uniform_on_cycle() {
        let edges: Vec<(u32, u32)> = (0..5).map(|i| (i, (i + 1) % 5)).collect();
        let g = csr_from_edges(5, &edges);
        let pr = pagerank(&g, 0.85, 100, |&w| w);
        for &r in &pr {
            assert!(
                (r - 0.2).abs() < 1e-9,
                "cycle should be uniform, got {pr:?}"
            );
        }
    }

    #[test]
    fn pagerank_degenerate() {
        let empty: CsrGraph<(), f64> = CsrGraph::vertices_only(Vec::new());
        assert!(pagerank(&empty, 0.85, 10, |&w| w).is_empty());
        // All-dangling graph stays uniform.
        let g: CsrGraph<(), f64> = CsrGraph::vertices_only(vec![(), ()]);
        let pr = pagerank(&g, 0.85, 10, |&w| w);
        assert!((pr[0] - 0.5).abs() < 1e-9);
        assert!((pr[1] - 0.5).abs() < 1e-9);
    }
}
