//! Graph algorithms: traversal, components, reachability.

use crate::digraph::{DiGraph, NodeId};
use std::collections::VecDeque;

/// Breadth-first order of nodes reachable from `start`, treating edges as
/// **undirected** (used for weak reachability of graphoid neighbourhoods).
pub fn bfs_undirected<N, E>(g: &DiGraph<N, E>, start: NodeId) -> Vec<NodeId> {
    let mut visited = vec![false; g.node_count()];
    let mut order = Vec::new();
    let mut queue = VecDeque::new();
    if start.index() >= g.node_count() {
        return order;
    }
    visited[start.index()] = true;
    queue.push_back(start);
    while let Some(u) = queue.pop_front() {
        order.push(u);
        for v in g.neighbors_undirected(u) {
            if !visited[v.index()] {
                visited[v.index()] = true;
                queue.push_back(v);
            }
        }
    }
    order
}

/// Breadth-first order of nodes reachable from `start` along edge
/// directions.
pub fn bfs_directed<N, E>(g: &DiGraph<N, E>, start: NodeId) -> Vec<NodeId> {
    let mut visited = vec![false; g.node_count()];
    let mut order = Vec::new();
    let mut queue = VecDeque::new();
    if start.index() >= g.node_count() {
        return order;
    }
    visited[start.index()] = true;
    queue.push_back(start);
    while let Some(u) = queue.pop_front() {
        order.push(u);
        for v in g.successors(u) {
            if !visited[v.index()] {
                visited[v.index()] = true;
                queue.push_back(v);
            }
        }
    }
    order
}

/// Weakly connected components; returns `components[node.index()] = label`
/// with labels in `0..count`, plus the count.
pub fn weakly_connected_components<N, E>(g: &DiGraph<N, E>) -> (Vec<usize>, usize) {
    let n = g.node_count();
    let mut label = vec![usize::MAX; n];
    let mut next = 0usize;
    for start in g.node_ids() {
        if label[start.index()] != usize::MAX {
            continue;
        }
        for u in bfs_undirected(g, start) {
            label[u.index()] = next;
        }
        next += 1;
    }
    (label, next)
}

/// Whether `target` is reachable from `source` along edge directions.
pub fn is_reachable<N, E>(g: &DiGraph<N, E>, source: NodeId, target: NodeId) -> bool {
    bfs_directed(g, source).contains(&target)
}

/// Node ids sorted by total degree, densest first (used by the Graph frame
/// to pick label anchors).
pub fn nodes_by_degree<N, E>(g: &DiGraph<N, E>) -> Vec<NodeId> {
    let mut ids: Vec<NodeId> = g.node_ids().collect();
    ids.sort_by_key(|&id| std::cmp::Reverse(g.degree(id)));
    ids
}

/// Weighted PageRank with damping `d` (classically 0.85).
///
/// `edge_weight` extracts a non-negative weight from each edge payload —
/// for k-Graph graphs this is the transition count, so the ranking orders
/// nodes by how central they are to the dataset's pattern flow (the Graph
/// frame's "nodes exploration" ordering). Dangling nodes redistribute
/// uniformly. Returns one score per node, summing to 1.
pub fn pagerank<N, E>(
    g: &DiGraph<N, E>,
    damping: f64,
    iterations: usize,
    edge_weight: impl Fn(&E) -> f64,
) -> Vec<f64> {
    let n = g.node_count();
    if n == 0 {
        return Vec::new();
    }
    let d = damping.clamp(0.0, 1.0);
    let uniform = 1.0 / n as f64;
    let mut rank = vec![uniform; n];
    // Precompute out-weight sums.
    let out_sum: Vec<f64> = g
        .node_ids()
        .map(|u| {
            g.out_edges(u)
                .iter()
                .map(|&e| edge_weight(g.edge(e)).max(0.0))
                .sum()
        })
        .collect();
    let mut next = vec![0.0f64; n];
    for _ in 0..iterations {
        next.fill(0.0);
        let mut dangling_mass = 0.0;
        for u in g.node_ids() {
            let ui = u.index();
            if out_sum[ui] <= 1e-15 {
                dangling_mass += rank[ui];
                continue;
            }
            for &e in g.out_edges(u) {
                let w = edge_weight(g.edge(e)).max(0.0);
                let (_, t) = g.endpoints(e);
                next[t.index()] += rank[ui] * w / out_sum[ui];
            }
        }
        let base = (1.0 - d) * uniform + d * dangling_mass * uniform;
        for r in next.iter_mut() {
            *r = base + d * *r;
        }
        std::mem::swap(&mut rank, &mut next);
    }
    rank
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two weakly connected components: a→b→c and d→e.
    fn two_components() -> (DiGraph<(), ()>, Vec<NodeId>) {
        let mut g = DiGraph::new();
        let ids: Vec<NodeId> = (0..5).map(|_| g.add_node(())).collect();
        g.add_edge(ids[0], ids[1], ());
        g.add_edge(ids[1], ids[2], ());
        g.add_edge(ids[3], ids[4], ());
        (g, ids)
    }

    #[test]
    fn bfs_undirected_covers_component() {
        let (g, ids) = two_components();
        let order = bfs_undirected(&g, ids[2]);
        assert_eq!(order.len(), 3);
        assert_eq!(order[0], ids[2]);
        assert!(order.contains(&ids[0]));
    }

    #[test]
    fn bfs_directed_respects_direction() {
        let (g, ids) = two_components();
        // From c nothing is reachable but c itself.
        assert_eq!(bfs_directed(&g, ids[2]), vec![ids[2]]);
        // From a the whole chain is reachable.
        assert_eq!(bfs_directed(&g, ids[0]).len(), 3);
    }

    #[test]
    fn components_labelled() {
        let (g, ids) = two_components();
        let (labels, count) = weakly_connected_components(&g);
        assert_eq!(count, 2);
        assert_eq!(labels[ids[0].index()], labels[ids[2].index()]);
        assert_eq!(labels[ids[3].index()], labels[ids[4].index()]);
        assert_ne!(labels[ids[0].index()], labels[ids[3].index()]);
    }

    #[test]
    fn reachability() {
        let (g, ids) = two_components();
        assert!(is_reachable(&g, ids[0], ids[2]));
        assert!(!is_reachable(&g, ids[2], ids[0]));
        assert!(!is_reachable(&g, ids[0], ids[4]));
        assert!(is_reachable(&g, ids[0], ids[0]));
    }

    #[test]
    fn degree_ordering() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        g.add_edge(a, b, ());
        g.add_edge(c, b, ());
        let order = nodes_by_degree(&g);
        assert_eq!(order[0], b);
    }

    #[test]
    fn empty_graph() {
        let g: DiGraph<(), ()> = DiGraph::new();
        let (labels, count) = weakly_connected_components(&g);
        assert!(labels.is_empty());
        assert_eq!(count, 0);
        assert!(bfs_undirected(&g, NodeId(0)).is_empty());
        assert!(bfs_directed(&g, NodeId(3)).is_empty());
    }

    #[test]
    fn single_node_self_loop() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let a = g.add_node(());
        g.add_edge(a, a, ());
        let (labels, count) = weakly_connected_components(&g);
        assert_eq!(count, 1);
        assert_eq!(labels, vec![0]);
        assert!(is_reachable(&g, a, a));
    }

    #[test]
    fn pagerank_sums_to_one_and_ranks_hub() {
        // Star: spokes all point at a hub.
        let mut g: DiGraph<(), f64> = DiGraph::new();
        let hub = g.add_node(());
        let spokes: Vec<NodeId> = (0..4).map(|_| g.add_node(())).collect();
        for &s in &spokes {
            g.add_edge(s, hub, 1.0);
        }
        let pr = pagerank(&g, 0.85, 50, |&w| w);
        let total: f64 = pr.iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "sum {total}");
        for &s in &spokes {
            assert!(pr[hub.index()] > pr[s.index()], "hub must dominate");
        }
    }

    #[test]
    fn pagerank_respects_edge_weights() {
        // a sends most weight to b, a little to c.
        let mut g: DiGraph<(), f64> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        g.add_edge(a, b, 9.0);
        g.add_edge(a, c, 1.0);
        // Return edges keep the chain ergodic.
        g.add_edge(b, a, 1.0);
        g.add_edge(c, a, 1.0);
        let pr = pagerank(&g, 0.85, 100, |&w| w);
        assert!(pr[b.index()] > pr[c.index()]);
    }

    #[test]
    fn pagerank_uniform_on_cycle() {
        let mut g: DiGraph<(), f64> = DiGraph::new();
        let ids: Vec<NodeId> = (0..5).map(|_| g.add_node(())).collect();
        for i in 0..5 {
            g.add_edge(ids[i], ids[(i + 1) % 5], 1.0);
        }
        let pr = pagerank(&g, 0.85, 100, |&w| w);
        for &r in &pr {
            assert!((r - 0.2).abs() < 1e-9, "cycle should be uniform, got {pr:?}");
        }
    }

    #[test]
    fn pagerank_degenerate() {
        let empty: DiGraph<(), f64> = DiGraph::new();
        assert!(pagerank(&empty, 0.85, 10, |&w| w).is_empty());
        // All-dangling graph stays uniform.
        let mut g: DiGraph<(), f64> = DiGraph::new();
        g.add_node(());
        g.add_node(());
        let pr = pagerank(&g, 0.85, 10, |&w| w);
        assert!((pr[0] - 0.5).abs() < 1e-9);
        assert!((pr[1] - 0.5).abs() < 1e-9);
    }
}
