//! Compressed-sparse-row graph storage — the workspace's *query-time*
//! graph representation.
//!
//! A [`CsrGraph`] is an immutable directed graph whose adjacency lives in
//! three flat arrays per direction (`offsets`, `targets`/`sources`,
//! weights), the layout popularised by high-performance graph frameworks
//! (and the neo4j-labs `graph_builder` lineage):
//!
//! * O(1) in/out degree (offset subtraction),
//! * neighbour access as a contiguous `&[NodeId]` **slice** — traversal is
//!   cache-linear instead of chasing per-node `Vec<EdgeId>` allocations,
//! * neighbours sorted by id within each node's slice, so iteration order
//!   is deterministic and `edge_id(u, v)` is a binary search over the
//!   out-slice (O(log deg) instead of the O(deg) scan of
//!   [`DiGraph::edge_between`](crate::DiGraph::edge_between)),
//! * edge ids are positions in the out-adjacency, so per-edge payloads of
//!   one node are a contiguous `&[E]` slice too ([`CsrGraph::out_weights`]).
//!
//! Parallel edges do not exist at this layer: construction (via
//! [`GraphBuilder`](crate::builder::GraphBuilder) or
//! [`CsrGraph::from_digraph`]) aggregates duplicate `(src, dst)` pairs
//! with a caller-supplied merge. [`DiGraph`](crate::DiGraph) remains the
//! mutable construction-time escape hatch.

use crate::builder::GraphBuilder;
use crate::digraph::{DiGraph, EdgeId, NodeId};

/// Immutable CSR-backed directed graph with node payloads `N` and edge
/// payloads `E`. Build one with [`GraphBuilder`](crate::builder::GraphBuilder)
/// or [`CsrGraph::from_digraph`].
#[derive(Debug, Clone)]
pub struct CsrGraph<N, E> {
    pub(crate) nodes: Vec<N>,
    /// `out_offsets[u]..out_offsets[u+1]` indexes `u`'s out-slice; length
    /// `n + 1`. Edge ids are exactly these positions.
    pub(crate) out_offsets: Vec<u32>,
    /// Targets of all edges, grouped by source, sorted within each group.
    pub(crate) out_targets: Vec<NodeId>,
    /// Edge payloads, aligned with `out_targets` (edge-id order).
    pub(crate) edge_weights: Vec<E>,
    /// Source of each edge, aligned with `out_targets` (edge-id order).
    pub(crate) edge_sources: Vec<NodeId>,
    /// In-adjacency: `in_offsets[v]..in_offsets[v+1]` indexes `v`'s
    /// in-slice; length `n + 1`.
    pub(crate) in_offsets: Vec<u32>,
    /// Sources of incoming edges, grouped by target, sorted within groups.
    pub(crate) in_sources: Vec<NodeId>,
    /// Edge id of each in-adjacency entry (position into the out arrays).
    pub(crate) in_edge_ids: Vec<EdgeId>,
}

impl<N, E> CsrGraph<N, E> {
    /// Graph with `nodes` payloads and no edges.
    pub fn vertices_only(nodes: Vec<N>) -> Self {
        let n = nodes.len();
        CsrGraph {
            nodes,
            out_offsets: vec![0; n + 1],
            out_targets: Vec::new(),
            edge_weights: Vec::new(),
            edge_sources: Vec::new(),
            in_offsets: vec![0; n + 1],
            in_sources: Vec::new(),
            in_edge_ids: Vec::new(),
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of (deduplicated) edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.out_targets.len()
    }

    /// Node payload by id.
    #[inline]
    pub fn node(&self, id: NodeId) -> &N {
        &self.nodes[id.index()]
    }

    /// Mutable node payload by id (payloads stay mutable; topology does
    /// not).
    #[inline]
    pub fn node_mut(&mut self, id: NodeId) -> &mut N {
        &mut self.nodes[id.index()]
    }

    /// Edge payload by id.
    #[inline]
    pub fn edge(&self, id: EdgeId) -> &E {
        &self.edge_weights[id.index()]
    }

    /// Mutable edge payload by id.
    #[inline]
    pub fn edge_mut(&mut self, id: EdgeId) -> &mut E {
        &mut self.edge_weights[id.index()]
    }

    /// Endpoints `(source, target)` of an edge.
    #[inline]
    pub fn endpoints(&self, id: EdgeId) -> (NodeId, NodeId) {
        (self.edge_sources[id.index()], self.out_targets[id.index()])
    }

    /// Out-neighbours of `u` as a sorted contiguous slice.
    #[inline]
    pub fn out_neighbors(&self, u: NodeId) -> &[NodeId] {
        &self.out_targets[self.out_range(u)]
    }

    /// Payloads of `u`'s outgoing edges, aligned with
    /// [`out_neighbors`](Self::out_neighbors).
    #[inline]
    pub fn out_weights(&self, u: NodeId) -> &[E] {
        &self.edge_weights[self.out_range(u)]
    }

    /// In-neighbours of `v` as a sorted contiguous slice.
    #[inline]
    pub fn in_neighbors(&self, v: NodeId) -> &[NodeId] {
        let lo = self.in_offsets[v.index()] as usize;
        let hi = self.in_offsets[v.index() + 1] as usize;
        &self.in_sources[lo..hi]
    }

    /// Edge ids of `v`'s incoming edges, aligned with
    /// [`in_neighbors`](Self::in_neighbors).
    #[inline]
    pub fn in_edge_ids(&self, v: NodeId) -> &[EdgeId] {
        let lo = self.in_offsets[v.index()] as usize;
        let hi = self.in_offsets[v.index() + 1] as usize;
        &self.in_edge_ids[lo..hi]
    }

    /// The contiguous edge-id range of `u`'s outgoing edges.
    #[inline]
    pub fn out_range(&self, u: NodeId) -> std::ops::Range<usize> {
        self.out_offsets[u.index()] as usize..self.out_offsets[u.index() + 1] as usize
    }

    /// Out-degree, O(1).
    #[inline]
    pub fn out_degree(&self, u: NodeId) -> usize {
        (self.out_offsets[u.index() + 1] - self.out_offsets[u.index()]) as usize
    }

    /// In-degree, O(1).
    #[inline]
    pub fn in_degree(&self, v: NodeId) -> usize {
        (self.in_offsets[v.index() + 1] - self.in_offsets[v.index()]) as usize
    }

    /// Total degree (in + out), O(1).
    #[inline]
    pub fn degree(&self, id: NodeId) -> usize {
        self.in_degree(id) + self.out_degree(id)
    }

    /// Edge id of `u → v`, if present — binary search over `u`'s sorted
    /// out-slice, O(log deg).
    #[inline]
    pub fn edge_id(&self, u: NodeId, v: NodeId) -> Option<EdgeId> {
        let range = self.out_range(u);
        let slice = &self.out_targets[range.clone()];
        slice
            .binary_search(&v)
            .ok()
            .map(|pos| EdgeId((range.start + pos) as u32))
    }

    /// Payload of `u → v`, if present.
    #[inline]
    pub fn weight_between(&self, u: NodeId, v: NodeId) -> Option<&E> {
        self.edge_id(u, v).map(|e| &self.edge_weights[e.index()])
    }

    /// Whether the edge `u → v` exists.
    #[inline]
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.edge_id(u, v).is_some()
    }

    /// Ids of all nodes.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Ids of all edges.
    pub fn edge_ids(&self) -> impl Iterator<Item = EdgeId> + '_ {
        (0..self.out_targets.len() as u32).map(EdgeId)
    }

    /// Iterator over `(id, payload)` for all nodes.
    pub fn nodes_iter(&self) -> impl Iterator<Item = (NodeId, &N)> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (NodeId(i as u32), n))
    }

    /// Iterator over `(id, source, target, payload)` for all edges, in
    /// edge-id order (grouped by source, targets ascending).
    pub fn edges_iter(&self) -> impl Iterator<Item = (EdgeId, NodeId, NodeId, &E)> {
        self.edge_weights.iter().enumerate().map(move |(i, w)| {
            (
                EdgeId(i as u32),
                self.edge_sources[i],
                self.out_targets[i],
                w,
            )
        })
    }

    /// Successor nodes of `u` (each once; sorted).
    pub fn successors(&self, u: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.out_neighbors(u).iter().copied()
    }

    /// Predecessor nodes of `v` (each once; sorted).
    pub fn predecessors(&self, v: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.in_neighbors(v).iter().copied()
    }

    /// Undirected neighbours (successors ∪ predecessors; a mutual pair
    /// appears in both halves).
    pub fn neighbors_undirected(&self, id: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.successors(id).chain(self.predecessors(id))
    }
}

impl<N: Clone, E: Clone> CsrGraph<N, E> {
    /// Converts a [`DiGraph`], aggregating parallel edges with `merge`
    /// (`merge` must be commutative and associative for the result to be
    /// independent of insertion order). The conversion is lossless for
    /// simple graphs; for multigraphs it is exactly the aggregation the
    /// k-Graph pipeline wants (summed transition weights).
    pub fn from_digraph(g: &DiGraph<N, E>, merge: impl Fn(&mut E, E)) -> Self
    where
        E: Send,
    {
        let mut builder = GraphBuilder::with_capacity(g.edge_count());
        for (_, s, t, w) in g.edges_iter() {
            builder.add_edge(s, t, w.clone());
        }
        let nodes: Vec<N> = g.nodes_iter().map(|(_, n)| n.clone()).collect();
        builder.build(nodes, merge)
    }

    /// Sub-graph induced by the nodes satisfying `keep`; returns the new
    /// graph plus the old-id → new-id mapping (`None` for dropped nodes).
    /// Edges survive iff both endpoints do. Mirrors
    /// [`DiGraph::filter_nodes`].
    pub fn filter_nodes(
        &self,
        mut keep: impl FnMut(NodeId, &N) -> bool,
    ) -> (Self, Vec<Option<NodeId>>)
    where
        E: Send,
    {
        let mut mapping: Vec<Option<NodeId>> = vec![None; self.nodes.len()];
        let mut kept_nodes = Vec::new();
        for (id, payload) in self.nodes_iter() {
            if keep(id, payload) {
                mapping[id.index()] = Some(NodeId(kept_nodes.len() as u32));
                kept_nodes.push(payload.clone());
            }
        }
        let mut builder = GraphBuilder::new();
        for (_, s, t, w) in self.edges_iter() {
            if let (Some(ns), Some(nt)) = (mapping[s.index()], mapping[t.index()]) {
                builder.add_edge(ns, nt, w.clone());
            }
        }
        // Input edges are already unique per (src, dst); the merge closure
        // never fires.
        (builder.build(kept_nodes, |_, _| {}), mapping)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// a → b → d, a → c → d with distinct weights, plus a duplicate a → b
    /// to exercise aggregation.
    fn diamond_csr() -> CsrGraph<&'static str, f64> {
        let mut g: DiGraph<&'static str, f64> = DiGraph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        let c = g.add_node("c");
        let d = g.add_node("d");
        g.add_edge(a, b, 1.0);
        g.add_edge(a, c, 2.0);
        g.add_edge(b, d, 3.0);
        g.add_edge(c, d, 4.0);
        g.add_edge(a, b, 10.0); // parallel: aggregates to 11.0
        CsrGraph::from_digraph(&g, |acc, w| *acc += w)
    }

    #[test]
    fn counts_and_payloads() {
        let g = diamond_csr();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 4, "parallel edge aggregated");
        assert_eq!(*g.node(NodeId(0)), "a");
        let e = g.edge_id(NodeId(0), NodeId(1)).unwrap();
        assert_eq!(*g.edge(e), 11.0);
        assert_eq!(g.endpoints(e), (NodeId(0), NodeId(1)));
    }

    #[test]
    fn degrees_o1() {
        let g = diamond_csr();
        assert_eq!(g.out_degree(NodeId(0)), 2);
        assert_eq!(g.in_degree(NodeId(0)), 0);
        assert_eq!(g.in_degree(NodeId(3)), 2);
        assert_eq!(g.degree(NodeId(1)), 2);
    }

    #[test]
    fn neighbor_slices_sorted() {
        let g = diamond_csr();
        assert_eq!(g.out_neighbors(NodeId(0)), &[NodeId(1), NodeId(2)]);
        assert_eq!(g.in_neighbors(NodeId(3)), &[NodeId(1), NodeId(2)]);
        assert_eq!(g.out_weights(NodeId(0)), &[11.0, 2.0]);
        assert!(g.out_neighbors(NodeId(3)).is_empty());
    }

    #[test]
    fn edge_lookup() {
        let g = diamond_csr();
        assert_eq!(g.weight_between(NodeId(0), NodeId(2)), Some(&2.0));
        assert_eq!(g.weight_between(NodeId(2), NodeId(0)), None);
        assert!(g.has_edge(NodeId(1), NodeId(3)));
        assert!(!g.has_edge(NodeId(0), NodeId(3)));
    }

    #[test]
    fn edge_id_order_groups_by_source() {
        let g = diamond_csr();
        let triples: Vec<(u32, u32)> = g.edges_iter().map(|(_, s, t, _)| (s.0, t.0)).collect();
        let mut sorted = triples.clone();
        sorted.sort_unstable();
        assert_eq!(triples, sorted, "edge ids are (src, dst)-sorted");
        // Per-node edge-id ranges are contiguous.
        assert_eq!(g.out_range(NodeId(0)), 0..2);
        assert_eq!(g.out_range(NodeId(1)), 2..3);
    }

    #[test]
    fn in_edge_ids_point_back() {
        let g = diamond_csr();
        for v in g.node_ids() {
            for (&s, &e) in g.in_neighbors(v).iter().zip(g.in_edge_ids(v)) {
                assert_eq!(g.endpoints(e), (s, v));
            }
        }
    }

    #[test]
    fn successors_predecessors_undirected() {
        let g = diamond_csr();
        assert_eq!(g.successors(NodeId(0)).count(), 2);
        assert_eq!(g.predecessors(NodeId(3)).count(), 2);
        let und: Vec<NodeId> = g.neighbors_undirected(NodeId(1)).collect();
        assert_eq!(und, vec![NodeId(3), NodeId(0)]);
    }

    #[test]
    fn payload_mutation() {
        let mut g = diamond_csr();
        *g.node_mut(NodeId(0)) = "alpha";
        assert_eq!(*g.node(NodeId(0)), "alpha");
        let e = g.edge_id(NodeId(1), NodeId(3)).unwrap();
        *g.edge_mut(e) += 1.0;
        assert_eq!(*g.edge(e), 4.0);
    }

    #[test]
    fn filter_nodes_keeps_induced_edges() {
        let g = diamond_csr();
        let (sub, mapping) = g.filter_nodes(|id, _| id != NodeId(1));
        assert_eq!(sub.node_count(), 3);
        assert_eq!(sub.edge_count(), 2); // a→c and c→d survive
        assert!(mapping[1].is_none());
        let new_a = mapping[0].unwrap();
        assert_eq!(*sub.node(new_a), "a");
        let new_c = mapping[2].unwrap();
        let new_d = mapping[3].unwrap();
        assert!(sub.has_edge(new_a, new_c));
        assert!(sub.has_edge(new_c, new_d));
    }

    #[test]
    fn vertices_only_and_empty() {
        let g: CsrGraph<u8, f64> = CsrGraph::vertices_only(vec![7, 8]);
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.out_degree(NodeId(0)), 0);
        assert!(g.edge_id(NodeId(0), NodeId(1)).is_none());
        let empty: CsrGraph<u8, f64> = CsrGraph::vertices_only(Vec::new());
        assert_eq!(empty.node_count(), 0);
        assert_eq!(empty.node_ids().count(), 0);
    }

    #[test]
    fn self_loops_preserved() {
        let mut g: DiGraph<(), f64> = DiGraph::new();
        let a = g.add_node(());
        g.add_edge(a, a, 2.0);
        let csr = CsrGraph::from_digraph(&g, |acc, w| *acc += w);
        assert_eq!(csr.edge_count(), 1);
        assert_eq!(csr.out_degree(a), 1);
        assert_eq!(csr.in_degree(a), 1);
        assert_eq!(csr.weight_between(a, a), Some(&2.0));
    }
}
