//! Bounded-memory graph construction: sorted triple runs spilled to disk,
//! k-way merged into the final CSR.
//!
//! [`GraphBuilder`](crate::builder::GraphBuilder) holds every raw triple in
//! RAM until `build` — fine for datasets that fit, a hard wall for
//! billion-transition streams. [`SpillBuilder`] keeps at most
//! `triple_budget` triples in memory: when the buffer fills it is sorted,
//! run-length aggregated and written to disk as one *run*; `build` streams
//! a k-way merge over all runs (plus the final in-RAM buffer) into the same
//! [`assemble_csr`] assembly pass the in-RAM builder uses. Because
//! aggregation is commutative and associative, and the merged stream is
//! globally key-sorted, the resulting CSR is **bit-identical** to an
//! all-in-RAM build of the same triples whenever the weight aggregation is
//! exact (e.g. integer-valued `f64` transition counts, the only weights the
//! k-Graph pipeline emits).
//!
//! ## Run file format (`TSR1`)
//!
//! Little-endian throughout:
//!
//! ```text
//! "TSR1"                magic, 4 bytes
//! u64   record count
//! [u64 key, f64 weight] × count     (16 bytes per record, key-sorted)
//! u32   CRC-32 over everything above
//! ```
//!
//! The CRC trailer ([`crate::checksum`]) catches truncation and bit rot at
//! merge time instead of silently merging a corrupt run into the graph.

use crate::builder::{assemble_csr, pack_key};
use crate::checksum::Crc32;
use crate::csr::CsrGraph;
use crate::digraph::NodeId;
use std::collections::BinaryHeap;
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Magic header of a spilled run file.
const RUN_MAGIC: &[u8; 4] = b"TSR1";

/// Distinguishes spill directories of concurrent builders in one process.
static SPILL_SEQ: AtomicU64 = AtomicU64::new(0);

/// Accumulates `(src, dst, weight)` triples under a fixed in-memory budget,
/// spilling sorted, pre-aggregated runs to disk.
///
/// ```
/// use tsgraph::spill::SpillBuilder;
/// use tsgraph::NodeId;
///
/// let mut b = SpillBuilder::new(4).unwrap(); // absurdly small budget
/// for _ in 0..10 {
///     b.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
/// }
/// assert!(b.runs_spilled() >= 2);
/// let g = b.build(vec![(), ()], |acc, w| *acc += w).unwrap();
/// assert_eq!(g.weight_between(NodeId(0), NodeId(1)), Some(&10.0));
/// ```
pub struct SpillBuilder {
    /// In-memory buffer, spilled when it reaches `triple_budget`.
    buf: Vec<(u64, f64)>,
    /// Maximum raw triples held in RAM at once.
    triple_budget: usize,
    /// Directory holding this builder's run files; removed on drop.
    dir: PathBuf,
    /// Paths of spilled runs, in spill order.
    runs: Vec<PathBuf>,
    /// Total raw triples recorded (pre-aggregation).
    total: u64,
}

impl SpillBuilder {
    /// Builder spilling to the system temp directory once more than
    /// `triple_budget` raw triples are buffered. The budget must be ≥ 1.
    pub fn new(triple_budget: usize) -> io::Result<Self> {
        Self::with_dir(triple_budget, std::env::temp_dir())
    }

    /// Builder spilling under `parent` (a unique subdirectory is created).
    pub fn with_dir(triple_budget: usize, parent: impl AsRef<Path>) -> io::Result<Self> {
        assert!(triple_budget >= 1, "triple budget must be at least 1");
        let dir = parent.as_ref().join(format!(
            "tsgraph-spill-{}-{}",
            std::process::id(),
            SPILL_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir)?;
        Ok(SpillBuilder {
            buf: Vec::with_capacity(triple_budget.min(1 << 20)),
            triple_budget,
            dir,
            runs: Vec::new(),
            total: 0,
        })
    }

    /// Records one `src → dst` observation, spilling a run if the buffer
    /// is full. Duplicates are aggregated (`+` within runs, the caller's
    /// merge at build time).
    #[inline]
    pub fn add_edge(&mut self, src: NodeId, dst: NodeId, weight: f64) -> io::Result<()> {
        if self.buf.len() >= self.triple_budget {
            self.spill_run()?;
        }
        self.buf.push((pack_key(src, dst), weight));
        self.total += 1;
        Ok(())
    }

    /// Total raw triples recorded so far (before any aggregation).
    pub fn len(&self) -> u64 {
        self.total
    }

    /// Whether no triples were recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Number of runs written to disk so far.
    pub fn runs_spilled(&self) -> usize {
        self.runs.len()
    }

    /// Sorts + aggregates the buffer and writes it out as one run.
    fn spill_run(&mut self) -> io::Result<()> {
        if self.buf.is_empty() {
            return Ok(());
        }
        sort_and_aggregate(&mut self.buf);
        let path = self.dir.join(format!("run-{:05}.tsr", self.runs.len()));
        write_run(&path, &self.buf)?;
        self.runs.push(path);
        self.buf.clear();
        Ok(())
    }

    /// Builds the CSR graph over `nodes.len()` vertices by k-way merging
    /// all spilled runs with the residual in-RAM buffer, aggregating
    /// duplicate `(src, dst)` pairs with `merge` (commutative +
    /// associative, like [`GraphBuilder::build`]). Run files are deleted
    /// afterwards.
    ///
    /// Errors on I/O failure or a corrupt (checksum-mismatched) run;
    /// panics if an endpoint is out of `0..nodes.len()`, matching the
    /// in-RAM builder.
    ///
    /// [`GraphBuilder::build`]: crate::builder::GraphBuilder::build
    pub fn build<N>(
        mut self,
        nodes: Vec<N>,
        merge: impl Fn(&mut f64, f64),
    ) -> io::Result<CsrGraph<N, f64>> {
        sort_and_aggregate(&mut self.buf);
        let tail = std::mem::take(&mut self.buf);
        let mut readers = Vec::with_capacity(self.runs.len());
        for path in &self.runs {
            readers.push(RunReader::open(path)?);
        }
        let mut stream = MergeStream::new(readers, tail, nodes.len())?;
        let graph = assemble_csr(nodes, &mut stream, merge);
        if let Some(err) = stream.error.take() {
            return Err(err);
        }
        Ok(graph)
    }
}

impl Drop for SpillBuilder {
    fn drop(&mut self) {
        // Best-effort cleanup; leaking a temp dir is not worth a panic.
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

/// Sorts by key and folds duplicate keys with `+` in place.
fn sort_and_aggregate(buf: &mut Vec<(u64, f64)>) {
    buf.sort_unstable_by_key(|(k, _)| *k);
    let mut write = 0usize;
    for read in 0..buf.len() {
        if write > 0 && buf[write - 1].0 == buf[read].0 {
            buf[write - 1].1 += buf[read].1;
        } else {
            buf.swap(write, read);
            write += 1;
        }
    }
    buf.truncate(write);
}

/// Writes one key-sorted run with a CRC-32 trailer.
fn write_run(path: &Path, records: &[(u64, f64)]) -> io::Result<()> {
    let file = File::create(path)?;
    let mut w = BufWriter::new(file);
    let mut crc = Crc32::new();
    let put = |w: &mut BufWriter<File>, crc: &mut Crc32, bytes: &[u8]| -> io::Result<()> {
        crc.update(bytes);
        w.write_all(bytes)
    };
    put(&mut w, &mut crc, RUN_MAGIC)?;
    put(&mut w, &mut crc, &(records.len() as u64).to_le_bytes())?;
    for &(key, weight) in records {
        put(&mut w, &mut crc, &key.to_le_bytes())?;
        put(&mut w, &mut crc, &weight.to_bits().to_le_bytes())?;
    }
    w.write_all(&crc.finish().to_le_bytes())?;
    w.flush()
}

/// Streaming reader over one run file, verifying the CRC trailer after the
/// last record.
struct RunReader {
    reader: BufReader<File>,
    remaining: u64,
    crc: Crc32,
    /// Last key seen; runs are strictly increasing, so a non-increasing
    /// key is corruption caught before the trailer is even reached.
    last_key: Option<u64>,
    path: PathBuf,
}

impl RunReader {
    fn open(path: &Path) -> io::Result<Self> {
        let file = File::open(path)?;
        let mut reader = BufReader::new(file);
        let mut crc = Crc32::new();
        let mut magic = [0u8; 4];
        reader.read_exact(&mut magic)?;
        if &magic != RUN_MAGIC {
            return Err(corrupt(path, "bad magic"));
        }
        crc.update(&magic);
        let mut count = [0u8; 8];
        reader.read_exact(&mut count)?;
        crc.update(&count);
        Ok(RunReader {
            reader,
            remaining: u64::from_le_bytes(count),
            crc,
            last_key: None,
            path: path.to_path_buf(),
        })
    }

    /// Next record, or `None` after the trailer verified.
    fn next_record(&mut self) -> io::Result<Option<(u64, f64)>> {
        if self.remaining == 0 {
            let mut trailer = [0u8; 4];
            self.reader.read_exact(&mut trailer)?;
            if u32::from_le_bytes(trailer) != self.crc.finish() {
                return Err(corrupt(&self.path, "CRC-32 mismatch"));
            }
            return Ok(None);
        }
        let mut rec = [0u8; 16];
        self.reader.read_exact(&mut rec)?;
        self.crc.update(&rec);
        self.remaining -= 1;
        let key = u64::from_le_bytes(rec[..8].try_into().expect("8 bytes"));
        let weight = f64::from_bits(u64::from_le_bytes(rec[8..].try_into().expect("8 bytes")));
        if self.last_key.is_some_and(|last| key <= last) {
            return Err(corrupt(&self.path, "keys out of order"));
        }
        self.last_key = Some(key);
        Ok(Some((key, weight)))
    }
}

fn corrupt(path: &Path, what: &str) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("corrupt spill run {}: {what}", path.display()),
    )
}

/// K-way merge over run readers plus the in-RAM tail, yielding a globally
/// key-sorted stream. Sources with equal head keys pop in source order, so
/// the stream is fully deterministic. I/O errors stop the stream and are
/// surfaced through `error` (checked by the caller after assembly).
struct MergeStream {
    readers: Vec<RunReader>,
    tail: std::vec::IntoIter<(u64, f64)>,
    /// Min-heap via `Reverse`: `(key, source index)`. Source index
    /// `readers.len()` is the in-RAM tail.
    heap: BinaryHeap<std::cmp::Reverse<(u64, usize)>>,
    /// Current head value per source (weight for the key in the heap).
    heads: Vec<Option<(u64, f64)>>,
    /// Node count of the graph under construction; keys whose endpoints
    /// fall outside it are rejected as corruption before assembly sees
    /// them (a flipped key bit can otherwise smuggle a bogus endpoint
    /// past the not-yet-reached CRC trailer).
    node_count: usize,
    error: Option<io::Error>,
}

impl MergeStream {
    fn new(
        mut readers: Vec<RunReader>,
        tail: Vec<(u64, f64)>,
        node_count: usize,
    ) -> io::Result<Self> {
        let n = readers.len();
        let mut heads: Vec<Option<(u64, f64)>> = Vec::with_capacity(n + 1);
        let mut heap = BinaryHeap::with_capacity(n + 1);
        for (i, r) in readers.iter_mut().enumerate() {
            let head = r.next_record()?;
            if let Some((k, _)) = head {
                heap.push(std::cmp::Reverse((k, i)));
            }
            heads.push(head);
        }
        let mut tail = tail.into_iter();
        let head = tail.next();
        if let Some((k, _)) = head {
            heap.push(std::cmp::Reverse((k, n)));
        }
        heads.push(head);
        Ok(MergeStream {
            readers,
            tail,
            heap,
            heads,
            node_count,
            error: None,
        })
    }
}

impl Iterator for MergeStream {
    type Item = (u64, f64);

    fn next(&mut self) -> Option<(u64, f64)> {
        if self.error.is_some() {
            return None;
        }
        let std::cmp::Reverse((_, src)) = self.heap.pop()?;
        let out = self.heads[src].take().expect("heap entry has a head");
        let (s, d) = ((out.0 >> 32) as usize, (out.0 & 0xffff_ffff) as usize);
        if s >= self.node_count || d >= self.node_count {
            self.error = Some(if src < self.readers.len() {
                corrupt(&self.readers[src].path, "edge endpoint out of range")
            } else {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "edge endpoint out of range: ({s} or {d}) >= {}",
                        self.node_count
                    ),
                )
            });
            return None;
        }
        let next = if src == self.readers.len() {
            Ok(self.tail.next())
        } else {
            self.readers[src].next_record()
        };
        match next {
            Ok(Some((k, w))) => {
                self.heads[src] = Some((k, w));
                self.heap.push(std::cmp::Reverse((k, src)));
            }
            Ok(None) => {}
            Err(e) => self.error = Some(e),
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    /// Deterministic pseudo-random transition stream.
    fn stream(total: usize, n: u32) -> Vec<(u32, u32)> {
        let mut s = 7u64;
        (0..total)
            .map(|_| {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (((s >> 33) % n as u64) as u32, ((s >> 13) % n as u64) as u32)
            })
            .collect()
    }

    fn assert_bit_identical(a: &CsrGraph<(), f64>, b: &CsrGraph<(), f64>) {
        assert_eq!(a.node_count(), b.node_count());
        assert_eq!(a.edge_count(), b.edge_count());
        for (e, s, t, w) in a.edges_iter() {
            assert_eq!(b.endpoints(e), (s, t));
            assert_eq!(w.to_bits(), b.edge(e).to_bits(), "edge {e:?} weight");
        }
        for u in a.node_ids() {
            assert_eq!(a.in_neighbors(u), b.in_neighbors(u));
        }
    }

    #[test]
    fn spill_build_is_bit_identical_to_in_ram_build() {
        // 20k triples through a 3k budget → ≥ 6 spilled runs.
        let edges = stream(20_000, 50);
        let mut spill = SpillBuilder::new(3_000).unwrap();
        let mut ram = GraphBuilder::new();
        for &(s, t) in &edges {
            spill.add_edge(NodeId(s), NodeId(t), 1.0).unwrap();
            ram.add_edge(NodeId(s), NodeId(t), 1.0);
        }
        assert!(spill.runs_spilled() >= 6, "{} runs", spill.runs_spilled());
        let g_spill = spill.build(vec![(); 50], |acc, w| *acc += w).unwrap();
        let g_ram = ram.build(vec![(); 50], |acc, w| *acc += w);
        assert_bit_identical(&g_spill, &g_ram);
    }

    #[test]
    fn no_spill_needed_still_builds() {
        let mut b = SpillBuilder::new(1_000).unwrap();
        b.add_edge(NodeId(0), NodeId(1), 2.0).unwrap();
        b.add_edge(NodeId(1), NodeId(2), 1.0).unwrap();
        assert_eq!(b.runs_spilled(), 0);
        let g = b.build(vec![(); 3], |acc, w| *acc += w).unwrap();
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.weight_between(NodeId(0), NodeId(1)), Some(&2.0));
    }

    #[test]
    fn empty_builder_builds_vertices_only() {
        let b = SpillBuilder::new(10).unwrap();
        let g = b.build(vec![(); 4], |acc, w| *acc += w).unwrap();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn corrupt_run_is_rejected() {
        let mut b = SpillBuilder::new(4).unwrap();
        for i in 0..12u32 {
            b.add_edge(NodeId(i % 3), NodeId((i + 1) % 3), 1.0).unwrap();
        }
        assert!(b.runs_spilled() >= 2);
        // Flip one byte in the middle of the first run's records.
        let victim = b.runs[0].clone();
        let mut bytes = std::fs::read(&victim).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&victim, bytes).unwrap();
        let err = b.build(vec![(); 3], |acc, w| *acc += w).unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains("CRC-32") || msg.contains("corrupt"),
            "unexpected error: {msg}"
        );
    }

    #[test]
    fn truncated_run_is_rejected() {
        let mut b = SpillBuilder::new(4).unwrap();
        for i in 0..12u32 {
            b.add_edge(NodeId(i % 4), NodeId((i + 1) % 4), 1.0).unwrap();
        }
        let victim = b.runs[0].clone();
        let bytes = std::fs::read(&victim).unwrap();
        std::fs::write(&victim, &bytes[..bytes.len() - 6]).unwrap();
        assert!(b.build(vec![(); 4], |acc, w| *acc += w).is_err());
    }

    #[test]
    fn spill_dir_cleaned_up() {
        let mut b = SpillBuilder::new(2).unwrap();
        for i in 0..10u32 {
            b.add_edge(NodeId(i % 2), NodeId(1 - i % 2), 1.0).unwrap();
        }
        let dir = b.dir.clone();
        assert!(dir.exists());
        let _ = b.build(vec![(); 2], |acc, w| *acc += w).unwrap();
        assert!(!dir.exists(), "spill dir removed after build");
    }
}
