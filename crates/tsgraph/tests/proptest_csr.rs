//! Property tests for the CSR layer: DiGraph → CSR round-trip invariants
//! and behavioural parity between the CSR-native algorithms and the
//! DiGraph reference implementations in `algo::reference`.

use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};
use tsgraph::algo;
use tsgraph::{CsrGraph, DeltaGraph, DeltaView, DiGraph, GraphBuilder, NodeId, SpillBuilder};

/// Random multigraph: node count plus an edge list with integer-valued
/// weights (exact float arithmetic keeps aggregation checks exact).
fn multigraph() -> impl Strategy<Value = (usize, Vec<(usize, usize, u32)>)> {
    (1usize..24).prop_flat_map(|n| {
        (
            n..=n,
            proptest::collection::vec((0..n, 0..n, 1u32..8), 0..120),
        )
    })
}

/// Asserts two CSR graphs are *bit*-identical: same edge ids, endpoints,
/// weight bit patterns and in-adjacency. Integer-valued weights keep the
/// aggregation sums exact regardless of merge order, so equality is on
/// `f64::to_bits`, not a tolerance.
fn assert_bit_identical(
    a: &CsrGraph<usize, f64>,
    b: &CsrGraph<usize, f64>,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(a.node_count(), b.node_count());
    prop_assert_eq!(a.edge_count(), b.edge_count());
    for ((ea, sa, ta, wa), (eb, sb, tb, wb)) in a.edges_iter().zip(b.edges_iter()) {
        prop_assert_eq!(ea, eb);
        prop_assert_eq!(sa, sb);
        prop_assert_eq!(ta, tb);
        prop_assert_eq!(wa.to_bits(), wb.to_bits());
    }
    for u in a.node_ids() {
        prop_assert_eq!(a.out_neighbors(u), b.out_neighbors(u));
        prop_assert_eq!(a.in_neighbors(u), b.in_neighbors(u));
    }
    Ok(())
}

fn build_in_ram(n: usize, edges: &[(usize, usize, u32)]) -> CsrGraph<usize, f64> {
    let mut b = GraphBuilder::new();
    for &(s, t, w) in edges {
        b.add_edge(NodeId(s as u32), NodeId(t as u32), w as f64);
    }
    b.build((0..n).collect::<Vec<usize>>(), |acc, w| *acc += w)
}

fn digraph_of(n: usize, edges: &[(usize, usize, u32)]) -> DiGraph<usize, f64> {
    let mut g = DiGraph::new();
    for i in 0..n {
        g.add_node(i);
    }
    for &(s, t, w) in edges {
        g.add_edge(NodeId(s as u32), NodeId(t as u32), w as f64);
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn aggregation_preserves_weight_sums((n, edges) in multigraph()) {
        let g = digraph_of(n, &edges);
        let csr = CsrGraph::from_digraph(&g, |acc, w| *acc += w);

        // Total weight is conserved through aggregation.
        let total_di: f64 = g.edges_iter().map(|(_, _, _, &w)| w).sum();
        let total_csr: f64 = csr.edges_iter().map(|(_, _, _, &w)| w).sum();
        prop_assert!((total_di - total_csr).abs() < 1e-9, "{total_di} vs {total_csr}");

        // Per-pair weights equal the sum over parallel DiGraph edges.
        let mut expected: BTreeMap<(u32, u32), f64> = BTreeMap::new();
        for (_, s, t, &w) in g.edges_iter() {
            *expected.entry((s.0, t.0)).or_insert(0.0) += w;
        }
        prop_assert_eq!(csr.edge_count(), expected.len());
        for ((s, t), w) in &expected {
            let got = csr.weight_between(NodeId(*s), NodeId(*t));
            prop_assert!(got.is_some(), "missing edge {s}->{t}");
            prop_assert!((got.unwrap() - w).abs() < 1e-9);
        }
    }

    #[test]
    fn degrees_conserved_modulo_dedup((n, edges) in multigraph()) {
        let g = digraph_of(n, &edges);
        let csr = CsrGraph::from_digraph(&g, |acc, w| *acc += w);
        prop_assert_eq!(csr.node_count(), g.node_count());
        for u in g.node_ids() {
            // CSR degree counts *distinct* neighbours.
            let distinct_out: BTreeSet<u32> = g.successors(u).map(|v| v.0).collect();
            let distinct_in: BTreeSet<u32> = g.predecessors(u).map(|v| v.0).collect();
            prop_assert_eq!(csr.out_degree(u), distinct_out.len());
            prop_assert_eq!(csr.in_degree(u), distinct_in.len());
            prop_assert_eq!(csr.degree(u), distinct_out.len() + distinct_in.len());
        }
    }

    #[test]
    fn adjacency_sorted_and_deterministic((n, edges) in multigraph()) {
        let g = digraph_of(n, &edges);
        let csr = CsrGraph::from_digraph(&g, |acc, w| *acc += w);
        for u in csr.node_ids() {
            let nb = csr.out_neighbors(u);
            prop_assert!(nb.windows(2).all(|w| w[0] < w[1]), "out-slice sorted, no dups");
            let inb = csr.in_neighbors(u);
            prop_assert!(inb.windows(2).all(|w| w[0] < w[1]), "in-slice sorted, no dups");
            // edge_id agrees with slice membership.
            for v in csr.node_ids() {
                prop_assert_eq!(csr.edge_id(u, v).is_some(), nb.contains(&v));
            }
        }
        // Rebuilding from reversed insertion order yields the identical
        // graph (deterministic ids, targets and weights).
        let mut b = GraphBuilder::new();
        for &(s, t, w) in edges.iter().rev() {
            b.add_edge(NodeId(s as u32), NodeId(t as u32), w as f64);
        }
        let csr2 = b.build((0..n).collect::<Vec<usize>>(), |acc, w| *acc += w);
        prop_assert_eq!(csr.edge_count(), csr2.edge_count());
        for (e, s, t, w) in csr.edges_iter() {
            prop_assert_eq!(csr2.endpoints(e), (s, t));
            prop_assert!((csr2.edge(e) - w).abs() < 1e-9);
        }
    }

    #[test]
    fn node_payloads_survive_round_trip((n, edges) in multigraph()) {
        let g = digraph_of(n, &edges);
        let csr = CsrGraph::from_digraph(&g, |acc, w| *acc += w);
        for (id, &payload) in csr.nodes_iter() {
            prop_assert_eq!(payload, id.index());
        }
    }

    #[test]
    fn bfs_parity_with_reference((n, edges) in multigraph()) {
        let g = digraph_of(n, &edges);
        let csr = CsrGraph::from_digraph(&g, |acc, w| *acc += w);
        for start in g.node_ids() {
            // Visit *sets* must agree (orders differ: the reference walks
            // insertion order, CSR walks sorted slices); the CSR order
            // itself must be deterministic.
            let di: BTreeSet<u32> =
                algo::reference::bfs_directed(&g, start).into_iter().map(|v| v.0).collect();
            let cs: BTreeSet<u32> =
                algo::bfs_directed(&csr, start).into_iter().map(|v| v.0).collect();
            prop_assert_eq!(&di, &cs, "directed reach from {:?}", start);
            let diu: BTreeSet<u32> =
                algo::reference::bfs_undirected(&g, start).into_iter().map(|v| v.0).collect();
            let csu: BTreeSet<u32> =
                algo::bfs_undirected(&csr, start).into_iter().map(|v| v.0).collect();
            prop_assert_eq!(&diu, &csu, "undirected reach from {:?}", start);
            prop_assert_eq!(
                algo::bfs_directed(&csr, start),
                algo::bfs_directed(&csr, start)
            );
        }
    }

    #[test]
    fn component_parity_with_reference((n, edges) in multigraph()) {
        let g = digraph_of(n, &edges);
        let csr = CsrGraph::from_digraph(&g, |acc, w| *acc += w);
        let (di_labels, di_count) = algo::reference::weakly_connected_components(&g);
        let (cs_labels, cs_count) = algo::weakly_connected_components(&csr);
        prop_assert_eq!(di_count, cs_count);
        // Same partition up to label permutation.
        for i in 0..n {
            for j in 0..n {
                prop_assert_eq!(
                    di_labels[i] == di_labels[j],
                    cs_labels[i] == cs_labels[j],
                    "{i} vs {j}"
                );
            }
        }
    }

    #[test]
    fn pagerank_parity_within_1e9((n, edges) in multigraph()) {
        let g = digraph_of(n, &edges);
        let csr = CsrGraph::from_digraph(&g, |acc, w| *acc += w);
        // The reference runs on the multigraph, CSR on the aggregated
        // graph — per-node out-weight sums are identical, so the scores
        // must match to numerical noise.
        let pr_di = algo::reference::pagerank(&g, 0.85, 60, |&w: &f64| w);
        let pr_cs = algo::pagerank(&csr, 0.85, 60, |&w: &f64| w);
        prop_assert_eq!(pr_di.len(), pr_cs.len());
        for (a, b) in pr_di.iter().zip(&pr_cs) {
            prop_assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn spill_build_bit_identical_to_in_ram(
        (n, edges) in multigraph(),
        budget in 1usize..48,
    ) {
        // The bounded-memory path — sorted runs spilled to disk, k-way
        // merged back — must produce the *same bytes* as the in-RAM
        // builder for any edge stream and any triple budget.
        let in_ram = build_in_ram(n, &edges);
        let mut spill = SpillBuilder::new(budget).expect("spill dir");
        for &(s, t, w) in &edges {
            spill
                .add_edge(NodeId(s as u32), NodeId(t as u32), w as f64)
                .expect("spill add_edge");
        }
        let spilled = spill
            .build((0..n).collect::<Vec<usize>>(), |acc, w| *acc += w)
            .expect("spill build");
        assert_bit_identical(&in_ram, &spilled)?;
    }

    #[test]
    fn delta_compaction_bit_identical_to_full_rebuild(
        (n, edges) in multigraph(),
        split_ppm in 0u32..=1_000_000,
    ) {
        // Base CSR over a prefix of the stream + a DeltaGraph over the
        // suffix, compacted, must equal a from-scratch build of the whole
        // stream — for every split point.
        let split = (edges.len() as u64 * split_ppm as u64 / 1_000_000) as usize;
        let full = build_in_ram(n, &edges);
        let base = build_in_ram(n, &edges[..split]);
        let mut delta = DeltaGraph::new(n);
        delta.ingest(
            edges[split..]
                .iter()
                .map(|&(s, t, w)| (NodeId(s as u32), NodeId(t as u32), w as f64)),
            |acc, w| *acc += w,
        );
        let compacted = DeltaView::new(&base, &delta).compact(|acc, w| *acc += w);
        assert_bit_identical(&full, &compacted)?;
    }

    #[test]
    fn filter_nodes_parity((n, edges) in multigraph()) {
        let g = digraph_of(n, &edges);
        let csr = CsrGraph::from_digraph(&g, |acc, w| *acc += w);
        // Keep even-indexed nodes on both representations.
        let (di_sub, di_map) = g.filter_nodes(|id, _| id.index() % 2 == 0);
        let (cs_sub, cs_map) = csr.filter_nodes(|id, _| id.index() % 2 == 0);
        prop_assert_eq!(di_sub.node_count(), cs_sub.node_count());
        prop_assert_eq!(&di_map, &cs_map);
        // The filtered DiGraph aggregates to exactly the filtered CSR.
        let di_sub_csr = CsrGraph::from_digraph(&di_sub, |acc, w| *acc += w);
        prop_assert_eq!(di_sub_csr.edge_count(), cs_sub.edge_count());
        for (e, s, t, w) in di_sub_csr.edges_iter() {
            prop_assert_eq!(cs_sub.endpoints(e), (s, t));
            prop_assert!((cs_sub.edge(e) - w).abs() < 1e-9);
        }
    }
}
