//! Property tests pinning `layout::barnes_hut` to the exact
//! `layout::reference` implementation.
//!
//! Two contracts:
//!
//! * **θ = 0 parity** — with the approximation disabled, the Barnes–Hut
//!   entry point must match the exact reference layout within 1e-9 per
//!   coordinate for the same seed (the implementation makes this exact by
//!   delegation; the test pins the contract, not the mechanism).
//! * **θ > 0 structural invariants** — an approximate layout is still a
//!   valid layout: every position finite, every node inside the drawing
//!   area, and adjacent nodes closer on average than arbitrary node pairs
//!   (the force model's whole point). Checked across path / star /
//!   clique / disconnected topologies, including the degenerate sizes
//!   n ∈ {0, 1, 2} and the just-past-`Auto`-boundary size 257.

use proptest::prelude::*;
use tsgraph::layout::{barnes_hut, reference, BarnesHutOptions, ForceOptions};
use tsgraph::{CsrGraph, GraphBuilder, NodeId};

fn build(n: usize, edges: &[(usize, usize)]) -> CsrGraph<(), f64> {
    let mut b = GraphBuilder::new();
    for &(s, t) in edges {
        b.add_edge(NodeId(s as u32), NodeId(t as u32), 1.0);
    }
    b.build(vec![(); n], |acc, w| *acc += w)
}

fn path(n: usize) -> CsrGraph<(), f64> {
    let edges: Vec<_> = (1..n).map(|i| (i - 1, i)).collect();
    build(n, &edges)
}

fn star(n: usize) -> CsrGraph<(), f64> {
    let edges: Vec<_> = (1..n).map(|i| (0, i)).collect();
    build(n, &edges)
}

fn clique(n: usize) -> CsrGraph<(), f64> {
    let mut edges = Vec::new();
    for i in 0..n {
        for j in (i + 1)..n {
            edges.push((i, j));
        }
    }
    build(n, &edges)
}

/// Two disjoint paths of ⌈n/2⌉ and ⌊n/2⌋ nodes.
fn disconnected(n: usize) -> CsrGraph<(), f64> {
    let half = n / 2;
    let mut edges: Vec<_> = (1..half).map(|i| (i - 1, i)).collect();
    edges.extend((half + 1..n).map(|i| (i - 1, i)));
    build(n, &edges)
}

fn every_topology(n: usize) -> Vec<(&'static str, CsrGraph<(), f64>)> {
    vec![
        ("path", path(n)),
        ("star", star(n)),
        ("clique", clique(n)),
        ("disconnected", disconnected(n)),
    ]
}

fn dist(a: (f64, f64), b: (f64, f64)) -> f64 {
    ((a.0 - b.0).powi(2) + (a.1 - b.1).powi(2)).sqrt()
}

/// The θ>0 invariants; `name` labels failures with the topology.
fn check_invariants(
    name: &str,
    g: &CsrGraph<(), f64>,
    pos: &[(f64, f64)],
    opts: BarnesHutOptions,
) -> Result<(), TestCaseError> {
    let n = g.node_count();
    prop_assert_eq!(pos.len(), n, "{}: one position per node", name);
    let half = opts.force.area / 2.0 + 1e-9;
    for (i, p) in pos.iter().enumerate() {
        prop_assert!(
            p.0.is_finite() && p.1.is_finite(),
            "{}: node {} not finite: {:?}",
            name,
            i,
            p
        );
        prop_assert!(
            p.0.abs() <= half && p.1.abs() <= half,
            "{}: node {} outside area: {:?}",
            name,
            i,
            p
        );
    }
    // Adjacent nodes end up closer than arbitrary pairs on average. Only
    // meaningful with ≥ 3 nodes, some edges, and some non-edges (in a
    // clique the two means are the same set).
    let neighbour: Vec<f64> = g
        .edges_iter()
        .filter(|(_, s, t, _)| s != t)
        .map(|(_, s, t, _)| dist(pos[s.index()], pos[t.index()]))
        .collect();
    let pairs = n * n.saturating_sub(1) / 2;
    if n >= 3 && !neighbour.is_empty() && neighbour.len() < pairs {
        let neighbour_mean = neighbour.iter().sum::<f64>() / neighbour.len() as f64;
        let mut global_sum = 0.0;
        for i in 0..n {
            for j in (i + 1)..n {
                global_sum += dist(pos[i], pos[j]);
            }
        }
        let global_mean = global_sum / pairs as f64;
        prop_assert!(
            neighbour_mean < global_mean,
            "{}: neighbour mean {} ≥ global mean {}",
            name,
            neighbour_mean,
            global_mean
        );
    }
    Ok(())
}

#[test]
fn theta_zero_matches_reference_exactly() {
    for n in [0usize, 1, 2, 17, 257] {
        for (name, g) in every_topology(n) {
            for seed in [42u64, 7, 999] {
                let force = ForceOptions {
                    iterations: 40,
                    seed,
                    ..Default::default()
                };
                let exact = reference::force_directed(&g, force);
                let bh = barnes_hut(&g, BarnesHutOptions { force, theta: 0.0 });
                assert_eq!(exact.len(), bh.len(), "{name} n={n}");
                for (i, (e, b)) in exact.iter().zip(&bh).enumerate() {
                    assert!(
                        (e.0 - b.0).abs() <= 1e-9 && (e.1 - b.1).abs() <= 1e-9,
                        "{name} n={n} seed={seed} node {i}: {e:?} vs {b:?}"
                    );
                }
            }
        }
    }
}

#[test]
fn positive_theta_invariants_at_fixed_sizes() {
    for n in [0usize, 1, 2, 257] {
        for (name, g) in every_topology(n) {
            let opts = BarnesHutOptions {
                force: ForceOptions {
                    iterations: 60,
                    ..Default::default()
                },
                theta: 0.8,
            };
            let pos = barnes_hut(&g, opts);
            check_invariants(name, &g, &pos, opts).unwrap();
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn positive_theta_invariants_hold(
        n in 3usize..60,
        seed in 0u64..1_000,
        theta in 0.3f64..1.2,
    ) {
        let opts = BarnesHutOptions {
            force: ForceOptions { iterations: 60, seed, ..Default::default() },
            theta,
        };
        for (name, g) in every_topology(n) {
            let pos = barnes_hut(&g, opts);
            check_invariants(name, &g, &pos, opts)?;
        }
    }

    #[test]
    fn barnes_hut_is_deterministic(
        n in 3usize..40,
        seed in 0u64..1_000,
        theta in 0.3f64..1.2,
    ) {
        let g = star(n);
        let opts = BarnesHutOptions {
            force: ForceOptions { iterations: 30, seed, ..Default::default() },
            theta,
        };
        let a = barnes_hut(&g, opts);
        let b = barnes_hut(&g, opts);
        prop_assert_eq!(a, b);
    }
}
