//! Descriptive statistics over `&[f64]` slices.
//!
//! All functions treat the slice as a *population* unless stated otherwise
//! (matching the conventions of z-normalisation in the time series
//! literature, where the population standard deviation is used).

/// Arithmetic mean; `0.0` for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population variance; `0.0` for slices with fewer than one element.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Sample variance (n − 1 denominator); `0.0` for slices shorter than 2.
pub fn sample_variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64
}

/// Population standard deviation.
pub fn std(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Minimum value; `+∞` for an empty slice (so that `min` folds cleanly).
pub fn min(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(f64::INFINITY, f64::min)
}

/// Maximum value; `−∞` for an empty slice.
pub fn max(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(f64::NEG_INFINITY, f64::max)
}

/// Index of the largest element (first occurrence); `None` when empty.
pub fn argmax(xs: &[f64]) -> Option<usize> {
    if xs.is_empty() {
        return None;
    }
    let mut best = 0;
    for (i, &x) in xs.iter().enumerate().skip(1) {
        if x > xs[best] {
            best = i;
        }
    }
    Some(best)
}

/// Index of the smallest element (first occurrence); `None` when empty.
pub fn argmin(xs: &[f64]) -> Option<usize> {
    if xs.is_empty() {
        return None;
    }
    let mut best = 0;
    for (i, &x) in xs.iter().enumerate().skip(1) {
        if x < xs[best] {
            best = i;
        }
    }
    Some(best)
}

/// Linear-interpolated quantile `q ∈ [0, 1]` of an *unsorted* slice.
///
/// Uses the same convention as NumPy's default (`linear`): the quantile of a
/// sorted sample `s` is `s[floor(h)] + (h − floor(h)) · (s[ceil(h)] −
/// s[floor(h)])` with `h = q · (n − 1)`.
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile input"));
    quantile_sorted(&sorted, q)
}

/// Quantile of an already-sorted slice (ascending). See [`quantile`].
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let q = q.clamp(0.0, 1.0);
    let h = q * (sorted.len() - 1) as f64;
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        sorted[lo] + (h - lo as f64) * (sorted[hi] - sorted[lo])
    }
}

/// Median (50 % quantile).
pub fn median(xs: &[f64]) -> f64 {
    quantile(xs, 0.5)
}

/// Five-number summary used by box plots: (min, q1, median, q3, max).
pub fn five_number_summary(xs: &[f64]) -> (f64, f64, f64, f64, f64) {
    if xs.is_empty() {
        return (f64::NAN, f64::NAN, f64::NAN, f64::NAN, f64::NAN);
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in summary input"));
    (
        sorted[0],
        quantile_sorted(&sorted, 0.25),
        quantile_sorted(&sorted, 0.5),
        quantile_sorted(&sorted, 0.75),
        sorted[sorted.len() - 1],
    )
}

/// Population covariance of two equal-length slices.
pub fn covariance(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "covariance requires equal lengths");
    if xs.is_empty() {
        return 0.0;
    }
    let mx = mean(xs);
    let my = mean(ys);
    xs.iter()
        .zip(ys)
        .map(|(x, y)| (x - mx) * (y - my))
        .sum::<f64>()
        / xs.len() as f64
}

/// Pearson correlation coefficient; `0.0` when either side is constant.
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    let sx = std(xs);
    let sy = std(ys);
    if sx <= f64::EPSILON || sy <= f64::EPSILON {
        return 0.0;
    }
    covariance(xs, ys) / (sx * sy)
}

/// Sample skewness (Fisher–Pearson, population normalisation).
pub fn skewness(xs: &[f64]) -> f64 {
    let s = std(xs);
    if xs.len() < 2 || s <= f64::EPSILON {
        return 0.0;
    }
    let m = mean(xs);
    let n = xs.len() as f64;
    xs.iter().map(|x| ((x - m) / s).powi(3)).sum::<f64>() / n
}

/// Excess kurtosis (population normalisation; 0 for a normal distribution).
pub fn kurtosis(xs: &[f64]) -> f64 {
    let s = std(xs);
    if xs.len() < 2 || s <= f64::EPSILON {
        return 0.0;
    }
    let m = mean(xs);
    let n = xs.len() as f64;
    xs.iter().map(|x| ((x - m) / s).powi(4)).sum::<f64>() / n - 3.0
}

/// Autocorrelation at `lag` (biased estimator); `0.0` for constant series.
pub fn autocorrelation(xs: &[f64], lag: usize) -> f64 {
    if lag >= xs.len() {
        return 0.0;
    }
    let m = mean(xs);
    let denom: f64 = xs.iter().map(|x| (x - m) * (x - m)).sum();
    if denom <= f64::EPSILON {
        return 0.0;
    }
    let num: f64 = (0..xs.len() - lag)
        .map(|i| (xs[i] - m) * (xs[i + lag] - m))
        .sum();
    num / denom
}

/// Slope of the least-squares line fit through `(i, xs[i])`.
pub fn trend_slope(xs: &[f64]) -> f64 {
    let n = xs.len();
    if n < 2 {
        return 0.0;
    }
    let tx: Vec<f64> = (0..n).map(|i| i as f64).collect();
    let vx = variance(&tx);
    if vx <= f64::EPSILON {
        return 0.0;
    }
    covariance(&tx, xs) / vx
}

/// Number of mean crossings (sign changes of the mean-centred series).
pub fn mean_crossings(xs: &[f64]) -> usize {
    if xs.len() < 2 {
        return 0;
    }
    let m = mean(xs);
    let mut crossings = 0;
    for w in xs.windows(2) {
        if (w[0] - m) * (w[1] - m) < 0.0 {
            crossings += 1;
        }
    }
    crossings
}

/// Shannon entropy (nats) of a histogram with `bins` equal-width bins.
pub fn histogram_entropy(xs: &[f64], bins: usize) -> f64 {
    if xs.is_empty() || bins == 0 {
        return 0.0;
    }
    let lo = min(xs);
    let hi = max(xs);
    if (hi - lo).abs() <= f64::EPSILON {
        return 0.0;
    }
    let mut counts = vec![0usize; bins];
    for &x in xs {
        let mut b = (((x - lo) / (hi - lo)) * bins as f64) as usize;
        if b >= bins {
            b = bins - 1;
        }
        counts[b] += 1;
    }
    let n = xs.len() as f64;
    counts
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| {
            let p = c as f64 / n;
            -p * p.ln()
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    #[test]
    fn mean_var_std() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < EPS);
        assert!((variance(&xs) - 4.0).abs() < EPS);
        assert!((std(&xs) - 2.0).abs() < EPS);
        assert!((sample_variance(&xs) - 32.0 / 7.0).abs() < EPS);
    }

    #[test]
    fn empty_slices_are_safe() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[]), 0.0);
        assert_eq!(min(&[]), f64::INFINITY);
        assert_eq!(max(&[]), f64::NEG_INFINITY);
        assert_eq!(argmax(&[]), None);
        assert_eq!(argmin(&[]), None);
        assert!(quantile(&[], 0.5).is_nan());
        assert_eq!(mean_crossings(&[]), 0);
        assert_eq!(histogram_entropy(&[], 4), 0.0);
    }

    #[test]
    fn arg_extrema_first_occurrence() {
        let xs = [1.0, 3.0, 3.0, 0.0, 0.0];
        assert_eq!(argmax(&xs), Some(1));
        assert_eq!(argmin(&xs), Some(3));
    }

    #[test]
    fn quantiles_match_numpy_convention() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert!((quantile(&xs, 0.0) - 1.0).abs() < EPS);
        assert!((quantile(&xs, 1.0) - 4.0).abs() < EPS);
        assert!((quantile(&xs, 0.5) - 2.5).abs() < EPS);
        assert!((quantile(&xs, 0.25) - 1.75).abs() < EPS);
        assert!((median(&[5.0, 1.0, 3.0]) - 3.0).abs() < EPS);
    }

    #[test]
    fn five_numbers() {
        let xs = [7.0, 1.0, 3.0, 5.0, 9.0];
        let (mn, q1, md, q3, mx) = five_number_summary(&xs);
        assert_eq!(mn, 1.0);
        assert_eq!(mx, 9.0);
        assert!((md - 5.0).abs() < EPS);
        assert!((q1 - 3.0).abs() < EPS);
        assert!((q3 - 7.0).abs() < EPS);
    }

    #[test]
    fn covariance_and_pearson() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&xs, &ys) - 1.0).abs() < 1e-9);
        let ys_neg: Vec<f64> = ys.iter().map(|y| -y).collect();
        assert!((pearson(&xs, &ys_neg) + 1.0).abs() < 1e-9);
        let constant = [3.0; 4];
        assert_eq!(pearson(&xs, &constant), 0.0);
    }

    #[test]
    fn skew_kurt_of_symmetric_data() {
        let xs = [-2.0, -1.0, 0.0, 1.0, 2.0];
        assert!(skewness(&xs).abs() < 1e-9);
        // Uniform-ish discrete data is platykurtic (negative excess kurtosis).
        assert!(kurtosis(&xs) < 0.0);
        assert_eq!(skewness(&[1.0]), 0.0);
    }

    #[test]
    fn autocorrelation_of_alternating_signal() {
        let xs: Vec<f64> = (0..64)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        assert!((autocorrelation(&xs, 0) - 1.0).abs() < EPS);
        assert!(autocorrelation(&xs, 1) < -0.9);
        assert!(autocorrelation(&xs, 2) > 0.9);
        assert_eq!(autocorrelation(&xs, 100), 0.0);
    }

    #[test]
    fn trend_of_line() {
        let xs: Vec<f64> = (0..10).map(|i| 3.0 * i as f64 + 1.0).collect();
        assert!((trend_slope(&xs) - 3.0).abs() < 1e-9);
        assert_eq!(trend_slope(&[5.0]), 0.0);
    }

    #[test]
    fn crossings_counts_sign_changes() {
        let xs = [1.0, -1.0, 1.0, -1.0];
        assert_eq!(mean_crossings(&xs), 3);
        let flat = [2.0, 2.0, 2.0];
        assert_eq!(mean_crossings(&flat), 0);
    }

    #[test]
    fn entropy_bounds() {
        // All mass in one bin → entropy 0 (constant input short-circuits too).
        assert_eq!(histogram_entropy(&[1.0, 1.0, 1.0], 8), 0.0);
        // Uniform over bins → ln(bins).
        let xs: Vec<f64> = (0..800).map(|i| (i % 8) as f64).collect();
        let h = histogram_entropy(&xs, 8);
        assert!((h - (8f64).ln()).abs() < 1e-9);
    }
}
