//! Labelled time series datasets.

use crate::error::{Result, TsError};
use crate::series::TimeSeries;
use crate::transform;
use std::fmt;

/// Category of a dataset, mirroring the "dataset type" filter of Graphint's
/// Benchmark frame (UCR archive nomenclature).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetKind {
    /// Synthetically generated (CBF, Two Patterns, ...).
    Simulated,
    /// Sensor readings (industrial, seismic, ...).
    Sensor,
    /// Electrocardiograms and other medical waveforms.
    Ecg,
    /// Human motion capture.
    Motion,
    /// Electrical device consumption profiles.
    Device,
    /// Spectrographs and other instrument curves.
    Spectro,
    /// Anything else.
    Other,
}

impl DatasetKind {
    /// Stable lowercase name used in CSV output and CLI filters.
    pub fn as_str(&self) -> &'static str {
        match self {
            DatasetKind::Simulated => "simulated",
            DatasetKind::Sensor => "sensor",
            DatasetKind::Ecg => "ecg",
            DatasetKind::Motion => "motion",
            DatasetKind::Device => "device",
            DatasetKind::Spectro => "spectro",
            DatasetKind::Other => "other",
        }
    }

    /// Parses the lowercase name produced by [`DatasetKind::as_str`].
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "simulated" => DatasetKind::Simulated,
            "sensor" => DatasetKind::Sensor,
            "ecg" => DatasetKind::Ecg,
            "motion" => DatasetKind::Motion,
            "device" => DatasetKind::Device,
            "spectro" => DatasetKind::Spectro,
            "other" => DatasetKind::Other,
            _ => return None,
        })
    }
}

impl fmt::Display for DatasetKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A dataset `D = {T_0, …, T_{n−1}}` with optional ground-truth labels.
///
/// Labels are small class indices in `0..n_classes`. The clustering quality
/// metrics, the colouring of the Clustering-comparison frame and the quiz
/// all consume them.
#[derive(Debug, Clone)]
pub struct Dataset {
    name: String,
    kind: DatasetKind,
    series: Vec<TimeSeries>,
    labels: Option<Vec<usize>>,
}

impl Dataset {
    /// Creates an unlabelled dataset.
    pub fn new(name: impl Into<String>, kind: DatasetKind, series: Vec<TimeSeries>) -> Self {
        Dataset {
            name: name.into(),
            kind,
            series,
            labels: None,
        }
    }

    /// Creates a labelled dataset; errors if labels and series disagree.
    pub fn with_labels(
        name: impl Into<String>,
        kind: DatasetKind,
        series: Vec<TimeSeries>,
        labels: Vec<usize>,
    ) -> Result<Self> {
        if labels.len() != series.len() {
            return Err(TsError::LabelMismatch {
                series: series.len(),
                labels: labels.len(),
            });
        }
        Ok(Dataset {
            name: name.into(),
            kind,
            series,
            labels: Some(labels),
        })
    }

    /// Dataset display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Dataset category (drives the Benchmark frame's type filter).
    pub fn kind(&self) -> DatasetKind {
        self.kind
    }

    /// Number of series.
    pub fn len(&self) -> usize {
        self.series.len()
    }

    /// Whether the dataset holds no series.
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }

    /// The series themselves.
    pub fn series(&self) -> &[TimeSeries] {
        &self.series
    }

    /// A single series by index.
    pub fn get(&self, i: usize) -> Option<&TimeSeries> {
        self.series.get(i)
    }

    /// Ground-truth labels if present.
    pub fn labels(&self) -> Option<&[usize]> {
        self.labels.as_deref()
    }

    /// Number of distinct classes (0 when unlabelled).
    pub fn n_classes(&self) -> usize {
        match &self.labels {
            None => 0,
            Some(l) => l.iter().copied().max().map_or(0, |m| m + 1),
        }
    }

    /// Length of the shortest series.
    pub fn min_len(&self) -> usize {
        self.series.iter().map(TimeSeries::len).min().unwrap_or(0)
    }

    /// Length of the longest series.
    pub fn max_len(&self) -> usize {
        self.series.iter().map(TimeSeries::len).max().unwrap_or(0)
    }

    /// Whether every series has the same length.
    pub fn is_equal_length(&self) -> bool {
        self.min_len() == self.max_len()
    }

    /// Lengths of all series, in order.
    pub fn lengths(&self) -> Vec<usize> {
        self.series.iter().map(TimeSeries::len).collect()
    }

    /// Raw values of every series as owned rows (for matrix-style consumers).
    pub fn to_rows(&self) -> Vec<Vec<f64>> {
        self.series.iter().map(|s| s.values().to_vec()).collect()
    }

    /// Z-normalised copy of every series.
    ///
    /// Each output row is allocated exactly once and written directly by
    /// the fused [`crate::kernel::znorm_into`] — no intermediate copy that
    /// is then normalised in place.
    pub fn znormed_rows(&self) -> Vec<Vec<f64>> {
        self.series
            .iter()
            .map(|s| {
                let mut row = vec![0.0; s.len()];
                crate::kernel::znorm_into(s.values(), &mut row);
                row
            })
            .collect()
    }

    /// Streams the z-normalised view of every series through `f` using one
    /// reused scratch buffer — zero allocations per row. The alternative to
    /// [`Self::znormed_rows`] for consumers that fold rows instead of
    /// keeping them.
    pub fn for_each_znormed_row(&self, mut f: impl FnMut(usize, &[f64])) {
        let mut scratch = crate::kernel::ZnormScratch::new();
        for (i, s) in self.series.iter().enumerate() {
            f(i, scratch.znormed(s.values()));
        }
    }

    /// Resamples every series to a common length (the minimum by default),
    /// returning a new dataset. Needed before raw-based methods when series
    /// lengths differ.
    pub fn resampled(&self, target_len: usize) -> Result<Dataset> {
        let mut series = Vec::with_capacity(self.series.len());
        for s in &self.series {
            let vals = transform::resample(s.values(), target_len)?;
            let mut ts = TimeSeries::new(vals);
            if let Some(n) = s.name() {
                ts.set_name(n);
            }
            series.push(ts);
        }
        Ok(Dataset {
            name: self.name.clone(),
            kind: self.kind,
            series,
            labels: self.labels.clone(),
        })
    }

    /// Returns the subset of series with the given indices (labels follow).
    pub fn subset(&self, indices: &[usize]) -> Result<Dataset> {
        let mut series = Vec::with_capacity(indices.len());
        let mut labels = self
            .labels
            .as_ref()
            .map(|_| Vec::with_capacity(indices.len()));
        for &i in indices {
            let s = self.series.get(i).ok_or_else(|| {
                TsError::InvalidParameter(format!("subset index {i} out of range"))
            })?;
            series.push(s.clone());
            if let (Some(out), Some(all)) = (labels.as_mut(), self.labels.as_ref()) {
                out.push(all[i]);
            }
        }
        Ok(Dataset {
            name: self.name.clone(),
            kind: self.kind,
            series,
            labels,
        })
    }

    /// Indices of the series belonging to class `c` (empty when unlabelled).
    pub fn class_indices(&self, c: usize) -> Vec<usize> {
        match &self.labels {
            None => Vec::new(),
            Some(l) => l
                .iter()
                .enumerate()
                .filter_map(|(i, &li)| (li == c).then_some(i))
                .collect(),
        }
    }

    /// Per-class series counts, indexed by class id.
    pub fn class_counts(&self) -> Vec<usize> {
        let k = self.n_classes();
        let mut counts = vec![0usize; k];
        if let Some(l) = &self.labels {
            for &c in l {
                counts[c] += 1;
            }
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        Dataset::with_labels(
            "toy",
            DatasetKind::Simulated,
            vec![
                TimeSeries::new(vec![0.0, 1.0, 2.0, 3.0]),
                TimeSeries::new(vec![3.0, 2.0, 1.0, 0.0]),
                TimeSeries::new(vec![0.0, 1.0, 2.0, 3.0]),
            ],
            vec![0, 1, 0],
        )
        .unwrap()
    }

    #[test]
    fn construction_and_metadata() {
        let d = toy();
        assert_eq!(d.name(), "toy");
        assert_eq!(d.kind(), DatasetKind::Simulated);
        assert_eq!(d.len(), 3);
        assert!(!d.is_empty());
        assert_eq!(d.n_classes(), 2);
        assert_eq!(d.min_len(), 4);
        assert_eq!(d.max_len(), 4);
        assert!(d.is_equal_length());
        assert_eq!(d.lengths(), vec![4, 4, 4]);
    }

    #[test]
    fn label_mismatch_rejected() {
        let err = Dataset::with_labels(
            "bad",
            DatasetKind::Other,
            vec![TimeSeries::new(vec![1.0])],
            vec![0, 1],
        );
        assert!(matches!(err, Err(TsError::LabelMismatch { .. })));
    }

    #[test]
    fn unlabelled_dataset() {
        let d = Dataset::new(
            "u",
            DatasetKind::Sensor,
            vec![TimeSeries::new(vec![1.0, 2.0])],
        );
        assert_eq!(d.labels(), None);
        assert_eq!(d.n_classes(), 0);
        assert!(d.class_indices(0).is_empty());
        assert!(d.class_counts().is_empty());
    }

    #[test]
    fn class_queries() {
        let d = toy();
        assert_eq!(d.class_indices(0), vec![0, 2]);
        assert_eq!(d.class_indices(1), vec![1]);
        assert_eq!(d.class_counts(), vec![2, 1]);
    }

    #[test]
    fn subset_carries_labels() {
        let d = toy();
        let s = d.subset(&[2, 1]).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.labels(), Some(&[0, 1][..]));
        assert!(d.subset(&[9]).is_err());
    }

    #[test]
    fn resample_dataset() {
        let d = toy();
        let r = d.resampled(8).unwrap();
        assert_eq!(r.min_len(), 8);
        assert_eq!(r.labels(), d.labels());
        assert_eq!(r.len(), d.len());
    }

    #[test]
    fn rows_and_znorm() {
        let d = toy();
        let rows = d.to_rows();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0], vec![0.0, 1.0, 2.0, 3.0]);
        for row in d.znormed_rows() {
            assert!(crate::stats::mean(&row).abs() < 1e-12);
        }
    }

    #[test]
    fn kind_roundtrip() {
        for k in [
            DatasetKind::Simulated,
            DatasetKind::Sensor,
            DatasetKind::Ecg,
            DatasetKind::Motion,
            DatasetKind::Device,
            DatasetKind::Spectro,
            DatasetKind::Other,
        ] {
            assert_eq!(DatasetKind::parse(k.as_str()), Some(k));
            assert_eq!(format!("{k}"), k.as_str());
        }
        assert_eq!(DatasetKind::parse("nope"), None);
    }

    #[test]
    fn empty_dataset_edges() {
        let d = Dataset::new("e", DatasetKind::Other, vec![]);
        assert!(d.is_empty());
        assert_eq!(d.min_len(), 0);
        assert_eq!(d.max_len(), 0);
        assert!(d.is_equal_length());
        assert!(d.get(0).is_none());
    }
}
