//! Sliding-window subsequence extraction.
//!
//! k-Graph's graph embedding consumes *all* subsequences `T_{i,ℓ}` of every
//! series in a dataset for several lengths ℓ. [`Windows`] iterates the
//! windows of one series; [`SubseqRef`] identifies a subsequence globally
//! (series index + start offset) so graph nodes can point back to the raw
//! data they represent.

use crate::error::{Result, TsError};
use crate::series::TimeSeries;

/// Identifies a subsequence of a series within a dataset: the paper's
/// `T_{i,ℓ}` together with which `T` it came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SubseqRef {
    /// Index of the parent series in the dataset.
    pub series: usize,
    /// Start offset within the parent series.
    pub start: usize,
    /// Subsequence length ℓ.
    pub len: usize,
}

impl SubseqRef {
    /// Resolves this reference against its parent series.
    pub fn slice<'a>(&self, ts: &'a TimeSeries) -> Result<&'a [f64]> {
        ts.subsequence(self.start, self.len)
    }
}

/// Iterator over sliding windows of a slice with a configurable stride.
#[derive(Debug, Clone)]
pub struct Windows<'a> {
    data: &'a [f64],
    len: usize,
    stride: usize,
    pos: usize,
}

impl<'a> Windows<'a> {
    /// Creates a window iterator; errors when `len` or `stride` is zero or
    /// the slice is shorter than one window.
    pub fn new(data: &'a [f64], len: usize, stride: usize) -> Result<Self> {
        if len == 0 {
            return Err(TsError::InvalidParameter(
                "window length must be > 0".into(),
            ));
        }
        if stride == 0 {
            return Err(TsError::InvalidParameter(
                "window stride must be > 0".into(),
            ));
        }
        if data.len() < len {
            return Err(TsError::TooShort {
                required: len,
                actual: data.len(),
            });
        }
        Ok(Windows {
            data,
            len,
            stride,
            pos: 0,
        })
    }

    /// Number of windows this iterator will yield.
    pub fn count_windows(&self) -> usize {
        if self.data.len() < self.len {
            0
        } else {
            (self.data.len() - self.len) / self.stride + 1
        }
    }
}

impl<'a> Iterator for Windows<'a> {
    type Item = (usize, &'a [f64]);

    fn next(&mut self) -> Option<Self::Item> {
        if self.pos + self.len > self.data.len() {
            return None;
        }
        let start = self.pos;
        let out = &self.data[start..start + self.len];
        self.pos += self.stride;
        Some((start, out))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = if self.pos + self.len > self.data.len() {
            0
        } else {
            (self.data.len() - self.len - self.pos) / self.stride + 1
        };
        (remaining, Some(remaining))
    }
}

impl ExactSizeIterator for Windows<'_> {}

/// Convenience: the number of sliding windows of length `len` and stride
/// `stride` in a series of length `n` (0 when it does not fit).
pub fn window_count(n: usize, len: usize, stride: usize) -> usize {
    if len == 0 || stride == 0 || n < len {
        0
    } else {
        (n - len) / stride + 1
    }
}

/// Enumerates subsequence references for every series of a dataset slice.
///
/// Returns a flat list in dataset order — the same order the embedding code
/// projects them — so row `r` of a projection matrix corresponds to
/// `refs[r]`.
pub fn enumerate_subsequences(lens: &[usize], len: usize, stride: usize) -> Vec<SubseqRef> {
    let mut refs = Vec::new();
    for (series, &n) in lens.iter().enumerate() {
        let mut start = 0;
        while start + len <= n {
            refs.push(SubseqRef { series, start, len });
            start += stride;
        }
    }
    refs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_stride_one() {
        let data = [0.0, 1.0, 2.0, 3.0];
        let w: Vec<_> = Windows::new(&data, 2, 1).unwrap().collect();
        assert_eq!(w.len(), 3);
        assert_eq!(w[0], (0, &data[0..2]));
        assert_eq!(w[2], (2, &data[2..4]));
    }

    #[test]
    fn windows_stride_two() {
        let data = [0.0, 1.0, 2.0, 3.0, 4.0];
        let w: Vec<_> = Windows::new(&data, 2, 2).unwrap().collect();
        assert_eq!(w.len(), 2);
        assert_eq!(w[0].0, 0);
        assert_eq!(w[1].0, 2);
    }

    #[test]
    fn windows_full_length() {
        let data = [0.0, 1.0, 2.0];
        let w: Vec<_> = Windows::new(&data, 3, 1).unwrap().collect();
        assert_eq!(w.len(), 1);
        assert_eq!(w[0].1, &data[..]);
    }

    #[test]
    fn windows_errors() {
        let data = [0.0, 1.0];
        assert!(Windows::new(&data, 0, 1).is_err());
        assert!(Windows::new(&data, 1, 0).is_err());
        assert!(Windows::new(&data, 3, 1).is_err());
    }

    #[test]
    fn exact_size_and_count() {
        let data = [0.0; 10];
        let w = Windows::new(&data, 3, 2).unwrap();
        assert_eq!(w.count_windows(), 4);
        assert_eq!(w.len(), 4);
        assert_eq!(w.count(), 4);
        assert_eq!(window_count(10, 3, 2), 4);
        assert_eq!(window_count(2, 3, 1), 0);
        assert_eq!(window_count(5, 0, 1), 0);
    }

    #[test]
    fn enumerate_across_series() {
        let refs = enumerate_subsequences(&[4, 3], 2, 1);
        // series 0: starts 0,1,2 — series 1: starts 0,1
        assert_eq!(refs.len(), 5);
        assert_eq!(
            refs[0],
            SubseqRef {
                series: 0,
                start: 0,
                len: 2
            }
        );
        assert_eq!(
            refs[3],
            SubseqRef {
                series: 1,
                start: 0,
                len: 2
            }
        );
        assert_eq!(
            refs[4],
            SubseqRef {
                series: 1,
                start: 1,
                len: 2
            }
        );
    }

    #[test]
    fn subseq_ref_resolves() {
        let ts = TimeSeries::new(vec![1.0, 2.0, 3.0, 4.0]);
        let r = SubseqRef {
            series: 0,
            start: 1,
            len: 2,
        };
        assert_eq!(r.slice(&ts).unwrap(), &[2.0, 3.0]);
        let bad = SubseqRef {
            series: 0,
            start: 3,
            len: 2,
        };
        assert!(bad.slice(&ts).is_err());
    }
}
