//! Dynamic Time Warping with an optional Sakoe–Chiba band.
//!
//! Used by the k-DBA baseline (k-Means under DTW with DBA averaging) in the
//! Benchmark frame. The implementation keeps only two DP rows, so memory is
//! O(m) while time is O(n·m) (or O(n·w) with a band of width `w`).
//!
//! The DP itself lives in [`crate::kernel`]: hot callers hold a
//! [`DtwScratch`] and use [`dtw_with`] / [`dtw_path_with`] /
//! [`dba_with`], which never allocate once the scratch is warm. The
//! scratch-free entry points below allocate one scratch per call and are
//! kept for convenience and API compatibility.

use crate::error::{Result, TsError};
use crate::kernel;
pub use crate::kernel::DtwScratch;

/// Configuration for DTW.
#[derive(Debug, Clone, Copy, Default)]
pub struct DtwOptions {
    /// Sakoe–Chiba band half-width; `None` means unconstrained.
    pub window: Option<usize>,
}

/// DTW distance between two series (may have different lengths).
///
/// Returns the square root of the accumulated squared point costs, matching
/// the common "DTW with squared local distance" convention used by tslearn.
pub fn dtw(a: &[f64], b: &[f64], opts: DtwOptions) -> Result<f64> {
    kernel::dtw(a, b, opts, &mut DtwScratch::new())
}

/// [`dtw`] into caller-owned scratch — zero allocations per call once the
/// scratch is warm. Results are bit-identical to [`dtw`].
pub fn dtw_with(a: &[f64], b: &[f64], opts: DtwOptions, scratch: &mut DtwScratch) -> Result<f64> {
    kernel::dtw(a, b, opts, scratch)
}

/// DTW distance together with the optimal warping path.
///
/// The path is a list of `(i, j)` index pairs from `(0, 0)` to
/// `(n−1, m−1)`. This variant keeps the full DP matrix — O(n·m) memory —
/// and is the building block of DBA averaging.
pub fn dtw_path(a: &[f64], b: &[f64], opts: DtwOptions) -> Result<(f64, Vec<(usize, usize)>)> {
    kernel::dtw_path(a, b, opts, &mut DtwScratch::new())
}

/// [`dtw_path`] with the DP matrix living in caller-owned scratch.
pub fn dtw_path_with(
    a: &[f64],
    b: &[f64],
    opts: DtwOptions,
    scratch: &mut DtwScratch,
) -> Result<(f64, Vec<(usize, usize)>)> {
    kernel::dtw_path(a, b, opts, scratch)
}

/// One DBA (DTW Barycenter Averaging) refinement step.
///
/// Aligns every series in `members` to `center` and replaces each centre
/// point by the mean of all points warped onto it. Series may have varying
/// lengths; the centre length is preserved.
pub fn dba_step(center: &[f64], members: &[&[f64]], opts: DtwOptions) -> Result<Vec<f64>> {
    dba_step_with(center, members, opts, &mut DtwScratch::new())
}

/// [`dba_step`] with caller-owned DTW scratch.
pub fn dba_step_with(
    center: &[f64],
    members: &[&[f64]],
    opts: DtwOptions,
    scratch: &mut DtwScratch,
) -> Result<Vec<f64>> {
    if center.is_empty() {
        return Err(TsError::TooShort {
            required: 1,
            actual: 0,
        });
    }
    let mut sums = vec![0.0; center.len()];
    let mut counts = vec![0usize; center.len()];
    for series in members {
        let (_, path) = kernel::dtw_path(center, series, opts, scratch)?;
        for (ci, sj) in path {
            sums[ci] += series[sj];
            counts[ci] += 1;
        }
    }
    Ok(sums
        .iter()
        .zip(&counts)
        .zip(center)
        .map(|((&s, &c), &old)| if c > 0 { s / c as f64 } else { old })
        .collect())
}

/// Full DBA: iterates [`dba_step`] until convergence or `max_iter`.
pub fn dba(
    init: &[f64],
    members: &[&[f64]],
    opts: DtwOptions,
    max_iter: usize,
) -> Result<Vec<f64>> {
    dba_with(init, members, opts, max_iter, &mut DtwScratch::new())
}

/// [`dba`] with caller-owned DTW scratch threaded through every
/// alignment.
pub fn dba_with(
    init: &[f64],
    members: &[&[f64]],
    opts: DtwOptions,
    max_iter: usize,
    scratch: &mut DtwScratch,
) -> Result<Vec<f64>> {
    let mut center = init.to_vec();
    for _ in 0..max_iter {
        let next = dba_step_with(&center, members, opts, scratch)?;
        let delta: f64 = next
            .iter()
            .zip(&center)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        center = next;
        if delta < 1e-8 {
            break;
        }
    }
    Ok(center)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dtw_identical_is_zero() {
        let a = [1.0, 2.0, 3.0, 2.0, 1.0];
        assert!(dtw(&a, &a, DtwOptions::default()).unwrap() < 1e-12);
    }

    #[test]
    fn dtw_absorbs_time_shift() {
        // A peak shifted by 2 positions: Euclidean sees a big distance,
        // DTW warps it away almost entirely.
        let mut a = vec![0.0; 20];
        a[5] = 1.0;
        let mut b = vec![0.0; 20];
        b[7] = 1.0;
        let d_dtw = dtw(&a, &b, DtwOptions::default()).unwrap();
        let d_eu = crate::distance::euclidean(&a, &b).unwrap();
        assert!(d_dtw < d_eu);
        assert!(d_dtw < 1e-9);
    }

    #[test]
    fn dtw_different_lengths() {
        let a = [0.0, 1.0, 0.0];
        let b = [0.0, 0.0, 1.0, 1.0, 0.0, 0.0];
        let d = dtw(&a, &b, DtwOptions::default()).unwrap();
        assert!(d.is_finite());
        assert!(d >= 0.0);
    }

    #[test]
    fn dtw_band_widens_to_length_difference() {
        let a = [0.0, 1.0, 2.0, 3.0, 4.0, 5.0];
        let b = [0.0, 5.0];
        // window 0 would be infeasible; it must be widened internally.
        let d = dtw(&a, &b, DtwOptions { window: Some(0) }).unwrap();
        assert!(d.is_finite());
    }

    #[test]
    fn dtw_empty_errors() {
        assert!(dtw(&[], &[1.0], DtwOptions::default()).is_err());
        assert!(dtw_path(&[1.0], &[], DtwOptions::default()).is_err());
    }

    #[test]
    fn dtw_path_endpoints() {
        let a = [0.0, 1.0, 2.0];
        let b = [0.0, 2.0];
        let (d, path) = dtw_path(&a, &b, DtwOptions::default()).unwrap();
        assert!(d.is_finite());
        assert_eq!(path.first(), Some(&(0, 0)));
        assert_eq!(path.last(), Some(&(2, 1)));
        // Monotone non-decreasing in both indices.
        for w in path.windows(2) {
            assert!(w[1].0 >= w[0].0);
            assert!(w[1].1 >= w[0].1);
        }
    }

    #[test]
    fn dtw_path_distance_matches_dtw() {
        let a = [1.0, 3.0, 2.0, 0.0, 1.5];
        let b = [1.2, 2.9, 1.8, 0.2, 1.4];
        let d1 = dtw(&a, &b, DtwOptions::default()).unwrap();
        let (d2, _) = dtw_path(&a, &b, DtwOptions::default()).unwrap();
        assert!((d1 - d2).abs() < 1e-12);
    }

    #[test]
    fn banded_dtw_upper_bounds_unbanded() {
        let a: Vec<f64> = (0..50).map(|i| (i as f64 * 0.3).sin()).collect();
        let b: Vec<f64> = (0..50).map(|i| (i as f64 * 0.3 + 0.8).sin()).collect();
        let unb = dtw(&a, &b, DtwOptions::default()).unwrap();
        let band = dtw(&a, &b, DtwOptions { window: Some(3) }).unwrap();
        assert!(
            band >= unb - 1e-12,
            "banded {band} must be >= unbanded {unb}"
        );
    }

    #[test]
    fn dba_of_identical_members_is_member() {
        let a = [1.0, 2.0, 3.0, 2.0, 1.0];
        let members: Vec<&[f64]> = vec![&a, &a, &a];
        let c = dba(&a, &members, DtwOptions::default(), 10).unwrap();
        for (x, y) in c.iter().zip(&a) {
            assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn dba_averages_offsets() {
        let a = [0.0, 0.0, 0.0, 0.0];
        let b = [2.0, 2.0, 2.0, 2.0];
        let init = [1.0, 1.0, 1.0, 1.0];
        let members: Vec<&[f64]> = vec![&a, &b];
        let c = dba(&init, &members, DtwOptions::default(), 20).unwrap();
        for x in &c {
            assert!((x - 1.0).abs() < 1e-9, "expected 1.0, got {x}");
        }
    }

    #[test]
    fn dba_step_empty_center_errors() {
        let members: Vec<&[f64]> = vec![];
        assert!(dba_step(&[], &members, DtwOptions::default()).is_err());
    }
}
