//! Distance measures between equal-length series.
//!
//! * [`euclidean`] / [`sq_euclidean`] — the raw-based workhorse,
//! * [`znorm_euclidean`] — Euclidean distance between z-normalised copies,
//! * [`ncc`] / [`sbd`] — normalised cross-correlation and the Shape-Based
//!   Distance of k-Shape (Paparrizos & Gravano, SIGMOD 2015).
//!
//! `ncc` here is the direct O(m²) evaluation; the `clustering` crate layers
//! an FFT-backed version on top (same semantics, used where the quadratic
//! cost matters). Dynamic time warping lives in [`crate::dtw`].

use crate::error::{Result, TsError};
use crate::kernel;

/// Squared Euclidean distance. Errors on length mismatch.
///
/// Delegates to the lane-chunked [`kernel::sq_euclidean`].
pub fn sq_euclidean(a: &[f64], b: &[f64]) -> Result<f64> {
    kernel::sq_euclidean(a, b)
}

/// Euclidean (L2) distance. Errors on length mismatch.
pub fn euclidean(a: &[f64], b: &[f64]) -> Result<f64> {
    kernel::euclidean(a, b)
}

/// Euclidean distance between z-normalised copies of the inputs.
///
/// Invariant to amplitude scaling and offset; the classic "shape" metric for
/// raw-based clustering when series have been recorded at different gains.
///
/// Delegates to the fused [`kernel::znorm_euclidean`]: mean, std and the
/// distance are computed in lane-chunked passes without materialising the
/// z-normalised copies (the original two-allocation form survives as
/// [`kernel::reference::znorm_euclidean`]).
pub fn znorm_euclidean(a: &[f64], b: &[f64]) -> Result<f64> {
    kernel::znorm_euclidean(a, b)
}

/// Manhattan (L1) distance. Errors on length mismatch.
pub fn manhattan(a: &[f64], b: &[f64]) -> Result<f64> {
    if a.len() != b.len() {
        return Err(TsError::LengthMismatch {
            left: a.len(),
            right: b.len(),
        });
    }
    Ok(a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum())
}

/// Chebyshev (L∞) distance. Errors on length mismatch.
pub fn chebyshev(a: &[f64], b: &[f64]) -> Result<f64> {
    if a.len() != b.len() {
        return Err(TsError::LengthMismatch {
            left: a.len(),
            right: b.len(),
        });
    }
    Ok(a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max))
}

/// Full normalised cross-correlation sequence `NCC_c(a, b)`.
///
/// Output has length `2m − 1`; index `s` corresponds to shift
/// `s − (m − 1) ∈ [−(m−1), m−1]`. Values are normalised by `‖a‖·‖b‖`, so a
/// perfect alignment of identical (up to scale) signals yields 1. Direct
/// O(m²) evaluation.
pub fn ncc(a: &[f64], b: &[f64]) -> Result<Vec<f64>> {
    if a.len() != b.len() {
        return Err(TsError::LengthMismatch {
            left: a.len(),
            right: b.len(),
        });
    }
    let m = a.len();
    if m == 0 {
        return Err(TsError::TooShort {
            required: 1,
            actual: 0,
        });
    }
    let na: f64 = a.iter().map(|x| x * x).sum::<f64>().sqrt();
    let nb: f64 = b.iter().map(|x| x * x).sum::<f64>().sqrt();
    let denom = if na * nb <= f64::EPSILON {
        1.0
    } else {
        na * nb
    };
    let mut out = vec![0.0; 2 * m - 1];
    for (s, slot) in out.iter_mut().enumerate() {
        // shift of b relative to a: k = s − (m−1)
        let k = s as isize - (m as isize - 1);
        let mut acc = 0.0;
        for i in 0..m as isize {
            let j = i - k;
            if j >= 0 && j < m as isize {
                acc += a[i as usize] * b[j as usize];
            }
        }
        *slot = acc / denom;
    }
    Ok(out)
}

/// Maximum of the normalised cross-correlation over all shifts.
///
/// Allocation-free: delegates to [`kernel::ncc_max_with_shift`] instead of
/// materialising the `2m − 1` correlation sequence.
pub fn ncc_max(a: &[f64], b: &[f64]) -> Result<f64> {
    kernel::ncc_max_with_shift(a, b).map(|(v, _)| v)
}

/// Shape-Based Distance: `SBD(a, b) = 1 − max_s NCC_c(a, b)(s)`.
///
/// Ranges in `[0, 2]`; 0 for identical shapes (up to scale), 2 for perfectly
/// anti-correlated ones. Allocation-free ([`kernel::sbd`]).
pub fn sbd(a: &[f64], b: &[f64]) -> Result<f64> {
    kernel::sbd(a, b)
}

/// SBD together with the optimal alignment shift (b relative to a).
pub fn sbd_with_shift(a: &[f64], b: &[f64]) -> Result<(f64, isize)> {
    kernel::sbd_with_shift(a, b)
}

/// Shifts `b` by `shift` positions (zero padded), as used by k-Shape's
/// refinement step after SBD alignment.
pub fn apply_shift(b: &[f64], shift: isize) -> Vec<f64> {
    let m = b.len() as isize;
    let mut out = vec![0.0; b.len()];
    for i in 0..m {
        let j = i - shift;
        if j >= 0 && j < m {
            out[i as usize] = b[j as usize];
        }
    }
    out
}

/// Pairwise distance matrix under a caller-supplied metric.
///
/// The result is a dense, symmetric `n × n` row-major matrix with zero
/// diagonal. The metric is evaluated only for `i < j`.
pub fn pairwise_matrix<F>(rows: &[Vec<f64>], mut dist: F) -> Result<Vec<Vec<f64>>>
where
    F: FnMut(&[f64], &[f64]) -> Result<f64>,
{
    let n = rows.len();
    let mut m = vec![vec![0.0; n]; n];
    for i in 0..n {
        for j in (i + 1)..n {
            let d = dist(&rows[i], &rows[j])?;
            m[i][j] = d;
            m[j][i] = d;
        }
    }
    Ok(m)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn euclidean_basics() {
        assert_eq!(euclidean(&[0.0, 0.0], &[3.0, 4.0]).unwrap(), 5.0);
        assert_eq!(sq_euclidean(&[1.0], &[4.0]).unwrap(), 9.0);
        assert!(euclidean(&[1.0], &[1.0, 2.0]).is_err());
    }

    #[test]
    fn lp_distances() {
        assert_eq!(manhattan(&[0.0, 0.0], &[3.0, 4.0]).unwrap(), 7.0);
        assert_eq!(chebyshev(&[0.0, 0.0], &[3.0, 4.0]).unwrap(), 4.0);
        assert!(manhattan(&[1.0], &[1.0, 2.0]).is_err());
        assert!(chebyshev(&[1.0], &[1.0, 2.0]).is_err());
    }

    #[test]
    fn znorm_euclidean_scale_invariant() {
        let a = [1.0, 2.0, 3.0, 2.0, 1.0];
        let b: Vec<f64> = a.iter().map(|x| 10.0 * x + 5.0).collect();
        assert!(znorm_euclidean(&a, &b).unwrap() < 1e-9);
    }

    #[test]
    fn ncc_identity_peak_at_zero_shift() {
        let a = [1.0, 2.0, 3.0, 2.0, 1.0];
        let cc = ncc(&a, &a).unwrap();
        assert_eq!(cc.len(), 9);
        let peak = cc.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!((peak - 1.0).abs() < 1e-9);
        // Peak must sit at the centre (zero shift).
        assert!((cc[4] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn sbd_range_and_antiphase() {
        let a = [1.0, -1.0, 1.0, -1.0];
        let b: Vec<f64> = a.iter().map(|x| -x).collect();
        let d = sbd(&a, &b).unwrap();
        // Anti-correlated at zero shift, but shifting by one aligns them:
        // SBD uses the best shift, so it is small here.
        assert!((0.0..=2.0).contains(&d));
        let d_self = sbd(&a, &a).unwrap();
        assert!(d_self.abs() < 1e-9);
    }

    #[test]
    fn sbd_detects_shifted_copy() {
        let mut a = vec![0.0; 32];
        a[8] = 1.0;
        a[9] = 2.0;
        a[10] = 1.0;
        let mut b = vec![0.0; 32];
        b[20] = 1.0;
        b[21] = 2.0;
        b[22] = 1.0;
        let (d, shift) = sbd_with_shift(&a, &b).unwrap();
        assert!(d < 1e-9, "shifted copy should have SBD 0, got {d}");
        assert_eq!(shift, -12);
        // Applying the shift aligns b onto a.
        let aligned = apply_shift(&b, shift);
        assert!(euclidean(&a, &aligned).unwrap() < 1e-9);
    }

    #[test]
    fn apply_shift_pads_with_zeros() {
        let b = [1.0, 2.0, 3.0];
        assert_eq!(apply_shift(&b, 1), vec![0.0, 1.0, 2.0]);
        assert_eq!(apply_shift(&b, -1), vec![2.0, 3.0, 0.0]);
        assert_eq!(apply_shift(&b, 0), vec![1.0, 2.0, 3.0]);
        assert_eq!(apply_shift(&b, 5), vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn zero_energy_inputs_do_not_divide_by_zero() {
        let z = [0.0; 8];
        let cc = ncc(&z, &z).unwrap();
        assert!(cc.iter().all(|v| v.is_finite()));
        assert!(sbd(&z, &z).unwrap().is_finite());
    }

    #[test]
    fn pairwise_matrix_symmetric_zero_diagonal() {
        let rows = vec![vec![0.0, 0.0], vec![3.0, 4.0], vec![6.0, 8.0]];
        let m = pairwise_matrix(&rows, euclidean).unwrap();
        assert_eq!(m[0][1], 5.0);
        assert_eq!(m[1][0], 5.0);
        for (i, row) in m.iter().enumerate() {
            assert_eq!(row[i], 0.0);
        }
    }

    #[test]
    fn empty_inputs_error() {
        assert!(ncc(&[], &[]).is_err());
    }
}
