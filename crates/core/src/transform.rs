//! Series transformations: normalisation, detrending, smoothing, resampling.

use crate::error::{Result, TsError};
use crate::kernel;
use crate::stats;

/// Z-normalises a slice in place: zero mean, unit (population) standard
/// deviation. Constant slices are centred only (std would be zero).
///
/// Mean/std come from the lane-chunked [`kernel::mean_std`]; the scaling
/// multiplies by the reciprocal so the loop vectorises. Hot per-window
/// loops should prefer [`kernel::ZnormScratch`] / [`kernel::znorm_into`],
/// which skip the copy this in-place form implies.
pub fn znorm_inplace(xs: &mut [f64]) {
    let (m, s) = kernel::mean_std(xs);
    if s <= f64::EPSILON {
        for x in xs.iter_mut() {
            *x -= m;
        }
    } else {
        let inv = 1.0 / s;
        for x in xs.iter_mut() {
            *x = (*x - m) * inv;
        }
    }
}

/// Returns a z-normalised copy. See [`znorm_inplace`].
pub fn znorm(xs: &[f64]) -> Vec<f64> {
    let mut out = xs.to_vec();
    znorm_inplace(&mut out);
    out
}

/// Min-max normalisation into `[0, 1]`; constant slices map to all-zeros.
pub fn minmax_norm(xs: &[f64]) -> Vec<f64> {
    let lo = stats::min(xs);
    let hi = stats::max(xs);
    if !lo.is_finite() || !hi.is_finite() || (hi - lo).abs() <= f64::EPSILON {
        return vec![0.0; xs.len()];
    }
    xs.iter().map(|x| (x - lo) / (hi - lo)).collect()
}

/// Removes the least-squares linear trend.
pub fn detrend(xs: &[f64]) -> Vec<f64> {
    let slope = stats::trend_slope(xs);
    let m = stats::mean(xs);
    let t_mean = (xs.len().saturating_sub(1)) as f64 / 2.0;
    xs.iter()
        .enumerate()
        .map(|(i, x)| x - (m + slope * (i as f64 - t_mean)))
        .collect()
}

/// First differences: `y[i] = x[i+1] − x[i]` (length shrinks by one).
pub fn diff(xs: &[f64]) -> Vec<f64> {
    if xs.len() < 2 {
        return Vec::new();
    }
    xs.windows(2).map(|w| w[1] - w[0]).collect()
}

/// Centred moving average with window `w` (odd windows recommended).
/// Edges use a shrunken window so the output has the same length.
pub fn moving_average(xs: &[f64], w: usize) -> Result<Vec<f64>> {
    if w == 0 {
        return Err(TsError::InvalidParameter(
            "moving average window must be > 0".into(),
        ));
    }
    let n = xs.len();
    let half = w / 2;
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let lo = i.saturating_sub(half);
        let hi = (i + half + 1).min(n);
        out.push(stats::mean(&xs[lo..hi]));
    }
    Ok(out)
}

/// Exponential smoothing with factor `alpha ∈ (0, 1]`.
pub fn exp_smooth(xs: &[f64], alpha: f64) -> Result<Vec<f64>> {
    if !(0.0..=1.0).contains(&alpha) || alpha == 0.0 {
        return Err(TsError::InvalidParameter(format!(
            "alpha must be in (0, 1], got {alpha}"
        )));
    }
    let mut out = Vec::with_capacity(xs.len());
    let mut prev = match xs.first() {
        Some(&x) => x,
        None => return Ok(out),
    };
    out.push(prev);
    for &x in &xs[1..] {
        prev = alpha * x + (1.0 - alpha) * prev;
        out.push(prev);
    }
    Ok(out)
}

/// Linear-interpolation resampling to exactly `target_len` points.
///
/// This is how variable-length datasets are made commensurable before
/// feeding raw-based clustering algorithms (k-Means, k-Shape, ...).
pub fn resample(xs: &[f64], target_len: usize) -> Result<Vec<f64>> {
    if target_len == 0 {
        return Err(TsError::InvalidParameter(
            "target length must be > 0".into(),
        ));
    }
    if xs.is_empty() {
        return Err(TsError::TooShort {
            required: 1,
            actual: 0,
        });
    }
    if xs.len() == 1 {
        return Ok(vec![xs[0]; target_len]);
    }
    if target_len == 1 {
        return Ok(vec![stats::mean(xs)]);
    }
    let scale = (xs.len() - 1) as f64 / (target_len - 1) as f64;
    let mut out = Vec::with_capacity(target_len);
    for i in 0..target_len {
        let pos = i as f64 * scale;
        let lo = pos.floor() as usize;
        let frac = pos - lo as f64;
        let v = if lo + 1 < xs.len() {
            xs[lo] * (1.0 - frac) + xs[lo + 1] * frac
        } else {
            xs[xs.len() - 1]
        };
        out.push(v);
    }
    Ok(out)
}

/// Piecewise Aggregate Approximation: mean over `segments` equal chunks.
pub fn paa(xs: &[f64], segments: usize) -> Result<Vec<f64>> {
    if segments == 0 {
        return Err(TsError::InvalidParameter("PAA segments must be > 0".into()));
    }
    if xs.len() < segments {
        return Err(TsError::TooShort {
            required: segments,
            actual: xs.len(),
        });
    }
    let n = xs.len() as f64;
    let mut out = Vec::with_capacity(segments);
    for s in 0..segments {
        let lo = (s as f64 * n / segments as f64).round() as usize;
        let hi = (((s + 1) as f64) * n / segments as f64).round() as usize;
        let hi = hi.max(lo + 1).min(xs.len());
        out.push(stats::mean(&xs[lo..hi]));
    }
    Ok(out)
}

/// Adds a linear ramp `slope · i` to a copy of the slice (test/demo helper).
pub fn add_trend(xs: &[f64], slope: f64) -> Vec<f64> {
    xs.iter()
        .enumerate()
        .map(|(i, x)| x + slope * i as f64)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn znorm_properties() {
        let xs = [1.0, 5.0, 3.0, 7.0, 2.0];
        let z = znorm(&xs);
        assert!(stats::mean(&z).abs() < 1e-12);
        assert!((stats::std(&z) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn znorm_constant_centres_only() {
        let z = znorm(&[4.0, 4.0, 4.0]);
        assert_eq!(z, vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn minmax_bounds() {
        let z = minmax_norm(&[2.0, 6.0, 4.0]);
        assert_eq!(z, vec![0.0, 1.0, 0.5]);
        assert_eq!(minmax_norm(&[3.0, 3.0]), vec![0.0, 0.0]);
        assert!(minmax_norm(&[]).is_empty());
    }

    #[test]
    fn detrend_removes_line() {
        let xs: Vec<f64> = (0..50).map(|i| 2.0 * i as f64 + 5.0).collect();
        let d = detrend(&xs);
        assert!(d.iter().all(|x| x.abs() < 1e-9));
    }

    #[test]
    fn detrend_preserves_residual_shape() {
        let n = 100;
        let xs: Vec<f64> = (0..n)
            .map(|i| 0.5 * i as f64 + (i as f64 * 0.3).sin())
            .collect();
        let d = detrend(&xs);
        assert!(stats::trend_slope(&d).abs() < 1e-6);
        // The sine component must survive.
        assert!(stats::std(&d) > 0.5);
    }

    #[test]
    fn diff_shrinks() {
        assert_eq!(diff(&[1.0, 4.0, 9.0]), vec![3.0, 5.0]);
        assert!(diff(&[1.0]).is_empty());
    }

    #[test]
    fn moving_average_smooths() {
        let xs = [0.0, 10.0, 0.0, 10.0, 0.0];
        let s = moving_average(&xs, 3).unwrap();
        assert_eq!(s.len(), xs.len());
        assert!((s[2] - 20.0 / 3.0).abs() < 1e-12);
        assert!(moving_average(&xs, 0).is_err());
    }

    #[test]
    fn exp_smooth_endpoints() {
        let xs = [1.0, 2.0, 3.0];
        let s = exp_smooth(&xs, 1.0).unwrap();
        assert_eq!(s, vec![1.0, 2.0, 3.0]);
        assert!(exp_smooth(&xs, 0.0).is_err());
        assert!(exp_smooth(&xs, 1.5).is_err());
        assert!(exp_smooth(&[], 0.5).unwrap().is_empty());
    }

    #[test]
    fn resample_identity_and_endpoints() {
        let xs = [0.0, 1.0, 2.0, 3.0];
        let same = resample(&xs, 4).unwrap();
        assert_eq!(same, xs.to_vec());
        let up = resample(&xs, 7).unwrap();
        assert_eq!(up.len(), 7);
        assert!((up[0] - 0.0).abs() < 1e-12);
        assert!((up[6] - 3.0).abs() < 1e-12);
        assert!((up[3] - 1.5).abs() < 1e-12);
        let down = resample(&xs, 2).unwrap();
        assert_eq!(down, vec![0.0, 3.0]);
    }

    #[test]
    fn resample_degenerate() {
        assert_eq!(resample(&[5.0], 3).unwrap(), vec![5.0, 5.0, 5.0]);
        assert_eq!(resample(&[1.0, 3.0], 1).unwrap(), vec![2.0]);
        assert!(resample(&[], 3).is_err());
        assert!(resample(&[1.0], 0).is_err());
    }

    #[test]
    fn paa_means() {
        let xs = [1.0, 1.0, 5.0, 5.0];
        assert_eq!(paa(&xs, 2).unwrap(), vec![1.0, 5.0]);
        assert!(paa(&xs, 0).is_err());
        assert!(paa(&xs, 5).is_err());
        // Uneven split still covers all points.
        let xs6 = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let p = paa(&xs6, 4).unwrap();
        assert_eq!(p.len(), 4);
    }

    #[test]
    fn add_trend_is_linear() {
        let xs = [0.0, 0.0, 0.0];
        assert_eq!(add_trend(&xs, 2.0), vec![0.0, 2.0, 4.0]);
    }
}
