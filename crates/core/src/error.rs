//! Error type shared by the workspace's lowest layer.

use std::fmt;

/// Convenient alias used across `tscore`.
pub type Result<T> = std::result::Result<T, TsError>;

/// Errors produced by time series primitives.
///
/// The variants are deliberately coarse: callers in this workspace either
/// propagate them to the binary entry point or assert on them in tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TsError {
    /// A series (or subsequence request) was empty or shorter than required.
    TooShort {
        /// Length that was required.
        required: usize,
        /// Length that was actually available.
        actual: usize,
    },
    /// Two series were required to have matching lengths but did not.
    LengthMismatch {
        /// Length of the left operand.
        left: usize,
        /// Length of the right operand.
        right: usize,
    },
    /// A parameter was outside its valid domain (e.g. `k = 0`, negative
    /// bandwidth, window larger than the series).
    InvalidParameter(String),
    /// The labels attached to a dataset do not match the number of series.
    LabelMismatch {
        /// Number of series in the dataset.
        series: usize,
        /// Number of labels supplied.
        labels: usize,
    },
    /// Failure while parsing an on-disk dataset file.
    Parse(String),
    /// A fitted artefact was degenerate (e.g. a graph layer with no nodes,
    /// or a corrupt model file). Unlike the other variants this signals a
    /// problem on the *model* side rather than with the caller's input —
    /// servers should map it to a 5xx, not a 4xx.
    Degenerate(String),
}

impl fmt::Display for TsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TsError::TooShort { required, actual } => {
                write!(f, "series too short: required {required}, got {actual}")
            }
            TsError::LengthMismatch { left, right } => {
                write!(f, "length mismatch: {left} vs {right}")
            }
            TsError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            TsError::LabelMismatch { series, labels } => {
                write!(f, "label mismatch: {series} series but {labels} labels")
            }
            TsError::Parse(msg) => write!(f, "parse error: {msg}"),
            TsError::Degenerate(msg) => write!(f, "degenerate model: {msg}"),
        }
    }
}

impl std::error::Error for TsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = TsError::TooShort {
            required: 10,
            actual: 3,
        };
        assert!(e.to_string().contains("10"));
        assert!(e.to_string().contains("3"));
        let e = TsError::LengthMismatch { left: 4, right: 7 };
        assert!(e.to_string().contains("4"));
        let e = TsError::InvalidParameter("k must be > 0".into());
        assert!(e.to_string().contains("k must be > 0"));
        let e = TsError::LabelMismatch {
            series: 5,
            labels: 4,
        };
        assert!(e.to_string().contains("5"));
        let e = TsError::Parse("bad float".into());
        assert!(e.to_string().contains("bad float"));
        let e = TsError::Degenerate("empty graph".into());
        assert!(e.to_string().contains("empty graph"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&TsError::Parse("x".into()));
    }
}
