//! The [`TimeSeries`] container.

use crate::error::{Result, TsError};
use crate::stats;
use std::fmt;
use std::ops::Index;

/// A univariate time series: an ordered sequence of real-valued points.
///
/// This mirrors the paper's definition of a series `T ∈ R^n` where `T_i`
/// denotes the i-th point. The container owns its values; subsequences are
/// borrowed slices (see [`crate::windows`]).
#[derive(Clone, PartialEq)]
pub struct TimeSeries {
    values: Vec<f64>,
    name: Option<String>,
}

impl TimeSeries {
    /// Creates a series from raw values.
    pub fn new(values: Vec<f64>) -> Self {
        TimeSeries { values, name: None }
    }

    /// Creates a named series (names show up in plots and reports).
    pub fn named(name: impl Into<String>, values: Vec<f64>) -> Self {
        TimeSeries {
            values,
            name: Some(name.into()),
        }
    }

    /// Builds a series by sampling `f` at `0..n`.
    pub fn from_fn(n: usize, mut f: impl FnMut(usize) -> f64) -> Self {
        TimeSeries::new((0..n).map(&mut f).collect())
    }

    /// The number of points.
    #[inline]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the series holds no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Read-only access to the underlying values.
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Mutable access to the underlying values.
    #[inline]
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// Consumes the series and returns its values.
    pub fn into_values(self) -> Vec<f64> {
        self.values
    }

    /// Optional display name.
    pub fn name(&self) -> Option<&str> {
        self.name.as_deref()
    }

    /// Sets the display name in place.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = Some(name.into());
    }

    /// Borrowed subsequence `T[start .. start + len]`, the paper's `T_{i,ℓ}`.
    ///
    /// Returns an error when the requested range runs past the end.
    pub fn subsequence(&self, start: usize, len: usize) -> Result<&[f64]> {
        let end = start.checked_add(len).ok_or_else(|| {
            TsError::InvalidParameter(format!("subsequence range overflows: {start}+{len}"))
        })?;
        if end > self.values.len() {
            return Err(TsError::TooShort {
                required: end,
                actual: self.values.len(),
            });
        }
        Ok(&self.values[start..end])
    }

    /// Arithmetic mean of the points (0.0 for the empty series).
    pub fn mean(&self) -> f64 {
        stats::mean(&self.values)
    }

    /// Population standard deviation of the points.
    pub fn std(&self) -> f64 {
        stats::std(&self.values)
    }

    /// Smallest value (NaN-free assumption; returns +inf for empty).
    pub fn min(&self) -> f64 {
        stats::min(&self.values)
    }

    /// Largest value (NaN-free assumption; returns -inf for empty).
    pub fn max(&self) -> f64 {
        stats::max(&self.values)
    }

    /// Iterator over points.
    pub fn iter(&self) -> std::slice::Iter<'_, f64> {
        self.values.iter()
    }
}

impl Index<usize> for TimeSeries {
    type Output = f64;

    #[inline]
    fn index(&self, i: usize) -> &f64 {
        &self.values[i]
    }
}

impl From<Vec<f64>> for TimeSeries {
    fn from(values: Vec<f64>) -> Self {
        TimeSeries::new(values)
    }
}

impl From<&[f64]> for TimeSeries {
    fn from(values: &[f64]) -> Self {
        TimeSeries::new(values.to_vec())
    }
}

impl fmt::Debug for TimeSeries {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Long series would flood test output; show a prefix only.
        let shown: Vec<f64> = self.values.iter().take(8).copied().collect();
        write!(
            f,
            "TimeSeries(name={:?}, len={}, head={:?}{})",
            self.name,
            self.values.len(),
            shown,
            if self.values.len() > 8 { ", …" } else { "" }
        )
    }
}

impl<'a> IntoIterator for &'a TimeSeries {
    type Item = &'a f64;
    type IntoIter = std::slice::Iter<'a, f64>;

    fn into_iter(self) -> Self::IntoIter {
        self.values.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let ts = TimeSeries::new(vec![1.0, 2.0, 3.0]);
        assert_eq!(ts.len(), 3);
        assert!(!ts.is_empty());
        assert_eq!(ts[1], 2.0);
        assert_eq!(ts.values(), &[1.0, 2.0, 3.0]);
        assert_eq!(ts.name(), None);
    }

    #[test]
    fn named_and_rename() {
        let mut ts = TimeSeries::named("ecg-1", vec![0.0; 4]);
        assert_eq!(ts.name(), Some("ecg-1"));
        ts.set_name("ecg-2");
        assert_eq!(ts.name(), Some("ecg-2"));
    }

    #[test]
    fn from_fn_samples_function() {
        let ts = TimeSeries::from_fn(5, |i| i as f64 * 2.0);
        assert_eq!(ts.values(), &[0.0, 2.0, 4.0, 6.0, 8.0]);
    }

    #[test]
    fn subsequence_in_bounds() {
        let ts = TimeSeries::new(vec![0.0, 1.0, 2.0, 3.0, 4.0]);
        assert_eq!(ts.subsequence(1, 3).unwrap(), &[1.0, 2.0, 3.0]);
        assert_eq!(ts.subsequence(0, 5).unwrap().len(), 5);
    }

    #[test]
    fn subsequence_out_of_bounds_errors() {
        let ts = TimeSeries::new(vec![0.0, 1.0, 2.0]);
        assert!(matches!(
            ts.subsequence(2, 2),
            Err(TsError::TooShort { .. })
        ));
        assert!(ts.subsequence(usize::MAX, 2).is_err());
    }

    #[test]
    fn summary_stats() {
        let ts = TimeSeries::new(vec![1.0, 2.0, 3.0, 4.0]);
        assert!((ts.mean() - 2.5).abs() < 1e-12);
        assert!((ts.std() - (1.25f64).sqrt()).abs() < 1e-12);
        assert_eq!(ts.min(), 1.0);
        assert_eq!(ts.max(), 4.0);
    }

    #[test]
    fn conversions() {
        let ts: TimeSeries = vec![1.0, 2.0].into();
        assert_eq!(ts.len(), 2);
        let ts2: TimeSeries = ts.values().into();
        assert_eq!(ts2.values(), ts.values());
        assert_eq!(ts.into_values(), vec![1.0, 2.0]);
    }

    #[test]
    fn debug_truncates() {
        let ts = TimeSeries::new((0..100).map(|i| i as f64).collect());
        let s = format!("{ts:?}");
        assert!(s.contains("len=100"));
        assert!(s.contains("…"));
    }

    #[test]
    fn iteration() {
        let ts = TimeSeries::new(vec![1.0, 2.0, 3.0]);
        let sum: f64 = ts.iter().sum();
        assert_eq!(sum, 6.0);
        let sum2: f64 = (&ts).into_iter().sum();
        assert_eq!(sum2, 6.0);
    }
}
