//! # tscore — time series primitives
//!
//! Foundation crate for the Graphint / k-Graph reproduction. It provides:
//!
//! * [`TimeSeries`] and [`Dataset`] containers with class labels,
//! * descriptive statistics ([`stats`]),
//! * transformations: z-normalisation, detrending, smoothing, resampling,
//!   piecewise aggregate approximation ([`transform`]),
//! * sliding-window subsequence extraction ([`windows`]),
//! * distance measures: Euclidean, z-normalised Euclidean, shape-based
//!   distance (SBD, the k-Shape distance) ([`distance`]) and dynamic time
//!   warping with a Sakoe–Chiba band ([`dtw`]),
//! * the SIMD-friendly, allocation-free kernels behind them ([`kernel`]):
//!   fused lane-chunked loops plus [`kernel::DtwScratch`] /
//!   [`kernel::ZnormScratch`] so hot callers never allocate per pair.
//!
//! The crate is dependency-free so that every other crate in the workspace
//! can build on it without pulling anything else in.

pub mod dataset;
pub mod distance;
pub mod dtw;
pub mod error;
pub mod kernel;
pub mod series;
pub mod stats;
pub mod transform;
pub mod windows;

pub use dataset::{Dataset, DatasetKind};
pub use error::{Result, TsError};
pub use series::TimeSeries;
pub use windows::{SubseqRef, Windows};
