//! SIMD-friendly, allocation-free distance kernels.
//!
//! Every kernel here is a fused, zero-allocation rewrite of a scalar
//! function elsewhere in this crate, structured as fixed-width lane loops
//! over [`chunks_exact`](slice::chunks_exact) so the autovectoriser turns
//! them into SIMD (the workspace has no external SIMD crates). The lane
//! accumulators also break the floating-point dependency chain, so even
//! without vector units the reductions run several adds per cycle instead
//! of one.
//!
//! * [`sum`] / [`sum_sq_dev`] / [`mean_std`] — lane-parallel reductions,
//! * [`dot`] / [`sq_euclidean`] — lane-parallel pairwise reductions,
//! * [`znorm_euclidean`] — mean/std/distance fused into two passes per
//!   input, no intermediate z-normalised copies,
//! * [`znorm_into`] + [`ZnormScratch`] — z-normalisation into caller-owned
//!   storage (the per-window hot path of embedding and serving),
//! * [`sbd`] / [`ncc_max_with_shift`] — shape-based distance as sliding
//!   lane dots over contiguous slices, no `2m−1` output buffer,
//! * [`dtw`] + [`DtwScratch`] — banded DTW with reusable DP rows, a
//!   hoisted `a[i−1]`, vectorisable cost/min passes and O(1) band-edge
//!   sentinels instead of an O(m) row fill.
//!
//! The original scalar implementations are kept as reference
//! implementations in [`reference`]; property tests pin every kernel to
//! its reference (bit-identical for DTW, ≤ 1e-12 relative elsewhere).

use crate::error::{Result, TsError};

/// Accumulator width of the chunked loops. Eight f64 lanes map onto one
/// AVX-512 register, two AVX2 registers or four SSE2 registers — all
/// shapes LLVM's autovectoriser handles without a remainder inside the
/// loop body.
const LANES: usize = 8;

/// Lane-parallel sum.
#[inline]
pub fn sum(xs: &[f64]) -> f64 {
    let mut acc = [0.0f64; LANES];
    let mut chunks = xs.chunks_exact(LANES);
    for c in chunks.by_ref() {
        for (a, &x) in acc.iter_mut().zip(c) {
            *a += x;
        }
    }
    let mut tail = 0.0;
    for &x in chunks.remainder() {
        tail += x;
    }
    acc.iter().sum::<f64>() + tail
}

/// Lane-parallel `Σ (x − m)²`.
#[inline]
pub fn sum_sq_dev(xs: &[f64], m: f64) -> f64 {
    let mut acc = [0.0f64; LANES];
    let mut chunks = xs.chunks_exact(LANES);
    for c in chunks.by_ref() {
        for (a, &x) in acc.iter_mut().zip(c) {
            let d = x - m;
            *a += d * d;
        }
    }
    let mut tail = 0.0;
    for &x in chunks.remainder() {
        let d = x - m;
        tail += d * d;
    }
    acc.iter().sum::<f64>() + tail
}

/// Mean and population standard deviation in two lane-parallel passes.
/// Empty slices yield `(0.0, 0.0)`, matching [`crate::stats`].
///
/// Two passes (not the single-pass `E[x²] − E[x]²` form) so the variance
/// never cancels catastrophically for series with large offsets.
#[inline]
pub fn mean_std(xs: &[f64]) -> (f64, f64) {
    if xs.is_empty() {
        return (0.0, 0.0);
    }
    let n = xs.len() as f64;
    let m = sum(xs) / n;
    let var = sum_sq_dev(xs, m) / n;
    (m, var.sqrt())
}

/// Lane-parallel dot product over `min(a.len(), b.len())` elements.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len().min(b.len());
    let (a, b) = (&a[..n], &b[..n]);
    let mut acc = [0.0f64; LANES];
    let mut ca = a.chunks_exact(LANES);
    let mut cb = b.chunks_exact(LANES);
    for (xa, xb) in ca.by_ref().zip(cb.by_ref()) {
        for l in 0..LANES {
            acc[l] += xa[l] * xb[l];
        }
    }
    let mut tail = 0.0;
    for (&x, &y) in ca.remainder().iter().zip(cb.remainder()) {
        tail += x * y;
    }
    acc.iter().sum::<f64>() + tail
}

/// Lane-parallel squared Euclidean distance. Errors on length mismatch.
#[inline]
pub fn sq_euclidean(a: &[f64], b: &[f64]) -> Result<f64> {
    if a.len() != b.len() {
        return Err(TsError::LengthMismatch {
            left: a.len(),
            right: b.len(),
        });
    }
    let mut acc = [0.0f64; LANES];
    let mut ca = a.chunks_exact(LANES);
    let mut cb = b.chunks_exact(LANES);
    for (xa, xb) in ca.by_ref().zip(cb.by_ref()) {
        for l in 0..LANES {
            let d = xa[l] - xb[l];
            acc[l] += d * d;
        }
    }
    let mut tail = 0.0;
    for (&x, &y) in ca.remainder().iter().zip(cb.remainder()) {
        let d = x - y;
        tail += d * d;
    }
    Ok(acc.iter().sum::<f64>() + tail)
}

/// Lane-parallel Euclidean distance. Errors on length mismatch.
#[inline]
pub fn euclidean(a: &[f64], b: &[f64]) -> Result<f64> {
    sq_euclidean(a, b).map(f64::sqrt)
}

/// Euclidean distance between z-normalised views of the inputs, fused
/// into two reduction passes per input plus one distance pass — no
/// z-normalised copies are materialised.
///
/// Constant inputs (std ≤ ε) are centred only, matching
/// [`crate::transform::znorm`].
pub fn znorm_euclidean(a: &[f64], b: &[f64]) -> Result<f64> {
    if a.len() != b.len() {
        return Err(TsError::LengthMismatch {
            left: a.len(),
            right: b.len(),
        });
    }
    let (ma, sa) = mean_std(a);
    let (mb, sb) = mean_std(b);
    let ia = if sa <= f64::EPSILON { 1.0 } else { 1.0 / sa };
    let ib = if sb <= f64::EPSILON { 1.0 } else { 1.0 / sb };
    let mut acc = [0.0f64; LANES];
    let mut ca = a.chunks_exact(LANES);
    let mut cb = b.chunks_exact(LANES);
    for (xa, xb) in ca.by_ref().zip(cb.by_ref()) {
        for l in 0..LANES {
            let d = (xa[l] - ma) * ia - (xb[l] - mb) * ib;
            acc[l] += d * d;
        }
    }
    let mut tail = 0.0;
    for (&x, &y) in ca.remainder().iter().zip(cb.remainder()) {
        let d = (x - ma) * ia - (y - mb) * ib;
        tail += d * d;
    }
    Ok((acc.iter().sum::<f64>() + tail).sqrt())
}

/// Z-normalises `src` into `dst` without touching the heap.
///
/// Panics if the lengths differ. Constant inputs are centred only.
pub fn znorm_into(src: &[f64], dst: &mut [f64]) {
    assert_eq!(src.len(), dst.len(), "znorm_into length mismatch");
    let (m, s) = mean_std(src);
    if s <= f64::EPSILON {
        for (d, &x) in dst.iter_mut().zip(src) {
            *d = x - m;
        }
    } else {
        let inv = 1.0 / s;
        for (d, &x) in dst.iter_mut().zip(src) {
            *d = (x - m) * inv;
        }
    }
}

/// Reusable buffer for z-normalised views of transient windows.
///
/// Hot loops that previously called [`crate::transform::znorm`] once per
/// window (one heap allocation each) hold one scratch and call
/// [`ZnormScratch::znormed`] instead: the buffer is grown once and reused
/// for every subsequent window.
#[derive(Debug, Default, Clone)]
pub struct ZnormScratch {
    buf: Vec<f64>,
}

impl ZnormScratch {
    /// Creates an empty scratch (first use sizes it).
    pub fn new() -> Self {
        Self::default()
    }

    /// Z-normalises `xs` into the internal buffer and returns it.
    pub fn znormed(&mut self, xs: &[f64]) -> &[f64] {
        self.buf.clear();
        self.buf.resize(xs.len(), 0.0);
        znorm_into(xs, &mut self.buf);
        &self.buf
    }
}

/// Maximum normalised cross-correlation over all shifts, plus the
/// maximising shift of `b` relative to `a` — without materialising the
/// `2m − 1` correlation sequence.
///
/// Shift order and tie-breaking match [`crate::distance::sbd_with_shift`]
/// (first maximum wins, shifts scanned ascending from `−(m−1)`). Each
/// shift's correlation is a lane dot over two contiguous slices.
///
/// Errors when the inputs are empty or differ in length.
pub fn ncc_max_with_shift(a: &[f64], b: &[f64]) -> Result<(f64, isize)> {
    if a.len() != b.len() {
        return Err(TsError::LengthMismatch {
            left: a.len(),
            right: b.len(),
        });
    }
    let m = a.len();
    if m == 0 {
        return Err(TsError::TooShort {
            required: 1,
            actual: 0,
        });
    }
    let na = sum_sq_dev(a, 0.0).sqrt();
    let nb = sum_sq_dev(b, 0.0).sqrt();
    let denom = if na * nb <= f64::EPSILON {
        1.0
    } else {
        na * nb
    };
    let mut best = f64::NEG_INFINITY;
    let mut best_shift = -(m as isize - 1);
    for s in 0..(2 * m - 1) {
        let k = s as isize - (m as isize - 1);
        // a[i] · b[i − k] over the valid overlap — contiguous slices.
        let cc = if k >= 0 {
            let k = k as usize;
            dot(&a[k..], &b[..m - k])
        } else {
            let k = (-k) as usize;
            dot(&a[..m - k], &b[k..])
        };
        if cc > best {
            best = cc;
            best_shift = s as isize - (m as isize - 1);
        }
    }
    Ok((best / denom, best_shift))
}

/// Shape-Based Distance `1 − max_s NCC_c(a, b)(s)`, allocation-free.
pub fn sbd(a: &[f64], b: &[f64]) -> Result<f64> {
    ncc_max_with_shift(a, b).map(|(ncc, _)| 1.0 - ncc)
}

/// SBD together with the optimal alignment shift (b relative to a).
pub fn sbd_with_shift(a: &[f64], b: &[f64]) -> Result<(f64, isize)> {
    ncc_max_with_shift(a, b).map(|(ncc, shift)| (1.0 - ncc, shift))
}

/// Reusable DTW working storage: two DP rows plus the per-row cost and
/// min buffers of the banded kernel, and the full DP matrix used by the
/// path variant. Hold one per thread/fit and feed it to every call; the
/// buffers grow to the largest series seen and are then reused.
#[derive(Debug, Default, Clone)]
pub struct DtwScratch {
    prev: Vec<f64>,
    curr: Vec<f64>,
    cost: Vec<f64>,
    row_min: Vec<f64>,
    /// Full DP matrix, used only by [`dtw_path`].
    dp: Vec<f64>,
}

impl DtwScratch {
    /// Creates an empty scratch (first use sizes it).
    pub fn new() -> Self {
        Self::default()
    }
}

/// Banded DTW distance into caller-owned scratch. Signature and results
/// are identical to [`crate::dtw::dtw`] (bit-for-bit: the DP recurrence
/// performs the same operations in the same per-cell order), but:
///
/// * the two DP rows live in `scratch` — zero allocations per call once
///   the scratch is warm,
/// * `a[i − 1]` is hoisted out of the band loop,
/// * the squared-cost and `min(prev[j], prev[j−1])` passes are separate
///   branch-free slice loops the autovectoriser handles, leaving only the
///   carried `curr[j−1]` recurrence scalar,
/// * band-edge cells are invalidated with two O(1) sentinel writes per
///   row instead of an O(m) `fill`.
pub fn dtw(
    a: &[f64],
    b: &[f64],
    opts: crate::dtw::DtwOptions,
    scratch: &mut DtwScratch,
) -> Result<f64> {
    if a.is_empty() || b.is_empty() {
        return Err(TsError::TooShort {
            required: 1,
            actual: a.len().min(b.len()),
        });
    }
    let n = a.len();
    let m = b.len();
    let w = match opts.window {
        Some(w) => w.max(n.abs_diff(m)),
        None => n.max(m),
    };
    let inf = f64::INFINITY;
    scratch.prev.clear();
    scratch.prev.resize(m + 1, inf);
    scratch.curr.clear();
    scratch.curr.resize(m + 1, inf);
    // Band width never exceeds m cells.
    scratch.cost.clear();
    scratch.cost.resize(m, 0.0);
    scratch.row_min.clear();
    scratch.row_min.resize(m, inf);
    scratch.prev[0] = 0.0;

    for i in 1..=n {
        let lo = i.saturating_sub(w).max(1);
        let hi = (i + w).min(m);
        if lo > hi {
            return Err(TsError::InvalidParameter(format!(
                "DTW band too narrow: window {w} for lengths {n} x {m}"
            )));
        }
        let width = hi - lo + 1;
        let ai = a[i - 1];

        // Pass 1: cost[t] = (a[i−1] − b[lo−1+t])² — branch-free, vectorises.
        for (c, &bv) in scratch.cost[..width].iter_mut().zip(&b[lo - 1..hi]) {
            let d = ai - bv;
            *c = d * d;
        }
        // Pass 2: row_min[t] = min(prev[lo+t], prev[lo+t−1]) — vectorises.
        {
            let p_hi = &scratch.prev[lo..=hi];
            let p_lo = &scratch.prev[lo - 1..hi];
            for ((rm, &x), &y) in scratch.row_min[..width].iter_mut().zip(p_hi).zip(p_lo) {
                *rm = if x < y { x } else { y };
            }
        }
        // Pass 3: the carried recurrence, with curr[j−1] kept in a register.
        {
            let curr = &mut scratch.curr[lo..=hi];
            let mut left = inf; // curr[lo − 1]: out of band.
            for ((c, &cost), &rm) in curr
                .iter_mut()
                .zip(&scratch.cost[..width])
                .zip(&scratch.row_min[..width])
            {
                let best = if rm < left { rm } else { left };
                let v = cost + best;
                *c = v;
                left = v;
            }
        }
        // The band moves by at most one cell per row, so invalidating the
        // two cells just outside it keeps every future read correct
        // without refilling the row.
        scratch.curr[lo - 1] = inf;
        if hi < m {
            scratch.curr[hi + 1] = inf;
        }
        std::mem::swap(&mut scratch.prev, &mut scratch.curr);
    }
    Ok(scratch.prev[m].sqrt())
}

/// DTW distance plus the optimal warping path, with the full DP matrix
/// living in `scratch`. Semantics match [`crate::dtw::dtw_path`].
pub fn dtw_path(
    a: &[f64],
    b: &[f64],
    opts: crate::dtw::DtwOptions,
    scratch: &mut DtwScratch,
) -> Result<(f64, Vec<(usize, usize)>)> {
    if a.is_empty() || b.is_empty() {
        return Err(TsError::TooShort {
            required: 1,
            actual: a.len().min(b.len()),
        });
    }
    let n = a.len();
    let m = b.len();
    let w = match opts.window {
        Some(w) => w.max(n.abs_diff(m)),
        None => n.max(m),
    };
    let inf = f64::INFINITY;
    scratch.dp.clear();
    scratch.dp.resize((n + 1) * (m + 1), inf);
    let dp = &mut scratch.dp;
    let idx = |i: usize, j: usize| i * (m + 1) + j;
    dp[idx(0, 0)] = 0.0;
    for i in 1..=n {
        let lo = i.saturating_sub(w).max(1);
        let hi = (i + w).min(m);
        let ai = a[i - 1];
        for j in lo..=hi {
            let d = ai - b[j - 1];
            let cost = d * d;
            let best = dp[idx(i - 1, j)]
                .min(dp[idx(i, j - 1)])
                .min(dp[idx(i - 1, j - 1)]);
            dp[idx(i, j)] = cost + best;
        }
    }
    let total = dp[idx(n, m)];
    if !total.is_finite() {
        return Err(TsError::InvalidParameter(format!(
            "DTW band too narrow: window {w} for lengths {n} x {m}"
        )));
    }
    let mut path = Vec::with_capacity(n + m);
    let (mut i, mut j) = (n, m);
    while i > 0 && j > 0 {
        path.push((i - 1, j - 1));
        let diag = dp[idx(i - 1, j - 1)];
        let up = dp[idx(i - 1, j)];
        let left = dp[idx(i, j - 1)];
        if diag <= up && diag <= left {
            i -= 1;
            j -= 1;
        } else if up <= left {
            i -= 1;
        } else {
            j -= 1;
        }
    }
    path.reverse();
    Ok((total.sqrt(), path))
}

/// The original scalar implementations, kept verbatim as references the
/// kernels are pinned against (property tests, micro-benches).
pub mod reference {
    use crate::error::{Result, TsError};
    use crate::stats;

    /// Scalar z-normalised copy (one allocation, sequential reductions).
    pub fn znorm(xs: &[f64]) -> Vec<f64> {
        let mut out = xs.to_vec();
        let m = stats::mean(&out);
        let s = stats::std(&out);
        if s <= f64::EPSILON {
            for x in out.iter_mut() {
                *x -= m;
            }
        } else {
            for x in out.iter_mut() {
                *x = (*x - m) / s;
            }
        }
        out
    }

    /// Scalar Euclidean distance.
    pub fn euclidean(a: &[f64], b: &[f64]) -> Result<f64> {
        if a.len() != b.len() {
            return Err(TsError::LengthMismatch {
                left: a.len(),
                right: b.len(),
            });
        }
        Ok(a.iter()
            .zip(b)
            .map(|(x, y)| (x - y) * (x - y))
            .sum::<f64>()
            .sqrt())
    }

    /// Scalar z-normalised Euclidean: two z-normalised copies then the
    /// plain distance (two allocations per call).
    pub fn znorm_euclidean(a: &[f64], b: &[f64]) -> Result<f64> {
        if a.len() != b.len() {
            return Err(TsError::LengthMismatch {
                left: a.len(),
                right: b.len(),
            });
        }
        euclidean(&znorm(a), &znorm(b))
    }

    /// Scalar direct NCC (branchy O(m²) inner loop, `2m−1` output buffer).
    pub fn ncc(a: &[f64], b: &[f64]) -> Result<Vec<f64>> {
        if a.len() != b.len() {
            return Err(TsError::LengthMismatch {
                left: a.len(),
                right: b.len(),
            });
        }
        let m = a.len();
        if m == 0 {
            return Err(TsError::TooShort {
                required: 1,
                actual: 0,
            });
        }
        let na: f64 = a.iter().map(|x| x * x).sum::<f64>().sqrt();
        let nb: f64 = b.iter().map(|x| x * x).sum::<f64>().sqrt();
        let denom = if na * nb <= f64::EPSILON {
            1.0
        } else {
            na * nb
        };
        let mut out = vec![0.0; 2 * m - 1];
        for (s, slot) in out.iter_mut().enumerate() {
            let k = s as isize - (m as isize - 1);
            let mut acc = 0.0;
            for i in 0..m as isize {
                let j = i - k;
                if j >= 0 && j < m as isize {
                    acc += a[i as usize] * b[j as usize];
                }
            }
            *slot = acc / denom;
        }
        Ok(out)
    }

    /// Scalar SBD via the full correlation sequence.
    pub fn sbd(a: &[f64], b: &[f64]) -> Result<f64> {
        Ok(1.0 - ncc(a, b)?.into_iter().fold(f64::NEG_INFINITY, f64::max))
    }

    /// Scalar banded DTW: two fresh DP rows per call, `a[i−1]` re-read in
    /// the band loop, full O(m) row fill per row.
    pub fn dtw(a: &[f64], b: &[f64], opts: crate::dtw::DtwOptions) -> Result<f64> {
        if a.is_empty() || b.is_empty() {
            return Err(TsError::TooShort {
                required: 1,
                actual: a.len().min(b.len()),
            });
        }
        let n = a.len();
        let m = b.len();
        let w = match opts.window {
            Some(w) => w.max(n.abs_diff(m)),
            None => n.max(m),
        };
        let inf = f64::INFINITY;
        let mut prev = vec![inf; m + 1];
        let mut curr = vec![inf; m + 1];
        prev[0] = 0.0;
        for i in 1..=n {
            curr.fill(inf);
            let lo = i.saturating_sub(w).max(1);
            let hi = (i + w).min(m);
            if lo > hi {
                return Err(TsError::InvalidParameter(format!(
                    "DTW band too narrow: window {w} for lengths {n} x {m}"
                )));
            }
            for j in lo..=hi {
                let cost = (a[i - 1] - b[j - 1]) * (a[i - 1] - b[j - 1]);
                let best = prev[j].min(curr[j - 1]).min(prev[j - 1]);
                curr[j] = cost + best;
            }
            std::mem::swap(&mut prev, &mut curr);
        }
        Ok(prev[m].sqrt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dtw::DtwOptions;

    fn wave(n: usize, phase: f64) -> Vec<f64> {
        (0..n)
            .map(|i| (i as f64 * 0.17 + phase).sin() + 0.2)
            .collect()
    }

    #[test]
    fn reductions_match_sequential() {
        for n in 0..20 {
            let xs = wave(n, 0.3);
            let seq: f64 = xs.iter().sum();
            assert!((sum(&xs) - seq).abs() <= 1e-12 * seq.abs().max(1.0));
            let (m, s) = mean_std(&xs);
            assert!((m - crate::stats::mean(&xs)).abs() < 1e-12);
            assert!((s - crate::stats::std(&xs)).abs() < 1e-12);
        }
    }

    #[test]
    fn znorm_euclidean_matches_reference_all_remainders() {
        for n in 1..=33 {
            let a = wave(n, 0.0);
            let b = wave(n, 0.9);
            let fast = znorm_euclidean(&a, &b).unwrap();
            let slow = reference::znorm_euclidean(&a, &b).unwrap();
            assert!(
                (fast - slow).abs() <= 1e-12 * slow.abs().max(1.0),
                "n={n}: {fast} vs {slow}"
            );
        }
    }

    #[test]
    fn znorm_euclidean_constant_inputs() {
        let a = [3.0; 16];
        let b = wave(16, 0.5);
        let fast = znorm_euclidean(&a, &b).unwrap();
        let slow = reference::znorm_euclidean(&a, &b).unwrap();
        assert!((fast - slow).abs() < 1e-12);
        assert!(znorm_euclidean(&a, &[1.0]).is_err());
    }

    #[test]
    fn znorm_into_matches_reference() {
        for n in 1..=17 {
            let xs = wave(n, 0.2);
            let mut out = vec![0.0; n];
            znorm_into(&xs, &mut out);
            let slow = reference::znorm(&xs);
            for (f, s) in out.iter().zip(&slow) {
                assert!((f - s).abs() < 1e-12, "n={n}");
            }
        }
    }

    #[test]
    fn znorm_scratch_reuses_buffer() {
        let mut scratch = ZnormScratch::new();
        let xs = wave(32, 0.0);
        let first = scratch.znormed(&xs).to_vec();
        let cap = scratch.buf.capacity();
        // Smaller input: no regrowth.
        let _ = scratch.znormed(&xs[..8]);
        assert_eq!(scratch.buf.capacity(), cap);
        let again = scratch.znormed(&xs);
        assert_eq!(first, again);
    }

    #[test]
    fn sbd_matches_reference() {
        for n in 1..=20 {
            let a = wave(n, 0.0);
            let b = wave(n, 1.1);
            let fast = sbd(&a, &b).unwrap();
            let slow = reference::sbd(&a, &b).unwrap();
            assert!(
                (fast - slow).abs() <= 1e-9 * slow.abs().max(1.0),
                "n={n}: {fast} vs {slow}"
            );
        }
        assert!(sbd(&[], &[]).is_err());
        assert!(sbd(&[1.0], &[1.0, 2.0]).is_err());
    }

    #[test]
    fn sbd_shift_matches_reference() {
        let mut a = vec![0.0; 32];
        a[5] = 1.0;
        a[6] = 2.0;
        let mut b = vec![0.0; 32];
        b[11] = 1.0;
        b[12] = 2.0;
        let (d, s) = sbd_with_shift(&a, &b).unwrap();
        let (dr, sr) = crate::distance::sbd_with_shift(&a, &b).unwrap();
        assert!((d - dr).abs() < 1e-12);
        assert_eq!(s, sr);
    }

    #[test]
    fn sbd_zero_energy_no_divide_by_zero() {
        let z = [0.0; 8];
        assert!(sbd(&z, &z).unwrap().is_finite());
    }

    #[test]
    fn dtw_bit_identical_to_reference() {
        let mut scratch = DtwScratch::new();
        for n in 1..=24 {
            let a = wave(n, 0.0);
            let b = wave(n, 0.8);
            for window in [None, Some(0), Some(2), Some(n / 3)] {
                let opts = DtwOptions { window };
                let fast = dtw(&a, &b, opts, &mut scratch).unwrap();
                let slow = reference::dtw(&a, &b, opts).unwrap();
                assert!(fast == slow, "n={n} window={window:?}: {fast} vs {slow}");
            }
        }
    }

    #[test]
    fn dtw_different_lengths_and_errors() {
        let mut scratch = DtwScratch::new();
        let a = wave(13, 0.0);
        let b = wave(29, 0.4);
        let opts = DtwOptions { window: Some(3) };
        let fast = dtw(&a, &b, opts, &mut scratch).unwrap();
        let slow = reference::dtw(&a, &b, opts).unwrap();
        assert_eq!(fast, slow);
        assert!(dtw(&[], &[1.0], DtwOptions::default(), &mut scratch).is_err());
    }

    #[test]
    fn dtw_scratch_reused_across_shrinking_calls() {
        // A long call grows the buffers; a short call after it must still
        // be correct (stale cells past the band must not leak in).
        let mut scratch = DtwScratch::new();
        let long_a = wave(64, 0.0);
        let long_b = wave(64, 0.5);
        let opts = DtwOptions { window: Some(5) };
        dtw(&long_a, &long_b, opts, &mut scratch).unwrap();
        let a = wave(9, 0.1);
        let b = wave(9, 0.7);
        let fast = dtw(&a, &b, opts, &mut scratch).unwrap();
        assert_eq!(fast, reference::dtw(&a, &b, opts).unwrap());
    }

    #[test]
    fn dtw_path_matches_plain_dtw() {
        let mut scratch = DtwScratch::new();
        let a = wave(20, 0.0);
        let b = wave(20, 0.6);
        let opts = DtwOptions { window: Some(4) };
        let (d, path) = dtw_path(&a, &b, opts, &mut scratch).unwrap();
        assert_eq!(d, dtw(&a, &b, opts, &mut scratch).unwrap());
        assert_eq!(path.first(), Some(&(0, 0)));
        assert_eq!(path.last(), Some(&(19, 19)));
    }

    #[test]
    fn dot_and_sq_euclidean_match_sequential() {
        for n in 0..=19 {
            let a = wave(n, 0.0);
            let b = wave(n, 0.3);
            let d_seq: f64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
            assert!((dot(&a, &b) - d_seq).abs() <= 1e-12 * d_seq.abs().max(1.0));
            let e_seq: f64 = a.iter().zip(&b).map(|(x, y)| (x - y) * (x - y)).sum();
            let e = sq_euclidean(&a, &b).unwrap();
            assert!((e - e_seq).abs() <= 1e-12 * e_seq.abs().max(1.0));
        }
        assert!(sq_euclidean(&[1.0], &[]).is_err());
    }
}
