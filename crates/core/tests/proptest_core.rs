//! Property-based tests for the tscore primitives (crate-local; the
//! workspace-level suite in `/tests` covers cross-crate properties).

use proptest::prelude::*;
use tscore::{distance, dtw, stats, transform, windows};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn paa_mean_preservation(xs in proptest::collection::vec(-50.0..50.0f64, 8..64)) {
        // PAA over segments that divide the length keeps the global mean.
        let segments = 4;
        if xs.len() % segments == 0 {
            let p = transform::paa(&xs, segments).unwrap();
            let mean_p = stats::mean(&p);
            let mean_x = stats::mean(&xs);
            prop_assert!((mean_p - mean_x).abs() < 1e-9);
        }
    }

    #[test]
    fn moving_average_bounded_by_input(
        xs in proptest::collection::vec(-50.0..50.0f64, 1..40),
        w in 1usize..9,
    ) {
        let s = transform::moving_average(&xs, w).unwrap();
        prop_assert_eq!(s.len(), xs.len());
        let lo = stats::min(&xs) - 1e-9;
        let hi = stats::max(&xs) + 1e-9;
        prop_assert!(s.iter().all(|&v| v >= lo && v <= hi));
    }

    #[test]
    fn detrend_kills_slope(xs in proptest::collection::vec(-10.0..10.0f64, 3..50)) {
        let d = transform::detrend(&xs);
        prop_assert!(stats::trend_slope(&d).abs() < 1e-6);
        prop_assert!(stats::mean(&d).abs() < 1e-6);
    }

    #[test]
    fn minmax_into_unit_interval(xs in proptest::collection::vec(-100.0..100.0f64, 1..50)) {
        let m = transform::minmax_norm(&xs);
        prop_assert!(m.iter().all(|&v| (-1e-12..=1.0 + 1e-12).contains(&v)));
    }

    #[test]
    fn window_count_formula(
        n in 1usize..200,
        len in 1usize..50,
        stride in 1usize..10,
    ) {
        let count = windows::window_count(n, len, stride);
        if n >= len {
            // Last window start must fit; one more window must not.
            let last_start = (count - 1) * stride;
            prop_assert!(last_start + len <= n);
            prop_assert!(count * stride + len > n);
        } else {
            prop_assert_eq!(count, 0);
        }
    }

    #[test]
    fn sbd_shift_consistency(
        base in proptest::collection::vec(-5.0..5.0f64, 16..=16),
        shift in -6isize..6,
    ) {
        // Shifting any signal never increases its SBD beyond the worst case
        // and perfect alignment is recovered for small shifts of a padded
        // signal.
        let mut padded = vec![0.0; 32];
        padded[8..24].copy_from_slice(&base);
        let shifted = distance::apply_shift(&padded, shift);
        let energy: f64 = base.iter().map(|v| v * v).sum();
        prop_assume!(energy > 1e-6);
        let (d, found) = distance::sbd_with_shift(&padded, &shifted).unwrap();
        prop_assert!(d < 1e-6, "SBD {d} for pure shift");
        // The detected shift must realign the signals (it need not equal the
        // applied one: periodic signals tie at several shifts).
        let aligned = distance::apply_shift(&shifted, found);
        let gap = distance::euclidean(&padded, &aligned).unwrap();
        let norm = padded.iter().map(|v| v * v).sum::<f64>().sqrt();
        prop_assert!(gap < 1e-5 * (1.0 + norm), "gap {gap} after realignment");
    }

    #[test]
    fn dtw_symmetric(
        a in proptest::collection::vec(-5.0..5.0f64, 4..16),
        b in proptest::collection::vec(-5.0..5.0f64, 4..16),
    ) {
        let opts = dtw::DtwOptions::default();
        let d1 = dtw::dtw(&a, &b, opts).unwrap();
        let d2 = dtw::dtw(&b, &a, opts).unwrap();
        prop_assert!((d1 - d2).abs() < 1e-9);
        prop_assert!(d1 >= 0.0);
    }

    #[test]
    fn dba_stays_in_member_envelope(
        members in proptest::collection::vec(
            proptest::collection::vec(-5.0..5.0f64, 8..=8),
            2..5,
        ),
    ) {
        let refs: Vec<&[f64]> = members.iter().map(Vec::as_slice).collect();
        let init = members[0].clone();
        let c = dtw::dba(&init, &refs, dtw::DtwOptions::default(), 5).unwrap();
        // Every centre point is a mean of member points, so it must stay
        // inside the global min/max envelope.
        let lo = members.iter().flatten().cloned().fold(f64::INFINITY, f64::min) - 1e-9;
        let hi = members.iter().flatten().cloned().fold(f64::NEG_INFINITY, f64::max) + 1e-9;
        prop_assert!(c.iter().all(|&v| v >= lo && v <= hi));
    }

    #[test]
    fn five_number_summary_ordered(xs in proptest::collection::vec(-100.0..100.0f64, 1..60)) {
        let (mn, q1, md, q3, mx) = stats::five_number_summary(&xs);
        prop_assert!(mn <= q1 + 1e-12);
        prop_assert!(q1 <= md + 1e-12);
        prop_assert!(md <= q3 + 1e-12);
        prop_assert!(q3 <= mx + 1e-12);
    }

    #[test]
    fn autocorrelation_at_zero_is_one(xs in proptest::collection::vec(-10.0..10.0f64, 2..50)) {
        prop_assume!(stats::std(&xs) > 1e-6);
        prop_assert!((stats::autocorrelation(&xs, 0) - 1.0).abs() < 1e-9);
        // And |acf| ≤ 1 at any lag.
        for lag in 1..xs.len().min(5) {
            prop_assert!(stats::autocorrelation(&xs, lag).abs() <= 1.0 + 1e-9);
        }
    }
}
