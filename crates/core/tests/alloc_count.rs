//! Proof that the hot kernels are allocation-free once scratch is warm.
//!
//! A counting wrapper around the system allocator tallies every
//! allocation; each test warms its scratch, snapshots the counter, runs
//! many kernel calls and asserts the counter did not move. This is the
//! "zero per-pair heap allocations" acceptance check — a regression that
//! reintroduces a `Vec` inside a kernel loop fails here, not in a
//! profiler three PRs later.
//!
//! Lives in its own integration-test binary because `#[global_allocator]`
//! is process-wide.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> usize {
    ALLOCATIONS.load(Ordering::Relaxed)
}

use tscore::dtw::{DtwOptions, DtwScratch};
use tscore::kernel::{self, ZnormScratch};

fn wave(n: usize, phase: f64) -> Vec<f64> {
    (0..n).map(|i| (i as f64 * 0.21 + phase).sin()).collect()
}

#[test]
fn znorm_euclidean_allocates_nothing() {
    let a = wave(257, 0.0);
    let b = wave(257, 0.8);
    // Warm-up (the kernel itself holds no state, but let lazy statics
    // elsewhere settle).
    let _ = kernel::znorm_euclidean(&a, &b).unwrap();
    let before = allocations();
    let mut acc = 0.0;
    for _ in 0..100 {
        acc += kernel::znorm_euclidean(&a, &b).unwrap();
    }
    assert!(acc.is_finite());
    assert_eq!(
        allocations(),
        before,
        "znorm_euclidean must not allocate per pair"
    );
}

#[test]
fn sbd_allocates_nothing() {
    let a = wave(130, 0.0);
    let b = wave(130, 1.1);
    let _ = kernel::sbd(&a, &b).unwrap();
    let before = allocations();
    let mut acc = 0.0;
    for _ in 0..50 {
        acc += kernel::sbd(&a, &b).unwrap();
    }
    assert!(acc.is_finite());
    assert_eq!(allocations(), before, "sbd must not allocate per pair");
}

#[test]
fn dtw_with_warm_scratch_allocates_nothing() {
    let a = wave(200, 0.0);
    let b = wave(190, 0.5);
    let opts = DtwOptions { window: Some(20) };
    let mut scratch = DtwScratch::new();
    // Warm the scratch to the largest size used below.
    let _ = kernel::dtw(&a, &b, opts, &mut scratch).unwrap();
    let before = allocations();
    let mut acc = 0.0;
    for _ in 0..50 {
        acc += kernel::dtw(&a, &b, opts, &mut scratch).unwrap();
        // Smaller inputs reuse the same buffers.
        acc += kernel::dtw(&a[..64], &b[..60], opts, &mut scratch).unwrap();
    }
    assert!(acc.is_finite());
    assert_eq!(
        allocations(),
        before,
        "warm-scratch DTW must not allocate per pair"
    );
}

#[test]
fn znorm_scratch_allocates_only_on_growth() {
    let rows: Vec<Vec<f64>> = (0..20).map(|i| wave(128, i as f64 * 0.3)).collect();
    let mut scratch = ZnormScratch::new();
    // Warm to the row length.
    let _ = scratch.znormed(&rows[0]);
    let before = allocations();
    let mut acc = 0.0;
    for row in &rows {
        let z = scratch.znormed(row);
        acc += z.iter().sum::<f64>();
    }
    assert!(acc.is_finite());
    assert_eq!(
        allocations(),
        before,
        "warm ZnormScratch must not allocate per row"
    );
}

#[test]
fn counter_actually_counts() {
    // Sanity check that the instrumentation itself works.
    let before = allocations();
    let v: Vec<u64> = Vec::with_capacity(64);
    assert!(v.capacity() >= 64);
    assert!(allocations() > before, "allocation must be observed");
}
