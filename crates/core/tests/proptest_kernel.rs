//! Property tests pinning every fused kernel to its scalar reference.
//!
//! Lengths are drawn so that every lane remainder `n mod 8 ∈ 0..8` is
//! exercised, and dedicated cases cover the degenerate inputs (empty,
//! constant, zero-energy). DTW is required to be **bit-identical** to the
//! reference (same min/add operations per cell); the reassociated
//! reductions (znorm/ED/SBD) are allowed ≤ 1e-12 relative drift.

use proptest::prelude::*;
use tscore::dtw::{DtwOptions, DtwScratch};
use tscore::kernel::{self, reference};

fn rel_close(a: f64, b: f64, tol: f64) -> bool {
    (a - b).abs() <= tol * a.abs().max(b.abs()).max(1.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn znorm_euclidean_matches_reference(
        a in proptest::collection::vec(-50.0..50.0f64, 1..70),
        b in proptest::collection::vec(-50.0..50.0f64, 1..70),
    ) {
        prop_assume!(a.len() == b.len());
        let fast = kernel::znorm_euclidean(&a, &b).unwrap();
        let slow = reference::znorm_euclidean(&a, &b).unwrap();
        prop_assert!(rel_close(fast, slow, 1e-12), "{fast} vs {slow}");
    }

    #[test]
    fn znorm_into_matches_reference(
        xs in proptest::collection::vec(-50.0..50.0f64, 1..70),
    ) {
        let mut fast = vec![0.0; xs.len()];
        kernel::znorm_into(&xs, &mut fast);
        let slow = reference::znorm(&xs);
        for (f, s) in fast.iter().zip(&slow) {
            prop_assert!(rel_close(*f, *s, 1e-12), "{f} vs {s}");
        }
    }

    #[test]
    fn euclidean_matches_reference(
        a in proptest::collection::vec(-50.0..50.0f64, 0..70),
        b in proptest::collection::vec(-50.0..50.0f64, 0..70),
    ) {
        prop_assume!(a.len() == b.len());
        let fast = kernel::euclidean(&a, &b).unwrap();
        let slow = reference::euclidean(&a, &b).unwrap();
        prop_assert!(rel_close(fast, slow, 1e-12), "{fast} vs {slow}");
    }

    #[test]
    fn sbd_matches_reference(
        a in proptest::collection::vec(-20.0..20.0f64, 1..40),
        b in proptest::collection::vec(-20.0..20.0f64, 1..40),
    ) {
        prop_assume!(a.len() == b.len());
        let fast = kernel::sbd(&a, &b).unwrap();
        let slow = reference::sbd(&a, &b).unwrap();
        prop_assert!(rel_close(fast, slow, 1e-9), "{fast} vs {slow}");
    }

    #[test]
    fn dtw_bit_identical_to_reference(
        a in proptest::collection::vec(-20.0..20.0f64, 1..50),
        b in proptest::collection::vec(-20.0..20.0f64, 1..50),
        window_raw in 0usize..13,
    ) {
        // 12 encodes "no band" (the shim has no Option strategy).
        let window = if window_raw == 12 { None } else { Some(window_raw) };
        let opts = DtwOptions { window };
        let mut scratch = DtwScratch::new();
        let fast = kernel::dtw(&a, &b, opts, &mut scratch).unwrap();
        let slow = reference::dtw(&a, &b, opts).unwrap();
        // Bit-identical: the fused version performs the same FP ops.
        prop_assert_eq!(fast.to_bits(), slow.to_bits(), "{} vs {}", fast, slow);
    }

    #[test]
    fn dtw_scratch_reuse_is_sound(
        pairs in proptest::collection::vec(
            (
                proptest::collection::vec(-5.0..5.0f64, 1..30),
                proptest::collection::vec(-5.0..5.0f64, 1..30),
            ),
            1..6,
        ),
    ) {
        // One scratch across many differently-sized pairs must give the
        // same results as fresh scratches (no stale-cell leakage).
        let mut shared = DtwScratch::new();
        for (a, b) in &pairs {
            let opts = DtwOptions { window: Some(4) };
            let reused = kernel::dtw(a, b, opts, &mut shared).unwrap();
            let fresh = kernel::dtw(a, b, opts, &mut DtwScratch::new()).unwrap();
            prop_assert_eq!(reused.to_bits(), fresh.to_bits());
        }
    }

    #[test]
    fn mean_std_matches_stats(
        xs in proptest::collection::vec(-100.0..100.0f64, 0..70),
    ) {
        let (m, s) = kernel::mean_std(&xs);
        prop_assert!(rel_close(m, tscore::stats::mean(&xs), 1e-12));
        prop_assert!(rel_close(s, tscore::stats::std(&xs), 1e-12));
    }
}

/// Every lane remainder n mod 8 ∈ 0..8, plus empty and constant inputs —
/// the edge cases the chunked loops must not get wrong.
#[test]
fn all_lane_remainders_and_degenerate_inputs() {
    for n in 0..=24usize {
        let a: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin() + 0.1).collect();
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37 + 1.3).cos()).collect();

        let fast_e = kernel::euclidean(&a, &b).unwrap();
        let slow_e = reference::euclidean(&a, &b).unwrap();
        assert!(rel_close(fast_e, slow_e, 1e-12), "euclidean n={n}");

        if n > 0 {
            let fast_z = kernel::znorm_euclidean(&a, &b).unwrap();
            let slow_z = reference::znorm_euclidean(&a, &b).unwrap();
            assert!(rel_close(fast_z, slow_z, 1e-12), "znorm_ed n={n}");

            let fast_s = kernel::sbd(&a, &b).unwrap();
            let slow_s = reference::sbd(&a, &b).unwrap();
            assert!(rel_close(fast_s, slow_s, 1e-9), "sbd n={n}");

            let opts = DtwOptions { window: Some(3) };
            let fast_d = kernel::dtw(&a, &b, opts, &mut DtwScratch::new()).unwrap();
            let slow_d = reference::dtw(&a, &b, opts).unwrap();
            assert_eq!(fast_d.to_bits(), slow_d.to_bits(), "dtw n={n}");
        }

        // Constant (zero-variance, zero-energy after centring) inputs.
        let c = vec![3.25; n];
        if n > 0 {
            let fast = kernel::znorm_euclidean(&c, &a).unwrap();
            let slow = reference::znorm_euclidean(&c, &a).unwrap();
            assert!(rel_close(fast, slow, 1e-12), "const znorm_ed n={n}");
            assert!(kernel::sbd(&c, &c).unwrap().is_finite());
        }
        let mut out = vec![f64::NAN; n];
        kernel::znorm_into(&c, &mut out);
        assert_eq!(out, reference::znorm(&c), "const znorm n={n}");
    }
}
