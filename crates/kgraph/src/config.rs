//! Configuration of the k-Graph pipeline.

/// All tunables of [`crate::KGraph`].
///
/// Defaults follow the spirit of the paper: several subsequence lengths
/// spread over a fraction of the series length, a radial scan with 24
/// sectors and Silverman-bandwidth KDE for node extraction.
#[derive(Debug, Clone)]
pub struct KGraphConfig {
    /// Number of clusters `k`.
    pub k: usize,
    /// Explicit subsequence lengths `R`; empty = derive [`Self::n_lengths`]
    /// lengths automatically from the dataset's minimum series length.
    pub lengths: Vec<usize>,
    /// How many lengths to derive when [`Self::lengths`] is empty
    /// (the paper's `M`).
    pub n_lengths: usize,
    /// Smallest/largest automatic length as fractions of the minimum
    /// series length.
    pub length_fraction_range: (f64, f64),
    /// Number of angular sectors ψ of the radial scan.
    pub psi: usize,
    /// KDE evaluation grid size per sector.
    pub kde_grid: usize,
    /// Minimum density (relative to the sector's peak) for a KDE mode to
    /// become a node.
    pub min_density_ratio: f64,
    /// Subsequence extraction stride (1 = every subsequence).
    pub stride: usize,
    /// Maximum number of subsequences used to *fit* each PCA (all
    /// subsequences are still projected).
    pub pca_sample: usize,
    /// Restarts of the per-length k-Means.
    pub n_init: usize,
    /// Use edge-crossing features in addition to node-crossing features.
    pub edge_features: bool,
    /// Use node-crossing features (disable to ablate edges-only).
    pub node_features: bool,
    /// Run per-length jobs on threads.
    pub parallel: bool,
    /// Master seed.
    pub seed: u64,
}

impl KGraphConfig {
    /// Canonical configuration for `k` clusters.
    pub fn new(k: usize) -> Self {
        KGraphConfig {
            k,
            lengths: Vec::new(),
            n_lengths: 5,
            length_fraction_range: (0.1, 0.5),
            psi: 24,
            kde_grid: 128,
            min_density_ratio: 0.05,
            stride: 1,
            pca_sample: 2000,
            n_init: 5,
            edge_features: true,
            node_features: true,
            parallel: true,
            seed: 0,
        }
    }

    /// Sets explicit lengths (builder style).
    pub fn with_lengths(mut self, lengths: Vec<usize>) -> Self {
        self.lengths = lengths;
        self
    }

    /// Sets the seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Resolves the length set `R` for a dataset whose shortest series has
    /// `min_len` points. Automatic lengths are evenly spaced fractions of
    /// `min_len`, clamped to `[4, min_len − 1]`, deduplicated, ascending.
    pub fn resolve_lengths(&self, min_len: usize) -> Vec<usize> {
        if !self.lengths.is_empty() {
            let mut out: Vec<usize> = self
                .lengths
                .iter()
                .copied()
                .filter(|&l| l >= 2 && l < min_len.max(3))
                .collect();
            out.sort_unstable();
            out.dedup();
            return out;
        }
        let (lo, hi) = self.length_fraction_range;
        let m = self.n_lengths.max(1);
        let mut out = Vec::with_capacity(m);
        for i in 0..m {
            let frac = if m == 1 {
                (lo + hi) / 2.0
            } else {
                lo + (hi - lo) * i as f64 / (m - 1) as f64
            };
            let l = ((min_len as f64) * frac).round() as usize;
            out.push(l.clamp(4, min_len.saturating_sub(1).max(4)));
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Deterministic per-length seed (used by the parallel jobs).
    pub fn seed_for_length(&self, length: usize) -> u64 {
        self.seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(length as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn auto_lengths_spread() {
        let cfg = KGraphConfig::new(3);
        let lens = cfg.resolve_lengths(128);
        assert_eq!(lens.len(), 5);
        assert_eq!(lens[0], 13); // 0.1 × 128 ≈ 13
        assert_eq!(*lens.last().unwrap(), 64); // 0.5 × 128
        assert!(lens.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn auto_lengths_clamped_for_short_series() {
        let cfg = KGraphConfig::new(2);
        let lens = cfg.resolve_lengths(10);
        assert!(!lens.is_empty());
        assert!(lens.iter().all(|&l| (4..10).contains(&l)), "{lens:?}");
    }

    #[test]
    fn explicit_lengths_filtered_and_sorted() {
        let cfg = KGraphConfig::new(2).with_lengths(vec![64, 16, 16, 1, 500]);
        let lens = cfg.resolve_lengths(128);
        assert_eq!(lens, vec![16, 64]);
    }

    #[test]
    fn single_auto_length() {
        let cfg = KGraphConfig {
            n_lengths: 1,
            ..KGraphConfig::new(2)
        };
        let lens = cfg.resolve_lengths(100);
        assert_eq!(lens.len(), 1);
        assert_eq!(lens[0], 30); // midpoint fraction 0.3
    }

    #[test]
    fn per_length_seeds_differ() {
        let cfg = KGraphConfig::new(2).with_seed(9);
        assert_ne!(cfg.seed_for_length(16), cfg.seed_for_length(32));
        let cfg2 = KGraphConfig::new(2).with_seed(10);
        assert_ne!(cfg.seed_for_length(16), cfg2.seed_for_length(16));
    }
}
