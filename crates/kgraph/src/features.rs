//! Stage 2 — per-length feature matrices and graph clustering.
//!
//! "For each time series, two types of features are generated: node-based
//! and edge-based, by counting intersections with nodes and edges in the
//! graph" (paper §II-A). k-Means over the concatenated features yields the
//! per-length partition `L_ℓ`.

use crate::build::GraphLayer;
use clustering::kmeans::KMeans;
use tsgraph::NodeId;

/// Rows below this count are featurised serially — spawning threads costs
/// more than the crossing counts for small datasets (and `KGraph::fit`
/// already runs one job per length, so small layers arrive here from
/// within a worker).
const PARALLEL_ROW_THRESHOLD: usize = 64;

/// Feature vector of one node path through `layer`'s graph:
/// `[count(node 0), …, count(node N−1), count(edge 0), …, count(edge E−1)]`
/// (either block can be disabled for ablations). Counts are raw crossing
/// frequencies, matching the paper's construction. This is the single-row
/// building block shared by [`feature_matrix`] and the serving layer's
/// per-request/batch feature endpoints — one definition keeps their
/// results bit-identical.
pub fn feature_row(
    layer: &GraphLayer,
    path: &[NodeId],
    node_features: bool,
    edge_features: bool,
) -> Vec<f64> {
    assert!(
        node_features || edge_features,
        "at least one feature family must be enabled"
    );
    let n_nodes = layer.graph.node_count();
    let n_edges = layer.graph.edge_count();
    let dim = if node_features { n_nodes } else { 0 } + if edge_features { n_edges } else { 0 };
    let mut row = vec![0.0f64; dim];
    if node_features {
        for node in path {
            row[node.index()] += 1.0;
        }
    }
    if edge_features {
        let offset = if node_features { n_nodes } else { 0 };
        for w in path.windows(2) {
            if w[0] == w[1] {
                continue;
            }
            // O(log deg) binary search over the sorted CSR out-slice.
            if let Some(e) = layer.graph.edge_id(w[0], w[1]) {
                row[offset + e.index()] += 1.0;
            }
        }
    }
    row
}

/// Featurises an arbitrary set of node paths against `layer`'s graph.
///
/// Rows are per-path independent, so large inputs fan out over a bounded
/// worker pool (at most one worker per hardware thread) with each worker
/// writing lock-free into its disjoint chunk of output slots — the same
/// scheme as `KGraph::fit`'s per-length jobs. Output order and values are
/// identical to the serial loop.
pub fn feature_rows_for_paths(
    layer: &GraphLayer,
    paths: &[Vec<NodeId>],
    node_features: bool,
    edge_features: bool,
) -> Vec<Vec<f64>> {
    assert!(
        node_features || edge_features,
        "at least one feature family must be enabled"
    );
    let hw = std::thread::available_parallelism().map_or(1, |p| p.get());
    if paths.len() < PARALLEL_ROW_THRESHOLD || hw < 2 {
        return paths
            .iter()
            .map(|p| feature_row(layer, p, node_features, edge_features))
            .collect();
    }
    let workers = hw.min(paths.len());
    let chunk = paths.len().div_ceil(workers);
    let mut slots: Vec<Vec<f64>> = vec![Vec::new(); paths.len()];
    crossbeam::thread::scope(|scope| {
        for (slot_chunk, path_chunk) in slots.chunks_mut(chunk).zip(paths.chunks(chunk)) {
            scope.spawn(move |_| {
                for (slot, path) in slot_chunk.iter_mut().zip(path_chunk) {
                    *slot = feature_row(layer, path, node_features, edge_features);
                }
            });
        }
    })
    .expect("feature row job panicked");
    slots
}

/// Builds the feature matrix of a layer: row `i` is
/// [`feature_row`] of series `i`'s fit-time path.
pub fn feature_matrix(
    layer: &GraphLayer,
    node_features: bool,
    edge_features: bool,
) -> Vec<Vec<f64>> {
    feature_rows_for_paths(layer, &layer.paths, node_features, edge_features)
}

/// Clusters a layer's feature matrix with k-Means, returning `L_ℓ`.
pub fn cluster_layer(
    layer: &GraphLayer,
    k: usize,
    n_init: usize,
    seed: u64,
    node_features: bool,
    edge_features: bool,
) -> Vec<usize> {
    let features = feature_matrix(layer, node_features, edge_features);
    KMeans {
        k,
        max_iter: 100,
        n_init,
        seed,
    }
    .fit(&features)
    .labels
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::build_graph;
    use crate::embed::project_subsequences;
    use crate::nodes::radial_scan;
    use clustering::metrics::adjusted_rand_index;
    use tscore::{Dataset, DatasetKind, TimeSeries};

    fn toy() -> (Dataset, GraphLayer, Vec<usize>) {
        let mut series = Vec::new();
        let mut truth = Vec::new();
        for (label, f) in [0.2f64, 0.9].into_iter().enumerate() {
            for p in 0..5 {
                series.push(TimeSeries::new(
                    (0..80).map(|i| ((i + p) as f64 * f).sin()).collect(),
                ));
                truth.push(label);
            }
        }
        let ds = Dataset::new("toy", DatasetKind::Simulated, series);
        let proj = project_subsequences(&ds, 16, 1, 2000);
        let assign = radial_scan(&proj, 12, 128, 0.05);
        let layer = build_graph(&ds, &proj, &assign);
        (ds, layer, truth)
    }

    #[test]
    fn feature_matrix_shape() {
        let (ds, layer, _) = toy();
        let f = feature_matrix(&layer, true, true);
        assert_eq!(f.len(), ds.len());
        let dim = layer.graph.node_count() + layer.graph.edge_count();
        assert!(f.iter().all(|r| r.len() == dim));
    }

    #[test]
    fn node_block_sums_to_path_length() {
        let (_, layer, _) = toy();
        let f = feature_matrix(&layer, true, false);
        for (row, path) in f.iter().zip(&layer.paths) {
            let total: f64 = row.iter().sum();
            assert_eq!(total as usize, path.len());
        }
    }

    #[test]
    fn edge_block_sums_to_transitions() {
        let (_, layer, _) = toy();
        let f = feature_matrix(&layer, false, true);
        for (row, path) in f.iter().zip(&layer.paths) {
            let total: f64 = row.iter().sum();
            let changes = path.windows(2).filter(|w| w[0] != w[1]).count();
            assert_eq!(total as usize, changes);
        }
    }

    #[test]
    fn clustering_separates_generators() {
        let (_, layer, truth) = toy();
        let labels = cluster_layer(&layer, 2, 5, 0, true, true);
        let ari = adjusted_rand_index(&truth, &labels);
        assert!(ari > 0.8, "ARI {ari}");
    }

    #[test]
    fn node_only_and_edge_only_still_work() {
        let (_, layer, truth) = toy();
        for (nf, ef) in [(true, false), (false, true)] {
            let labels = cluster_layer(&layer, 2, 5, 0, nf, ef);
            let ari = adjusted_rand_index(&truth, &labels);
            assert!(ari > 0.5, "nf={nf} ef={ef} ARI {ari}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one feature family")]
    fn no_features_panics() {
        let (_, layer, _) = toy();
        feature_matrix(&layer, false, false);
    }

    #[test]
    fn parallel_rows_match_serial() {
        let (_, layer, _) = toy();
        // Replicate the fit-time paths past the parallel threshold and
        // check the fan-out produces exactly the serial rows, in order.
        let mut many = Vec::new();
        while many.len() < super::PARALLEL_ROW_THRESHOLD + 7 {
            many.extend(layer.paths.iter().cloned());
        }
        let fanned = feature_rows_for_paths(&layer, &many, true, true);
        let serial: Vec<Vec<f64>> = many
            .iter()
            .map(|p| feature_row(&layer, p, true, true))
            .collect();
        assert_eq!(fanned, serial);
    }
}
