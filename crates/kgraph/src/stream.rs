//! Streaming entry points: windowed re-extraction and delta-aware scoring.
//!
//! A fitted [`GraphLayer`] is frozen — its CSR graph, paths and embedding
//! never change. When a monitored series receives new points, refitting
//! from scratch would cost seconds; instead the streaming layer
//!
//! 1. routes **only the windows the append created** through the stored
//!    embedding ([`extend_path`], built on
//!    [`GraphLayer::assign_path_from`]),
//! 2. turns the fresh sub-path into transition triples (including the
//!    *bridge* transition from the last previously-known node into the
//!    first new one) destined for a [`DeltaGraph`] kept next to the frozen
//!    base,
//! 3. scores series against the **merged base+delta view**
//!    ([`anomaly_scores_delta`]) without compacting — a 2-way merge per
//!    lookup, no locks, bit-identical to [`anomaly_scores`] when the delta
//!    is empty.
//!
//! The owning session type lives in the `streamfit` crate; this module is
//! the model-side arithmetic it builds on.
//!
//! [`anomaly_scores`]: crate::anomaly::anomaly_scores

use crate::anomaly::{blend_and_smooth, embedding_gap_scores, transition_scores_with};
use crate::build::GraphLayer;
use tscore::error::TsError;
use tsgraph::delta::{DeltaGraph, DeltaView};
use tsgraph::NodeId;

/// Number of windows of length `window` at stride `stride` that fit in a
/// series of `series_len` points (0 when the series is shorter than one
/// window).
pub fn n_windows(series_len: usize, window: usize, stride: usize) -> usize {
    if series_len < window || window == 0 {
        0
    } else {
        (series_len - window) / stride.max(1) + 1
    }
}

/// What one append contributed to a layer: the nodes of the newly created
/// windows and the transition triples they induced.
#[derive(Debug, Clone, Default)]
pub struct WindowDelta {
    /// Node per new window, in temporal order (appends to the stored path).
    pub new_nodes: Vec<NodeId>,
    /// Transition triples for the delta graph: the bridge from the last
    /// old node plus consecutive new-window transitions, self-loops
    /// omitted (matching fit-time extraction).
    pub triples: Vec<(NodeId, NodeId, f64)>,
}

/// Routes the windows of `values` starting at index `old_windows` through
/// `layer`'s stored embedding and derives their transition triples.
/// `last_old` is the node of window `old_windows − 1` (None when the
/// series had no complete window yet) — it anchors the bridge transition.
///
/// Returns an empty delta when the append completed no new window. Errors
/// with [`TsError::Degenerate`] when the layer's graph has no nodes.
pub fn extend_path(
    layer: &GraphLayer,
    values: &[f64],
    old_windows: usize,
    last_old: Option<NodeId>,
) -> Result<WindowDelta, TsError> {
    if layer.graph.node_count() == 0 {
        return Err(TsError::Degenerate(
            "graph layer has no nodes; cannot route series".into(),
        ));
    }
    if values.len() < layer.length {
        return Ok(WindowDelta::default());
    }
    let new_nodes = layer
        .assign_path_from(values, old_windows)
        .expect("preconditions checked above");
    let mut triples = Vec::new();
    let mut prev = last_old;
    for &node in &new_nodes {
        if let Some(p) = prev {
            if p != node {
                triples.push((p, node, 1.0));
            }
        }
        prev = Some(node);
    }
    Ok(WindowDelta { new_nodes, triples })
}

/// [`anomaly_scores`](crate::anomaly::anomaly_scores) against the merged
/// base+delta transition view: transition rarity reads counts and modal
/// weights through a [`DeltaView`] (2-way merge per node), the embedding
/// gap term is unchanged (the embedding is frozen). With an empty delta
/// the output is bit-identical to the batch scorer.
///
/// # Errors
///
/// Same contract as the batch scorer: [`TsError::TooShort`] when the
/// series is shorter than one window, [`TsError::Degenerate`] when the
/// layer's graph has no nodes.
pub fn anomaly_scores_delta(
    layer: &GraphLayer,
    delta: &DeltaGraph<f64>,
    values: &[f64],
    context: usize,
) -> Result<Vec<f64>, TsError> {
    if layer.graph.node_count() == 0 {
        return Err(TsError::Degenerate(
            "graph layer has no nodes; cannot route series".into(),
        ));
    }
    if values.len() < layer.length {
        return Err(TsError::TooShort {
            required: layer.length,
            actual: values.len(),
        });
    }
    let sum = |acc: &mut f64, w: f64| *acc += w;
    let view = DeltaView::new(&layer.graph, delta);
    let path = layer
        .assign_path(values)
        .expect("preconditions checked above");
    let trans = transition_scores_with(
        &path,
        |a, b| view.weight_between(a, b, sum),
        |a| {
            let mut modal = 1.0f64;
            view.for_each_out(a, sum, |_, w| modal = modal.max(w));
            modal
        },
    );
    let gaps = embedding_gap_scores(layer, values).expect("preconditions checked above");
    Ok(blend_and_smooth(&trans, &gaps, context))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::anomaly::anomaly_scores;
    use crate::config::KGraphConfig;
    use crate::pipeline::KGraph;
    use tscore::{Dataset, DatasetKind, TimeSeries};

    fn fitted() -> crate::pipeline::KGraphModel {
        let series: Vec<TimeSeries> = (0..8)
            .map(|p| TimeSeries::new((0..160).map(|i| ((i + p) as f64 * 0.4).sin()).collect()))
            .collect();
        let ds = Dataset::new("clean", DatasetKind::Simulated, series);
        let cfg = KGraphConfig {
            n_lengths: 1,
            psi: 16,
            pca_sample: 600,
            n_init: 2,
            ..KGraphConfig::new(1)
        }
        .with_lengths(vec![20]);
        KGraph::new(cfg).fit(&ds)
    }

    #[test]
    fn n_windows_matches_assign_path() {
        let model = fitted();
        let layer = model.best();
        for len in [0, 5, 19, 20, 21, 80, 160] {
            let values: Vec<f64> = (0..len).map(|i| (i as f64 * 0.4).sin()).collect();
            let expect = layer.assign_path(&values).map_or(0, |p| p.len());
            assert_eq!(
                n_windows(len, layer.length, layer.embedding.stride),
                expect,
                "len {len}"
            );
        }
    }

    #[test]
    fn extend_path_is_suffix_of_full_path() {
        let model = fitted();
        let layer = model.best();
        let full: Vec<f64> = (0..160).map(|i| (i as f64 * 0.4).sin()).collect();
        let old = &full[..100];
        let old_path = layer.assign_path(old).unwrap();
        let delta = extend_path(layer, &full, old_path.len(), old_path.last().copied()).unwrap();
        let full_path = layer.assign_path(&full).unwrap();
        assert_eq!(
            full_path[..old_path.len()],
            old_path[..],
            "prefix windows unchanged by append"
        );
        assert_eq!(delta.new_nodes, full_path[old_path.len()..]);
        // Triples: one per non-self transition across the appended suffix,
        // bridge included.
        let expected: usize = full_path[old_path.len() - 1..]
            .windows(2)
            .filter(|w| w[0] != w[1])
            .count();
        assert_eq!(delta.triples.len(), expected);
    }

    #[test]
    fn extend_path_without_new_windows_is_empty() {
        let model = fitted();
        let layer = model.best();
        let short: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let d = extend_path(layer, &short, 0, None).unwrap();
        assert!(d.new_nodes.is_empty());
        assert!(d.triples.is_empty());
    }

    #[test]
    fn empty_delta_scores_bit_identical_to_batch() {
        let model = fitted();
        let layer = model.best();
        let delta = DeltaGraph::new(layer.graph.node_count());
        let fresh: Vec<f64> = (0..160).map(|i| ((i + 3) as f64 * 0.4).sin()).collect();
        let batch = anomaly_scores(layer, &fresh, 5).unwrap();
        let streamed = anomaly_scores_delta(layer, &delta, &fresh, 5).unwrap();
        assert_eq!(batch, streamed, "empty delta must change nothing");
    }

    #[test]
    fn delta_transitions_lower_unseen_transition_scores() {
        let model = fitted();
        let layer = model.best();
        // A burst the model never saw: its transitions are absent from the
        // base graph, so the batch scorer rates them 1.0. Ingesting those
        // very transitions into the delta must lower the score.
        let mut values: Vec<f64> = (0..160).map(|i| (i as f64 * 0.4).sin()).collect();
        for v in values.iter_mut().skip(80).take(14) {
            *v = 2.5;
        }
        let before = anomaly_scores_delta(
            layer,
            &DeltaGraph::new(layer.graph.node_count()),
            &values,
            1,
        )
        .unwrap();
        let path = layer.assign_path(&values).unwrap();
        let mut delta = DeltaGraph::new(layer.graph.node_count());
        let triples: Vec<_> = path
            .windows(2)
            .filter(|w| w[0] != w[1])
            // Heavy repetition: make these transitions *common*.
            .flat_map(|w| {
                let (a, b) = (w[0], w[1]);
                (0..50).map(move |_| (a, b, 1.0))
            })
            .collect();
        delta.ingest(triples, |a, w| *a += w);
        let after = anomaly_scores_delta(layer, &delta, &values, 1).unwrap();
        let mean_before = tscore::stats::mean(&before);
        let mean_after = tscore::stats::mean(&after);
        assert!(
            mean_after < mean_before,
            "ingesting observed transitions must lower rarity: {mean_after} vs {mean_before}"
        );
    }
}
