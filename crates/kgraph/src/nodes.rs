//! Stage 1b — node extraction via radial scan + KDE.
//!
//! The 2-D projection is scanned with ψ angular sectors around its
//! centroid. Inside each sector, a 1-D Gaussian KDE over the radial
//! distances is evaluated and its local maxima become **nodes** ("dense
//! regions … generated via local maxima identification using radial scan
//! and kernel density estimation", paper §II-A). Every subsequence then
//! maps to the nearest node of its sector, turning each series into a node
//! path.

use crate::embed::Projection;
use linalg::kde::Kde;

/// A node candidate produced by the radial scan.
#[derive(Debug, Clone)]
pub struct RadialNode {
    /// Sector index in `0..psi`.
    pub sector: usize,
    /// Radial position of the density mode.
    pub radius: f64,
}

/// Result of the radial scan: nodes plus the per-point node assignment.
#[derive(Debug, Clone)]
pub struct NodeAssignment {
    /// Extracted nodes.
    pub nodes: Vec<RadialNode>,
    /// For each projected point (same order as the projection), the index
    /// of its node in [`Self::nodes`].
    pub point_node: Vec<usize>,
    /// Centroid of the projection the scan ran on (polar origin).
    pub center: (f64, f64),
    /// Number of angular sectors used.
    pub psi: usize,
}

/// Polar coordinates of a point relative to `center`.
fn to_polar(p: (f64, f64), center: (f64, f64)) -> (f64, f64) {
    let dx = p.0 - center.0;
    let dy = p.1 - center.1;
    let r = (dx * dx + dy * dy).sqrt();
    let mut theta = dy.atan2(dx);
    if theta < 0.0 {
        theta += std::f64::consts::TAU;
    }
    (theta, r)
}

/// Runs the radial scan on a projection.
///
/// * `psi` — number of angular sectors,
/// * `kde_grid` — KDE evaluation grid size per sector,
/// * `min_density_ratio` — mode acceptance threshold relative to the
///   sector's density peak.
///
/// Sectors with points always yield at least one node (falling back to the
/// sector's median radius if the KDE finds no interior maximum), so every
/// point receives an assignment.
pub fn radial_scan(
    proj: &Projection,
    psi: usize,
    kde_grid: usize,
    min_density_ratio: f64,
) -> NodeAssignment {
    assert!(psi >= 1, "psi must be >= 1");
    let n = proj.points.len();
    // Projection is PCA-centred, but compute the centroid anyway (sampled
    // PCA fits leave a small offset).
    let center = (
        proj.points.iter().map(|p| p.0).sum::<f64>() / n as f64,
        proj.points.iter().map(|p| p.1).sum::<f64>() / n as f64,
    );
    let polar: Vec<(f64, f64)> = proj.points.iter().map(|&p| to_polar(p, center)).collect();
    let sector_of = |theta: f64| -> usize {
        let s = (theta / std::f64::consts::TAU * psi as f64) as usize;
        s.min(psi - 1)
    };

    // Bucket radii per sector.
    let mut sector_radii: Vec<Vec<f64>> = vec![Vec::new(); psi];
    for &(theta, r) in &polar {
        sector_radii[sector_of(theta)].push(r);
    }

    // Extract modes per sector.
    let mut nodes: Vec<RadialNode> = Vec::new();
    let mut sector_nodes: Vec<Vec<usize>> = vec![Vec::new(); psi];
    for (sector, radii) in sector_radii.iter().enumerate() {
        if radii.is_empty() {
            continue;
        }
        let mut modes = if radii.len() >= 3 {
            let kde = Kde::silverman(radii.clone());
            kde.local_maxima_on_grid(kde_grid.max(16), min_density_ratio)
        } else {
            Vec::new()
        };
        if modes.is_empty() {
            // Fallback: one node at the median radius.
            let mut sorted = radii.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN radius"));
            modes.push(sorted[sorted.len() / 2]);
        }
        for radius in modes {
            sector_nodes[sector].push(nodes.len());
            nodes.push(RadialNode { sector, radius });
        }
    }

    // Assign each point to the nearest node (by radius) of its sector.
    let point_node: Vec<usize> = polar
        .iter()
        .map(|&(theta, r)| {
            let sector = sector_of(theta);
            let candidates = &sector_nodes[sector];
            debug_assert!(!candidates.is_empty(), "sector with points must have nodes");
            *candidates
                .iter()
                .min_by(|&&a, &&b| {
                    let da = (nodes[a].radius - r).abs();
                    let db = (nodes[b].radius - r).abs();
                    da.partial_cmp(&db).expect("NaN radius distance")
                })
                .expect("non-empty candidates")
        })
        .collect();

    NodeAssignment {
        nodes,
        point_node,
        center,
        psi,
    }
}

/// Assigns a single projected point to a node, using the same rule as the
/// scan: sector by angle, then nearest node radius within the sector.
/// Falls back to the globally nearest-radius node when the point's sector
/// produced no nodes (possible for out-of-sample points).
pub fn assign_point(assign: &NodeAssignment, p: (f64, f64)) -> usize {
    let (theta, r) = to_polar(p, assign.center);
    let sector = ((theta / std::f64::consts::TAU * assign.psi as f64) as usize).min(assign.psi - 1);
    let in_sector: Vec<usize> = assign
        .nodes
        .iter()
        .enumerate()
        .filter(|(_, n)| n.sector == sector)
        .map(|(i, _)| i)
        .collect();
    let candidates: &[usize] = if in_sector.is_empty() {
        // Out-of-sample point in an empty sector: consider every node.
        &[]
    } else {
        &in_sector
    };
    let pick = |ids: Box<dyn Iterator<Item = usize> + '_>| -> usize {
        ids.min_by(|&a, &b| {
            (assign.nodes[a].radius - r)
                .abs()
                .partial_cmp(&(assign.nodes[b].radius - r).abs())
                .expect("NaN radius")
        })
        .expect("non-empty node set")
    };
    if candidates.is_empty() {
        pick(Box::new(0..assign.nodes.len()))
    } else {
        pick(Box::new(candidates.iter().copied()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::embed::project_subsequences;
    use tscore::{Dataset, DatasetKind, TimeSeries};

    fn toy_projection() -> Projection {
        let mut series = Vec::new();
        for f in [0.15f64, 0.5, 1.1] {
            for p in 0..4 {
                series.push(TimeSeries::new(
                    (0..80).map(|i| ((i + p * 2) as f64 * f).sin()).collect(),
                ));
            }
        }
        let ds = Dataset::new("toy", DatasetKind::Simulated, series);
        project_subsequences(&ds, 20, 1, 2000)
    }

    #[test]
    fn every_point_assigned() {
        let proj = toy_projection();
        let assign = radial_scan(&proj, 16, 128, 0.05);
        assert_eq!(assign.point_node.len(), proj.points.len());
        assert!(!assign.nodes.is_empty());
        for &ni in &assign.point_node {
            assert!(ni < assign.nodes.len());
        }
    }

    #[test]
    fn node_count_grows_with_psi() {
        let proj = toy_projection();
        let coarse = radial_scan(&proj, 4, 128, 0.05);
        let fine = radial_scan(&proj, 32, 128, 0.05);
        assert!(
            fine.nodes.len() > coarse.nodes.len(),
            "{} vs {}",
            fine.nodes.len(),
            coarse.nodes.len()
        );
    }

    #[test]
    fn assignment_respects_sector() {
        let proj = toy_projection();
        let psi = 12;
        let assign = radial_scan(&proj, psi, 128, 0.05);
        // Recompute polar coordinates exactly as the scan does.
        let n = proj.points.len() as f64;
        let center = (
            proj.points.iter().map(|p| p.0).sum::<f64>() / n,
            proj.points.iter().map(|p| p.1).sum::<f64>() / n,
        );
        for (i, &pt) in proj.points.iter().enumerate() {
            let (theta, _) = super::to_polar(pt, center);
            let sector = ((theta / std::f64::consts::TAU * psi as f64) as usize).min(psi - 1);
            assert_eq!(assign.nodes[assign.point_node[i]].sector, sector);
        }
    }

    #[test]
    fn single_sector_works() {
        let proj = toy_projection();
        let assign = radial_scan(&proj, 1, 128, 0.05);
        assert!(!assign.nodes.is_empty());
        assert!(assign.nodes.iter().all(|n| n.sector == 0));
    }

    #[test]
    fn stricter_density_ratio_fewer_nodes() {
        let proj = toy_projection();
        let lax = radial_scan(&proj, 16, 128, 0.0);
        let strict = radial_scan(&proj, 16, 128, 0.8);
        assert!(strict.nodes.len() <= lax.nodes.len());
        // Strict still assigns everyone (median fallback).
        assert_eq!(strict.point_node.len(), proj.points.len());
    }

    #[test]
    fn assignment_minimises_radius_gap() {
        let proj = toy_projection();
        let assign = radial_scan(&proj, 8, 128, 0.05);
        let n = proj.points.len() as f64;
        let center = (
            proj.points.iter().map(|p| p.0).sum::<f64>() / n,
            proj.points.iter().map(|p| p.1).sum::<f64>() / n,
        );
        for (i, &pt) in proj.points.iter().enumerate() {
            let (_, r) = super::to_polar(pt, center);
            let assigned = &assign.nodes[assign.point_node[i]];
            let my_gap = (assigned.radius - r).abs();
            for node in assign.nodes.iter().filter(|m| m.sector == assigned.sector) {
                assert!(my_gap <= (node.radius - r).abs() + 1e-9);
            }
        }
    }

    #[test]
    #[should_panic(expected = "psi must be >= 1")]
    fn zero_psi_panics() {
        let proj = toy_projection();
        radial_scan(&proj, 0, 128, 0.05);
    }
}
