//! Stage 1c — graph construction.
//!
//! Nodes from the radial scan become graph nodes carrying the *pattern*
//! they represent (the mean of their z-normalised subsequences); edges
//! connect temporally consecutive nodes within each series, weighted by
//! transition frequency. The result is the paper's `G_ℓ = (N_ℓ, E_ℓ)`.
//!
//! Construction is builder-based: node payloads are accumulated in a flat
//! vector, every observed transition is emitted as one `(src, dst, 1.0)`
//! triple into a [`GraphBuilder`], and a single sort + aggregate pass
//! produces the CSR graph — no per-edge adjacency probing anywhere.

use crate::embed::Projection;
use crate::nodes::{assign_point, NodeAssignment, RadialNode};
use linalg::pca::Pca;
use tscore::kernel::ZnormScratch;
use tscore::Dataset;
use tsgraph::{CsrGraph, GraphBuilder, NodeId};

/// Payload of a graph node.
#[derive(Debug, Clone)]
pub struct NodePattern {
    /// Radial-scan sector the node came from.
    pub sector: usize,
    /// Radial position of the density mode.
    pub radius: f64,
    /// Number of subsequences mapped to this node.
    pub count: usize,
    /// Mean z-normalised subsequence of the node (length ℓ) — the pattern
    /// the Graph frame displays when a node is selected.
    pub pattern: Vec<f64>,
}

/// A k-Graph graph: nodes carry patterns, edges carry transition counts.
/// Stored as CSR — all downstream consumers (features, graphoids, anomaly
/// scoring, the Graph frame) are pure readers.
pub type PatternGraph = CsrGraph<NodePattern, f64>;

/// The stored embedding of one layer: everything needed to map *new*
/// series into the layer's graph (out-of-sample assignment).
#[derive(Debug, Clone)]
pub struct LayerEmbedding {
    /// The PCA fitted on this layer's subsequences.
    pub pca: Pca,
    /// Node polar coordinates, in graph-node-id order.
    pub nodes: Vec<RadialNode>,
    /// Polar origin of the radial scan.
    pub center: (f64, f64),
    /// Number of angular sectors.
    pub psi: usize,
    /// Subsequence stride used at fit time.
    pub stride: usize,
}

/// Everything the pipeline derives for one subsequence length ℓ.
#[derive(Debug, Clone)]
pub struct GraphLayer {
    /// Subsequence length ℓ.
    pub length: usize,
    /// The graph `G_ℓ`.
    pub graph: PatternGraph,
    /// Node path of every series (temporal order, one entry per window).
    pub paths: Vec<Vec<NodeId>>,
    /// Per-length clustering partition `L_ℓ` (filled by the pipeline).
    pub labels: Vec<usize>,
    /// The embedding, kept so new series can be routed through the graph.
    pub embedding: LayerEmbedding,
}

impl GraphLayer {
    /// Routes an arbitrary series through this layer's graph: z-normalises
    /// each (strided) window, projects it with the stored PCA and assigns
    /// it to the nearest node of its sector.
    ///
    /// Returns the node path; errors (with `None`) when the series is
    /// shorter than one window or the graph is empty.
    pub fn assign_path(&self, values: &[f64]) -> Option<Vec<NodeId>> {
        self.assign_path_from(values, 0)
    }

    /// Like [`assign_path`](Self::assign_path) but starting at window index
    /// `first_window` (window `i` covers `values[i·stride .. i·stride+ℓ]`).
    /// The streaming layer uses this to route only the windows a point
    /// append created, instead of re-projecting the whole series. Window
    /// indices past the end yield an empty path (`Some(vec![])`).
    pub fn assign_path_from(&self, values: &[f64], first_window: usize) -> Option<Vec<NodeId>> {
        if values.len() < self.length || self.graph.node_count() == 0 {
            return None;
        }
        let emb = &self.embedding;
        let assignment = NodeAssignment {
            nodes: emb.nodes.clone(),
            point_node: Vec::new(),
            center: emb.center,
            psi: emb.psi,
        };
        // One scratch buffer for every window: z-normalisation writes into
        // it and the 2-D projection reads from it, so the serve-time loop
        // allocates nothing per window. `znorm_into` + `project2` use the
        // exact arithmetic of the fit-time path, keeping routed paths
        // bit-identical to training paths.
        let mut scratch = ZnormScratch::new();
        let mut path = Vec::new();
        let mut start = first_window * emb.stride;
        while start + self.length <= values.len() {
            let z = scratch.znormed(&values[start..start + self.length]);
            let point = emb.pca.project2(z);
            path.push(NodeId(assign_point(&assignment, point) as u32));
            start += emb.stride;
        }
        Some(path)
    }
}

/// Builds `G_ℓ` and the per-series node paths from a projection and its
/// node assignment. `stride` is recorded in the layer's embedding so
/// out-of-sample routing matches fit-time extraction.
pub fn build_graph_with_stride(
    dataset: &Dataset,
    proj: &Projection,
    assign: &NodeAssignment,
    stride: usize,
) -> GraphLayer {
    // Node payloads first (graph node id i == radial-scan node i).
    let mut payloads: Vec<NodePattern> = assign
        .nodes
        .iter()
        .map(|n| NodePattern {
            sector: n.sector,
            radius: n.radius,
            count: 0,
            pattern: vec![0.0; proj.length],
        })
        .collect();

    // Accumulate per-node pattern sums and counts; one reused z-norm
    // scratch instead of a fresh Vec per window.
    let mut scratch = ZnormScratch::new();
    for (pi, &ni) in assign.point_node.iter().enumerate() {
        let r = proj.refs[pi];
        let series = dataset.series()[r.series].values();
        let sub = scratch.znormed(&series[r.start..r.start + r.len]);
        let node = &mut payloads[ni];
        node.count += 1;
        for (acc, v) in node.pattern.iter_mut().zip(sub) {
            *acc += v;
        }
    }
    for node in payloads.iter_mut() {
        if node.count > 0 {
            let c = node.count as f64;
            for v in node.pattern.iter_mut() {
                *v /= c;
            }
        }
    }

    // Node paths per series; every transition becomes one builder triple
    // (duplicates aggregate into edge weights at build time).
    let mut builder = GraphBuilder::with_capacity(assign.point_node.len());
    let mut paths: Vec<Vec<NodeId>> = Vec::with_capacity(dataset.len());
    for s in 0..dataset.len() {
        let range = proj.starts[s]..proj.starts[s + 1];
        let path: Vec<NodeId> = assign.point_node[range]
            .iter()
            .map(|&ni| NodeId(ni as u32))
            .collect();
        for w in path.windows(2) {
            let (a, b) = (w[0], w[1]);
            if a == b {
                // Self-transitions (staying in the same pattern) are not
                // informative edges; k-Graph graphs omit self loops.
                continue;
            }
            builder.add_edge(a, b, 1.0);
        }
        paths.push(path);
    }
    let graph: PatternGraph = builder.build(payloads, |acc, w| *acc += w);

    let embedding = LayerEmbedding {
        pca: proj.pca.clone(),
        nodes: assign.nodes.clone(),
        center: assign.center,
        psi: assign.psi,
        stride,
    };
    GraphLayer {
        length: proj.length,
        graph,
        paths,
        labels: Vec::new(),
        embedding,
    }
}

/// Builds `G_ℓ` with the default stride of 1. See
/// [`build_graph_with_stride`].
pub fn build_graph(dataset: &Dataset, proj: &Projection, assign: &NodeAssignment) -> GraphLayer {
    build_graph_with_stride(dataset, proj, assign, 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::embed::project_subsequences;
    use crate::nodes::radial_scan;
    use tscore::{DatasetKind, TimeSeries};

    fn toy_layer() -> (Dataset, GraphLayer) {
        let mut series = Vec::new();
        for f in [0.2f64, 0.9] {
            for p in 0..4 {
                series.push(TimeSeries::new(
                    (0..80).map(|i| ((i + p) as f64 * f).sin()).collect(),
                ));
            }
        }
        let ds = Dataset::new("toy", DatasetKind::Simulated, series);
        let proj = project_subsequences(&ds, 16, 1, 2000);
        let assign = radial_scan(&proj, 12, 128, 0.05);
        let layer = build_graph(&ds, &proj, &assign);
        (ds, layer)
    }

    #[test]
    fn paths_cover_all_series_windows() {
        let (ds, layer) = toy_layer();
        assert_eq!(layer.paths.len(), ds.len());
        for path in &layer.paths {
            assert_eq!(path.len(), 80 - 16 + 1);
        }
        assert_eq!(layer.length, 16);
    }

    #[test]
    fn edges_reference_valid_nodes_with_positive_weights() {
        let (_, layer) = toy_layer();
        assert!(
            layer.graph.edge_count() > 0,
            "graph should have transitions"
        );
        for (e, s, t, &w) in layer.graph.edges_iter() {
            assert!(s.index() < layer.graph.node_count());
            assert!(t.index() < layer.graph.node_count());
            assert!(w >= 1.0, "edge {e:?} weight {w}");
            assert_ne!(s, t, "no self loops");
        }
    }

    #[test]
    fn node_counts_sum_to_total_windows() {
        let (ds, layer) = toy_layer();
        let total: usize = layer.graph.nodes_iter().map(|(_, n)| n.count).sum();
        assert_eq!(total, ds.len() * (80 - 16 + 1));
    }

    #[test]
    fn node_patterns_are_znormed_averages() {
        let (_, layer) = toy_layer();
        for (_, node) in layer.graph.nodes_iter() {
            assert_eq!(node.pattern.len(), 16);
            assert!(node.count > 0, "no orphan nodes expected in this toy");
            // Average of z-normalised windows has near-zero mean.
            let mean: f64 = node.pattern.iter().sum::<f64>() / 16.0;
            assert!(mean.abs() < 0.2, "pattern mean {mean}");
            assert!(node.pattern.iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn edge_weights_count_transitions() {
        let (_, layer) = toy_layer();
        // Summed edge weights = number of consecutive pairs that changed
        // node.
        let total_weight: f64 = layer.graph.edges_iter().map(|(_, _, _, &w)| w).sum();
        let changes: usize = layer
            .paths
            .iter()
            .map(|p| p.windows(2).filter(|w| w[0] != w[1]).count())
            .sum();
        assert_eq!(total_weight as usize, changes);
    }

    #[test]
    fn similar_series_share_nodes() {
        let (_, layer) = toy_layer();
        // Series 0..4 come from the same generator (phase-shifted): their
        // path node sets should overlap substantially.
        let set = |p: &Vec<NodeId>| p.iter().copied().collect::<std::collections::HashSet<_>>();
        let s0 = set(&layer.paths[0]);
        let s1 = set(&layer.paths[1]);
        let inter = s0.intersection(&s1).count();
        let union = s0.union(&s1).count();
        assert!(inter as f64 / union as f64 > 0.5, "{inter}/{union}");
    }
}
