//! Stage 4 — interpretability computation and length selection.
//!
//! Two criteria rank the `M` graphs (paper §II-B):
//!
//! * **consistency** `Wc(ℓ) = ARI(L, L_ℓ)` — agreement between the final
//!   consensus labels and the per-length partition,
//! * **interpretability factor** `We(ℓ)` — mean over clusters of the
//!   maximum node exclusivity in `G_ℓ`.
//!
//! The selected length `ℓ̄` maximises `Wc(ℓ) · We(ℓ)`; its graph is the one
//! the Graph frame displays and from which graphoids are computed.

use crate::build::GraphLayer;
use crate::graphoid::ClusterStats;
use clustering::metrics::adjusted_rand_index;

/// Interpretability summary of one length.
#[derive(Debug, Clone, Copy)]
pub struct LengthScore {
    /// Subsequence length ℓ.
    pub length: usize,
    /// Consistency `Wc(ℓ)`.
    pub wc: f64,
    /// Interpretability factor `We(ℓ)`.
    pub we: f64,
}

impl LengthScore {
    /// The selection criterion `Wc · We`.
    pub fn product(&self) -> f64 {
        self.wc * self.we
    }
}

/// Consistency of one layer: `ARI(final, L_ℓ)`, clamped at 0 (a negative
/// ARI means "worse than chance", which carries no interpretive weight).
pub fn consistency(final_labels: &[usize], layer_labels: &[usize]) -> f64 {
    adjusted_rand_index(final_labels, layer_labels).max(0.0)
}

/// Interpretability factor: mean over clusters of the maximum node
/// exclusivity, computed **under the final labels** on this layer's graph.
pub fn interpretability_factor(layer: &GraphLayer, final_labels: &[usize], k: usize) -> f64 {
    if k == 0 {
        return 0.0;
    }
    let stats = ClusterStats::compute(layer, final_labels, k);
    (0..k).map(|c| stats.max_node_exclusivity(c)).sum::<f64>() / k as f64
}

/// Scores every layer and returns `(scores, best_index)` where
/// `best_index` maximises `Wc · We` (ties break toward the shorter length,
/// which is cheaper to read).
pub fn score_lengths(
    layers: &[GraphLayer],
    final_labels: &[usize],
    k: usize,
) -> (Vec<LengthScore>, usize) {
    assert!(!layers.is_empty(), "need at least one layer");
    let scores: Vec<LengthScore> = layers
        .iter()
        .map(|layer| LengthScore {
            length: layer.length,
            wc: consistency(final_labels, &layer.labels),
            we: interpretability_factor(layer, final_labels, k),
        })
        .collect();
    let mut best = 0usize;
    for (i, s) in scores.iter().enumerate() {
        if s.product() > scores[best].product() + 1e-12 {
            best = i;
        }
    }
    (scores, best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::build_graph;
    use crate::embed::project_subsequences;
    use crate::features::cluster_layer;
    use crate::nodes::radial_scan;
    use tscore::{Dataset, DatasetKind, TimeSeries};

    fn toy_layers() -> (Vec<GraphLayer>, Vec<usize>) {
        let mut series = Vec::new();
        let mut truth = Vec::new();
        for (label, f) in [0.2f64, 0.9].into_iter().enumerate() {
            for p in 0..5 {
                series.push(TimeSeries::new(
                    (0..80).map(|i| ((i + p) as f64 * f).sin()).collect(),
                ));
                truth.push(label);
            }
        }
        let ds = Dataset::new("toy", DatasetKind::Simulated, series);
        let mut layers = Vec::new();
        for len in [12usize, 24] {
            let proj = project_subsequences(&ds, len, 1, 2000);
            let assign = radial_scan(&proj, 12, 128, 0.05);
            let mut layer = build_graph(&ds, &proj, &assign);
            layer.labels = cluster_layer(&layer, 2, 5, 0, true, true);
            layers.push(layer);
        }
        (layers, truth)
    }

    #[test]
    fn consistency_perfect_and_clamped() {
        let a = vec![0, 0, 1, 1];
        assert_eq!(consistency(&a, &a), 1.0);
        // Permuted labels still perfect.
        let b = vec![1, 1, 0, 0];
        assert_eq!(consistency(&a, &b), 1.0);
        // Anti-correlated partitions clamp to 0.
        let c = vec![0, 1, 0, 1];
        assert!(consistency(&a, &c) >= 0.0);
    }

    #[test]
    fn we_in_unit_interval() {
        let (layers, truth) = toy_layers();
        for layer in &layers {
            let we = interpretability_factor(layer, &truth, 2);
            assert!((0.0..=1.0).contains(&we), "We = {we}");
            // Well-separated generators ⇒ good exclusivity.
            assert!(we > 0.5, "We = {we}");
        }
    }

    #[test]
    fn scoring_selects_argmax() {
        let (layers, truth) = toy_layers();
        let (scores, best) = score_lengths(&layers, &truth, 2);
        assert_eq!(scores.len(), 2);
        for s in &scores {
            assert!(s.wc >= 0.0 && s.wc <= 1.0);
            assert!(s.we >= 0.0 && s.we <= 1.0);
        }
        let best_product = scores[best].product();
        for s in &scores {
            assert!(best_product >= s.product() - 1e-12);
        }
    }

    #[test]
    fn degenerate_k_zero() {
        let (layers, truth) = toy_layers();
        assert_eq!(interpretability_factor(&layers[0], &truth, 0), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one layer")]
    fn empty_layers_panic() {
        score_lengths(&[], &[0], 1);
    }
}
