//! # kgraph — interpretable graph-based time series clustering
//!
//! From-scratch reproduction of **k-Graph** (Boniol, Tiano, Bonifati,
//! Palpanas — TKDE 2025), the method underlying the Graphint demo
//! (ICDE 2025). The pipeline has the three stages of the paper's Figure 1
//! plus the interpretability computation:
//!
//! 1. **Graph embedding** ([`embed`], [`nodes`], [`build`]): for each
//!    subsequence length ℓ in a set `R`, project all (z-normalised)
//!    subsequences to 2-D via PCA, extract nodes as local maxima of the
//!    radial kernel density inside ψ angular sectors, and connect nodes
//!    with edges following consecutive subsequences — yielding one directed
//!    graph `G_ℓ` per length.
//! 2. **Graph clustering** ([`features`]): per series, count crossings of
//!    every node and edge of `G_ℓ`; k-Means over those features gives a
//!    partition `L_ℓ` per length.
//! 3. **Consensus clustering** ([`consensus`]): build the consensus matrix
//!    `MC[i][j]` = fraction of lengths grouping `i` and `j` together, and
//!    run spectral clustering on it → final labels `L`.
//! 4. **Interpretability computation** ([`interpret`], [`graphoid`]):
//!    consistency `Wc(ℓ) = ARI(L, L_ℓ)` and interpretability factor
//!    `We(ℓ)` (mean over clusters of the maximum node exclusivity) select
//!    the most interpretable graph `G_ℓ̄`; node/edge representativity and
//!    exclusivity then yield the λ-graphoids and γ-graphoids that the
//!    Graphint Graph frame visualises.
//!
//! The per-length jobs of stage 1–2 run on a bounded worker pool (scoped
//! threads over disjoint output slots, at most one worker per hardware
//! thread), mirroring the "Job 0 … Job M" boxes of Figure 1. Every graph
//! `G_ℓ` is stored CSR ([`tsgraph::CsrGraph`]) and built by emitting
//! transition triples into a [`tsgraph::GraphBuilder`]; all downstream
//! stages are pure readers of the CSR view.
//!
//! Entry point: [`KGraph::fit`] → [`KGraphModel`].

pub mod anomaly;
pub mod build;
pub mod config;
pub mod consensus;
pub mod embed;
pub mod features;
pub mod graphoid;
pub mod interpret;
pub mod nodes;
pub mod pipeline;
pub mod serial;
pub mod stream;

pub use build::{GraphLayer, LayerEmbedding, NodePattern, PatternGraph};
pub use config::KGraphConfig;
pub use graphoid::{ClusterStats, Graphoid};
pub use pipeline::{KGraph, KGraphModel};
