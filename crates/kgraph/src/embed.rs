//! Stage 1a — subsequence projection.
//!
//! For one length ℓ: z-normalise every (strided) subsequence of every
//! series and project it into 2-D with PCA, "retaining the essential
//! shapes" (paper §II-A). The PCA is fitted on a bounded deterministic
//! sample so the cost stays linear in the number of subsequences.

use linalg::matrix::Matrix;
use linalg::pca::Pca;
use tscore::kernel::znorm_into;
use tscore::windows::{window_count, SubseqRef};
use tscore::Dataset;

/// The 2-D projection of all subsequences of one length.
#[derive(Debug, Clone)]
pub struct Projection {
    /// Subsequence length ℓ.
    pub length: usize,
    /// One `(x, y)` point per subsequence, in [`Self::refs`] order.
    pub points: Vec<(f64, f64)>,
    /// Which subsequence each point came from.
    pub refs: Vec<SubseqRef>,
    /// Index of the first point of each series (plus a trailing sentinel),
    /// so `points[starts[s]..starts[s+1]]` are series `s`'s points in
    /// temporal order.
    pub starts: Vec<usize>,
    /// The fitted PCA (kept for inspection in the Under-the-hood frame).
    pub pca: Pca,
}

impl Projection {
    /// Points of series `s` in temporal order.
    pub fn series_points(&self, s: usize) -> &[(f64, f64)] {
        &self.points[self.starts[s]..self.starts[s + 1]]
    }
}

/// Projects all subsequences of length `length` (stride `stride`).
///
/// `pca_sample` bounds the PCA *fit* set: subsequences are sampled evenly
/// (deterministically) when there are more. Panics if no series is long
/// enough for one window.
pub fn project_subsequences(
    dataset: &Dataset,
    length: usize,
    stride: usize,
    pca_sample: usize,
) -> Projection {
    assert!(length >= 2, "subsequence length must be >= 2");
    assert!(stride >= 1, "stride must be >= 1");
    let total: usize = dataset
        .series()
        .iter()
        .map(|s| window_count(s.len(), length, stride))
        .sum();
    assert!(total > 0, "no series admits a window of length {length}");

    // Collect z-normalised subsequences into one flat row-major buffer —
    // a single allocation instead of one Vec per window. Each row is
    // written in place by the fused kernel.
    let mut flat: Vec<f64> = vec![0.0; total * length];
    let mut refs: Vec<SubseqRef> = Vec::with_capacity(total);
    let mut starts: Vec<usize> = Vec::with_capacity(dataset.len() + 1);
    let mut n_rows = 0usize;
    for (si, series) in dataset.series().iter().enumerate() {
        starts.push(n_rows);
        let vals = series.values();
        let mut start = 0usize;
        while start + length <= vals.len() {
            znorm_into(
                &vals[start..start + length],
                &mut flat[n_rows * length..(n_rows + 1) * length],
            );
            refs.push(SubseqRef {
                series: si,
                start,
                len: length,
            });
            n_rows += 1;
            start += stride;
        }
    }
    starts.push(n_rows);
    debug_assert_eq!(n_rows, total);

    // Fit PCA on an even deterministic sample.
    let pca = if total <= pca_sample.max(8) {
        Pca::fit(&Matrix::from_vec(total, length, flat.clone()), 2)
    } else {
        let step = total as f64 / pca_sample as f64;
        let mut sample = Vec::with_capacity(pca_sample * length);
        for i in 0..pca_sample {
            let r = (i as f64 * step) as usize;
            sample.extend_from_slice(&flat[r * length..(r + 1) * length]);
        }
        Pca::fit(&Matrix::from_vec(pca_sample, length, sample), 2)
    };

    let points: Vec<(f64, f64)> = flat.chunks_exact(length).map(|r| pca.project2(r)).collect();
    Projection {
        length,
        points,
        refs,
        starts,
        pca,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tscore::{DatasetKind, TimeSeries};

    fn toy_dataset() -> Dataset {
        let mut series = Vec::new();
        for f in [0.2f64, 0.8] {
            for p in 0..3 {
                series.push(TimeSeries::new(
                    (0..60).map(|i| ((i + p) as f64 * f).sin()).collect(),
                ));
            }
        }
        Dataset::new("toy", DatasetKind::Simulated, series)
    }

    #[test]
    fn projection_counts() {
        let ds = toy_dataset();
        let proj = project_subsequences(&ds, 16, 1, 1000);
        // 6 series × (60 − 16 + 1) windows.
        assert_eq!(proj.points.len(), 6 * 45);
        assert_eq!(proj.refs.len(), proj.points.len());
        assert_eq!(proj.starts.len(), 7);
        assert_eq!(proj.series_points(0).len(), 45);
        assert_eq!(proj.length, 16);
    }

    #[test]
    fn strided_projection() {
        let ds = toy_dataset();
        let proj = project_subsequences(&ds, 16, 4, 1000);
        assert_eq!(proj.series_points(0).len(), (60 - 16) / 4 + 1);
        // Refs respect the stride.
        assert_eq!(proj.refs[1].start, 4);
    }

    #[test]
    fn refs_are_temporal_within_series() {
        let ds = toy_dataset();
        let proj = project_subsequences(&ds, 8, 1, 1000);
        for s in 0..ds.len() {
            let range = proj.starts[s]..proj.starts[s + 1];
            let refs = &proj.refs[range];
            assert!(refs.iter().all(|r| r.series == s));
            assert!(refs.windows(2).all(|w| w[1].start == w[0].start + 1));
        }
    }

    #[test]
    fn different_shapes_separate_in_projection() {
        // Two very different generators; their projected clouds should not
        // fully overlap. Compare centroid distance to cloud spread.
        let ds = toy_dataset();
        let proj = project_subsequences(&ds, 16, 1, 1000);
        let cloud_a: Vec<(f64, f64)> = (0..3)
            .flat_map(|s| proj.series_points(s).to_vec())
            .collect();
        let cloud_b: Vec<(f64, f64)> = (3..6)
            .flat_map(|s| proj.series_points(s).to_vec())
            .collect();
        let centroid = |c: &[(f64, f64)]| {
            let n = c.len() as f64;
            (
                c.iter().map(|p| p.0).sum::<f64>() / n,
                c.iter().map(|p| p.1).sum::<f64>() / n,
            )
        };
        let ca = centroid(&cloud_a);
        let cb = centroid(&cloud_b);
        let dist = ((ca.0 - cb.0).powi(2) + (ca.1 - cb.1).powi(2)).sqrt();
        assert!(dist > 0.1, "clouds should separate, centroid gap {dist}");
    }

    #[test]
    fn pca_sampling_bounds_fit_cost() {
        let ds = toy_dataset();
        // Tiny sample still produces a valid projection of all points.
        let proj = project_subsequences(&ds, 16, 1, 16);
        assert_eq!(proj.points.len(), 6 * 45);
        assert!(proj
            .points
            .iter()
            .all(|p| p.0.is_finite() && p.1.is_finite()));
    }

    #[test]
    #[should_panic(expected = "no series admits a window")]
    fn oversized_window_panics() {
        let ds = toy_dataset();
        project_subsequences(&ds, 100, 1, 100);
    }

    #[test]
    #[should_panic(expected = "length must be >= 2")]
    fn tiny_length_panics() {
        let ds = toy_dataset();
        project_subsequences(&ds, 1, 1, 100);
    }
}
