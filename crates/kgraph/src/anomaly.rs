//! Extension: Series2Graph-style subsequence anomaly scoring.
//!
//! k-Graph descends from Series2Graph (Boniol & Palpanas, PVLDB 2020),
//! which uses the same graph embedding for *anomaly detection*: a
//! subsequence is anomalous when its trajectory crosses rarely-travelled
//! edges. Since every [`GraphLayer`] already stores the embedding and the
//! transition weights, this module adds that capability on top of a fitted
//! model — the "future work" direction the demo's lineage points to.
//!
//! Scores are in `[0, 1]`: 0 = the most common transitions in the graph,
//! 1 = transitions never seen at fit time.

use crate::build::GraphLayer;
use tscore::error::TsError;
use tsgraph::NodeId;

/// Rarity of each transition along a node path.
///
/// For the transition `a → b` the score is `1 − w(a→b) / w_out(a)`, where
/// `w_out(a)` is the weight of `a`'s *modal* outgoing edge — so following
/// the most common continuation scores 0 and rare branches approach 1.
/// Transitions without an edge (never observed at fit time) score 1;
/// self-transitions score 0 (dwelling inside a pattern is handled by the
/// embedding-gap term of [`anomaly_scores`]). Output length is
/// `path.len() − 1` (empty for trivial paths).
pub fn transition_scores(layer: &GraphLayer, path: &[NodeId]) -> Vec<f64> {
    // The modal outgoing weight is a max over the node's contiguous CSR
    // weight slice; the transition itself is an O(log deg) lookup.
    transition_scores_with(
        path,
        |a, b| layer.graph.weight_between(a, b).copied(),
        |a| {
            layer
                .graph
                .out_weights(a)
                .iter()
                .copied()
                .fold(1.0f64, f64::max)
        },
    )
}

/// [`transition_scores`] generalised over the weight source: `weight`
/// returns the observed count of a transition (or `None` if never seen)
/// and `modal_out` the node's heaviest outgoing count (≥ 1). This is how
/// the streaming layer scores against a merged base+delta view without
/// materialising a compacted graph — with an empty delta both closures
/// reduce to the base graph's and the output is bit-identical to
/// [`transition_scores`].
pub fn transition_scores_with(
    path: &[NodeId],
    weight: impl Fn(NodeId, NodeId) -> Option<f64>,
    modal_out: impl Fn(NodeId) -> f64,
) -> Vec<f64> {
    if path.len() < 2 {
        return Vec::new();
    }
    path.windows(2)
        .map(|w| {
            if w[0] == w[1] {
                return 0.0;
            }
            match weight(w[0], w[1]) {
                Some(count) => 1.0 - count / modal_out(w[0]),
                None => 1.0,
            }
        })
        .collect()
}

/// Distance of each projected window to its assigned node's radius,
/// normalised by the embedding's radial scale (the median node radius):
/// `min(1, gap / scale)`. Windows whose shapes were never seen at fit time
/// project into empty regions of the embedding and score high, regardless
/// of which node they fall back to.
pub fn embedding_gap_scores(layer: &GraphLayer, values: &[f64]) -> Option<Vec<f64>> {
    if values.len() < layer.length || layer.graph.node_count() == 0 {
        return None;
    }
    let emb = &layer.embedding;
    let mut radii: Vec<f64> = emb.nodes.iter().map(|n| n.radius).collect();
    radii.sort_by(|a, b| a.partial_cmp(b).expect("NaN radius"));
    let scale = radii[radii.len() / 2].max(1e-9);
    let assignment = crate::nodes::NodeAssignment {
        nodes: emb.nodes.clone(),
        point_node: Vec::new(),
        center: emb.center,
        psi: emb.psi,
    };
    let mut scratch = tscore::kernel::ZnormScratch::new();
    let mut out = Vec::new();
    let mut start = 0usize;
    while start + layer.length <= values.len() {
        let z = scratch.znormed(&values[start..start + layer.length]);
        let point = emb.pca.project2(z);
        let node = crate::nodes::assign_point(&assignment, point);
        let dx = point.0 - emb.center.0;
        let dy = point.1 - emb.center.1;
        let r = (dx * dx + dy * dy).sqrt();
        let gap = (emb.nodes[node].radius - r).abs();
        out.push((gap / scale).min(1.0));
        start += emb.stride;
    }
    Some(out)
}

/// Anomaly score per window position of an arbitrary series.
///
/// Combines two kinds of evidence, each in `[0, 1]`:
///
/// * **transition rarity** — the trajectory crosses edges that were rare
///   (or absent) at fit time ([`transition_scores`]),
/// * **embedding gap** — the window's shape projects far from every known
///   pattern node ([`embedding_gap_scores`]); this is what catches
///   "frozen"/dwelling anomalies that produce no transitions at all.
///
/// The blend (equal weights) is smoothed with a centred moving average of
/// width `context` (≥ 1).
///
/// # Errors
///
/// * [`TsError::TooShort`] — the series is shorter than one window of the
///   layer (a caller-side problem: 4xx territory for a server),
/// * [`TsError::Degenerate`] — the layer's graph has no nodes, so no
///   series can be routed through it (a model-side problem: 5xx).
pub fn anomaly_scores(
    layer: &GraphLayer,
    values: &[f64],
    context: usize,
) -> Result<Vec<f64>, TsError> {
    if layer.graph.node_count() == 0 {
        return Err(TsError::Degenerate(
            "graph layer has no nodes; cannot route series".into(),
        ));
    }
    if values.len() < layer.length {
        return Err(TsError::TooShort {
            required: layer.length,
            actual: values.len(),
        });
    }
    let path = layer
        .assign_path(values)
        .expect("preconditions checked above");
    let trans = transition_scores(layer, &path);
    let gaps = embedding_gap_scores(layer, values).expect("preconditions checked above");
    Ok(blend_and_smooth(&trans, &gaps, context))
}

/// The scoring tail shared with the streaming path: blend transition and
/// gap evidence (equal weights) and smooth with a centred moving average
/// of width `context`. Transition `i` sits between windows `i` and `i+1`
/// and is attributed to window `i` (the last window keeps only its gap
/// evidence).
pub(crate) fn blend_and_smooth(trans: &[f64], gaps: &[f64], context: usize) -> Vec<f64> {
    if gaps.is_empty() {
        return Vec::new();
    }
    let raw: Vec<f64> = (0..gaps.len())
        .map(|i| {
            let t = if i < trans.len() { trans[i] } else { 0.0 };
            0.5 * t + 0.5 * gaps[i]
        })
        .collect();
    let context = context.max(1);
    let half = context / 2;
    (0..raw.len())
        .map(|i| {
            let lo = i.saturating_sub(half);
            let hi = (i + half + 1).min(raw.len());
            raw[lo..hi].iter().sum::<f64>() / (hi - lo) as f64
        })
        .collect()
}

/// Indices of the `k` highest-scoring positions, greedily selected with an
/// exclusion zone of `exclusion` positions around each pick (standard
/// discord-discovery post-processing).
pub fn top_anomalies(scores: &[f64], k: usize, exclusion: usize) -> Vec<usize> {
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[b].partial_cmp(&scores[a]).expect("NaN score"));
    let mut picked: Vec<usize> = Vec::new();
    for i in order {
        if picked.len() == k {
            break;
        }
        if picked.iter().all(|&p| p.abs_diff(i) > exclusion) {
            picked.push(i);
        }
    }
    picked
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::KGraphConfig;
    use crate::pipeline::KGraph;
    use tscore::{Dataset, DatasetKind, TimeSeries};

    /// Clean periodic dataset; the anomaly test injects a burst later.
    fn clean_dataset() -> Dataset {
        let series: Vec<TimeSeries> = (0..8)
            .map(|p| TimeSeries::new((0..160).map(|i| ((i + p) as f64 * 0.4).sin()).collect()))
            .collect();
        Dataset::new("clean", DatasetKind::Simulated, series)
    }

    fn fitted() -> crate::pipeline::KGraphModel {
        let cfg = KGraphConfig {
            n_lengths: 1,
            psi: 16,
            pca_sample: 600,
            n_init: 2,
            ..KGraphConfig::new(1)
        }
        .with_lengths(vec![20]);
        KGraph::new(cfg).fit(&clean_dataset())
    }

    #[test]
    fn normal_series_scores_low() {
        let model = fitted();
        let fresh: Vec<f64> = (0..160).map(|i| ((i + 3) as f64 * 0.4).sin()).collect();
        let scores = anomaly_scores(model.best(), &fresh, 5).expect("long enough");
        let mean = tscore::stats::mean(&scores);
        assert!(mean < 0.6, "normal series mean score {mean}");
    }

    #[test]
    fn injected_discord_scores_highest() {
        let model = fitted();
        // Same generator with a flat-line discord in the middle.
        let mut values: Vec<f64> = (0..160).map(|i| (i as f64 * 0.4).sin()).collect();
        for v in values.iter_mut().skip(80).take(14) {
            *v = 2.5;
        }
        let scores = anomaly_scores(model.best(), &values, 5).expect("long enough");
        let peak = tscore::stats::argmax(&scores).expect("non-empty");
        // The peak must fall inside (or right at the edges of) the
        // injected window, accounting for window length 20.
        assert!(
            (60..=96).contains(&peak),
            "discord at 80..94, peak found at {peak} (scores len {})",
            scores.len()
        );
        // And the discord region must outscore the clean region.
        let clean_mean = tscore::stats::mean(&scores[..40]);
        let discord_mean = tscore::stats::mean(&scores[70..90]);
        assert!(
            discord_mean > clean_mean + 0.1,
            "discord {discord_mean:.3} vs clean {clean_mean:.3}"
        );
    }

    #[test]
    fn transition_scores_bounds_and_lengths() {
        let model = fitted();
        let layer = model.best();
        let path = &layer.paths[0];
        let scores = transition_scores(layer, path);
        assert_eq!(scores.len(), path.len() - 1);
        assert!(scores.iter().all(|&s| (0.0..=1.0).contains(&s)));
        // Trivial paths.
        assert!(transition_scores(layer, &[]).is_empty());
        assert!(transition_scores(layer, &path[..1]).is_empty());
    }

    #[test]
    fn self_transitions_score_zero() {
        let model = fitted();
        let layer = model.best();
        let n = layer.paths[0][0];
        let scores = transition_scores(layer, &[n, n, n]);
        assert_eq!(scores, vec![0.0, 0.0]);
    }

    #[test]
    fn short_series_is_too_short_error() {
        let model = fitted();
        match anomaly_scores(model.best(), &[1.0, 2.0], 3) {
            Err(TsError::TooShort { required, actual }) => {
                assert_eq!(required, model.best().length);
                assert_eq!(actual, 2);
            }
            other => panic!("expected TooShort, got {other:?}"),
        }
    }

    #[test]
    fn top_anomalies_respect_exclusion() {
        let scores = vec![0.1, 0.9, 0.85, 0.2, 0.8, 0.1];
        let picks = top_anomalies(&scores, 2, 1);
        assert_eq!(picks[0], 1);
        // Index 2 is within the exclusion zone of 1 → next is 4.
        assert_eq!(picks[1], 4);
        // Asking for more than available returns what fits.
        let picks_all = top_anomalies(&scores, 10, 2);
        assert!(picks_all.len() <= scores.len());
        assert!(top_anomalies(&[], 3, 1).is_empty());
    }
}
