//! Stage 3 — consensus clustering.
//!
//! The consensus matrix `MC[i][j]` measures how often series `i` and `j`
//! are grouped together across the `M` per-length partitions; spectral
//! clustering on `MC` produces the final k-Graph labels (paper §II-A,
//! Figure 1(d)).

use clustering::spectral::{spectral_clustering, SpectralOptions};
use linalg::matrix::Matrix;

/// Builds the consensus matrix from `M` partitions over the same `n`
/// series: `MC[i][j] = (1/M) · |{ℓ : L_ℓ(i) == L_ℓ(j)}|`.
///
/// The matrix is symmetric with a unit diagonal. Panics if partitions have
/// inconsistent lengths or none are supplied.
pub fn consensus_matrix(partitions: &[Vec<usize>]) -> Matrix {
    assert!(!partitions.is_empty(), "need at least one partition");
    let n = partitions[0].len();
    assert!(
        partitions.iter().all(|p| p.len() == n),
        "all partitions must label the same series"
    );
    let m = partitions.len() as f64;
    let mut mc = Matrix::zeros(n, n);
    for p in partitions {
        for i in 0..n {
            for j in i..n {
                if p[i] == p[j] {
                    mc[(i, j)] += 1.0;
                }
            }
        }
    }
    for i in 0..n {
        for j in i..n {
            let v = mc[(i, j)] / m;
            mc[(i, j)] = v;
            mc[(j, i)] = v;
        }
    }
    mc
}

/// Spectral consensus: final labels from the consensus matrix.
pub fn consensus_labels(mc: &Matrix, k: usize, seed: u64) -> Vec<usize> {
    spectral_clustering(mc, SpectralOptions::new(k, seed))
}

/// k-Means consensus (ablation): clusters the *rows* of the consensus
/// matrix instead of its spectral embedding.
pub fn consensus_labels_kmeans(mc: &Matrix, k: usize, seed: u64) -> Vec<usize> {
    clustering::kmeans::KMeans::new(k, seed)
        .fit(&mc.to_rows())
        .labels
}

#[cfg(test)]
mod tests {
    use super::*;
    use clustering::metrics::adjusted_rand_index;

    #[test]
    fn consensus_of_identical_partitions_is_binary() {
        let p = vec![0, 0, 1, 1, 2];
        let mc = consensus_matrix(&[p.clone(), p.clone(), p.clone()]);
        for i in 0..5 {
            for j in 0..5 {
                let expected = if p[i] == p[j] { 1.0 } else { 0.0 };
                assert_eq!(mc[(i, j)], expected);
            }
        }
    }

    #[test]
    fn consensus_diagonal_is_one_and_symmetric() {
        let partitions = vec![vec![0, 1, 0, 1], vec![0, 0, 1, 1], vec![1, 0, 1, 0]];
        let mc = consensus_matrix(&partitions);
        assert!(mc.is_symmetric(1e-12));
        for i in 0..4 {
            assert_eq!(mc[(i, i)], 1.0);
        }
        // Values are thirds.
        assert!((mc[(0, 2)] - 2.0 / 3.0).abs() < 1e-12);
        assert!((mc[(0, 1)] - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn disagreeing_partitions_average() {
        // Partition A groups {0,1}, partition B groups {1,2}: pairs get 1/2.
        let mc = consensus_matrix(&[vec![0, 0, 1], vec![0, 1, 1]]);
        assert_eq!(mc[(0, 1)], 0.5);
        assert_eq!(mc[(1, 2)], 0.5);
        assert_eq!(mc[(0, 2)], 0.0);
    }

    #[test]
    fn spectral_consensus_recovers_majority_structure() {
        // 4 partitions agree on blocks {0..5}, {6..11}; 1 is random-ish.
        let n = 12;
        let block: Vec<usize> = (0..n).map(|i| usize::from(i >= 6)).collect();
        let noisy: Vec<usize> = (0..n).map(|i| i % 2).collect();
        let mc = consensus_matrix(&[
            block.clone(),
            block.clone(),
            block.clone(),
            block.clone(),
            noisy,
        ]);
        let labels = consensus_labels(&mc, 2, 0);
        assert!((adjusted_rand_index(&block, &labels) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn kmeans_consensus_also_recovers_blocks() {
        let n = 10;
        let block: Vec<usize> = (0..n).map(|i| usize::from(i >= 5)).collect();
        let mc = consensus_matrix(&[block.clone(), block.clone()]);
        let labels = consensus_labels_kmeans(&mc, 2, 0);
        assert!((adjusted_rand_index(&block, &labels) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one partition")]
    fn empty_partition_list_panics() {
        consensus_matrix(&[]);
    }

    #[test]
    #[should_panic(expected = "same series")]
    fn inconsistent_lengths_panic() {
        consensus_matrix(&[vec![0, 1], vec![0, 1, 2]]);
    }
}
