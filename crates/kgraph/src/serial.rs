//! Compact binary save/load for fitted [`KGraphModel`]s.
//!
//! Serving a model must not require refitting it: `fit` costs seconds to
//! minutes, while a server restart should reload its registry in
//! milliseconds. This module writes everything a fitted model holds — the
//! per-length graph layers (node patterns + CSR edge triples), the stored
//! embeddings (PCA, radial nodes), paths, partitions, consensus matrix and
//! scores — into a little-endian, length-prefixed binary format (`KGM1`).
//!
//! Graphs are stored as node payloads plus `(src, dst, weight)` edge
//! triples and rebuilt through [`tsgraph::GraphBuilder`] at load time; the
//! builder sorts and deduplicates, so the reloaded CSR is bit-identical to
//! the fitted one and every downstream consumer (scores, features,
//! graphoids, rendering) produces identical results.
//!
//! The format is deliberately dependency-free (no serde in the image) and
//! versioned by magic: readers reject unknown magics with
//! [`TsError::Parse`] instead of misinterpreting bytes.
//!
//! ## Integrity
//!
//! `KGM2` files end in a CRC-32 trailer ([`tsgraph::checksum`]) over every
//! preceding byte, verified *before* parsing so truncation and bit rot are
//! reported as corruption rather than as a confusing structural error deep
//! inside the file. Checksum-less `KGM1` files (written before the trailer
//! existed) still load. Delta state ([`write_delta_state`]) uses the same
//! trailer under its own magic, `KGD1`.

use crate::build::{GraphLayer, LayerEmbedding, NodePattern};
use crate::config::KGraphConfig;
use crate::interpret::LengthScore;
use crate::nodes::RadialNode;
use crate::pipeline::KGraphModel;
use linalg::matrix::Matrix;
use linalg::pca::Pca;
use std::path::Path;
use tscore::error::TsError;
use tsgraph::checksum::crc32;
use tsgraph::delta::DeltaGraph;
use tsgraph::{GraphBuilder, NodeId};

/// File magic of the current (checksummed) format version.
const MAGIC: &[u8; 4] = b"KGM2";

/// Legacy magic: identical body, no CRC trailer. Still readable.
const MAGIC_V1: &[u8; 4] = b"KGM1";

/// Magic of the streaming delta-state blob.
const DELTA_MAGIC: &[u8; 4] = b"KGD1";

// ---------------------------------------------------------------------------
// Primitive writer / reader
// ---------------------------------------------------------------------------
//
// Public: the streaming persistence layers (streamfit's `KGS1` session
// state, graphserve's `KGW1` write-ahead log) reuse the same primitives so
// every on-disk format in the system shares one bounds-checked decoder.

/// Appends a little-endian `u64`.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a little-endian `f64`.
pub fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a length-prefixed `f64` slice.
pub fn put_f64s(out: &mut Vec<u8>, vs: &[f64]) {
    put_u64(out, vs.len() as u64);
    for &v in vs {
        put_f64(out, v);
    }
}

/// Appends a length-prefixed `u64` sequence.
pub fn put_u64s(out: &mut Vec<u8>, vs: impl ExactSizeIterator<Item = u64>) {
    put_u64(out, vs.len() as u64);
    for v in vs {
        put_u64(out, v);
    }
}

/// Fallible fixed-width conversion: corrupt inputs become [`TsError`]
/// corruption reports, never a panic — the decoder must survive arbitrary
/// bytes.
fn array<const N: usize>(bytes: &[u8], pos: usize) -> Result<[u8; N], TsError> {
    bytes
        .try_into()
        .map_err(|_| TsError::Parse(format!("corrupt fixed-width field at byte {pos}")))
}

/// Bounds-checked little-endian reader over a byte slice.
///
/// Every accessor returns [`TsError::Parse`] on truncation or overflow;
/// length prefixes are validated against the bytes actually remaining so a
/// corrupt prefix cannot drive an out-of-memory allocation.
pub struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    /// A cursor at the start of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        Cursor { bytes, pos: 0 }
    }

    /// Current read position.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Consumes and returns the next `n` bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], TsError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| TsError::Parse(format!("model file truncated at byte {}", self.pos)))?;
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    /// Next byte.
    pub fn u8(&mut self) -> Result<u8, TsError> {
        Ok(self.take(1)?[0])
    }

    /// Next little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, TsError> {
        let pos = self.pos;
        Ok(u64::from_le_bytes(array(self.take(8)?, pos)?))
    }

    /// Next `u64`, converted to `usize`.
    pub fn usize(&mut self) -> Result<usize, TsError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| TsError::Parse(format!("length {v} overflows usize")))
    }

    /// A length prefix about to drive an allocation; bounded by the bytes
    /// actually remaining so corrupt prefixes cannot OOM the reader.
    pub fn len(&mut self, elem_bytes: usize) -> Result<usize, TsError> {
        let n = self.usize()?;
        let remaining = self.bytes.len() - self.pos;
        if n.saturating_mul(elem_bytes.max(1)) > remaining {
            return Err(TsError::Parse(format!(
                "declared length {n} exceeds remaining {remaining} bytes"
            )));
        }
        Ok(n)
    }

    /// Next little-endian `f64`.
    pub fn f64(&mut self) -> Result<f64, TsError> {
        let pos = self.pos;
        Ok(f64::from_le_bytes(array(self.take(8)?, pos)?))
    }

    /// Next length-prefixed `f64` vector.
    pub fn f64s(&mut self) -> Result<Vec<f64>, TsError> {
        let n = self.len(8)?;
        (0..n).map(|_| self.f64()).collect()
    }

    /// Next length-prefixed `u64` vector.
    pub fn u64s(&mut self) -> Result<Vec<u64>, TsError> {
        let n = self.len(8)?;
        (0..n).map(|_| self.u64()).collect()
    }

    /// Next length-prefixed `usize` vector.
    pub fn usizes(&mut self) -> Result<Vec<usize>, TsError> {
        self.u64s()?
            .into_iter()
            .map(|v| {
                usize::try_from(v).map_err(|_| TsError::Parse(format!("value {v} overflows usize")))
            })
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Model encoding
// ---------------------------------------------------------------------------

fn put_config(out: &mut Vec<u8>, cfg: &KGraphConfig) {
    put_u64(out, cfg.k as u64);
    put_u64s(out, cfg.lengths.iter().map(|&l| l as u64));
    put_u64(out, cfg.n_lengths as u64);
    put_f64(out, cfg.length_fraction_range.0);
    put_f64(out, cfg.length_fraction_range.1);
    put_u64(out, cfg.psi as u64);
    put_u64(out, cfg.kde_grid as u64);
    put_f64(out, cfg.min_density_ratio);
    put_u64(out, cfg.stride as u64);
    put_u64(out, cfg.pca_sample as u64);
    put_u64(out, cfg.n_init as u64);
    out.push(cfg.edge_features as u8);
    out.push(cfg.node_features as u8);
    out.push(cfg.parallel as u8);
    put_u64(out, cfg.seed);
}

fn read_config(c: &mut Cursor) -> Result<KGraphConfig, TsError> {
    Ok(KGraphConfig {
        k: c.usize()?,
        lengths: c.usizes()?,
        n_lengths: c.usize()?,
        length_fraction_range: (c.f64()?, c.f64()?),
        psi: c.usize()?,
        kde_grid: c.usize()?,
        min_density_ratio: c.f64()?,
        stride: c.usize()?,
        pca_sample: c.usize()?,
        n_init: c.usize()?,
        edge_features: c.u8()? != 0,
        node_features: c.u8()? != 0,
        parallel: c.u8()? != 0,
        seed: c.u64()?,
    })
}

fn put_matrix(out: &mut Vec<u8>, m: &Matrix) {
    put_u64(out, m.rows() as u64);
    put_u64(out, m.cols() as u64);
    for &v in m.as_slice() {
        put_f64(out, v);
    }
}

fn read_matrix(c: &mut Cursor) -> Result<Matrix, TsError> {
    let rows = c.usize()?;
    let cols = c.usize()?;
    let n = rows
        .checked_mul(cols)
        .ok_or_else(|| TsError::Parse("matrix shape overflow".into()))?;
    if n.saturating_mul(8) > c.bytes.len() - c.pos {
        return Err(TsError::Parse(format!(
            "matrix {rows}x{cols} exceeds remaining bytes"
        )));
    }
    let data = (0..n).map(|_| c.f64()).collect::<Result<Vec<_>, _>>()?;
    Ok(Matrix::from_vec(rows, cols, data))
}

fn put_embedding(out: &mut Vec<u8>, emb: &LayerEmbedding) {
    put_f64s(out, emb.pca.mean());
    put_matrix(out, emb.pca.components());
    put_f64s(out, emb.pca.explained_variance());
    put_f64(out, emb.pca.total_variance());
    put_u64(out, emb.nodes.len() as u64);
    for n in &emb.nodes {
        put_u64(out, n.sector as u64);
        put_f64(out, n.radius);
    }
    put_f64(out, emb.center.0);
    put_f64(out, emb.center.1);
    put_u64(out, emb.psi as u64);
    put_u64(out, emb.stride as u64);
}

fn read_embedding(c: &mut Cursor) -> Result<LayerEmbedding, TsError> {
    let mean = c.f64s()?;
    let components = read_matrix(c)?;
    let explained = c.f64s()?;
    let total = c.f64()?;
    if components.cols() != mean.len() || components.rows() != explained.len() {
        return Err(TsError::Parse("inconsistent PCA shapes".into()));
    }
    let pca = Pca::from_parts(mean, components, explained, total);
    let n_nodes = c.len(16)?;
    let nodes = (0..n_nodes)
        .map(|_| {
            Ok(RadialNode {
                sector: c.usize()?,
                radius: c.f64()?,
            })
        })
        .collect::<Result<Vec<_>, TsError>>()?;
    Ok(LayerEmbedding {
        pca,
        nodes,
        center: (c.f64()?, c.f64()?),
        psi: c.usize()?,
        stride: c.usize()?,
    })
}

fn put_layer(out: &mut Vec<u8>, layer: &GraphLayer) {
    put_u64(out, layer.length as u64);
    // Node payloads in id order.
    put_u64(out, layer.graph.node_count() as u64);
    for (_, p) in layer.graph.nodes_iter() {
        put_u64(out, p.sector as u64);
        put_f64(out, p.radius);
        put_u64(out, p.count as u64);
        put_f64s(out, &p.pattern);
    }
    // Edge triples in edge-id order (already (src, dst)-sorted).
    put_u64(out, layer.graph.edge_count() as u64);
    for (_, s, t, &w) in layer.graph.edges_iter() {
        put_u64(out, s.0 as u64);
        put_u64(out, t.0 as u64);
        put_f64(out, w);
    }
    put_u64(out, layer.paths.len() as u64);
    for path in &layer.paths {
        put_u64s(out, path.iter().map(|n| n.0 as u64));
    }
    put_u64s(out, layer.labels.iter().map(|&l| l as u64));
    put_embedding(out, &layer.embedding);
}

fn read_layer(c: &mut Cursor) -> Result<GraphLayer, TsError> {
    let length = c.usize()?;
    let n_nodes = c.len(8)?;
    let payloads = (0..n_nodes)
        .map(|_| {
            Ok(NodePattern {
                sector: c.usize()?,
                radius: c.f64()?,
                count: c.usize()?,
                pattern: c.f64s()?,
            })
        })
        .collect::<Result<Vec<_>, TsError>>()?;
    let n_edges = c.len(24)?;
    let mut builder = GraphBuilder::with_capacity(n_edges);
    for _ in 0..n_edges {
        let s = c.u64()?;
        let t = c.u64()?;
        let w = c.f64()?;
        if s >= n_nodes as u64 || t >= n_nodes as u64 {
            return Err(TsError::Parse(format!(
                "edge ({s}, {t}) references missing node (graph has {n_nodes})"
            )));
        }
        builder.add_edge(NodeId(s as u32), NodeId(t as u32), w);
    }
    // Stored edges are unique per (src, dst): the merge closure never
    // fires, and the builder's sort reproduces the fitted CSR exactly.
    let graph = builder.build(payloads, |acc, w| *acc += w);
    let n_paths = c.len(8)?;
    let paths = (0..n_paths)
        .map(|_| {
            let raw = c.u64s()?;
            raw.into_iter()
                .map(|v| {
                    if v >= n_nodes as u64 {
                        Err(TsError::Parse(format!("path node {v} out of range")))
                    } else {
                        Ok(NodeId(v as u32))
                    }
                })
                .collect::<Result<Vec<_>, TsError>>()
        })
        .collect::<Result<Vec<_>, TsError>>()?;
    let labels = c.usizes()?;
    let embedding = read_embedding(c)?;
    Ok(GraphLayer {
        length,
        graph,
        paths,
        labels,
        embedding,
    })
}

/// Encodes a fitted model into the `KGM2` byte format (CRC-32 trailer
/// over everything before it).
pub fn write_model(model: &KGraphModel) -> Vec<u8> {
    let mut out = Vec::with_capacity(4096);
    out.extend_from_slice(MAGIC);
    put_config(&mut out, &model.config);
    put_u64s(&mut out, model.labels.iter().map(|&l| l as u64));
    put_matrix(&mut out, &model.consensus);
    put_u64(&mut out, model.scores.len() as u64);
    for s in &model.scores {
        put_u64(&mut out, s.length as u64);
        put_f64(&mut out, s.wc);
        put_f64(&mut out, s.we);
    }
    put_u64(&mut out, model.best_layer as u64);
    put_u64(&mut out, model.layers.len() as u64);
    for layer in &model.layers {
        put_layer(&mut out, layer);
    }
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Strips and verifies the CRC-32 trailer of a checksummed blob, returning
/// the payload (magic included). `kind` names the format in errors.
///
/// Public: every checksummed format in the system (`KGM2`, `KGD1`,
/// streamfit's `KGS1`, graphserve's snapshots) funnels through this one
/// verifier.
pub fn verify_trailer<'a>(bytes: &'a [u8], kind: &str) -> Result<&'a [u8], TsError> {
    if bytes.len() < 8 {
        return Err(TsError::Parse(format!(
            "{kind} file truncated ({} bytes)",
            bytes.len()
        )));
    }
    let (payload, trailer) = bytes.split_at(bytes.len() - 4);
    let expected = u32::from_le_bytes(array(trailer, payload.len())?);
    let actual = crc32(payload);
    if actual != expected {
        return Err(TsError::Parse(format!(
            "{kind} checksum mismatch (stored {expected:#010x}, computed {actual:#010x}): \
             file is corrupt or truncated"
        )));
    }
    Ok(payload)
}

/// Decodes a model from `KGM2` (checksummed) or legacy `KGM1` bytes.
///
/// # Errors
///
/// [`TsError::Parse`] on a wrong magic, a CRC-32 mismatch (v2), truncation,
/// or any internal inconsistency (edge/path references outside the node
/// range, PCA shape mismatches, out-of-range layer index).
pub fn read_model(bytes: &[u8]) -> Result<KGraphModel, TsError> {
    let magic: &[u8] = bytes
        .get(..4)
        .ok_or_else(|| TsError::Parse(format!("model file truncated ({} bytes)", bytes.len())))?;
    let body = if magic == MAGIC {
        verify_trailer(bytes, "KGM2 model")?
    } else if magic == MAGIC_V1 {
        bytes
    } else {
        return Err(TsError::Parse(format!(
            "not a KGM1/KGM2 model file (magic {magic:?})"
        )));
    };
    let bytes = body;
    let mut c = Cursor::new(bytes);
    c.take(4)?; // magic, validated above
    let config = read_config(&mut c)?;
    let labels = c.usizes()?;
    let consensus = read_matrix(&mut c)?;
    let n_scores = c.len(24)?;
    let scores = (0..n_scores)
        .map(|_| {
            Ok(LengthScore {
                length: c.usize()?,
                wc: c.f64()?,
                we: c.f64()?,
            })
        })
        .collect::<Result<Vec<_>, TsError>>()?;
    let best_layer = c.usize()?;
    let n_layers = c.len(8)?;
    let layers = (0..n_layers)
        .map(|_| read_layer(&mut c))
        .collect::<Result<Vec<_>, TsError>>()?;
    if best_layer >= layers.len() {
        return Err(TsError::Parse(format!(
            "best layer {best_layer} out of range ({} layers)",
            layers.len()
        )));
    }
    if c.pos != bytes.len() {
        return Err(TsError::Parse(format!(
            "{} trailing bytes after model",
            bytes.len() - c.pos
        )));
    }
    Ok(KGraphModel {
        config,
        layers,
        consensus,
        labels,
        scores,
        best_layer,
    })
}

/// Saves a model to `path` (atomically: write to `path.tmp`, then rename).
pub fn save_model(model: &KGraphModel, path: &Path) -> Result<(), TsError> {
    let bytes = write_model(model);
    let tmp = path.with_extension("kgm.tmp");
    std::fs::write(&tmp, &bytes)
        .and_then(|_| std::fs::rename(&tmp, path))
        .map_err(|e| TsError::Parse(format!("writing {}: {e}", path.display())))
}

/// Loads a model from `path`.
pub fn load_model(path: &Path) -> Result<KGraphModel, TsError> {
    let bytes = std::fs::read(path)
        .map_err(|e| TsError::Parse(format!("reading {}: {e}", path.display())))?;
    read_model(&bytes)
}

/// Encodes per-layer streaming delta state (`KGD1`): one
/// [`DeltaGraph`] per graph layer, CRC-32 trailer included. A session can
/// persist its un-compacted transitions across restarts without touching
/// the (much larger) base model file.
pub fn write_delta_state(deltas: &[DeltaGraph<f64>]) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    out.extend_from_slice(DELTA_MAGIC);
    put_u64(&mut out, deltas.len() as u64);
    for d in deltas {
        put_u64(&mut out, d.node_count() as u64);
        put_u64(&mut out, d.edge_count() as u64);
        for (s, t, &w) in d.iter() {
            put_u64(&mut out, s.0 as u64);
            put_u64(&mut out, t.0 as u64);
            put_f64(&mut out, w);
        }
    }
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Decodes `KGD1` delta state. The aggregated edges round-trip exactly;
/// the raw (pre-aggregation) ingest counter is diagnostic-only and resets
/// to the number of distinct edges.
pub fn read_delta_state(bytes: &[u8]) -> Result<Vec<DeltaGraph<f64>>, TsError> {
    let magic: &[u8] = bytes
        .get(..4)
        .ok_or_else(|| TsError::Parse(format!("delta file truncated ({} bytes)", bytes.len())))?;
    if magic != DELTA_MAGIC {
        return Err(TsError::Parse(format!(
            "not a KGD1 delta file (magic {magic:?})"
        )));
    }
    let payload = verify_trailer(bytes, "KGD1 delta")?;
    let mut c = Cursor::new(payload);
    c.take(4)?; // magic, validated above
    let n_layers = c.len(16)?;
    let mut deltas = Vec::with_capacity(n_layers);
    for _ in 0..n_layers {
        let nodes = c.usize()?;
        let n_edges = c.len(24)?;
        let mut triples = Vec::with_capacity(n_edges);
        for _ in 0..n_edges {
            let s = c.u64()?;
            let t = c.u64()?;
            let w = c.f64()?;
            if s >= nodes as u64 || t >= nodes as u64 {
                return Err(TsError::Parse(format!(
                    "delta edge ({s}, {t}) references missing node (delta has {nodes})"
                )));
            }
            triples.push((NodeId(s as u32), NodeId(t as u32), w));
        }
        let mut delta = DeltaGraph::new(nodes);
        delta.ingest(triples, |acc, w| *acc += w);
        deltas.push(delta);
    }
    if c.pos != payload.len() {
        return Err(TsError::Parse(format!(
            "{} trailing bytes after delta state",
            payload.len() - c.pos
        )));
    }
    Ok(deltas)
}

/// Approximate heap footprint of a fitted model in bytes — the currency of
/// the serving layer's eviction budget. Counts the dominant flat arrays
/// (CSR adjacency, patterns, paths, consensus); small fixed overheads are
/// ignored.
pub fn model_approx_bytes(model: &KGraphModel) -> usize {
    let mut bytes = std::mem::size_of::<KGraphModel>();
    bytes += model.consensus.as_slice().len() * 8;
    bytes += model.labels.len() * 8;
    bytes += model.scores.len() * std::mem::size_of::<LengthScore>();
    for layer in &model.layers {
        // CSR: out/in offsets, targets, sources, weights, in-edge ids.
        let e = layer.graph.edge_count();
        let n = layer.graph.node_count();
        bytes += 2 * (n + 1) * 4 + e * (4 + 4 + 8 + 4 + 4);
        for (_, p) in layer.graph.nodes_iter() {
            bytes += std::mem::size_of::<NodePattern>() + p.pattern.len() * 8;
        }
        for path in &layer.paths {
            bytes += path.len() * 4 + std::mem::size_of::<Vec<NodeId>>();
        }
        bytes += layer.labels.len() * 8;
        let emb = &layer.embedding;
        bytes += emb.pca.mean().len() * 8
            + emb.pca.components().as_slice().len() * 8
            + emb.pca.explained_variance().len() * 8
            + emb.nodes.len() * std::mem::size_of::<RadialNode>();
    }
    bytes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::anomaly::anomaly_scores;
    use crate::pipeline::KGraph;
    use tscore::{Dataset, DatasetKind, TimeSeries};

    fn toy_dataset() -> Dataset {
        let mut series = Vec::new();
        for f in [0.2f64, 0.9] {
            for p in 0..5 {
                series.push(TimeSeries::new(
                    (0..80).map(|i| ((i + p) as f64 * f).sin()).collect(),
                ));
            }
        }
        Dataset::new("toy", DatasetKind::Simulated, series)
    }

    fn fitted() -> KGraphModel {
        let cfg = KGraphConfig {
            n_lengths: 2,
            psi: 10,
            pca_sample: 400,
            n_init: 2,
            ..KGraphConfig::new(2)
        };
        KGraph::new(cfg).fit(&toy_dataset())
    }

    #[test]
    fn round_trip_preserves_everything_observable() {
        let model = fitted();
        let bytes = write_model(&model);
        let loaded = read_model(&bytes).expect("round trip");

        assert_eq!(loaded.labels, model.labels);
        assert_eq!(loaded.best_layer, model.best_layer);
        assert_eq!(loaded.consensus.as_slice(), model.consensus.as_slice());
        assert_eq!(loaded.layers.len(), model.layers.len());
        for (a, b) in loaded.layers.iter().zip(&model.layers) {
            assert_eq!(a.length, b.length);
            assert_eq!(a.labels, b.labels);
            assert_eq!(a.paths, b.paths);
            assert_eq!(a.graph.node_count(), b.graph.node_count());
            assert_eq!(a.graph.edge_count(), b.graph.edge_count());
            for (ea, eb) in a.graph.edges_iter().zip(b.graph.edges_iter()) {
                assert_eq!((ea.1, ea.2, ea.3), (eb.1, eb.2, eb.3));
            }
        }

        // Fit → save → load → *identical* scores: the acceptance check.
        let fresh: Vec<f64> = (0..80).map(|i| (i as f64 * 0.2).sin()).collect();
        let a = anomaly_scores(model.best(), &fresh, 5).unwrap();
        let b = anomaly_scores(loaded.best(), &fresh, 5).unwrap();
        assert_eq!(a, b, "anomaly scores must be bit-identical after reload");
        assert_eq!(model.predict(&fresh), loaded.predict(&fresh));
        let fa = crate::features::feature_matrix(model.best(), true, true);
        let fb = crate::features::feature_matrix(loaded.best(), true, true);
        assert_eq!(fa, fb, "feature matrices must be bit-identical");
    }

    #[test]
    fn save_and_load_file() {
        let model = fitted();
        let dir = std::env::temp_dir().join(format!("kgm-serial-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("toy.kgm");
        save_model(&model, &path).expect("save");
        let loaded = load_model(&path).expect("load");
        assert_eq!(loaded.labels, model.labels);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_inputs_are_parse_errors() {
        let model = fitted();
        let bytes = write_model(&model);
        // Wrong magic.
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(matches!(read_model(&bad), Err(TsError::Parse(_))));
        // Truncations at every prefix must error, never panic.
        for cut in [0, 3, 4, 10, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                matches!(read_model(&bytes[..cut]), Err(TsError::Parse(_))),
                "cut at {cut} must be a parse error"
            );
        }
        // Trailing garbage.
        let mut long = bytes.clone();
        long.push(0);
        assert!(matches!(read_model(&long), Err(TsError::Parse(_))));
    }

    #[test]
    fn bit_flips_are_caught_by_the_checksum() {
        let model = fitted();
        let bytes = write_model(&model);
        assert_eq!(&bytes[..4], b"KGM2");
        // Flip one bit at a spread of positions: every flip must be
        // reported as corruption (checksum mismatch), never panic and
        // never load.
        for pos in [4usize, 100, bytes.len() / 2, bytes.len() - 5] {
            let mut bad = bytes.clone();
            bad[pos] ^= 0x01;
            match read_model(&bad) {
                Err(TsError::Parse(msg)) => {
                    assert!(msg.contains("checksum"), "flip at {pos}: {msg}")
                }
                other => panic!("flip at {pos} must fail, got {other:?}"),
            }
        }
    }

    #[test]
    fn legacy_v1_files_still_load() {
        let model = fitted();
        let bytes = write_model(&model);
        // A v1 file is exactly the v2 body (no trailer) under the old
        // magic.
        let mut v1 = bytes[..bytes.len() - 4].to_vec();
        v1[..4].copy_from_slice(b"KGM1");
        let loaded = read_model(&v1).expect("legacy file must load");
        assert_eq!(loaded.labels, model.labels);
        // But a corrupt v1 file is still caught by the structural checks.
        assert!(read_model(&v1[..v1.len() / 2]).is_err());
    }

    #[test]
    fn delta_state_round_trips() {
        use tsgraph::delta::DeltaGraph;
        use tsgraph::NodeId;
        let mut a: DeltaGraph<f64> = DeltaGraph::new(5);
        a.ingest(
            [
                (NodeId(0), NodeId(1), 1.0),
                (NodeId(0), NodeId(1), 1.0),
                (NodeId(4), NodeId(2), 1.0),
            ],
            |acc, w| *acc += w,
        );
        let b: DeltaGraph<f64> = DeltaGraph::new(3);
        let bytes = write_delta_state(&[a.clone(), b]);
        let loaded = read_delta_state(&bytes).expect("round trip");
        assert_eq!(loaded.len(), 2);
        assert_eq!(loaded[0].node_count(), 5);
        assert_eq!(loaded[0].edge_count(), 2);
        assert_eq!(loaded[0].weight_between(NodeId(0), NodeId(1)), Some(&2.0));
        assert_eq!(loaded[1].node_count(), 3);
        assert!(loaded[1].is_empty());

        // Corruption and truncation are parse errors.
        let mut bad = bytes.clone();
        let mid = bad.len() / 2;
        bad[mid] ^= 0x08;
        assert!(matches!(read_delta_state(&bad), Err(TsError::Parse(_))));
        for cut in [0, 3, bytes.len() - 1] {
            assert!(read_delta_state(&bytes[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn delta_state_truncated_at_every_prefix_is_an_error() {
        use tsgraph::delta::DeltaGraph;
        use tsgraph::NodeId;
        let mut a: DeltaGraph<f64> = DeltaGraph::new(7);
        a.ingest(
            (0..6).map(|i| (NodeId(i % 7), NodeId((i * 3) % 7), i as f64)),
            |acc, w| *acc += w,
        );
        let bytes = write_delta_state(&[a, DeltaGraph::new(2)]);
        // Every proper prefix must be rejected cleanly — a torn write can
        // leave the file cut at any byte.
        for cut in 0..bytes.len() {
            assert!(
                matches!(read_delta_state(&bytes[..cut]), Err(TsError::Parse(_))),
                "cut at {cut} must be a parse error"
            );
        }
    }

    #[test]
    fn delta_state_bit_flips_are_caught_by_the_checksum() {
        use tsgraph::delta::DeltaGraph;
        use tsgraph::NodeId;
        let mut a: DeltaGraph<f64> = DeltaGraph::new(4);
        a.ingest(
            [(NodeId(0), NodeId(3), 1.5), (NodeId(2), NodeId(1), -0.5)],
            |acc, w| *acc += w,
        );
        let bytes = write_delta_state(&[a]);
        assert_eq!(&bytes[..4], b"KGD1");
        for pos in 0..bytes.len() {
            for bit in [0x01u8, 0x80] {
                let mut bad = bytes.clone();
                bad[pos] ^= bit;
                match read_delta_state(&bad) {
                    Err(TsError::Parse(msg)) => assert!(
                        msg.contains("checksum") || msg.contains("magic") || pos < 4,
                        "flip at {pos}: unexpected message {msg}"
                    ),
                    other => panic!("flip bit {bit:#x} at {pos} must fail, got {other:?}"),
                }
            }
        }
    }

    #[test]
    fn approx_bytes_is_plausible() {
        let model = fitted();
        let approx = model_approx_bytes(&model);
        let exact = write_model(&model).len();
        // The estimate tracks the serialized size within a small factor.
        assert!(approx > exact / 4, "approx {approx} vs serialized {exact}");
        assert!(approx < exact * 4, "approx {approx} vs serialized {exact}");
    }
}
