//! The end-to-end k-Graph pipeline (paper Figure 1).

use crate::build::GraphLayer;
use crate::config::KGraphConfig;
use crate::consensus::{consensus_labels, consensus_matrix};
use crate::embed::project_subsequences;
use crate::features::cluster_layer;
use crate::graphoid::{gamma_graphoid, lambda_graphoid, ClusterStats, Graphoid};
use crate::interpret::{score_lengths, LengthScore};
use crate::nodes::radial_scan;
use linalg::matrix::Matrix;
use tscore::Dataset;

/// The k-Graph estimator. Construct with a [`KGraphConfig`], call
/// [`KGraph::fit`].
#[derive(Debug, Clone)]
pub struct KGraph {
    /// Pipeline configuration.
    pub config: KGraphConfig,
}

/// A fitted k-Graph model: the final partition plus every intermediate
/// artefact the Graphint frames visualise.
#[derive(Debug)]
pub struct KGraphModel {
    /// The configuration used.
    pub config: KGraphConfig,
    /// One graph layer per subsequence length, ascending by length; each
    /// holds `G_ℓ`, the node paths and the per-length partition `L_ℓ`.
    pub layers: Vec<GraphLayer>,
    /// The consensus matrix `MC`.
    pub consensus: Matrix,
    /// Final labels `L`.
    pub labels: Vec<usize>,
    /// Per-length `(Wc, We)` scores.
    pub scores: Vec<LengthScore>,
    /// Index (into [`Self::layers`]) of the selected length ℓ̄.
    pub best_layer: usize,
}

impl KGraph {
    /// Creates an estimator with the given configuration.
    pub fn new(config: KGraphConfig) -> Self {
        KGraph { config }
    }

    /// Convenience: canonical configuration for `k` clusters.
    pub fn with_k(k: usize, seed: u64) -> Self {
        KGraph {
            config: KGraphConfig::new(k).with_seed(seed),
        }
    }

    /// Runs the full pipeline on a dataset.
    ///
    /// Panics when the dataset is empty or no valid subsequence length
    /// exists (series shorter than 5 points).
    pub fn fit(&self, dataset: &Dataset) -> KGraphModel {
        assert!(!dataset.is_empty(), "cannot fit on an empty dataset");
        let cfg = &self.config;
        let lengths = cfg.resolve_lengths(dataset.min_len());
        assert!(
            !lengths.is_empty(),
            "no valid subsequence lengths for min series length {}",
            dataset.min_len()
        );

        // Stages 1–2, one job per length (Figure 1's Job 0 … Job M),
        // executed by a bounded worker pool: the lengths and their output
        // slots are chunked, each worker owns one disjoint slot chunk and
        // writes results lock-free through its exclusive borrow. Short
        // lengths are the cheap ones and lengths ascend, so interleaving
        // is unnecessary — chunks cost within ~2x of each other.
        let mut layers: Vec<GraphLayer> = if cfg.parallel && lengths.len() > 1 {
            let workers = std::thread::available_parallelism()
                .map_or(1, |p| p.get())
                .min(lengths.len());
            let chunk = lengths.len().div_ceil(workers);
            let mut slots: Vec<Option<GraphLayer>> = (0..lengths.len()).map(|_| None).collect();
            crossbeam::thread::scope(|scope| {
                for (slot_chunk, len_chunk) in slots.chunks_mut(chunk).zip(lengths.chunks(chunk)) {
                    scope.spawn(move |_| {
                        for (slot, &length) in slot_chunk.iter_mut().zip(len_chunk) {
                            *slot = Some(fit_layer(dataset, cfg, length));
                        }
                    });
                }
            })
            .expect("layer job panicked");
            slots
                .into_iter()
                .map(|s| s.expect("every slot filled"))
                .collect()
        } else {
            lengths
                .iter()
                .map(|&length| fit_layer(dataset, cfg, length))
                .collect()
        };

        // Stage 3: consensus across the per-length partitions.
        let partitions: Vec<Vec<usize>> = layers.iter().map(|l| l.labels.clone()).collect();
        let consensus = consensus_matrix(&partitions);
        let labels = consensus_labels(&consensus, cfg.k, cfg.seed);

        // Stage 4: score lengths and select ℓ̄.
        let (scores, best_layer) = score_lengths(&layers, &labels, cfg.k);

        // Keep layers sorted by length for stable reporting.
        debug_assert!(layers.windows(2).all(|w| w[0].length <= w[1].length));
        layers.shrink_to_fit();
        KGraphModel {
            config: cfg.clone(),
            layers,
            consensus,
            labels,
            scores,
            best_layer,
        }
    }
}

/// Length-normalised node-crossing histogram of a path.
fn path_histogram(path: &[tsgraph::NodeId], n_nodes: usize) -> Vec<f64> {
    let mut h = vec![0.0f64; n_nodes];
    for node in path {
        h[node.index()] += 1.0;
    }
    let total = path.len().max(1) as f64;
    for v in h.iter_mut() {
        *v /= total;
    }
    h
}

/// One per-length job: embed → nodes → graph → features → k-Means.
fn fit_layer(dataset: &Dataset, cfg: &KGraphConfig, length: usize) -> GraphLayer {
    let proj = project_subsequences(dataset, length, cfg.stride, cfg.pca_sample);
    let assign = radial_scan(&proj, cfg.psi, cfg.kde_grid, cfg.min_density_ratio);
    let mut layer = crate::build::build_graph_with_stride(dataset, &proj, &assign, cfg.stride);
    layer.labels = cluster_layer(
        &layer,
        cfg.k,
        cfg.n_init,
        cfg.seed_for_length(length),
        cfg.node_features,
        cfg.edge_features,
    );
    layer
}

impl KGraphModel {
    /// The selected ("most interpretable") layer `G_ℓ̄`.
    pub fn best(&self) -> &GraphLayer {
        &self.layers[self.best_layer]
    }

    /// The selected subsequence length ℓ̄.
    pub fn best_length(&self) -> usize {
        self.best().length
    }

    /// Number of clusters of the final partition.
    pub fn k(&self) -> usize {
        self.config.k
    }

    /// Crossing statistics of the selected layer under the final labels.
    pub fn best_stats(&self) -> ClusterStats {
        ClusterStats::compute(self.best(), &self.labels, self.config.k)
    }

    /// λ-graphoid of `cluster` on the selected layer.
    pub fn lambda_graphoid(&self, cluster: usize, lambda: f64) -> Graphoid {
        lambda_graphoid(&self.best_stats(), self.best(), cluster, lambda)
    }

    /// γ-graphoid of `cluster` on the selected layer.
    pub fn gamma_graphoid(&self, cluster: usize, gamma: f64) -> Graphoid {
        gamma_graphoid(&self.best_stats(), self.best(), cluster, gamma)
    }

    /// γ-graphoids for every cluster at once (shares one stats pass).
    pub fn all_gamma_graphoids(&self, gamma: f64) -> Vec<Graphoid> {
        let stats = self.best_stats();
        (0..self.config.k)
            .map(|c| gamma_graphoid(&stats, self.best(), c, gamma))
            .collect()
    }

    /// Predicts the cluster of a **new** series (out-of-sample).
    ///
    /// The series is routed through the selected graph `G_ℓ̄` using the
    /// stored embedding and turned into the same node-crossing feature
    /// vector the per-length clustering used; the nearest per-cluster mean
    /// feature vector (under the final labels, length-normalised) wins.
    ///
    /// Returns `None` when the series is shorter than the selected
    /// subsequence length.
    pub fn predict(&self, values: &[f64]) -> Option<usize> {
        let layer = self.best();
        let path = layer.assign_path(values)?;
        let n_nodes = layer.graph.node_count();
        // Length-normalised node-crossing histogram of the query.
        let query = path_histogram(&path, n_nodes);
        // Per-cluster mean histograms of the training series.
        let k = self.config.k;
        let mut centroids = vec![vec![0.0f64; n_nodes]; k];
        let mut sizes = vec![0usize; k];
        for (train_path, &label) in layer.paths.iter().zip(&self.labels) {
            sizes[label] += 1;
            let h = path_histogram(train_path, n_nodes);
            for (c, v) in centroids[label].iter_mut().zip(&h) {
                *c += v;
            }
        }
        for (c, &s) in centroids.iter_mut().zip(&sizes) {
            if s > 0 {
                for v in c.iter_mut() {
                    *v /= s as f64;
                }
            }
        }
        (0..k)
            .filter(|&c| sizes[c] > 0)
            .min_by(|&a, &b| {
                let da: f64 = centroids[a]
                    .iter()
                    .zip(&query)
                    .map(|(x, y)| (x - y) * (x - y))
                    .sum();
                let db: f64 = centroids[b]
                    .iter()
                    .zip(&query)
                    .map(|(x, y)| (x - y) * (x - y))
                    .sum();
                da.partial_cmp(&db).expect("NaN distance")
            })
            .or(Some(0))
    }

    /// Predicts every series of a dataset. Series shorter than ℓ̄ fall back
    /// to cluster 0.
    pub fn predict_dataset(&self, dataset: &Dataset) -> Vec<usize> {
        dataset
            .series()
            .iter()
            .map(|s| self.predict(s.values()).unwrap_or(0))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clustering::metrics::adjusted_rand_index;
    use tscore::{DatasetKind, TimeSeries};

    /// Two clearly distinct subsequence vocabularies.
    fn toy_dataset() -> Dataset {
        let mut series = Vec::new();
        let mut labels = Vec::new();
        for (label, f) in [0.2f64, 0.9].into_iter().enumerate() {
            for p in 0..6 {
                series.push(TimeSeries::new(
                    (0..80).map(|i| ((i + p) as f64 * f).sin()).collect(),
                ));
                labels.push(label);
            }
        }
        Dataset::with_labels("toy", DatasetKind::Simulated, series, labels).unwrap()
    }

    fn quick_config(k: usize) -> KGraphConfig {
        KGraphConfig {
            n_lengths: 3,
            psi: 12,
            pca_sample: 500,
            n_init: 3,
            ..KGraphConfig::new(k)
        }
    }

    #[test]
    fn end_to_end_recovers_clusters() {
        let ds = toy_dataset();
        let model = KGraph::new(quick_config(2)).fit(&ds);
        let ari = adjusted_rand_index(ds.labels().unwrap(), &model.labels);
        assert!(ari > 0.8, "ARI {ari}");
    }

    #[test]
    fn model_artifacts_consistent() {
        let ds = toy_dataset();
        let model = KGraph::new(quick_config(2)).fit(&ds);
        assert_eq!(model.labels.len(), ds.len());
        assert_eq!(model.consensus.shape(), (ds.len(), ds.len()));
        assert!(model.consensus.is_symmetric(1e-12));
        assert_eq!(model.scores.len(), model.layers.len());
        assert!(model.best_layer < model.layers.len());
        assert_eq!(model.best_length(), model.layers[model.best_layer].length);
        assert_eq!(model.k(), 2);
        for layer in &model.layers {
            assert_eq!(layer.labels.len(), ds.len());
            assert_eq!(layer.paths.len(), ds.len());
            assert!(layer.graph.node_count() > 0);
        }
    }

    #[test]
    fn parallel_and_serial_agree() {
        let ds = toy_dataset();
        let mut cfg = quick_config(2);
        cfg.parallel = true;
        let par = KGraph::new(cfg.clone()).fit(&ds);
        cfg.parallel = false;
        let ser = KGraph::new(cfg).fit(&ds);
        assert_eq!(par.labels, ser.labels);
        assert_eq!(par.best_layer, ser.best_layer);
        for (a, b) in par.layers.iter().zip(&ser.layers) {
            assert_eq!(a.labels, b.labels);
            assert_eq!(a.graph.node_count(), b.graph.node_count());
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let ds = toy_dataset();
        let a = KGraph::new(quick_config(2).with_seed(5)).fit(&ds);
        let b = KGraph::new(quick_config(2).with_seed(5)).fit(&ds);
        assert_eq!(a.labels, b.labels);
        assert_eq!(a.best_layer, b.best_layer);
    }

    #[test]
    fn graphoids_from_model() {
        let ds = toy_dataset();
        let model = KGraph::new(quick_config(2)).fit(&ds);
        let g0 = model.gamma_graphoid(0, 0.7);
        let g1 = model.gamma_graphoid(1, 0.7);
        assert!(!g0.nodes.is_empty(), "cluster 0 needs exclusive nodes");
        assert!(!g1.nodes.is_empty(), "cluster 1 needs exclusive nodes");
        // Exclusive node sets must be disjoint above 0.5.
        let set0: std::collections::HashSet<_> = g0.nodes.iter().collect();
        assert!(g1.nodes.iter().all(|n| !set0.contains(n)));
        let all = model.all_gamma_graphoids(0.7);
        assert_eq!(all.len(), 2);
        let lam = model.lambda_graphoid(0, 0.5);
        assert!(!lam.nodes.is_empty());
    }

    #[test]
    fn scores_have_valid_ranges() {
        let ds = toy_dataset();
        let model = KGraph::new(quick_config(2)).fit(&ds);
        for s in &model.scores {
            assert!((0.0..=1.0).contains(&s.wc), "Wc {s:?}");
            assert!((0.0..=1.0).contains(&s.we), "We {s:?}");
        }
        // Best layer attains the max product.
        let best = model.scores[model.best_layer].product();
        assert!(model.scores.iter().all(|s| best >= s.product() - 1e-12));
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn empty_dataset_panics() {
        let ds = Dataset::new("e", DatasetKind::Other, vec![]);
        KGraph::with_k(2, 0).fit(&ds);
    }

    #[test]
    fn single_length_configuration() {
        let ds = toy_dataset();
        let cfg = KGraphConfig {
            parallel: true,
            ..quick_config(2)
        }
        .with_lengths(vec![16]);
        let model = KGraph::new(cfg).fit(&ds);
        assert_eq!(model.layers.len(), 1);
        assert_eq!(model.best_layer, 0);
    }

    #[test]
    fn assign_path_reproduces_training_paths() {
        let ds = toy_dataset();
        let model = KGraph::new(quick_config(2)).fit(&ds);
        let layer = model.best();
        // Routing a *training* series through the stored embedding must
        // reproduce the path computed at fit time exactly.
        for (i, series) in ds.series().iter().enumerate().take(4) {
            let path = layer.assign_path(series.values()).expect("long enough");
            assert_eq!(path, layer.paths[i], "series {i} path mismatch");
        }
    }

    #[test]
    fn predict_matches_fit_labels_in_sample() {
        let ds = toy_dataset();
        let model = KGraph::new(quick_config(2)).fit(&ds);
        let predicted = model.predict_dataset(&ds);
        let agreement = adjusted_rand_index(&model.labels, &predicted);
        assert!(agreement > 0.8, "in-sample predict ARI {agreement}");
    }

    #[test]
    fn predict_generalises_to_new_series() {
        let ds = toy_dataset();
        let model = KGraph::new(quick_config(2)).fit(&ds);
        // Unseen phase shifts of the same two generators.
        for (label_gen, f) in [0.2f64, 0.9].into_iter().enumerate() {
            let fresh: Vec<f64> = (0..80).map(|i| ((i + 17) as f64 * f).sin()).collect();
            let pred = model.predict(&fresh).expect("long enough");
            // Find the model's cluster for this generator from a training
            // member and compare.
            let train_idx = label_gen * 6; // 6 per class in toy_dataset
            assert_eq!(
                pred, model.labels[train_idx],
                "generator {label_gen} predicted into the wrong cluster"
            );
        }
    }

    #[test]
    fn predict_short_series_is_none() {
        let ds = toy_dataset();
        let model = KGraph::new(quick_config(2)).fit(&ds);
        let tiny = vec![0.0; model.best_length() - 1];
        assert_eq!(model.predict(&tiny), None);
        // predict_dataset falls back to 0 for the same case.
        let mini = Dataset::new("mini", DatasetKind::Other, vec![TimeSeries::new(tiny)]);
        assert_eq!(model.predict_dataset(&mini), vec![0]);
    }
}
