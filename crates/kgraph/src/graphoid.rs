//! Graphoids: representativity, exclusivity and interpretable subgraphs.
//!
//! For a cluster `C_i` and a node `N` (paper §II):
//!
//! * **representativity** `|N|_{C_i}` — fraction of `C_i`'s series that
//!   cross `N`,
//! * **exclusivity** `Pr_{C_i}(N)` — fraction of *all* series crossing `N`
//!   that belong to `C_i`.
//!
//! The **λ-graphoid** of `C_i` keeps nodes/edges with representativity ≥ λ;
//! the **γ-graphoid** keeps those with exclusivity ≥ γ. The same
//! definitions apply to edges.

use crate::build::{GraphLayer, PatternGraph};
use tsgraph::{EdgeId, NodeId};

/// Per-cluster crossing statistics of one layer's graph.
#[derive(Debug, Clone)]
pub struct ClusterStats {
    /// Number of clusters.
    pub k: usize,
    /// `node_crossings[c][n]` — series of cluster `c` crossing node `n`.
    pub node_crossings: Vec<Vec<usize>>,
    /// `edge_crossings[c][e]` — series of cluster `c` crossing edge `e`.
    pub edge_crossings: Vec<Vec<usize>>,
    /// Cluster sizes.
    pub cluster_sizes: Vec<usize>,
}

impl ClusterStats {
    /// Computes crossing statistics for `layer` under the partition
    /// `labels` (values in `0..k`).
    pub fn compute(layer: &GraphLayer, labels: &[usize], k: usize) -> ClusterStats {
        assert_eq!(
            labels.len(),
            layer.paths.len(),
            "labels must cover all series"
        );
        assert!(k >= 1, "k must be >= 1");
        let n_nodes = layer.graph.node_count();
        let n_edges = layer.graph.edge_count();
        let mut node_crossings = vec![vec![0usize; n_nodes]; k];
        let mut edge_crossings = vec![vec![0usize; n_edges]; k];
        let mut cluster_sizes = vec![0usize; k];
        // A series "crosses" a node/edge once regardless of repetition.
        // Dedup via generation-stamped scratch allocated once: a slot is
        // "seen in this series" iff its stamp equals the current
        // generation, so no per-series allocation or O(n+e) clearing.
        let mut node_gen = vec![0u32; n_nodes];
        let mut edge_gen = vec![0u32; n_edges];
        for (gen, (path, &label)) in layer.paths.iter().zip(labels).enumerate() {
            assert!(label < k, "label {label} out of range 0..{k}");
            cluster_sizes[label] += 1;
            let gen = gen as u32 + 1;
            for node in path {
                let slot = &mut node_gen[node.index()];
                if *slot != gen {
                    *slot = gen;
                    node_crossings[label][node.index()] += 1;
                }
            }
            for w in path.windows(2) {
                if w[0] == w[1] {
                    continue;
                }
                if let Some(e) = layer.graph.edge_id(w[0], w[1]) {
                    let slot = &mut edge_gen[e.index()];
                    if *slot != gen {
                        *slot = gen;
                        edge_crossings[label][e.index()] += 1;
                    }
                }
            }
        }
        ClusterStats {
            k,
            node_crossings,
            edge_crossings,
            cluster_sizes,
        }
    }

    /// Representativity of node `n` in cluster `c` ∈ [0, 1].
    pub fn node_representativity(&self, c: usize, n: usize) -> f64 {
        if self.cluster_sizes[c] == 0 {
            return 0.0;
        }
        self.node_crossings[c][n] as f64 / self.cluster_sizes[c] as f64
    }

    /// Exclusivity of node `n` in cluster `c` ∈ [0, 1].
    pub fn node_exclusivity(&self, c: usize, n: usize) -> f64 {
        let total: usize = (0..self.k).map(|ci| self.node_crossings[ci][n]).sum();
        if total == 0 {
            return 0.0;
        }
        self.node_crossings[c][n] as f64 / total as f64
    }

    /// Representativity of edge `e` in cluster `c` ∈ [0, 1].
    pub fn edge_representativity(&self, c: usize, e: usize) -> f64 {
        if self.cluster_sizes[c] == 0 {
            return 0.0;
        }
        self.edge_crossings[c][e] as f64 / self.cluster_sizes[c] as f64
    }

    /// Exclusivity of edge `e` in cluster `c` ∈ [0, 1].
    pub fn edge_exclusivity(&self, c: usize, e: usize) -> f64 {
        let total: usize = (0..self.k).map(|ci| self.edge_crossings[ci][e]).sum();
        if total == 0 {
            return 0.0;
        }
        self.edge_crossings[c][e] as f64 / total as f64
    }

    /// Maximum node exclusivity of cluster `c` (0 for empty graphs) — the
    /// ingredient of the interpretability factor `We`.
    pub fn max_node_exclusivity(&self, c: usize) -> f64 {
        (0..self.node_crossings[c].len())
            .map(|n| self.node_exclusivity(c, n))
            .fold(0.0, f64::max)
    }
}

/// An interpretable subgraph of one cluster.
#[derive(Debug, Clone)]
pub struct Graphoid {
    /// The cluster this graphoid describes.
    pub cluster: usize,
    /// Threshold used (λ for representativity, γ for exclusivity).
    pub threshold: f64,
    /// Selected nodes.
    pub nodes: Vec<NodeId>,
    /// Selected edges.
    pub edges: Vec<EdgeId>,
}

impl Graphoid {
    /// Whether the graphoid is empty (no nodes and no edges).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty() && self.edges.is_empty()
    }

    /// Materialises the graphoid as a standalone graph (nodes cloned from
    /// the parent; only edges whose endpoints are both selected survive —
    /// by construction of the thresholds this is usually all of them).
    pub fn extract(&self, graph: &PatternGraph) -> PatternGraph {
        let keep: std::collections::HashSet<usize> = self.nodes.iter().map(|n| n.index()).collect();
        let (sub, _) = graph.filter_nodes(|id, _| keep.contains(&id.index()));
        sub
    }
}

/// λ-graphoid of a cluster: nodes/edges with representativity ≥ λ.
pub fn lambda_graphoid(
    stats: &ClusterStats,
    layer: &GraphLayer,
    cluster: usize,
    lambda: f64,
) -> Graphoid {
    let nodes = (0..layer.graph.node_count())
        .filter(|&n| stats.node_representativity(cluster, n) >= lambda)
        .map(|n| NodeId(n as u32))
        .collect();
    let edges = (0..layer.graph.edge_count())
        .filter(|&e| stats.edge_representativity(cluster, e) >= lambda)
        .map(|e| EdgeId(e as u32))
        .collect();
    Graphoid {
        cluster,
        threshold: lambda,
        nodes,
        edges,
    }
}

/// γ-graphoid of a cluster: nodes/edges with exclusivity ≥ γ.
pub fn gamma_graphoid(
    stats: &ClusterStats,
    layer: &GraphLayer,
    cluster: usize,
    gamma: f64,
) -> Graphoid {
    let nodes = (0..layer.graph.node_count())
        .filter(|&n| stats.node_exclusivity(cluster, n) >= gamma)
        .map(|n| NodeId(n as u32))
        .collect();
    let edges = (0..layer.graph.edge_count())
        .filter(|&e| stats.edge_exclusivity(cluster, e) >= gamma)
        .map(|e| EdgeId(e as u32))
        .collect();
    Graphoid {
        cluster,
        threshold: gamma,
        nodes,
        edges,
    }
}

/// Scenario-2 helper ("find the correct value of γ and λ so we have at
/// least one colored node per cluster"): the best `(λ, γ)` pair, searched
/// on a joint grid, such that **every** cluster keeps at least one node
/// satisfying *both* thresholds simultaneously (that is the colouring rule
/// of the Graph frame). Pairs are ranked by `λ + γ`, ties broken toward
/// larger γ (exclusivity is the more informative axis).
pub fn auto_thresholds(stats: &ClusterStats, layer: &GraphLayer, grid: usize) -> (f64, f64) {
    let grid = grid.max(2);
    let joint_ok = |lambda: f64, gamma: f64| -> bool {
        (0..stats.k).all(|c| {
            (0..layer.graph.node_count()).any(|n| {
                stats.node_representativity(c, n) >= lambda && stats.node_exclusivity(c, n) >= gamma
            })
        })
    };
    let mut best = (0.0, 0.0);
    let mut best_key = (-1.0, -1.0);
    for li in 0..=grid {
        let lambda = li as f64 / grid as f64;
        for gi in 0..=grid {
            let gamma = gi as f64 / grid as f64;
            let key = (lambda + gamma, gamma);
            if key <= best_key {
                continue;
            }
            if joint_ok(lambda, gamma) {
                best = (lambda, gamma);
                best_key = key;
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::build_graph;
    use crate::embed::project_subsequences;
    use crate::nodes::radial_scan;
    use tscore::{Dataset, DatasetKind, TimeSeries};

    fn toy() -> (GraphLayer, Vec<usize>) {
        let mut series = Vec::new();
        let mut labels = Vec::new();
        for (label, f) in [0.2f64, 0.9].into_iter().enumerate() {
            for p in 0..5 {
                series.push(TimeSeries::new(
                    (0..80).map(|i| ((i + p) as f64 * f).sin()).collect(),
                ));
                labels.push(label);
            }
        }
        let ds = Dataset::new("toy", DatasetKind::Simulated, series);
        let proj = project_subsequences(&ds, 16, 1, 2000);
        let assign = radial_scan(&proj, 12, 128, 0.05);
        (build_graph(&ds, &proj, &assign), labels)
    }

    #[test]
    fn stats_bounds_and_sums() {
        let (layer, labels) = toy();
        let stats = ClusterStats::compute(&layer, &labels, 2);
        assert_eq!(stats.cluster_sizes, vec![5, 5]);
        for n in 0..layer.graph.node_count() {
            let mut excl_sum = 0.0;
            let mut crossed = 0usize;
            for c in 0..2 {
                let r = stats.node_representativity(c, n);
                let e = stats.node_exclusivity(c, n);
                assert!((0.0..=1.0).contains(&r));
                assert!((0.0..=1.0).contains(&e));
                excl_sum += e;
                crossed += stats.node_crossings[c][n];
            }
            if crossed > 0 {
                // Exclusivities partition the crossing set.
                assert!((excl_sum - 1.0).abs() < 1e-12);
            } else {
                assert_eq!(excl_sum, 0.0);
            }
        }
    }

    #[test]
    fn edge_stats_bounds() {
        let (layer, labels) = toy();
        let stats = ClusterStats::compute(&layer, &labels, 2);
        for e in 0..layer.graph.edge_count() {
            for c in 0..2 {
                assert!((0.0..=1.0).contains(&stats.edge_representativity(c, e)));
                assert!((0.0..=1.0).contains(&stats.edge_exclusivity(c, e)));
            }
        }
    }

    #[test]
    fn lambda_monotone() {
        let (layer, labels) = toy();
        let stats = ClusterStats::compute(&layer, &labels, 2);
        let loose = lambda_graphoid(&stats, &layer, 0, 0.2);
        let tight = lambda_graphoid(&stats, &layer, 0, 0.8);
        assert!(tight.nodes.len() <= loose.nodes.len());
        assert!(tight.edges.len() <= loose.edges.len());
        // Subset relation.
        for n in &tight.nodes {
            assert!(loose.nodes.contains(n));
        }
    }

    #[test]
    fn gamma_monotone() {
        let (layer, labels) = toy();
        let stats = ClusterStats::compute(&layer, &labels, 2);
        let loose = gamma_graphoid(&stats, &layer, 1, 0.3);
        let tight = gamma_graphoid(&stats, &layer, 1, 0.9);
        assert!(tight.nodes.len() <= loose.nodes.len());
        for n in &tight.nodes {
            assert!(loose.nodes.contains(n));
        }
    }

    #[test]
    fn zero_threshold_keeps_everything() {
        let (layer, labels) = toy();
        let stats = ClusterStats::compute(&layer, &labels, 2);
        let g = lambda_graphoid(&stats, &layer, 0, 0.0);
        assert_eq!(g.nodes.len(), layer.graph.node_count());
        assert_eq!(g.edges.len(), layer.graph.edge_count());
        assert!(!g.is_empty());
    }

    #[test]
    fn distinct_generators_have_exclusive_nodes() {
        let (layer, labels) = toy();
        let stats = ClusterStats::compute(&layer, &labels, 2);
        // Each cluster must own at least one highly exclusive node — the
        // core interpretability claim.
        for c in 0..2 {
            let max_excl = stats.max_node_exclusivity(c);
            assert!(max_excl > 0.8, "cluster {c} max exclusivity {max_excl}");
        }
    }

    #[test]
    fn auto_thresholds_give_nonempty_graphoids() {
        let (layer, labels) = toy();
        let stats = ClusterStats::compute(&layer, &labels, 2);
        let (lambda, gamma) = auto_thresholds(&stats, &layer, 20);
        assert!(lambda > 0.0);
        assert!(gamma > 0.0);
        for c in 0..2 {
            assert!(!lambda_graphoid(&stats, &layer, c, lambda).nodes.is_empty());
            assert!(!gamma_graphoid(&stats, &layer, c, gamma).nodes.is_empty());
        }
    }

    #[test]
    fn graphoid_extraction_produces_subgraph() {
        let (layer, labels) = toy();
        let stats = ClusterStats::compute(&layer, &labels, 2);
        let g = gamma_graphoid(&stats, &layer, 0, 0.7);
        let sub = g.extract(&layer.graph);
        assert_eq!(sub.node_count(), g.nodes.len());
        assert!(sub.edge_count() <= layer.graph.edge_count());
    }

    #[test]
    #[should_panic(expected = "labels must cover")]
    fn label_mismatch_panics() {
        let (layer, _) = toy();
        ClusterStats::compute(&layer, &[0, 1], 2);
    }
}
