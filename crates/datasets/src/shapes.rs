//! UCR-like dataset families beyond the three classic synthetic benchmarks.
//!
//! Each generator produces a labelled [`Dataset`] tagged with the UCR-style
//! [`DatasetKind`] that Graphint's Benchmark frame filters on. The families
//! were designed so that different *methods* win on different families —
//! that heterogeneity is what the benchmark box plots visualise:
//!
//! * [`trace_like`] — transient oscillations after class-specific events
//!   (sensor; motifs at class-specific positions: k-Graph territory),
//! * [`gunpoint_like`] — smooth unimodal motions differing in width/峰
//!   symmetry (motion; subtle raw-shape differences),
//! * [`ecg_like`] — PQRST-style beats with class-specific anomalies (ECG),
//! * [`device_like`] — daily load profiles with class-specific on/off
//!   blocks (device; level-based, easy for raw methods),
//! * [`chirp_like`] — frequency sweeps with class-specific sweep rates
//!   (sensor; spectral structure),
//! * [`seismic_like`] — random walks with class-specific event bursts
//!   (sensor; noisy, hard),
//! * [`spectro_like`] — smooth mixture-of-Gaussian curves (spectro).

use crate::noise::{add_into, ar1, gaussian_bump, gaussian_noise, randn, random_walk};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tscore::{Dataset, DatasetKind, TimeSeries};

fn build(
    name: &str,
    kind: DatasetKind,
    per_class: usize,
    classes: usize,
    mut gen: impl FnMut(usize, &mut StdRng) -> Vec<f64>,
    seed: u64,
) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut series = Vec::with_capacity(per_class * classes);
    let mut labels = Vec::with_capacity(per_class * classes);
    for rep in 0..per_class {
        for label in 0..classes {
            let mut ts = TimeSeries::new(gen(label, &mut rng));
            ts.set_name(format!("{name}-{label}-{rep}"));
            series.push(ts);
            labels.push(label);
        }
    }
    Dataset::with_labels(name, kind, series, labels).expect("labels match by construction")
}

/// Trace-like (4 classes): a calm AR(1) baseline interrupted by a
/// class-specific transient — early ringing, late ringing, a slow swell or
/// a sharp dip. Length `n`, `per_class` series per class.
pub fn trace_like(per_class: usize, n: usize, seed: u64) -> Dataset {
    build(
        "TraceLike",
        DatasetKind::Sensor,
        per_class,
        4,
        move |label, rng| {
            let mut s = ar1(rng, n, 0.5, 0.15);
            let jitter = rng.gen_range(-(n as f64) * 0.03..(n as f64) * 0.03);
            match label {
                0 => {
                    // Early damped ringing.
                    let c = n as f64 * 0.25 + jitter;
                    for (i, v) in s.iter_mut().enumerate() {
                        let t = i as f64 - c;
                        if t >= 0.0 {
                            *v += 3.0 * (-t / (n as f64 * 0.08)).exp() * (t * 0.8).sin();
                        }
                    }
                }
                1 => {
                    // Late damped ringing.
                    let c = n as f64 * 0.65 + jitter;
                    for (i, v) in s.iter_mut().enumerate() {
                        let t = i as f64 - c;
                        if t >= 0.0 {
                            *v += 3.0 * (-t / (n as f64 * 0.08)).exp() * (t * 0.8).sin();
                        }
                    }
                }
                2 => {
                    // Slow swell in the middle.
                    add_into(
                        &mut s,
                        &gaussian_bump(n, n as f64 * 0.5 + jitter, n as f64 * 0.15, 2.5),
                    );
                }
                _ => {
                    // Sharp dip.
                    add_into(
                        &mut s,
                        &gaussian_bump(n, n as f64 * 0.5 + jitter, n as f64 * 0.03, -4.0),
                    );
                }
            }
            s
        },
        seed,
    )
}

/// Gun-point-like (2 classes): a smooth raise-hold-lower motion; class 0 is
/// symmetric, class 1 overshoots on the way down (the "gun" dip).
pub fn gunpoint_like(per_class: usize, n: usize, seed: u64) -> Dataset {
    build(
        "GunPointLike",
        DatasetKind::Motion,
        per_class,
        2,
        move |label, rng| {
            let rise = n as f64 * rng.gen_range(0.2..0.3);
            let fall = n as f64 * rng.gen_range(0.7..0.8);
            let width = n as f64 * 0.06;
            let mut s: Vec<f64> = (0..n)
                .map(|i| {
                    let t = i as f64;
                    let up = 1.0 / (1.0 + (-(t - rise) / width).exp());
                    let down = 1.0 / (1.0 + (-(t - fall) / width).exp());
                    2.0 * (up - down)
                })
                .collect();
            if label == 1 {
                // Overshoot dip right after lowering.
                add_into(&mut s, &gaussian_bump(n, fall + width * 2.0, width, -0.8));
            }
            add_into(&mut s, &gaussian_noise(rng, n, 0.05));
            s
        },
        seed,
    )
}

/// ECG-like (3 classes): synthetic PQRST beats repeated across the series;
/// class 0 normal, class 1 has depressed ST segments, class 2 has premature
/// (early, wide) R peaks every other beat.
pub fn ecg_like(per_class: usize, n: usize, seed: u64) -> Dataset {
    build(
        "EcgLike",
        DatasetKind::Ecg,
        per_class,
        3,
        move |label, rng| {
            let beat_len = (n / 4).max(24);
            let mut s = gaussian_noise(rng, n, 0.05);
            let mut beat_idx = 0usize;
            let mut pos = rng.gen_range(0..beat_len / 2);
            while pos + beat_len <= n {
                let b = pos as f64;
                let l = beat_len as f64;
                // P wave, QRS complex, T wave as bumps.
                add_into(&mut s, &gaussian_bump(n, b + 0.15 * l, 0.04 * l, 0.25));
                add_into(&mut s, &gaussian_bump(n, b + 0.38 * l, 0.015 * l, -0.3));
                let premature = label == 2 && beat_idx % 2 == 1;
                let r_center = if premature {
                    b + 0.34 * l
                } else {
                    b + 0.42 * l
                };
                let r_width = if premature { 0.05 * l } else { 0.025 * l };
                add_into(&mut s, &gaussian_bump(n, r_center, r_width, 2.2));
                add_into(&mut s, &gaussian_bump(n, b + 0.47 * l, 0.02 * l, -0.35));
                let t_amp = 0.5;
                add_into(&mut s, &gaussian_bump(n, b + 0.68 * l, 0.07 * l, t_amp));
                if label == 1 {
                    // ST depression between QRS and T.
                    add_into(&mut s, &gaussian_bump(n, b + 0.56 * l, 0.06 * l, -0.45));
                }
                beat_idx += 1;
                pos += beat_len;
            }
            s
        },
        seed,
    )
}

/// Device-like (3 classes): base load plus class-specific on/off blocks —
/// morning block, evening block, or twin short spikes.
pub fn device_like(per_class: usize, n: usize, seed: u64) -> Dataset {
    build(
        "DeviceLike",
        DatasetKind::Device,
        per_class,
        3,
        move |label, rng| {
            let mut s: Vec<f64> = gaussian_noise(rng, n, 0.1);
            for v in s.iter_mut() {
                *v += 0.5; // standby load
            }
            let block = |s: &mut Vec<f64>, from: usize, to: usize, level: f64| {
                for v in s[from..to.min(n)].iter_mut() {
                    *v += level;
                }
            };
            let j = rng.gen_range(0..n / 12 + 1);
            match label {
                0 => block(&mut s, n / 6 + j, n / 2 + j, 2.0),
                1 => block(&mut s, n / 2 + j, 5 * n / 6 + j, 2.0),
                _ => {
                    block(&mut s, n / 5 + j, n / 5 + n / 12 + j, 3.0);
                    block(&mut s, 3 * n / 5 + j, 3 * n / 5 + n / 12 + j, 3.0);
                }
            }
            s
        },
        seed,
    )
}

/// Chirp-like (3 classes): linear frequency sweeps with class-specific
/// start/end frequencies (slow→slow, slow→fast, fast→slow).
pub fn chirp_like(per_class: usize, n: usize, seed: u64) -> Dataset {
    build(
        "ChirpLike",
        DatasetKind::Sensor,
        per_class,
        3,
        move |label, rng| {
            let (f0, f1) = match label {
                0 => (0.02, 0.05),
                1 => (0.02, 0.25),
                _ => (0.25, 0.02),
            };
            let phase0 = rng.gen_range(0.0..std::f64::consts::TAU);
            let mut phase = phase0;
            let mut s = Vec::with_capacity(n);
            for i in 0..n {
                let frac = i as f64 / n as f64;
                let f = f0 + (f1 - f0) * frac;
                phase += std::f64::consts::TAU * f;
                s.push(phase.sin() + randn(rng) * 0.1);
            }
            s
        },
        seed,
    )
}

/// Seismic-like (2 classes): a drifting random walk; class 1 additionally
/// carries a burst of high-frequency energy at a random position.
pub fn seismic_like(per_class: usize, n: usize, seed: u64) -> Dataset {
    build(
        "SeismicLike",
        DatasetKind::Sensor,
        per_class,
        2,
        move |label, rng| {
            let mut s = random_walk(rng, n, 0.3);
            if label == 1 {
                let onset = rng.gen_range(n / 4..3 * n / 4);
                let dur = n / 6;
                for (t, v) in s[onset..(onset + dur).min(n)].iter_mut().enumerate() {
                    let t = t as f64;
                    let envelope = (-t / (dur as f64 / 3.0)).exp();
                    *v += 4.0 * envelope * (t * 1.9).sin();
                }
            }
            s
        },
        seed,
    )
}

/// Spectro-like (4 classes): smooth absorption curves — mixtures of 2–3
/// Gaussian "bands" whose positions are class-specific.
pub fn spectro_like(per_class: usize, n: usize, seed: u64) -> Dataset {
    build(
        "SpectroLike",
        DatasetKind::Spectro,
        per_class,
        4,
        move |label, rng| {
            let mut s = gaussian_noise(rng, n, 0.02);
            let nf = n as f64;
            let bands: &[(f64, f64, f64)] = match label {
                0 => &[(0.25, 0.05, 1.0), (0.7, 0.08, 0.6)],
                1 => &[(0.35, 0.05, 1.0), (0.7, 0.08, 0.6)],
                2 => &[(0.25, 0.05, 1.0), (0.55, 0.04, 0.9)],
                _ => &[(0.5, 0.12, 0.8)],
            };
            for &(c, w, a) in bands {
                let jc = c + rng.gen_range(-0.02..0.02);
                let amp = a * rng.gen_range(0.85..1.15);
                add_into(&mut s, &gaussian_bump(n, jc * nf, w * nf, amp));
            }
            s
        },
        seed,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use tscore::stats;

    type GenFn = Box<dyn Fn(u64) -> Dataset>;

    #[test]
    fn all_generators_shape_and_determinism() {
        let gens: Vec<(&str, GenFn)> = vec![
            ("trace", Box::new(|s| trace_like(5, 100, s))),
            ("gunpoint", Box::new(|s| gunpoint_like(5, 100, s))),
            ("ecg", Box::new(|s| ecg_like(5, 120, s))),
            ("device", Box::new(|s| device_like(5, 96, s))),
            ("chirp", Box::new(|s| chirp_like(5, 100, s))),
            ("seismic", Box::new(|s| seismic_like(5, 100, s))),
            ("spectro", Box::new(|s| spectro_like(5, 100, s))),
        ];
        for (name, g) in gens {
            let a = g(7);
            let b = g(7);
            assert!(!a.is_empty(), "{name} empty");
            assert!(a.is_equal_length(), "{name} ragged");
            assert!(a.n_classes() >= 2, "{name} classes");
            assert_eq!(
                a.series()[0].values(),
                b.series()[0].values(),
                "{name} not deterministic"
            );
            for s in a.series() {
                assert!(
                    s.values().iter().all(|v| v.is_finite()),
                    "{name} non-finite"
                );
            }
        }
    }

    #[test]
    fn trace_classes_differ_in_event_position() {
        let d = trace_like(20, 100, 0);
        // Class 0 events early, class 1 late: compare energy in halves.
        let energy = |xs: &[f64]| xs.iter().map(|v| v * v).sum::<f64>();
        let mut early_front = 0.0;
        let mut late_front = 0.0;
        for (s, &l) in d.series().iter().zip(d.labels().unwrap()) {
            let front = energy(&s.values()[..50]);
            let back = energy(&s.values()[50..]);
            if l == 0 {
                early_front += front / (front + back);
            } else if l == 1 {
                late_front += front / (front + back);
            }
        }
        assert!(early_front > late_front, "{early_front} vs {late_front}");
    }

    #[test]
    fn gunpoint_dip_only_in_class1() {
        let d = gunpoint_like(10, 120, 1);
        let mut min0: f64 = f64::INFINITY;
        let mut min1: f64 = f64::INFINITY;
        for (s, &l) in d.series().iter().zip(d.labels().unwrap()) {
            let m = stats::min(s.values());
            if l == 0 {
                min0 = min0.min(m);
            } else {
                min1 = min1.min(m);
            }
        }
        assert!(min1 < min0 - 0.3, "class 1 should dip: {min1} vs {min0}");
    }

    #[test]
    fn device_classes_active_in_different_windows() {
        let d = device_like(10, 96, 2);
        let mut m0 = 0.0;
        let mut m1 = 0.0;
        for (s, &l) in d.series().iter().zip(d.labels().unwrap()) {
            let first_half = stats::mean(&s.values()[..48]);
            let second_half = stats::mean(&s.values()[48..]);
            if l == 0 {
                m0 += first_half - second_half;
            } else if l == 1 {
                m1 += first_half - second_half;
            }
        }
        assert!(m0 > 0.0, "class 0 loads early");
        assert!(m1 < 0.0, "class 1 loads late");
    }

    #[test]
    fn chirp_frequencies_differ() {
        let d = chirp_like(5, 128, 0);
        // Mean crossings approximate frequency: class 1 (→fast) should have
        // more crossings than class 0 (slow).
        let mut c0 = 0.0;
        let mut c1 = 0.0;
        for (s, &l) in d.series().iter().zip(d.labels().unwrap()) {
            let crossings = stats::mean_crossings(s.values()) as f64;
            if l == 0 {
                c0 += crossings;
            } else if l == 1 {
                c1 += crossings;
            }
        }
        assert!(c1 > c0 * 1.5, "{c1} vs {c0}");
    }

    #[test]
    fn seismic_burst_increases_roughness() {
        let d = seismic_like(15, 128, 0);
        let roughness =
            |xs: &[f64]| -> f64 { xs.windows(2).map(|w| (w[1] - w[0]).abs()).sum::<f64>() };
        let mut r0 = 0.0;
        let mut r1 = 0.0;
        for (s, &l) in d.series().iter().zip(d.labels().unwrap()) {
            if l == 0 {
                r0 += roughness(s.values());
            } else {
                r1 += roughness(s.values());
            }
        }
        assert!(r1 > r0, "{r1} vs {r0}");
    }

    #[test]
    fn spectro_smooth_curves() {
        let d = spectro_like(5, 100, 0);
        for s in d.series() {
            // Smoothness: adjacent deltas stay small relative to range.
            let range = stats::max(s.values()) - stats::min(s.values());
            let max_delta = s
                .values()
                .windows(2)
                .map(|w| (w[1] - w[0]).abs())
                .fold(0.0f64, f64::max);
            assert!(
                max_delta < range * 0.5,
                "not smooth: {max_delta} vs {range}"
            );
        }
    }
}
