//! # datasets — labelled time series dataset generators and loaders
//!
//! The Graphint demo runs on UCR-archive datasets. The archive is not
//! redistributable inside this repository, so this crate provides:
//!
//! * **exact implementations of the classically synthetic UCR datasets** —
//!   Cylinder-Bell-Funnel ([`cbf`]), Two Patterns ([`two_patterns`]) and
//!   Synthetic Control ([`control`]) follow their published generative
//!   definitions,
//! * **UCR-like families** ([`shapes`]) spanning the Benchmark frame's
//!   filter dimensions (dataset type, series length, #classes, #series):
//!   trace-like transients, gun-point-like motions, ECG-like beats, device
//!   load profiles, chirps, seismic events and spectrograph-like curves,
//! * a [`registry`] with a default benchmark collection,
//! * a [`ucr`] TSV loader for real UCR data when a copy is available.
//!
//! Every generator is deterministic given its seed.

pub mod cbf;
pub mod control;
pub mod noise;
pub mod registry;
pub mod shapes;
pub mod two_patterns;
pub mod ucr;

pub use registry::{default_collection, quick_collection, DatasetSpec};
