//! UCR archive TSV loader.
//!
//! UCR distributes datasets as `<Name>_TRAIN.tsv` / `<Name>_TEST.tsv` with
//! one series per line: the class label first, then the values, separated
//! by tabs. When a local copy of the archive exists, this loader lets the
//! harness run on real data instead of the synthetic collection.

use std::collections::HashMap;
use std::io::BufReader;
use std::path::Path;
use tscore::{Dataset, DatasetKind, TimeSeries, TsError};

/// Parses UCR TSV content: `label \t v1 \t v2 …` per line.
///
/// Labels may be arbitrary integers (UCR uses 1-based and sometimes −1/1);
/// they are compacted to `0..k` in first-appearance order.
pub fn parse_ucr_tsv(content: &str, name: &str, kind: DatasetKind) -> Result<Dataset, TsError> {
    let mut series = Vec::new();
    let mut raw_labels: Vec<i64> = Vec::new();
    for (lineno, line) in content.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let mut fields = line.split(['\t', ',', ' ']).filter(|f| !f.is_empty());
        let label: i64 = fields
            .next()
            .ok_or_else(|| TsError::Parse(format!("line {}: empty", lineno + 1)))?
            .parse()
            .map_err(|e| TsError::Parse(format!("line {}: bad label: {e}", lineno + 1)))?;
        let values: Result<Vec<f64>, _> = fields.map(str::parse::<f64>).collect();
        let values =
            values.map_err(|e| TsError::Parse(format!("line {}: bad value: {e}", lineno + 1)))?;
        if values.is_empty() {
            return Err(TsError::Parse(format!("line {}: no values", lineno + 1)));
        }
        series.push(TimeSeries::new(values));
        raw_labels.push(label);
    }
    // Compact labels in first-appearance order.
    let mut map: HashMap<i64, usize> = HashMap::new();
    let mut labels = Vec::with_capacity(raw_labels.len());
    for l in raw_labels {
        let next = map.len();
        labels.push(*map.entry(l).or_insert(next));
    }
    Dataset::with_labels(name, kind, series, labels)
}

/// Loads a UCR TSV file from disk.
pub fn load_ucr_file(path: &Path, kind: DatasetKind) -> Result<Dataset, TsError> {
    let file = std::fs::File::open(path)
        .map_err(|e| TsError::Parse(format!("{}: {e}", path.display())))?;
    let mut content = String::new();
    let mut reader = BufReader::new(file);
    use std::io::Read;
    reader
        .read_to_string(&mut content)
        .map_err(|e| TsError::Parse(format!("{}: {e}", path.display())))?;
    let name = path
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("ucr")
        .to_string();
    parse_ucr_tsv(&content, &name, kind)
}

/// Loads and concatenates `<dir>/<name>/<name>_TRAIN.tsv` and `_TEST.tsv`
/// (the usual layout of an extracted UCR archive); either file alone works.
pub fn load_ucr_dataset(archive_dir: &Path, name: &str) -> Result<Dataset, TsError> {
    let base = archive_dir.join(name);
    let train = base.join(format!("{name}_TRAIN.tsv"));
    let test = base.join(format!("{name}_TEST.tsv"));
    let mut content = String::new();
    let mut found = false;
    for p in [&train, &test] {
        if p.exists() {
            content.push_str(
                &std::fs::read_to_string(p)
                    .map_err(|e| TsError::Parse(format!("{}: {e}", p.display())))?,
            );
            content.push('\n');
            found = true;
        }
    }
    if !found {
        return Err(TsError::Parse(format!(
            "no TRAIN/TEST tsv found under {}",
            base.display()
        )));
    }
    parse_ucr_tsv(&content, name, DatasetKind::Other)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_tab_separated() {
        let content = "1\t0.5\t0.6\t0.7\n2\t1.5\t1.6\t1.7\n1\t0.1\t0.2\t0.3\n";
        let d = parse_ucr_tsv(content, "toy", DatasetKind::Other).unwrap();
        assert_eq!(d.len(), 3);
        assert_eq!(d.n_classes(), 2);
        assert_eq!(d.labels(), Some(&[0, 1, 0][..]));
        assert_eq!(d.series()[1].values(), &[1.5, 1.6, 1.7]);
    }

    #[test]
    fn parses_negative_and_sparse_labels() {
        let content = "-1 0.5 0.6\n1 1.5 1.6\n-1 0.0 0.1\n";
        let d = parse_ucr_tsv(content, "toy", DatasetKind::Other).unwrap();
        assert_eq!(d.labels(), Some(&[0, 1, 0][..]));
    }

    #[test]
    fn skips_blank_lines() {
        let content = "1\t0.5\t0.6\n\n2\t1.5\t1.6\n";
        let d = parse_ucr_tsv(content, "toy", DatasetKind::Other).unwrap();
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_ucr_tsv("abc\t1.0\n", "bad", DatasetKind::Other).is_err());
        assert!(parse_ucr_tsv("1\tnotanumber\n", "bad", DatasetKind::Other).is_err());
        assert!(parse_ucr_tsv("1\n", "bad", DatasetKind::Other).is_err());
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("graphint-ucr-test");
        std::fs::create_dir_all(dir.join("Toy")).unwrap();
        std::fs::write(dir.join("Toy/Toy_TRAIN.tsv"), "1\t0.1\t0.2\n2\t0.9\t1.0\n").unwrap();
        std::fs::write(dir.join("Toy/Toy_TEST.tsv"), "2\t0.8\t0.9\n").unwrap();
        let d = load_ucr_dataset(&dir, "Toy").unwrap();
        assert_eq!(d.len(), 3);
        assert_eq!(d.n_classes(), 2);
        let single = load_ucr_file(&dir.join("Toy/Toy_TRAIN.tsv"), DatasetKind::Other).unwrap();
        assert_eq!(single.len(), 2);
        assert!(load_ucr_dataset(&dir, "Missing").is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
