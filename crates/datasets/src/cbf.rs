//! Cylinder–Bell–Funnel (Saito 1994), the canonical synthetic time series
//! classification benchmark, following the published generative model:
//!
//! * cylinder: `c(t) = (6 + η) · 𝟙[a ≤ t ≤ b] + ε(t)`
//! * bell:     `b(t) = (6 + η) · 𝟙[a ≤ t ≤ b] · (t − a)/(b − a) + ε(t)`
//! * funnel:   `f(t) = (6 + η) · 𝟙[a ≤ t ≤ b] · (b − t)/(b − a) + ε(t)`
//!
//! with `a ~ U[16, 32]`, `b − a ~ U[32, 96]`, `η, ε(t) ~ N(0, 1)` for the
//! classic length of 128.

use crate::noise::randn;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tscore::{Dataset, DatasetKind, TimeSeries};

/// The three CBF classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CbfClass {
    /// Plateau shape.
    Cylinder,
    /// Rising ramp shape.
    Bell,
    /// Falling ramp shape.
    Funnel,
}

/// Generates one CBF series of length `n` (classically 128).
pub fn cbf_series(class: CbfClass, n: usize, rng: &mut StdRng) -> Vec<f64> {
    // Onset and duration scale with n so other lengths stay sensible.
    let scale = n as f64 / 128.0;
    let a = rng.gen_range(16.0 * scale..32.0 * scale);
    let dur = rng.gen_range(32.0 * scale..96.0 * scale);
    let b = (a + dur).min(n as f64 - 1.0);
    let eta = randn(rng);
    (0..n)
        .map(|i| {
            let t = i as f64;
            let eps = randn(rng);
            if t < a || t > b {
                eps
            } else {
                let shape = match class {
                    CbfClass::Cylinder => 1.0,
                    CbfClass::Bell => (t - a) / (b - a).max(1e-9),
                    CbfClass::Funnel => (b - t) / (b - a).max(1e-9),
                };
                (6.0 + eta) * shape + eps
            }
        })
        .collect()
}

/// Generates a balanced CBF dataset: `per_class` series per class,
/// length `n`, labels 0 = cylinder, 1 = bell, 2 = funnel.
pub fn cbf(per_class: usize, n: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut series = Vec::with_capacity(per_class * 3);
    let mut labels = Vec::with_capacity(per_class * 3);
    for rep in 0..per_class {
        for (label, class) in [CbfClass::Cylinder, CbfClass::Bell, CbfClass::Funnel]
            .into_iter()
            .enumerate()
        {
            let mut ts = TimeSeries::new(cbf_series(class, n, &mut rng));
            ts.set_name(format!("cbf-{label}-{rep}"));
            series.push(ts);
            labels.push(label);
        }
    }
    Dataset::with_labels("CBF", DatasetKind::Simulated, series, labels)
        .expect("labels match by construction")
}

#[cfg(test)]
mod tests {
    use super::*;
    use tscore::stats;

    #[test]
    fn dataset_shape() {
        let d = cbf(10, 128, 0);
        assert_eq!(d.len(), 30);
        assert_eq!(d.n_classes(), 3);
        assert!(d.is_equal_length());
        assert_eq!(d.min_len(), 128);
        assert_eq!(d.class_counts(), vec![10, 10, 10]);
    }

    #[test]
    fn cylinder_has_plateau() {
        let mut rng = StdRng::seed_from_u64(1);
        let s = cbf_series(CbfClass::Cylinder, 128, &mut rng);
        // Peak region mean must be clearly above the baseline noise.
        let peak = stats::max(&s);
        assert!(peak > 4.0, "peak {peak}");
        // Substantial mass above 3 (the plateau), unlike bell/funnel tails.
        let above: usize = s.iter().filter(|&&x| x > 3.0).count();
        assert!(above >= 20, "plateau length {above}");
    }

    #[test]
    fn bell_rises_funnel_falls() {
        let mut rng = StdRng::seed_from_u64(2);
        // Average many series so the ramp direction shows despite noise.
        let n = 128;
        let mut bell_mean = vec![0.0; n];
        let mut funnel_mean = vec![0.0; n];
        for _ in 0..100 {
            for (acc, class) in [
                (&mut bell_mean, CbfClass::Bell),
                (&mut funnel_mean, CbfClass::Funnel),
            ] {
                let s = cbf_series(class, n, &mut rng);
                for (a, v) in acc.iter_mut().zip(&s) {
                    *a += v;
                }
            }
        }
        let bell_slope = stats::trend_slope(&bell_mean[30..90]);
        let funnel_slope = stats::trend_slope(&funnel_mean[30..90]);
        assert!(bell_slope > 0.0, "bell should rise, slope {bell_slope}");
        assert!(
            funnel_slope < 0.0,
            "funnel should fall, slope {funnel_slope}"
        );
    }

    #[test]
    fn deterministic() {
        let a = cbf(5, 64, 42);
        let b = cbf(5, 64, 42);
        assert_eq!(a.series()[0].values(), b.series()[0].values());
        let c = cbf(5, 64, 43);
        assert_ne!(a.series()[0].values(), c.series()[0].values());
    }

    #[test]
    fn nonstandard_length() {
        let d = cbf(3, 64, 0);
        assert_eq!(d.min_len(), 64);
        let d2 = cbf(3, 256, 0);
        assert_eq!(d2.min_len(), 256);
    }
}
