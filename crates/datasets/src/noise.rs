//! Random signal building blocks shared by the generators.

use rand::rngs::StdRng;
use rand::Rng;

/// Standard normal sample via Box–Muller (rand 0.8 has no Normal distr
/// without `rand_distr`, which is outside the dependency budget).
pub fn randn(rng: &mut StdRng) -> f64 {
    // Avoid log(0).
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Vector of iid N(0, σ²) samples.
pub fn gaussian_noise(rng: &mut StdRng, n: usize, sigma: f64) -> Vec<f64> {
    (0..n).map(|_| randn(rng) * sigma).collect()
}

/// Gaussian random walk with step σ.
pub fn random_walk(rng: &mut StdRng, n: usize, sigma: f64) -> Vec<f64> {
    let mut acc = 0.0;
    (0..n)
        .map(|_| {
            acc += randn(rng) * sigma;
            acc
        })
        .collect()
}

/// First-order autoregressive process `x_t = φ·x_{t−1} + ε_t`.
pub fn ar1(rng: &mut StdRng, n: usize, phi: f64, sigma: f64) -> Vec<f64> {
    let mut x = 0.0;
    (0..n)
        .map(|_| {
            x = phi * x + randn(rng) * sigma;
            x
        })
        .collect()
}

/// Gaussian bump `amp · exp(−((i − center)/width)²)` evaluated on `0..n`.
pub fn gaussian_bump(n: usize, center: f64, width: f64, amp: f64) -> Vec<f64> {
    (0..n)
        .map(|i| amp * (-((i as f64 - center) / width).powi(2)).exp())
        .collect()
}

/// Adds `b` into `a` element-wise (lengths must match).
pub fn add_into(a: &mut [f64], b: &[f64]) {
    debug_assert_eq!(a.len(), b.len());
    for (x, y) in a.iter_mut().zip(b) {
        *x += y;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn randn_moments() {
        let mut rng = StdRng::seed_from_u64(0);
        let xs: Vec<f64> = (0..20000).map(|_| randn(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn noise_scaled_by_sigma() {
        let mut rng = StdRng::seed_from_u64(1);
        let xs = gaussian_noise(&mut rng, 10000, 3.0);
        let var = xs.iter().map(|x| x * x).sum::<f64>() / xs.len() as f64;
        assert!((var - 9.0).abs() < 0.7, "var {var}");
    }

    #[test]
    fn walk_is_cumulative() {
        let mut rng = StdRng::seed_from_u64(2);
        let w = random_walk(&mut rng, 100, 1.0);
        assert_eq!(w.len(), 100);
        // Variance grows with t: late spread exceeds early spread on average
        // (weak check: the walk must move).
        assert!(w.iter().any(|&x| x.abs() > 1.0));
    }

    #[test]
    fn ar1_stationary_variance() {
        let mut rng = StdRng::seed_from_u64(3);
        let xs = ar1(&mut rng, 50000, 0.8, 1.0);
        let tail = &xs[1000..];
        let mean = tail.iter().sum::<f64>() / tail.len() as f64;
        let var = tail.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / tail.len() as f64;
        // Theoretical stationary variance: σ²/(1−φ²) = 1/0.36 ≈ 2.78.
        assert!((var - 2.78).abs() < 0.4, "var {var}");
    }

    #[test]
    fn bump_peak_location() {
        let b = gaussian_bump(50, 20.0, 3.0, 2.0);
        let argmax = b
            .iter()
            .enumerate()
            .max_by(|x, y| x.1.partial_cmp(y.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(argmax, 20);
        assert!((b[20] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = gaussian_noise(&mut StdRng::seed_from_u64(7), 10, 1.0);
        let b = gaussian_noise(&mut StdRng::seed_from_u64(7), 10, 1.0);
        assert_eq!(a, b);
    }

    #[test]
    fn add_into_sums() {
        let mut a = vec![1.0, 2.0];
        add_into(&mut a, &[10.0, 20.0]);
        assert_eq!(a, vec![11.0, 22.0]);
    }
}
