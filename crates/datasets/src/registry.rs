//! Named dataset registry and the default benchmark collection.
//!
//! The Benchmark frame filters datasets by type, series length, number of
//! classes and number of series; [`default_collection`] spans those axes.

use crate::{cbf, control, shapes, two_patterns};
use tscore::Dataset;

/// Metadata + constructor for one benchmark dataset.
pub struct DatasetSpec {
    /// Unique name.
    pub name: &'static str,
    /// Generator (seeded internally so the collection is reproducible).
    pub build: fn() -> Dataset,
}

impl std::fmt::Debug for DatasetSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "DatasetSpec({})", self.name)
    }
}

/// The full benchmark collection (12 datasets across 6 type tags, lengths
/// 60–256, 2–6 classes, 36–120 series).
pub fn default_collection() -> Vec<DatasetSpec> {
    vec![
        DatasetSpec {
            name: "CBF",
            build: || cbf::cbf(20, 128, 101),
        },
        DatasetSpec {
            name: "TwoPatterns",
            build: || two_patterns::two_patterns(15, 128, 102),
        },
        DatasetSpec {
            name: "SyntheticControl",
            build: || control::synthetic_control(10, 60, 103),
        },
        DatasetSpec {
            name: "TraceLike",
            build: || shapes::trace_like(15, 150, 104),
        },
        DatasetSpec {
            name: "GunPointLike",
            build: || shapes::gunpoint_like(25, 120, 105),
        },
        DatasetSpec {
            name: "EcgLike",
            build: || shapes::ecg_like(20, 192, 106),
        },
        DatasetSpec {
            name: "DeviceLike",
            build: || shapes::device_like(20, 96, 107),
        },
        DatasetSpec {
            name: "ChirpLike",
            build: || shapes::chirp_like(16, 160, 108),
        },
        DatasetSpec {
            name: "SeismicLike",
            build: || shapes::seismic_like(25, 200, 109),
        },
        DatasetSpec {
            name: "SpectroLike",
            build: || shapes::spectro_like(12, 256, 110),
        },
        DatasetSpec {
            name: "CBF-small",
            build: || cbf::cbf(12, 64, 111),
        },
        DatasetSpec {
            name: "TwoPatterns-long",
            build: || two_patterns::two_patterns(9, 256, 112),
        },
    ]
}

/// A small, fast subset used by examples and smoke tests.
pub fn quick_collection() -> Vec<DatasetSpec> {
    vec![
        DatasetSpec {
            name: "CBF",
            build: || cbf::cbf(10, 64, 201),
        },
        DatasetSpec {
            name: "TraceLike",
            build: || shapes::trace_like(8, 100, 202),
        },
        DatasetSpec {
            name: "DeviceLike",
            build: || shapes::device_like(10, 96, 203),
        },
    ]
}

/// Builds a dataset from the default collection by name.
pub fn by_name(name: &str) -> Option<Dataset> {
    default_collection()
        .into_iter()
        .find(|s| s.name == name)
        .map(|s| (s.build)())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collection_names_unique_and_buildable() {
        let specs = default_collection();
        let names: std::collections::HashSet<_> = specs.iter().map(|s| s.name).collect();
        assert_eq!(names.len(), specs.len());
        for spec in &specs {
            let d = (spec.build)();
            assert!(!d.is_empty(), "{} empty", spec.name);
            assert!(d.n_classes() >= 2, "{} has < 2 classes", spec.name);
            assert!(d.labels().is_some(), "{} unlabelled", spec.name);
        }
    }

    #[test]
    fn collection_spans_filter_axes() {
        let specs = default_collection();
        let datasets: Vec<Dataset> = specs.iter().map(|s| (s.build)()).collect();
        let kinds: std::collections::HashSet<_> =
            datasets.iter().map(|d| d.kind().as_str()).collect();
        assert!(kinds.len() >= 4, "kinds {kinds:?}");
        let lens: Vec<usize> = datasets.iter().map(|d| d.min_len()).collect();
        assert!(lens.iter().min().unwrap() < &100);
        assert!(lens.iter().max().unwrap() >= &192);
        let classes: Vec<usize> = datasets.iter().map(|d| d.n_classes()).collect();
        assert!(classes.contains(&2));
        assert!(classes.iter().any(|&c| c >= 4));
    }

    #[test]
    fn by_name_lookup() {
        assert!(by_name("CBF").is_some());
        assert!(by_name("NoSuchDataset").is_none());
    }

    #[test]
    fn builds_are_reproducible() {
        let a = by_name("TraceLike").unwrap();
        let b = by_name("TraceLike").unwrap();
        assert_eq!(a.series()[0].values(), b.series()[0].values());
    }

    #[test]
    fn quick_collection_is_small() {
        let specs = quick_collection();
        assert!(specs.len() <= 4);
        for s in specs {
            let d = (s.build)();
            assert!(d.len() <= 40, "{} too big for quick runs", d.name());
        }
    }
}
