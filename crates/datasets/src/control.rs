//! Synthetic Control Chart time series (Alcock & Manolopoulos 1999).
//!
//! Six classes over a baseline `m = 30`:
//! normal, cyclic, increasing trend, decreasing trend, upward shift,
//! downward shift — the published generative definitions with
//! uniform-noise terms.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tscore::{Dataset, DatasetKind, TimeSeries};

/// The six control-chart classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControlClass {
    /// Baseline + noise.
    Normal,
    /// Baseline + sinusoid.
    Cyclic,
    /// Baseline + positive ramp.
    IncreasingTrend,
    /// Baseline + negative ramp.
    DecreasingTrend,
    /// Baseline with a positive level shift after a random onset.
    UpwardShift,
    /// Baseline with a negative level shift after a random onset.
    DownwardShift,
}

/// All six classes in label order.
pub const CONTROL_CLASSES: [ControlClass; 6] = [
    ControlClass::Normal,
    ControlClass::Cyclic,
    ControlClass::IncreasingTrend,
    ControlClass::DecreasingTrend,
    ControlClass::UpwardShift,
    ControlClass::DownwardShift,
];

/// Generates one control-chart series of length `n` (classically 60).
pub fn control_series(class: ControlClass, n: usize, rng: &mut StdRng) -> Vec<f64> {
    let m = 30.0;
    // Published parameter ranges.
    let r = |rng: &mut StdRng| rng.gen_range(-3.0..3.0); // noise
    match class {
        ControlClass::Normal => (0..n).map(|_| m + r(rng)).collect(),
        ControlClass::Cyclic => {
            let amp = rng.gen_range(10.0..15.0);
            let period = rng.gen_range(10.0..15.0);
            (0..n)
                .map(|t| m + r(rng) + amp * (2.0 * std::f64::consts::PI * t as f64 / period).sin())
                .collect()
        }
        ControlClass::IncreasingTrend => {
            let g = rng.gen_range(0.2..0.5);
            (0..n).map(|t| m + r(rng) + g * t as f64).collect()
        }
        ControlClass::DecreasingTrend => {
            let g = rng.gen_range(0.2..0.5);
            (0..n).map(|t| m + r(rng) - g * t as f64).collect()
        }
        ControlClass::UpwardShift => {
            let onset = rng.gen_range(n / 3..2 * n / 3);
            let x = rng.gen_range(7.5..20.0);
            (0..n)
                .map(|t| m + r(rng) + if t >= onset { x } else { 0.0 })
                .collect()
        }
        ControlClass::DownwardShift => {
            let onset = rng.gen_range(n / 3..2 * n / 3);
            let x = rng.gen_range(7.5..20.0);
            (0..n)
                .map(|t| m + r(rng) - if t >= onset { x } else { 0.0 })
                .collect()
        }
    }
}

/// Generates a balanced Synthetic Control dataset (`per_class` × 6 series).
pub fn synthetic_control(per_class: usize, n: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut series = Vec::with_capacity(per_class * 6);
    let mut labels = Vec::with_capacity(per_class * 6);
    for rep in 0..per_class {
        for (label, class) in CONTROL_CLASSES.into_iter().enumerate() {
            let mut ts = TimeSeries::new(control_series(class, n, &mut rng));
            ts.set_name(format!("cc-{label}-{rep}"));
            series.push(ts);
            labels.push(label);
        }
    }
    Dataset::with_labels("SyntheticControl", DatasetKind::Simulated, series, labels)
        .expect("labels match by construction")
}

#[cfg(test)]
mod tests {
    use super::*;
    use tscore::stats;

    #[test]
    fn dataset_shape() {
        let d = synthetic_control(5, 60, 0);
        assert_eq!(d.len(), 30);
        assert_eq!(d.n_classes(), 6);
        assert!(d.is_equal_length());
    }

    #[test]
    fn trends_have_expected_slopes() {
        let mut rng = StdRng::seed_from_u64(1);
        let up = control_series(ControlClass::IncreasingTrend, 60, &mut rng);
        let down = control_series(ControlClass::DecreasingTrend, 60, &mut rng);
        assert!(stats::trend_slope(&up) > 0.1);
        assert!(stats::trend_slope(&down) < -0.1);
    }

    #[test]
    fn shifts_change_level() {
        let mut rng = StdRng::seed_from_u64(2);
        let up = control_series(ControlClass::UpwardShift, 60, &mut rng);
        let head = stats::mean(&up[..15]);
        let tail = stats::mean(&up[45..]);
        assert!(tail - head > 4.0, "shift not visible: {head} → {tail}");
        let down = control_series(ControlClass::DownwardShift, 60, &mut rng);
        let head = stats::mean(&down[..15]);
        let tail = stats::mean(&down[45..]);
        assert!(head - tail > 4.0);
    }

    #[test]
    fn cyclic_oscillates_more_than_normal() {
        let mut rng = StdRng::seed_from_u64(3);
        let cyc = control_series(ControlClass::Cyclic, 60, &mut rng);
        let norm = control_series(ControlClass::Normal, 60, &mut rng);
        assert!(stats::std(&cyc) > stats::std(&norm) * 2.0);
    }

    #[test]
    fn normal_stays_near_baseline() {
        let mut rng = StdRng::seed_from_u64(4);
        let s = control_series(ControlClass::Normal, 60, &mut rng);
        assert!((stats::mean(&s) - 30.0).abs() < 1.5);
        assert!(stats::std(&s) < 3.0);
    }

    #[test]
    fn deterministic() {
        let a = synthetic_control(3, 60, 5);
        let b = synthetic_control(3, 60, 5);
        assert_eq!(a.series()[7].values(), b.series()[7].values());
    }
}
