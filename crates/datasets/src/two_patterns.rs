//! Two Patterns (Geurts 2002): four classes defined by the order of two
//! step events — up-up, up-down, down-up, down-down — embedded at random
//! positions in a noisy baseline.

use crate::noise::randn;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tscore::{Dataset, DatasetKind, TimeSeries};

/// The four event-order classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TpClass {
    /// up then up
    UpUp,
    /// up then down
    UpDown,
    /// down then up
    DownUp,
    /// down then down
    DownDown,
}

impl TpClass {
    fn signs(&self) -> (f64, f64) {
        match self {
            TpClass::UpUp => (1.0, 1.0),
            TpClass::UpDown => (1.0, -1.0),
            TpClass::DownUp => (-1.0, 1.0),
            TpClass::DownDown => (-1.0, -1.0),
        }
    }
}

/// Writes a step event (sharp transition holding for `width` steps) of the
/// given sign starting at `pos`.
fn place_step(series: &mut [f64], pos: usize, width: usize, sign: f64) {
    let n = series.len();
    for v in series[pos..(pos + width).min(n)].iter_mut() {
        *v += 5.0 * sign;
    }
}

/// Generates one Two-Patterns series of length `n`.
pub fn two_patterns_series(class: TpClass, n: usize, rng: &mut StdRng) -> Vec<f64> {
    let mut s: Vec<f64> = (0..n).map(|_| randn(rng) * 0.5).collect();
    let (s1, s2) = class.signs();
    let width = (n / 8).max(2);
    // Two non-overlapping windows for the events, first strictly before
    // the second.
    let first_max = n / 2 - width;
    let p1 = rng.gen_range(0..first_max.max(1));
    let p2 = rng.gen_range(n / 2..(n - width).max(n / 2 + 1));
    place_step(&mut s, p1, width, s1);
    place_step(&mut s, p2, width, s2);
    s
}

/// Generates a balanced Two-Patterns dataset (`per_class` × 4 series).
pub fn two_patterns(per_class: usize, n: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let classes = [
        TpClass::UpUp,
        TpClass::UpDown,
        TpClass::DownUp,
        TpClass::DownDown,
    ];
    let mut series = Vec::with_capacity(per_class * 4);
    let mut labels = Vec::with_capacity(per_class * 4);
    for rep in 0..per_class {
        for (label, class) in classes.into_iter().enumerate() {
            let mut ts = TimeSeries::new(two_patterns_series(class, n, &mut rng));
            ts.set_name(format!("tp-{label}-{rep}"));
            series.push(ts);
            labels.push(label);
        }
    }
    Dataset::with_labels("TwoPatterns", DatasetKind::Simulated, series, labels)
        .expect("labels match by construction")
}

#[cfg(test)]
mod tests {
    use super::*;
    use tscore::stats;

    #[test]
    fn dataset_shape() {
        let d = two_patterns(8, 128, 0);
        assert_eq!(d.len(), 32);
        assert_eq!(d.n_classes(), 4);
        assert_eq!(d.class_counts(), vec![8, 8, 8, 8]);
    }

    #[test]
    fn event_signs_visible() {
        let mut rng = StdRng::seed_from_u64(3);
        let s = two_patterns_series(TpClass::UpDown, 128, &mut rng);
        // First half max should be positive-dominated, second half min
        // negative-dominated.
        assert!(stats::max(&s[..64]) > 3.0);
        assert!(stats::min(&s[64..]) < -3.0);
        let s2 = two_patterns_series(TpClass::DownUp, 128, &mut rng);
        assert!(stats::min(&s2[..64]) < -3.0);
        assert!(stats::max(&s2[64..]) > 3.0);
    }

    #[test]
    fn up_up_has_no_negative_event() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..10 {
            let s = two_patterns_series(TpClass::UpUp, 128, &mut rng);
            assert!(stats::min(&s) > -4.0, "no down event expected");
            assert!(stats::max(&s) > 3.0);
        }
    }

    #[test]
    fn deterministic() {
        let a = two_patterns(4, 64, 9);
        let b = two_patterns(4, 64, 9);
        assert_eq!(a.series()[3].values(), b.series()[3].values());
    }

    #[test]
    fn short_series_do_not_panic() {
        let d = two_patterns(2, 24, 0);
        assert_eq!(d.min_len(), 24);
    }
}
