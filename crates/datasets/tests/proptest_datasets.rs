//! Property-based tests for the dataset generators: every generator must
//! produce well-formed, finite, balanced, deterministic data for any
//! (reasonable) parameters.

use proptest::prelude::*;
use tscore::Dataset;

fn check_dataset(d: &Dataset, per_class: usize, classes: usize, n: usize) {
    assert_eq!(d.len(), per_class * classes);
    assert_eq!(d.n_classes(), classes);
    assert!(d.is_equal_length());
    assert_eq!(d.min_len(), n);
    assert!(d.class_counts().iter().all(|&c| c == per_class));
    for s in d.series() {
        assert!(s.values().iter().all(|v| v.is_finite()));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn cbf_well_formed(per_class in 1usize..6, n in 32usize..200, seed in 0u64..1000) {
        let d = datasets::cbf::cbf(per_class, n, seed);
        check_dataset(&d, per_class, 3, n);
        let d2 = datasets::cbf::cbf(per_class, n, seed);
        prop_assert_eq!(d.series()[0].values(), d2.series()[0].values());
    }

    #[test]
    fn two_patterns_well_formed(per_class in 1usize..6, n in 24usize..200, seed in 0u64..1000) {
        let d = datasets::two_patterns::two_patterns(per_class, n, seed);
        check_dataset(&d, per_class, 4, n);
    }

    #[test]
    fn synthetic_control_well_formed(per_class in 1usize..5, n in 30usize..120, seed in 0u64..1000) {
        let d = datasets::control::synthetic_control(per_class, n, seed);
        check_dataset(&d, per_class, 6, n);
    }

    #[test]
    fn shape_families_well_formed(per_class in 1usize..5, seed in 0u64..500) {
        let n = 96;
        check_dataset(&datasets::shapes::trace_like(per_class, n, seed), per_class, 4, n);
        check_dataset(&datasets::shapes::gunpoint_like(per_class, n, seed), per_class, 2, n);
        check_dataset(&datasets::shapes::device_like(per_class, n, seed), per_class, 3, n);
        check_dataset(&datasets::shapes::chirp_like(per_class, n, seed), per_class, 3, n);
        check_dataset(&datasets::shapes::seismic_like(per_class, n, seed), per_class, 2, n);
        check_dataset(&datasets::shapes::spectro_like(per_class, n, seed), per_class, 4, n);
    }

    #[test]
    fn ecg_like_well_formed(per_class in 1usize..5, n in 96usize..256, seed in 0u64..500) {
        let d = datasets::shapes::ecg_like(per_class, n, seed);
        check_dataset(&d, per_class, 3, n);
    }

    #[test]
    fn ucr_parser_roundtrips_generated_data(
        rows in proptest::collection::vec(
            (0i64..5, proptest::collection::vec(-100.0..100.0f64, 3..10)),
            1..12,
        ),
    ) {
        // Serialise as UCR TSV, re-parse, compare.
        let mut tsv = String::new();
        for (label, values) in &rows {
            tsv.push_str(&label.to_string());
            for v in values {
                tsv.push('\t');
                tsv.push_str(&format!("{v:.6}"));
            }
            tsv.push('\n');
        }
        let d = datasets::ucr::parse_ucr_tsv(&tsv, "prop", tscore::DatasetKind::Other).unwrap();
        prop_assert_eq!(d.len(), rows.len());
        for (series, (_, values)) in d.series().iter().zip(&rows) {
            prop_assert_eq!(series.len(), values.len());
            for (a, b) in series.values().iter().zip(values) {
                prop_assert!((a - b).abs() < 1e-5);
            }
        }
        // Label compaction preserves co-membership.
        let orig: Vec<usize> = rows.iter().map(|(l, _)| *l as usize).collect();
        let parsed = d.labels().unwrap();
        let ari = equivalence(&orig, parsed);
        prop_assert!(ari, "label structure not preserved");
    }
}

/// True iff two labelings induce the same partition.
fn equivalence(a: &[usize], b: &[usize]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    for i in 0..a.len() {
        for j in (i + 1)..a.len() {
            if (a[i] == a[j]) != (b[i] == b[j]) {
                return false;
            }
        }
    }
    true
}
