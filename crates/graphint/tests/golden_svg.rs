//! Golden-snapshot and budget tests for the Graph frame renderer.
//!
//! * Byte-exact committed renders of a small synthetic fixture at each
//!   detail level (`tests/golden/*.svg`). Regenerate deliberately with
//!   `BLESS_GOLDEN=1 cargo test -p graphint --test golden_svg` after an
//!   intentional rendering change, and review the diff.
//! * A determinism regression: the same model rendered twice — on both
//!   sides of the `LayoutEngine::Auto` exact/Barnes–Hut boundary — must
//!   produce byte-identical SVG.
//! * The `RenderBudget` cap on a 10k-node synthetic layer: the emitted
//!   element count never exceeds the budget, whichever detail level
//!   `Auto` degrades to.

use graphint::plot::{DetailLevel, GraphPlot, RenderBudget};
use kgraph::graphoid::ClusterStats;
use kgraph::{NodePattern, PatternGraph};
use tsgraph::layout::LayoutEngine;
use tsgraph::{GraphBuilder, NodeId};

/// Deterministic synthetic layer: `n` nodes in `k` contiguous cluster
/// blocks, a chain through each block plus `extra` pseudo-random edges
/// per node (LCG — no RNG dependency), crossing statistics that give most
/// nodes a clear owner and every 7th node an even (muted) split.
fn synthetic(n: usize, k: usize, extra: usize, seed: u64) -> (PatternGraph, ClusterStats) {
    let cluster = |i: usize| i * k / n;
    let mut state = seed | 1;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as usize
    };
    let mut b = GraphBuilder::new();
    for i in 0..n {
        if i + 1 < n && cluster(i) == cluster(i + 1) {
            b.add_edge(NodeId(i as u32), NodeId(i as u32 + 1), 1.0 + (i % 5) as f64);
        }
        for _ in 0..extra {
            let t = next() % n;
            if t != i {
                b.add_edge(
                    NodeId(i as u32),
                    NodeId(t as u32),
                    1.0 + (next() % 40) as f64 / 10.0,
                );
            }
        }
    }
    let nodes: Vec<NodePattern> = (0..n)
        .map(|i| NodePattern {
            sector: i,
            radius: 0.5,
            count: 1 + (i * 7) % 23,
            pattern: Vec::new(),
        })
        .collect();
    let graph: PatternGraph = b.build(nodes, |acc, w| *acc += w);

    let mut node_crossings = vec![vec![0usize; n]; k];
    for i in 0..n {
        if i % 7 == 0 {
            // Evenly split → exclusivity 1/k → muted under γ > 1/k.
            for row in node_crossings.iter_mut() {
                row[i] = 2;
            }
        } else {
            node_crossings[cluster(i)][i] = 5;
        }
    }
    let e = graph.edge_count();
    let mut edge_crossings = vec![vec![0usize; e]; k];
    for (id, s, _, _) in graph.edges_iter() {
        let i = s.index();
        if i % 7 == 0 {
            for row in edge_crossings.iter_mut() {
                row[id.index()] = 2;
            }
        } else {
            edge_crossings[cluster(i)][id.index()] = 5;
        }
    }
    let stats = ClusterStats {
        k,
        node_crossings,
        edge_crossings,
        cluster_sizes: vec![10; k],
    };
    (graph, stats)
}

fn golden_path(name: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

fn assert_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("BLESS_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {path:?} ({e}); run with BLESS_GOLDEN=1"));
    assert!(
        expected == actual,
        "render of {name} diverged from committed golden {path:?}; \
         if the change is intentional, regenerate with BLESS_GOLDEN=1 and review the diff"
    );
}

fn fixture_plot<'a>(graph: &'a PatternGraph, stats: &'a ClusterStats) -> GraphPlot<'a> {
    GraphPlot::from_graph(graph, 24, stats, 0.4, 0.5)
}

#[test]
fn golden_full_detail() {
    let (graph, stats) = synthetic(24, 3, 2, 1);
    let svg = fixture_plot(&graph, &stats)
        .with_detail(DetailLevel::Full)
        .render();
    assert_golden("full.svg", &svg);
}

#[test]
fn golden_aggregated_detail() {
    let (graph, stats) = synthetic(24, 3, 2, 1);
    let svg = fixture_plot(&graph, &stats)
        .with_detail(DetailLevel::Aggregated)
        .render();
    assert!(svg.contains("<path"), "aggregated render bundles edges");
    assert_golden("aggregated.svg", &svg);
}

#[test]
fn golden_glyph_detail() {
    let (graph, stats) = synthetic(24, 3, 2, 1);
    let svg = fixture_plot(&graph, &stats)
        .with_detail(DetailLevel::Glyph)
        .render();
    assert!(svg.contains("nodes)"), "glyph render labels clusters");
    assert_golden("glyph.svg", &svg);
}

#[test]
fn auto_detail_with_no_budget_is_full_detail() {
    let (graph, stats) = synthetic(24, 3, 2, 1);
    let auto = fixture_plot(&graph, &stats).render();
    let full = fixture_plot(&graph, &stats)
        .with_detail(DetailLevel::Full)
        .render();
    assert_eq!(auto, full);
}

#[test]
fn rendering_is_deterministic_across_engine_boundaries() {
    // 256 nodes → Auto resolves to the exact layout; 600 → Barnes–Hut.
    // Either side of the boundary, re-rendering is byte-identical, and
    // naming the resolved engine explicitly changes nothing.
    for (n, explicit) in [
        (256usize, LayoutEngine::Exact),
        (600, LayoutEngine::BarnesHut),
    ] {
        let (graph, stats) = synthetic(n, 4, 1, 9);
        let plot = |engine| {
            GraphPlot::from_graph(&graph, 24, &stats, 0.4, 0.5)
                .with_engine(engine)
                .with_budget(RenderBudget::capped(20_000))
                .render()
        };
        let first = plot(LayoutEngine::Auto);
        let second = plot(LayoutEngine::Auto);
        assert_eq!(first, second, "n={n}: repeat render diverged");
        assert_eq!(first, plot(explicit), "n={n}: explicit engine diverged");
    }
}

#[test]
fn budget_cap_holds_on_10k_node_layer() {
    let (graph, stats) = synthetic(10_000, 6, 2, 7);
    // Circular layout keeps this test about budgeting, not layout speed.
    for budget in [1_000usize, 2_000, 12_000, 25_000] {
        let plot = GraphPlot::from_graph(&graph, 24, &stats, 0.4, 0.5)
            .with_engine(LayoutEngine::Circular)
            .with_budget(RenderBudget::capped(budget));
        let resolved = plot.resolve_detail();
        let (svg, count) = plot.render_counted();
        assert!(
            count <= budget,
            "budget {budget}: emitted {count} elements at {resolved:?}"
        );
        assert!(svg.ends_with("</svg>"));
        // Small budgets must force degradation, not truncation.
        if budget < 10_000 {
            assert_eq!(resolved, DetailLevel::Glyph, "budget {budget}");
        } else {
            assert_eq!(resolved, DetailLevel::Aggregated, "budget {budget}");
        }
    }
}
