//! # graphint — the Graphint visualisation and interpretation tool
//!
//! Rust reproduction of the Graphint system (ICDE 2025 demo). The paper's
//! Streamlit GUI is re-expressed as a headless rendering library: every
//! frame of Figure 2/3 becomes a renderer that produces the same visual
//! artefact as SVG (assembled into a self-contained HTML report) plus a
//! terminal-friendly text summary.
//!
//! | paper frame | module |
//! |---|---|
//! | Clustering comparison (Fig. 3 1.1) | [`frames::comparison`] |
//! | Benchmark (Fig. 3 1.2)             | [`frames::benchmark`] |
//! | k-Graph in action / Graph (Fig. 3 2) | [`frames::graph`] |
//! | Interpretability test (Fig. 3 3)   | [`frames::quiz_frame`] + [`quiz`] |
//! | Under the hood (Fig. 3 4)          | [`frames::under_the_hood`] |
//!
//! Supporting layers: a dependency-free [`svg`] writer, [`color`] maps,
//! chart builders in [`plot`], terminal rendering in [`ascii`], CSV export
//! in [`csvout`] and HTML assembly in [`report`].
//!
//! The interpretability *quiz* of Scenario 1 requires a user; [`quiz`]
//! provides simulated users (a centroid-reader and a graphoid-reader) whose
//! scores reproduce the comparison the demo runs with humans.

pub mod ascii;
pub mod color;
pub mod csvout;
pub mod frames;
pub mod plot;
pub mod quiz;
pub mod report;
pub mod svg;

pub use report::Report;
