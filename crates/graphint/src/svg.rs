//! Minimal SVG document writer.
//!
//! Every chart in this crate is assembled from these primitives; keeping
//! the writer tiny (strings in, string out) avoids an XML dependency.

use std::fmt::Write as _;

/// Escapes text content for XML.
pub fn escape(text: &str) -> String {
    text.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}

/// An SVG document being built.
///
/// The opening `<svg …>` tag is written at construction and
/// [`finish`](SvgDoc::finish) only appends the closing tag, so the
/// document accumulates into one flat buffer that callers can recycle
/// across renders via [`with_buffer`](SvgDoc::with_buffer) — SVG emission
/// is the fixed cost that dominates large renders, and reallocation is a
/// measurable slice of it.
///
/// Every visual element written bumps [`element_count`]
/// (SvgDoc::element_count); structural wrappers (`<g>`, the root) do not
/// count. Level-of-detail renderers budget against this counter.
#[derive(Debug, Clone)]
pub struct SvgDoc {
    width: f64,
    height: f64,
    body: String,
    elements: usize,
    groups_open: usize,
}

impl SvgDoc {
    /// Creates a document of the given pixel size.
    pub fn new(width: f64, height: f64) -> Self {
        SvgDoc::with_buffer(width, height, String::new())
    }

    /// Creates a document reusing `buf`'s allocation (cleared first).
    /// Feed the string returned by [`finish`](SvgDoc::finish) back in to
    /// render repeatedly without reallocating.
    pub fn with_buffer(width: f64, height: f64, mut buf: String) -> Self {
        buf.clear();
        let _ = write!(
            buf,
            r#"<svg xmlns="http://www.w3.org/2000/svg" width="{width:.0}" height="{height:.0}" viewBox="0 0 {width:.0} {height:.0}">"#
        );
        SvgDoc {
            width,
            height,
            body: buf,
            elements: 0,
            groups_open: 0,
        }
    }

    /// Document width.
    pub fn width(&self) -> f64 {
        self.width
    }

    /// Document height.
    pub fn height(&self) -> f64 {
        self.height
    }

    /// Number of visual elements written so far (`<g>` wrappers and the
    /// root element excluded).
    pub fn element_count(&self) -> usize {
        self.elements
    }

    /// Opens a `<g>` style group; attributes written here are inherited
    /// by every bare element inside (e.g. [`plain_circle`]
    /// (SvgDoc::plain_circle)), which is what keeps per-element markup
    /// small in aggregated renders. `attrs` is raw attribute markup.
    pub fn begin_group(&mut self, attrs: &str) {
        let _ = write!(self.body, "<g {attrs}>");
        self.groups_open += 1;
    }

    /// Closes the innermost open `<g>` group.
    pub fn end_group(&mut self) {
        debug_assert!(self.groups_open > 0, "end_group without begin_group");
        self.body.push_str("</g>");
        self.groups_open = self.groups_open.saturating_sub(1);
    }

    /// Filled/stroked rectangle.
    pub fn rect(&mut self, x: f64, y: f64, w: f64, h: f64, fill: &str, stroke: &str) {
        self.elements += 1;
        let _ = write!(
            self.body,
            r#"<rect x="{x:.2}" y="{y:.2}" width="{w:.2}" height="{h:.2}" fill="{fill}" stroke="{stroke}"/>"#
        );
    }

    /// Circle.
    pub fn circle(&mut self, cx: f64, cy: f64, r: f64, fill: &str, stroke: &str) {
        self.elements += 1;
        let _ = write!(
            self.body,
            r#"<circle cx="{cx:.2}" cy="{cy:.2}" r="{r:.2}" fill="{fill}" stroke="{stroke}"/>"#
        );
    }

    /// Circle with no style attributes of its own — it inherits fill and
    /// stroke from the enclosing [`begin_group`](SvgDoc::begin_group).
    pub fn plain_circle(&mut self, cx: f64, cy: f64, r: f64) {
        self.elements += 1;
        let _ = write!(
            self.body,
            r#"<circle cx="{cx:.2}" cy="{cy:.2}" r="{r:.2}"/>"#
        );
    }

    /// Straight line segment.
    pub fn line(&mut self, x1: f64, y1: f64, x2: f64, y2: f64, stroke: &str, width: f64) {
        self.elements += 1;
        let _ = write!(
            self.body,
            r#"<line x1="{x1:.2}" y1="{y1:.2}" x2="{x2:.2}" y2="{y2:.2}" stroke="{stroke}" stroke-width="{width:.2}"/>"#
        );
    }

    /// Dashed line segment.
    pub fn dashed_line(&mut self, x1: f64, y1: f64, x2: f64, y2: f64, stroke: &str, width: f64) {
        self.elements += 1;
        let _ = write!(
            self.body,
            r#"<line x1="{x1:.2}" y1="{y1:.2}" x2="{x2:.2}" y2="{y2:.2}" stroke="{stroke}" stroke-width="{width:.2}" stroke-dasharray="4 3"/>"#
        );
    }

    /// Unfilled path with raw `d` data — one element no matter how many
    /// segments it bundles, which is what makes edge aggregation pay.
    pub fn path(&mut self, d: &str, stroke: &str, width: f64) {
        self.elements += 1;
        let _ = write!(
            self.body,
            r#"<path d="{d}" fill="none" stroke="{stroke}" stroke-width="{width:.2}"/>"#
        );
    }

    /// Open polyline through the given points.
    pub fn polyline(&mut self, points: &[(f64, f64)], stroke: &str, width: f64) {
        if points.is_empty() {
            return;
        }
        self.elements += 1;
        let pts: String = points
            .iter()
            .map(|(x, y)| format!("{x:.2},{y:.2}"))
            .collect::<Vec<_>>()
            .join(" ");
        let _ = write!(
            self.body,
            r#"<polyline points="{pts}" fill="none" stroke="{stroke}" stroke-width="{width:.2}"/>"#
        );
    }

    /// Text anchored at `(x, y)`; `anchor` is `start`, `middle` or `end`.
    pub fn text(&mut self, x: f64, y: f64, content: &str, size: f64, anchor: &str, fill: &str) {
        self.elements += 1;
        let _ = write!(
            self.body,
            r#"<text x="{x:.2}" y="{y:.2}" font-size="{size:.1}" text-anchor="{anchor}" fill="{fill}" font-family="sans-serif">{}</text>"#,
            escape(content)
        );
    }

    /// Arrow head + shaft from `(x1, y1)` to `(x2, y2)` (directed edges).
    pub fn arrow(&mut self, x1: f64, y1: f64, x2: f64, y2: f64, stroke: &str, width: f64) {
        self.line(x1, y1, x2, y2, stroke, width);
        let dx = x2 - x1;
        let dy = y2 - y1;
        let len = (dx * dx + dy * dy).sqrt();
        if len < 1e-9 {
            return;
        }
        let ux = dx / len;
        let uy = dy / len;
        let size = (3.0 + width * 1.5).min(8.0);
        // Two short strokes splaying back from the tip.
        let (bx, by) = (x2 - ux * size, y2 - uy * size);
        let (px, py) = (-uy, ux);
        self.line(
            x2,
            y2,
            bx + px * size * 0.5,
            by + py * size * 0.5,
            stroke,
            width,
        );
        self.line(
            x2,
            y2,
            bx - px * size * 0.5,
            by - py * size * 0.5,
            stroke,
            width,
        );
    }

    /// Appends raw SVG markup (escape hatch for niche shapes). Counts as
    /// one visual element.
    pub fn raw(&mut self, markup: &str) {
        self.elements += 1;
        self.body.push_str(markup);
    }

    /// Finalises the document, returning the buffer (reusable through
    /// [`with_buffer`](SvgDoc::with_buffer)). Any `<g>` groups left open
    /// are closed.
    pub fn finish(mut self) -> String {
        for _ in 0..self.groups_open {
            self.body.push_str("</g>");
        }
        self.body.push_str("</svg>");
        self.body
    }
}

/// A linear mapping from data space to pixel space.
#[derive(Debug, Clone, Copy)]
pub struct LinearScale {
    /// Data-space domain.
    pub domain: (f64, f64),
    /// Pixel-space range.
    pub range: (f64, f64),
}

impl LinearScale {
    /// Creates a scale; a degenerate domain is widened symmetrically so the
    /// scale stays invertible.
    pub fn new(domain: (f64, f64), range: (f64, f64)) -> Self {
        let (lo, hi) = domain;
        let domain = if (hi - lo).abs() < 1e-12 {
            (lo - 0.5, hi + 0.5)
        } else {
            domain
        };
        LinearScale { domain, range }
    }

    /// Maps a data value to pixels.
    pub fn apply(&self, v: f64) -> f64 {
        let t = (v - self.domain.0) / (self.domain.1 - self.domain.0);
        self.range.0 + t * (self.range.1 - self.range.0)
    }

    /// Reasonable tick positions (about `n` of them).
    pub fn ticks(&self, n: usize) -> Vec<f64> {
        let n = n.max(2);
        let span = self.domain.1 - self.domain.0;
        let raw_step = span / (n - 1) as f64;
        // Round to 1/2/5 × 10^k.
        let mag = 10f64.powf(raw_step.abs().log10().floor());
        let norm = raw_step / mag;
        let step = if norm < 1.5 {
            mag
        } else if norm < 3.5 {
            2.0 * mag
        } else if norm < 7.5 {
            5.0 * mag
        } else {
            10.0 * mag
        };
        let first = (self.domain.0 / step).ceil() * step;
        let mut out = Vec::new();
        let mut v = first;
        while v <= self.domain.1 + 1e-9 {
            out.push(v);
            v += step;
        }
        out
    }
}

/// Draws standard chart axes (left + bottom, ticks, labels) into `doc`.
///
/// Returns nothing; the plot area is `(margin_left, margin_top)` to
/// `(width − margin_right, height − margin_bottom)` by convention of the
/// calling charts.
#[allow(clippy::too_many_arguments)]
pub fn draw_axes(
    doc: &mut SvgDoc,
    x: &LinearScale,
    y: &LinearScale,
    x_label: &str,
    y_label: &str,
    plot_left: f64,
    plot_bottom: f64,
    plot_right: f64,
    plot_top: f64,
) {
    let axis_color = "#333333";
    doc.line(plot_left, plot_top, plot_left, plot_bottom, axis_color, 1.0);
    doc.line(
        plot_left,
        plot_bottom,
        plot_right,
        plot_bottom,
        axis_color,
        1.0,
    );
    for t in x.ticks(6) {
        let px = x.apply(t);
        if px < plot_left - 1e-6 || px > plot_right + 1e-6 {
            continue;
        }
        doc.line(px, plot_bottom, px, plot_bottom + 4.0, axis_color, 1.0);
        doc.text(
            px,
            plot_bottom + 14.0,
            &format_tick(t),
            9.0,
            "middle",
            axis_color,
        );
    }
    for t in y.ticks(6) {
        let py = y.apply(t);
        if py > plot_bottom + 1e-6 || py < plot_top - 1e-6 {
            continue;
        }
        doc.line(plot_left - 4.0, py, plot_left, py, axis_color, 1.0);
        doc.text(
            plot_left - 6.0,
            py + 3.0,
            &format_tick(t),
            9.0,
            "end",
            axis_color,
        );
    }
    if !x_label.is_empty() {
        doc.text(
            (plot_left + plot_right) / 2.0,
            plot_bottom + 28.0,
            x_label,
            10.0,
            "middle",
            axis_color,
        );
    }
    if !y_label.is_empty() {
        let cx = plot_left - 30.0;
        let cy = (plot_top + plot_bottom) / 2.0;
        doc.raw(&format!(
            r#"<text x="{cx:.1}" y="{cy:.1}" font-size="10" text-anchor="middle" fill="{axis_color}" font-family="sans-serif" transform="rotate(-90 {cx:.1} {cy:.1})">{}</text>"#,
            escape(y_label)
        ));
    }
}

/// Short human formatting of tick values.
pub fn format_tick(v: f64) -> String {
    if v == 0.0 {
        return "0".to_string();
    }
    let a = v.abs();
    if a >= 10.0 {
        format!("{:.0}", v)
    } else if a >= 1.0 {
        format!("{:.1}", v)
    } else {
        format!("{:.2}", v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn document_structure() {
        let mut doc = SvgDoc::new(100.0, 50.0);
        doc.rect(0.0, 0.0, 10.0, 10.0, "#ff0000", "none");
        doc.circle(5.0, 5.0, 2.0, "blue", "black");
        doc.line(0.0, 0.0, 9.0, 9.0, "#000", 1.0);
        doc.text(1.0, 1.0, "hi", 10.0, "start", "#000");
        let svg = doc.finish();
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        assert!(svg.contains("<rect"));
        assert!(svg.contains("<circle"));
        assert!(svg.contains("<line"));
        assert!(svg.contains(">hi</text>"));
        assert!(svg.contains(r#"width="100""#));
    }

    #[test]
    fn escaping() {
        assert_eq!(escape("a<b>&\"c\""), "a&lt;b&gt;&amp;&quot;c&quot;");
        let mut doc = SvgDoc::new(10.0, 10.0);
        doc.text(0.0, 0.0, "x<y", 8.0, "start", "#000");
        assert!(doc.finish().contains("x&lt;y"));
    }

    #[test]
    fn polyline_and_empty() {
        let mut doc = SvgDoc::new(10.0, 10.0);
        doc.polyline(&[], "#000", 1.0);
        doc.polyline(&[(0.0, 0.0), (1.0, 1.0)], "#000", 1.0);
        let svg = doc.finish();
        assert_eq!(svg.matches("<polyline").count(), 1);
    }

    #[test]
    fn scale_mapping() {
        let s = LinearScale::new((0.0, 10.0), (100.0, 200.0));
        assert_eq!(s.apply(0.0), 100.0);
        assert_eq!(s.apply(10.0), 200.0);
        assert_eq!(s.apply(5.0), 150.0);
        // Inverted pixel range (SVG y axis).
        let y = LinearScale::new((0.0, 1.0), (200.0, 0.0));
        assert_eq!(y.apply(1.0), 0.0);
    }

    #[test]
    fn degenerate_domain_widened() {
        let s = LinearScale::new((3.0, 3.0), (0.0, 100.0));
        let px = s.apply(3.0);
        assert!(px.is_finite());
        assert!((px - 50.0).abs() < 1e-9);
    }

    #[test]
    fn ticks_are_round_and_inside() {
        let s = LinearScale::new((0.0, 9.7), (0.0, 100.0));
        let ticks = s.ticks(6);
        assert!(!ticks.is_empty());
        assert!(ticks.windows(2).all(|w| w[1] > w[0]));
        for t in &ticks {
            assert!(*t >= -1e-9 && *t <= 9.7 + 1e-9);
        }
    }

    #[test]
    fn arrow_draws_three_lines() {
        let mut doc = SvgDoc::new(10.0, 10.0);
        doc.arrow(0.0, 0.0, 5.0, 5.0, "#000", 1.0);
        let svg = doc.finish();
        assert_eq!(svg.matches("<line").count(), 3);
        // Degenerate arrow: only the shaft.
        let mut doc2 = SvgDoc::new(10.0, 10.0);
        doc2.arrow(1.0, 1.0, 1.0, 1.0, "#000", 1.0);
        assert_eq!(doc2.finish().matches("<line").count(), 1);
    }

    #[test]
    fn tick_formatting() {
        assert_eq!(format_tick(0.0), "0");
        assert_eq!(format_tick(1234.0), "1234");
        assert_eq!(format_tick(12.0), "12");
        assert_eq!(format_tick(1.25), "1.2");
        // 0.125 rounds half-to-even under `{:.2}` formatting.
        assert_eq!(format_tick(0.125), "0.12");
    }

    #[test]
    fn axes_render() {
        let mut doc = SvgDoc::new(300.0, 200.0);
        let x = LinearScale::new((0.0, 10.0), (40.0, 280.0));
        let y = LinearScale::new((0.0, 1.0), (170.0, 20.0));
        draw_axes(&mut doc, &x, &y, "time", "value", 40.0, 170.0, 280.0, 20.0);
        let svg = doc.finish();
        assert!(svg.contains("time"));
        assert!(svg.contains("value"));
        assert!(svg.contains("rotate(-90"));
    }
}
