//! Self-contained HTML report assembly.
//!
//! The demo's Streamlit app is interactive; the reproduction renders each
//! frame into a static HTML report (SVGs inlined, no external assets) that
//! shows the same content.

use std::path::Path;

/// A report being assembled: titled sections of HTML blocks.
#[derive(Debug, Clone, Default)]
pub struct Report {
    title: String,
    sections: Vec<(String, Vec<String>)>,
}

impl Report {
    /// Creates a report with a page title.
    pub fn new(title: impl Into<String>) -> Self {
        Report {
            title: title.into(),
            sections: Vec::new(),
        }
    }

    /// Starts a new section.
    pub fn section(&mut self, heading: impl Into<String>) -> &mut Self {
        self.sections.push((heading.into(), Vec::new()));
        self
    }

    /// Appends an inline SVG to the current section.
    pub fn add_svg(&mut self, svg: &str) -> &mut Self {
        self.push_block(format!("<div class=\"chart\">{svg}</div>"));
        self
    }

    /// Appends a paragraph of (escaped) text.
    pub fn add_text(&mut self, text: &str) -> &mut Self {
        self.push_block(format!("<p>{}</p>", crate::svg::escape(text)));
        self
    }

    /// Appends preformatted text (tables from [`crate::ascii`]).
    pub fn add_pre(&mut self, text: &str) -> &mut Self {
        self.push_block(format!("<pre>{}</pre>", crate::svg::escape(text)));
        self
    }

    fn push_block(&mut self, block: String) {
        if self.sections.is_empty() {
            self.sections.push(("".to_string(), Vec::new()));
        }
        self.sections.last_mut().expect("non-empty").1.push(block);
    }

    /// Number of sections so far.
    pub fn section_count(&self) -> usize {
        self.sections.len()
    }

    /// Renders the full HTML document.
    pub fn to_html(&self) -> String {
        let mut body = String::new();
        for (heading, blocks) in &self.sections {
            if !heading.is_empty() {
                body.push_str(&format!("<h2>{}</h2>\n", crate::svg::escape(heading)));
            }
            for b in blocks {
                body.push_str(b);
                body.push('\n');
            }
        }
        format!(
            "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">\
             <title>{title}</title>\
             <style>\
             body{{font-family:sans-serif;max-width:1200px;margin:24px auto;color:#222}}\
             h1{{border-bottom:2px solid #1f77b4}}\
             h2{{margin-top:32px;border-bottom:1px solid #ddd}}\
             pre{{background:#f7f7f7;padding:8px;overflow-x:auto;font-size:12px}}\
             .chart{{margin:12px 0}}\
             </style></head><body>\n<h1>{title}</h1>\n{body}</body></html>\n",
            title = crate::svg::escape(&self.title),
            body = body
        )
    }

    /// Writes the report to disk, creating parent directories.
    pub fn write(&self, path: &Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.to_html())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assembles_sections() {
        let mut r = Report::new("Graphint report");
        r.section("Benchmark");
        r.add_text("hello & <world>");
        r.add_svg("<svg></svg>");
        r.section("Graph");
        r.add_pre("| a | b |");
        let html = r.to_html();
        assert!(html.contains("<h1>Graphint report</h1>"));
        assert!(html.contains("<h2>Benchmark</h2>"));
        assert!(html.contains("hello &amp; &lt;world&gt;"));
        assert!(html.contains("<svg></svg>"));
        assert!(html.contains("<pre>| a | b |</pre>"));
        assert_eq!(r.section_count(), 2);
    }

    #[test]
    fn blocks_without_section_get_default() {
        let mut r = Report::new("t");
        r.add_text("orphan");
        assert_eq!(r.section_count(), 1);
        assert!(r.to_html().contains("orphan"));
    }

    #[test]
    fn writes_to_disk() {
        let path = std::env::temp_dir().join("graphint-report-test/report.html");
        let mut r = Report::new("t");
        r.add_text("content");
        r.write(&path).unwrap();
        let html = std::fs::read_to_string(&path).unwrap();
        assert!(html.starts_with("<!DOCTYPE html>"));
        std::fs::remove_dir_all(path.parent().unwrap()).ok();
    }
}
