//! 2-D scatter plot — the subsequence projection view of the Graph frame.

use crate::color::category_color;
use crate::svg::{draw_axes, LinearScale, SvgDoc};

/// A scatter plot with per-point class colouring.
#[derive(Debug, Clone)]
pub struct ScatterPlot {
    /// Chart title.
    pub title: String,
    /// `(x, y)` points.
    pub points: Vec<(f64, f64)>,
    /// Class of each point (drives colour); empty = single class.
    pub classes: Vec<usize>,
    /// Point radius in pixels.
    pub radius: f64,
    /// Pixel size.
    pub size: (f64, f64),
}

impl ScatterPlot {
    /// Creates a scatter plot (size 420 × 360).
    pub fn new(title: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        ScatterPlot {
            title: title.into(),
            points,
            classes: Vec::new(),
            radius: 1.6,
            size: (420.0, 360.0),
        }
    }

    /// Sets point classes (builder style).
    pub fn with_classes(mut self, classes: Vec<usize>) -> Self {
        assert_eq!(classes.len(), self.points.len(), "one class per point");
        self.classes = classes;
        self
    }

    /// Renders to SVG.
    pub fn render(&self) -> String {
        let (w, h) = self.size;
        let (left, right, top, bottom) = (48.0, w - 14.0, 30.0, h - 36.0);
        let mut doc = SvgDoc::new(w, h);
        doc.rect(0.0, 0.0, w, h, "#ffffff", "none");
        doc.text(w / 2.0, 18.0, &self.title, 12.0, "middle", "#111111");
        if self.points.is_empty() {
            doc.text(w / 2.0, h / 2.0, "(no points)", 11.0, "middle", "#777777");
            return doc.finish();
        }
        let (mut x0, mut x1) = (f64::INFINITY, f64::NEG_INFINITY);
        let (mut y0, mut y1) = (f64::INFINITY, f64::NEG_INFINITY);
        for &(x, y) in &self.points {
            x0 = x0.min(x);
            x1 = x1.max(x);
            y0 = y0.min(y);
            y1 = y1.max(y);
        }
        let xs = LinearScale::new((x0, x1), (left, right));
        let ys = LinearScale::new((y0, y1), (bottom, top));
        draw_axes(&mut doc, &xs, &ys, "PC1", "PC2", left, bottom, right, top);
        for (i, &(x, y)) in self.points.iter().enumerate() {
            let color = if self.classes.is_empty() {
                category_color(0)
            } else {
                category_color(self.classes[i])
            };
            doc.circle(xs.apply(x), ys.apply(y), self.radius, color, "none");
        }
        doc.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_points() {
        let plot = ScatterPlot::new("proj", vec![(0.0, 0.0), (1.0, 1.0), (2.0, 0.5)]);
        let svg = plot.render();
        assert!(svg.contains("proj"));
        assert_eq!(svg.matches("<circle").count(), 3);
        assert!(svg.contains("PC1"));
    }

    #[test]
    fn class_colors() {
        let plot = ScatterPlot::new("p", vec![(0.0, 0.0), (1.0, 1.0)]).with_classes(vec![0, 1]);
        let svg = plot.render();
        assert!(svg.contains(crate::color::CATEGORY10[0]));
        assert!(svg.contains(crate::color::CATEGORY10[1]));
    }

    #[test]
    #[should_panic(expected = "one class per point")]
    fn class_count_mismatch_panics() {
        ScatterPlot::new("p", vec![(0.0, 0.0)]).with_classes(vec![0, 1]);
    }

    #[test]
    fn empty_graceful() {
        assert!(ScatterPlot::new("p", vec![])
            .render()
            .contains("(no points)"));
    }
}
