//! Matrix heatmaps — feature matrix (frame 4.2) and consensus matrix
//! (frame 4.3).

use crate::color::{viridis, Rgb};
use crate::svg::SvgDoc;
use linalg::matrix::Matrix;

/// A heatmap of a dense matrix.
#[derive(Debug, Clone)]
pub struct Heatmap {
    /// Chart title.
    pub title: String,
    /// The matrix to draw (row 0 at the top).
    pub matrix: Matrix,
    /// Pixel size.
    pub size: (f64, f64),
    /// Explicit value domain; `None` = data min/max.
    pub domain: Option<(f64, f64)>,
    /// Colormap (defaults to viridis).
    pub colormap: fn(f64) -> Rgb,
    /// Optional row-group boundaries (cluster separators), row indices.
    pub row_groups: Vec<usize>,
}

impl Heatmap {
    /// Creates a heatmap (size 420 × 380).
    pub fn new(title: impl Into<String>, matrix: Matrix) -> Self {
        Heatmap {
            title: title.into(),
            matrix,
            size: (420.0, 380.0),
            domain: None,
            colormap: viridis,
            row_groups: Vec::new(),
        }
    }

    /// Renders to SVG.
    pub fn render(&self) -> String {
        let (w, h) = self.size;
        let (left, right, top, bottom) = (20.0, w - 50.0, 30.0, h - 20.0);
        let mut doc = SvgDoc::new(w, h);
        doc.rect(0.0, 0.0, w, h, "#ffffff", "none");
        doc.text(w / 2.0, 18.0, &self.title, 12.0, "middle", "#111111");
        let (rows, cols) = self.matrix.shape();
        if rows == 0 || cols == 0 {
            doc.text(
                w / 2.0,
                h / 2.0,
                "(empty matrix)",
                11.0,
                "middle",
                "#777777",
            );
            return doc.finish();
        }
        let (lo, hi) = self.domain.unwrap_or_else(|| {
            let mut lo = f64::INFINITY;
            let mut hi = f64::NEG_INFINITY;
            for &v in self.matrix.as_slice() {
                lo = lo.min(v);
                hi = hi.max(v);
            }
            if (hi - lo).abs() < 1e-12 {
                (lo - 0.5, hi + 0.5)
            } else {
                (lo, hi)
            }
        });
        let cell_w = (right - left) / cols as f64;
        let cell_h = (bottom - top) / rows as f64;
        for r in 0..rows {
            for c in 0..cols {
                let t = (self.matrix[(r, c)] - lo) / (hi - lo);
                let color = (self.colormap)(t).to_hex();
                doc.rect(
                    left + c as f64 * cell_w,
                    top + r as f64 * cell_h,
                    cell_w + 0.3,
                    cell_h + 0.3,
                    &color,
                    "none",
                );
            }
        }
        // Cluster separators.
        for &g in &self.row_groups {
            let y = top + g as f64 * cell_h;
            doc.line(left, y, right, y, "#ffffff", 1.5);
        }
        // Colorbar.
        let bar_x = right + 10.0;
        let bar_h = bottom - top;
        let steps = 40;
        for s in 0..steps {
            let t = 1.0 - s as f64 / (steps - 1) as f64;
            doc.rect(
                bar_x,
                top + s as f64 * bar_h / steps as f64,
                12.0,
                bar_h / steps as f64 + 0.4,
                &(self.colormap)(t).to_hex(),
                "none",
            );
        }
        doc.text(
            bar_x + 14.0,
            top + 8.0,
            &format!("{hi:.2}"),
            8.0,
            "start",
            "#333333",
        );
        doc.text(
            bar_x + 14.0,
            bottom,
            &format!("{lo:.2}"),
            8.0,
            "start",
            "#333333",
        );
        doc.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_cells_and_colorbar() {
        let m = Matrix::from_rows(&[vec![0.0, 0.5], vec![0.5, 1.0]]);
        let hm = Heatmap::new("consensus", m);
        let svg = hm.render();
        assert!(svg.contains("consensus"));
        // 4 cells + background + 40 colorbar steps.
        assert!(svg.matches("<rect").count() >= 45);
        assert!(svg.contains("1.00"));
        assert!(svg.contains("0.00"));
    }

    #[test]
    fn empty_matrix_graceful() {
        let hm = Heatmap::new("e", Matrix::zeros(0, 0));
        assert!(hm.render().contains("(empty matrix)"));
    }

    #[test]
    fn constant_matrix_does_not_break() {
        let hm = Heatmap::new("c", Matrix::from_rows(&[vec![3.0, 3.0]]));
        let svg = hm.render();
        assert!(!svg.contains("NaN"));
    }

    #[test]
    fn explicit_domain_used() {
        let m = Matrix::from_rows(&[vec![0.2]]);
        let mut hm = Heatmap::new("d", m);
        hm.domain = Some((0.0, 1.0));
        let svg = hm.render();
        assert!(svg.contains("1.00"));
        assert!(svg.contains("0.00"));
    }

    #[test]
    fn row_group_separators() {
        let m = Matrix::zeros(4, 4);
        let mut hm = Heatmap::new("g", m);
        hm.row_groups = vec![2];
        let svg = hm.render();
        assert!(svg.contains("stroke=\"#ffffff\""));
    }
}
