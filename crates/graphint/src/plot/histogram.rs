//! Histograms — score distributions in the Benchmark frame and node-count
//! distributions in the Graph frame.

use crate::svg::{draw_axes, LinearScale, SvgDoc};

/// A single-series histogram with automatic binning.
#[derive(Debug, Clone)]
pub struct Histogram {
    /// Chart title.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Raw samples.
    pub samples: Vec<f64>,
    /// Number of bins (0 = Sturges' rule).
    pub bins: usize,
    /// Bar fill colour.
    pub color: String,
    /// Pixel size.
    pub size: (f64, f64),
}

impl Histogram {
    /// Creates a histogram with automatic binning (size 420 × 260).
    pub fn new(title: impl Into<String>, samples: Vec<f64>) -> Self {
        Histogram {
            title: title.into(),
            x_label: String::new(),
            samples,
            bins: 0,
            color: "#1f77b4".into(),
            size: (420.0, 260.0),
        }
    }

    /// Bin counts and edges: `(edges, counts)` with
    /// `edges.len() == counts.len() + 1`.
    pub fn bin_counts(&self) -> (Vec<f64>, Vec<usize>) {
        if self.samples.is_empty() {
            return (Vec::new(), Vec::new());
        }
        let bins = if self.bins > 0 {
            self.bins
        } else {
            // Sturges' rule.
            ((self.samples.len() as f64).log2().ceil() as usize + 1).max(1)
        };
        let lo = self.samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = self
            .samples
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max);
        let (lo, hi) = if (hi - lo).abs() < 1e-12 {
            (lo - 0.5, hi + 0.5)
        } else {
            (lo, hi)
        };
        let width = (hi - lo) / bins as f64;
        let edges: Vec<f64> = (0..=bins).map(|i| lo + width * i as f64).collect();
        let mut counts = vec![0usize; bins];
        for &x in &self.samples {
            let mut b = ((x - lo) / width) as usize;
            if b >= bins {
                b = bins - 1;
            }
            counts[b] += 1;
        }
        (edges, counts)
    }

    /// Renders to SVG.
    pub fn render(&self) -> String {
        let (w, h) = self.size;
        let (left, right, top, bottom) = (48.0, w - 14.0, 30.0, h - 40.0);
        let mut doc = SvgDoc::new(w, h);
        doc.rect(0.0, 0.0, w, h, "#ffffff", "none");
        doc.text(w / 2.0, 18.0, &self.title, 12.0, "middle", "#111111");
        let (edges, counts) = self.bin_counts();
        if counts.is_empty() {
            doc.text(w / 2.0, h / 2.0, "(no data)", 11.0, "middle", "#777777");
            return doc.finish();
        }
        let max_count = *counts.iter().max().expect("non-empty") as f64;
        let xs = LinearScale::new((edges[0], *edges.last().expect("non-empty")), (left, right));
        let ys = LinearScale::new((0.0, max_count), (bottom, top));
        draw_axes(
            &mut doc,
            &xs,
            &ys,
            &self.x_label,
            "count",
            left,
            bottom,
            right,
            top,
        );
        for (i, &c) in counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let x0 = xs.apply(edges[i]);
            let x1 = xs.apply(edges[i + 1]);
            let y = ys.apply(c as f64);
            doc.rect(
                x0 + 0.5,
                y,
                (x1 - x0 - 1.0).max(0.5),
                bottom - y,
                &self.color,
                "none",
            );
        }
        doc.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bins_partition_the_samples() {
        let samples: Vec<f64> = (0..100).map(|i| i as f64 / 10.0).collect();
        let h = Histogram {
            bins: 10,
            ..Histogram::new("t", samples.clone())
        };
        let (edges, counts) = h.bin_counts();
        assert_eq!(edges.len(), 11);
        assert_eq!(counts.iter().sum::<usize>(), samples.len());
        // Roughly uniform.
        assert!(counts.iter().all(|&c| (9..=11).contains(&c)), "{counts:?}");
    }

    #[test]
    fn sturges_default() {
        let h = Histogram::new("t", (0..64).map(|i| i as f64).collect());
        let (_, counts) = h.bin_counts();
        assert_eq!(counts.len(), 7); // log2(64) + 1
    }

    #[test]
    fn constant_samples_do_not_break() {
        let h = Histogram::new("t", vec![3.0; 10]);
        let (edges, counts) = h.bin_counts();
        assert!(!edges.is_empty());
        assert_eq!(counts.iter().sum::<usize>(), 10);
        assert!(!h.render().contains("NaN"));
    }

    #[test]
    fn renders_bars_and_title() {
        let h = Histogram::new("ARI distribution", vec![0.1, 0.2, 0.2, 0.9]);
        let svg = h.render();
        assert!(svg.contains("ARI distribution"));
        assert!(svg.contains("count"));
        assert!(svg.matches("<rect").count() >= 2);
    }

    #[test]
    fn empty_graceful() {
        assert!(Histogram::new("t", vec![]).render().contains("(no data)"));
    }
}
