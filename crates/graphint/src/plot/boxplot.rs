//! Box plots — the Benchmark frame's main visual.

use crate::color::category_color;
use crate::svg::{LinearScale, SvgDoc};
use tscore::stats::five_number_summary;

/// One box (a method's score distribution).
#[derive(Debug, Clone)]
pub struct Box {
    /// Category label (method name).
    pub label: String,
    /// (min, q1, median, q3, max).
    pub summary: (f64, f64, f64, f64, f64),
    /// Number of observations behind the box.
    pub n: usize,
}

impl Box {
    /// Builds a box from raw samples.
    pub fn from_samples(label: impl Into<String>, samples: &[f64]) -> Self {
        Box {
            label: label.into(),
            summary: five_number_summary(samples),
            n: samples.len(),
        }
    }
}

/// A vertical box-plot chart.
#[derive(Debug, Clone)]
pub struct BoxPlot {
    /// Chart title.
    pub title: String,
    /// Y-axis label (the evaluation measure).
    pub y_label: String,
    /// The boxes, plotted left to right.
    pub boxes: Vec<Box>,
    /// Pixel size.
    pub size: (f64, f64),
    /// Highlighted category (drawn in colour; others grey) — Graphint
    /// highlights k-Graph against the baselines.
    pub highlight: Option<String>,
}

impl BoxPlot {
    /// Creates an empty box plot (size 720 × 320).
    pub fn new(title: impl Into<String>, y_label: impl Into<String>) -> Self {
        BoxPlot {
            title: title.into(),
            y_label: y_label.into(),
            boxes: Vec::new(),
            size: (720.0, 320.0),
            highlight: None,
        }
    }

    /// Adds a box (builder style).
    #[allow(clippy::should_implement_trait)] // builder verb, not arithmetic
    pub fn add(mut self, b: Box) -> Self {
        self.boxes.push(b);
        self
    }

    /// Renders to SVG.
    pub fn render(&self) -> String {
        let (w, h) = self.size;
        let (left, right, top, bottom) = (52.0, w - 14.0, 34.0, h - 58.0);
        let mut doc = SvgDoc::new(w, h);
        doc.rect(0.0, 0.0, w, h, "#ffffff", "none");
        doc.text(w / 2.0, 18.0, &self.title, 12.0, "middle", "#111111");
        if self.boxes.is_empty() {
            doc.text(w / 2.0, h / 2.0, "(no data)", 11.0, "middle", "#777777");
            return doc.finish();
        }
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for b in &self.boxes {
            lo = lo.min(b.summary.0);
            hi = hi.max(b.summary.4);
        }
        let pad = ((hi - lo) * 0.06).max(1e-9);
        let ys = LinearScale::new((lo - pad, hi + pad), (bottom, top));
        // Y axis.
        doc.line(left, top, left, bottom, "#333333", 1.0);
        for t in ys.ticks(6) {
            let py = ys.apply(t);
            if py > bottom + 1e-6 || py < top - 1e-6 {
                continue;
            }
            doc.line(left - 4.0, py, left, py, "#333333", 1.0);
            doc.text(
                left - 6.0,
                py + 3.0,
                &crate::svg::format_tick(t),
                9.0,
                "end",
                "#333333",
            );
            doc.dashed_line(left, py, right, py, "#eeeeee", 0.6);
        }
        if !self.y_label.is_empty() {
            let cx = left - 34.0;
            let cy = (top + bottom) / 2.0;
            doc.raw(&format!(
                r##"<text x="{cx:.1}" y="{cy:.1}" font-size="10" text-anchor="middle" fill="#333333" font-family="sans-serif" transform="rotate(-90 {cx:.1} {cy:.1})">{}</text>"##,
                crate::svg::escape(&self.y_label)
            ));
        }

        let slot = (right - left) / self.boxes.len() as f64;
        let box_w = (slot * 0.55).min(46.0);
        for (i, b) in self.boxes.iter().enumerate() {
            let cx = left + slot * (i as f64 + 0.5);
            let highlighted = self.highlight.as_deref() == Some(b.label.as_str());
            let color = if self.highlight.is_none() || highlighted {
                category_color(i).to_string()
            } else {
                "#bbbbbb".to_string()
            };
            let (mn, q1, md, q3, mx) = b.summary;
            let (y_mn, y_q1, y_md, y_q3, y_mx) = (
                ys.apply(mn),
                ys.apply(q1),
                ys.apply(md),
                ys.apply(q3),
                ys.apply(mx),
            );
            // Whiskers.
            doc.line(cx, y_mn, cx, y_q1, &color, 1.0);
            doc.line(cx, y_q3, cx, y_mx, &color, 1.0);
            doc.line(cx - box_w / 4.0, y_mn, cx + box_w / 4.0, y_mn, &color, 1.0);
            doc.line(cx - box_w / 4.0, y_mx, cx + box_w / 4.0, y_mx, &color, 1.0);
            // Box + median.
            doc.rect(
                cx - box_w / 2.0,
                y_q3,
                box_w,
                (y_q1 - y_q3).max(0.5),
                "none",
                &color,
            );
            doc.line(cx - box_w / 2.0, y_md, cx + box_w / 2.0, y_md, &color, 2.0);
            // Rotated label.
            doc.raw(&format!(
                r##"<text x="{cx:.1}" y="{:.1}" font-size="9" text-anchor="end" fill="#333333" font-family="sans-serif" transform="rotate(-35 {cx:.1} {:.1})">{}</text>"##,
                bottom + 12.0,
                bottom + 12.0,
                crate::svg::escape(&b.label)
            ));
        }
        doc.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn box_from_samples() {
        let b = Box::from_samples("m", &[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(b.summary.0, 1.0);
        assert_eq!(b.summary.2, 3.0);
        assert_eq!(b.summary.4, 5.0);
        assert_eq!(b.n, 5);
    }

    #[test]
    fn renders_boxes() {
        let plot = BoxPlot::new("Benchmark", "ARI")
            .add(Box::from_samples("k-Graph", &[0.7, 0.8, 0.9]))
            .add(Box::from_samples("k-Means", &[0.3, 0.5, 0.6]));
        let svg = plot.render();
        assert!(svg.contains("Benchmark"));
        assert!(svg.contains("k-Graph"));
        assert!(svg.contains("k-Means"));
        assert!(svg.contains("ARI"));
        assert!(svg.matches("<rect").count() >= 3); // background + 2 boxes
    }

    #[test]
    fn highlight_greys_out_others() {
        let mut plot = BoxPlot::new("b", "ARI")
            .add(Box::from_samples("k-Graph", &[0.8, 0.9]))
            .add(Box::from_samples("other", &[0.1, 0.2]));
        plot.highlight = Some("k-Graph".into());
        let svg = plot.render();
        assert!(svg.contains("#bbbbbb"));
    }

    #[test]
    fn empty_plot_graceful() {
        let svg = BoxPlot::new("b", "y").render();
        assert!(svg.contains("(no data)"));
    }

    #[test]
    fn constant_samples_do_not_break() {
        let plot = BoxPlot::new("b", "y").add(Box::from_samples("c", &[0.5, 0.5, 0.5]));
        let svg = plot.render();
        assert!(!svg.contains("NaN"));
    }
}
