//! Node-link rendering of k-Graph graphs — the heart of the Graph frame.
//!
//! Nodes are sized by crossing count and coloured by the cluster whose
//! γ-graphoid (and λ-graphoid) they belong to; unselected elements are
//! muted grey, exactly like the demo's "nodes and edges are colored if
//! their representativity and exclusivity exceed the values the user
//! selects".
//!
//! The renderer reads the layer's CSR view: edge iteration order is
//! deterministic ((source, target)-sorted), so the emitted SVG is
//! byte-stable across re-renders of the same model.
//!
//! ## Rendering at scale
//!
//! Full detail emits ~3 elements per edge — fine at the paper's demo
//! sizes, hopeless at 10k–100k-node graphoid layers. A [`RenderBudget`]
//! caps the element count and [`DetailLevel`] picks how to spend it:
//!
//! * **Full** — the classic render: one arrow per edge, one circle per
//!   node. Byte-identical to the historical output.
//! * **Aggregated** — nodes stay individual (bare circles inside shared
//!   `<g>` style groups, one group per cluster colour); the heaviest
//!   edges draw as individual lines up to the remaining budget and the
//!   long tail bundles into one `<path>` per owning cluster.
//! * **Glyph** — the zoomed-out view: one glyph per cluster at the
//!   centroid of its nodes, sized by crossing share, with aggregate
//!   inter-cluster edges. O(k) elements regardless of graph size.
//!
//! `DetailLevel::Auto` degrades Full → Aggregated → Glyph at the first
//! level whose element count fits the budget, so callers can promise a
//! bounded response cost (the `graphserve` render route does exactly
//! that).

use crate::color::{category_color, MUTED};
use crate::svg::SvgDoc;
use kgraph::graphoid::ClusterStats;
use kgraph::{GraphLayer, PatternGraph};
use std::fmt::Write as _;
use tsgraph::layout::{
    fit_to_viewport, layout_graph, BarnesHutOptions, ForceOptions, LayoutEngine,
};

/// Maximum number of SVG elements a render may emit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RenderBudget {
    /// Element cap; [`RenderBudget::unlimited`] for no cap.
    pub max_elements: usize,
}

impl RenderBudget {
    /// No cap at all (the default — small graphs render in full).
    pub fn unlimited() -> Self {
        RenderBudget {
            max_elements: usize::MAX,
        }
    }

    /// At most `max_elements` visual elements.
    pub fn capped(max_elements: usize) -> Self {
        RenderBudget { max_elements }
    }

    /// Whether this budget caps anything.
    pub fn is_unlimited(&self) -> bool {
        self.max_elements == usize::MAX
    }
}

impl Default for RenderBudget {
    fn default() -> Self {
        RenderBudget::unlimited()
    }
}

/// How much of the graph to draw.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DetailLevel {
    /// Pick the highest level that fits the [`RenderBudget`].
    Auto,
    /// One arrow per edge, one circle per node.
    Full,
    /// Individual nodes, bundled low-weight edges.
    Aggregated,
    /// One glyph per cluster.
    Glyph,
}

impl DetailLevel {
    /// Parses the wire names used by the render endpoints.
    pub fn parse(s: &str) -> Option<DetailLevel> {
        match s {
            "auto" => Some(DetailLevel::Auto),
            "full" => Some(DetailLevel::Full),
            "aggregated" | "agg" => Some(DetailLevel::Aggregated),
            "glyph" | "glyphs" => Some(DetailLevel::Glyph),
            _ => None,
        }
    }
}

/// Renderer for one graph layer.
#[derive(Debug)]
pub struct GraphPlot<'a> {
    /// Chart title.
    pub title: String,
    /// The graph to draw.
    pub graph: &'a PatternGraph,
    /// Crossing statistics under the final labels.
    pub stats: &'a ClusterStats,
    /// Representativity threshold λ for colouring.
    pub lambda: f64,
    /// Exclusivity threshold γ for colouring.
    pub gamma: f64,
    /// Pixel size.
    pub size: (f64, f64),
    /// Layout seed.
    pub seed: u64,
    /// Which layout algorithm positions the nodes.
    pub engine: LayoutEngine,
    /// Barnes–Hut opening angle (used when the engine resolves to it).
    pub theta: f64,
    /// Detail level; `Auto` degrades until the budget fits.
    pub detail: DetailLevel,
    /// Element budget for `Auto` detail and edge-bundling quotas.
    pub budget: RenderBudget,
}

impl<'a> GraphPlot<'a> {
    /// Creates a renderer with the thresholds of the advanced-settings
    /// window (size 640 × 520, auto layout, full detail, no budget).
    pub fn new(layer: &'a GraphLayer, stats: &'a ClusterStats, lambda: f64, gamma: f64) -> Self {
        GraphPlot::from_graph(&layer.graph, layer.length, stats, lambda, gamma)
    }

    /// Same, over a bare graph (tests and synthetic layers don't need to
    /// fabricate a full `GraphLayer` around it).
    pub fn from_graph(
        graph: &'a PatternGraph,
        length: usize,
        stats: &'a ClusterStats,
        lambda: f64,
        gamma: f64,
    ) -> Self {
        GraphPlot {
            title: format!("k-Graph graph (ℓ = {length})"),
            graph,
            stats,
            lambda,
            gamma,
            size: (640.0, 520.0),
            seed: 42,
            engine: LayoutEngine::Auto,
            theta: 0.8,
            detail: DetailLevel::Auto,
            budget: RenderBudget::unlimited(),
        }
    }

    /// Sets the layout engine.
    pub fn with_engine(mut self, engine: LayoutEngine) -> Self {
        self.engine = engine;
        self
    }

    /// Sets the detail level.
    pub fn with_detail(mut self, detail: DetailLevel) -> Self {
        self.detail = detail;
        self
    }

    /// Sets the element budget.
    pub fn with_budget(mut self, budget: RenderBudget) -> Self {
        self.budget = budget;
        self
    }

    /// The cluster that "owns" node `n` under (λ, γ), if any: the cluster
    /// with maximal exclusivity among those where both thresholds hold.
    pub fn node_owner(&self, n: usize) -> Option<usize> {
        let mut best: Option<(usize, f64)> = None;
        for c in 0..self.stats.k {
            let repr = self.stats.node_representativity(c, n);
            let excl = self.stats.node_exclusivity(c, n);
            if repr >= self.lambda && excl >= self.gamma && best.is_none_or(|(_, e)| excl > e) {
                best = Some((c, excl));
            }
        }
        best.map(|(c, _)| c)
    }

    /// Same ownership rule for edge `e`.
    pub fn edge_owner(&self, e: usize) -> Option<usize> {
        let mut best: Option<(usize, f64)> = None;
        for c in 0..self.stats.k {
            let repr = self.stats.edge_representativity(c, e);
            let excl = self.stats.edge_exclusivity(c, e);
            if repr >= self.lambda && excl >= self.gamma && best.is_none_or(|(_, x)| excl > x) {
                best = Some((c, excl));
            }
        }
        best.map(|(c, _)| c)
    }

    /// Elements spent on background, title and legend (every level pays
    /// these).
    fn overhead(&self) -> usize {
        2 + 2 * self.stats.k + 1
    }

    /// Resolves `Auto` detail to the highest concrete level whose element
    /// count fits the budget. Explicit levels pass through unchanged.
    pub fn resolve_detail(&self) -> DetailLevel {
        match self.detail {
            DetailLevel::Auto => {
                let n = self.graph.node_count();
                let e = self.graph.edge_count();
                let cap = self.budget.max_elements;
                // Full: up to 3 lines per edge (arrow) + 1 circle per node.
                let full = self.overhead() + 3 * e + n;
                if full <= cap {
                    return DetailLevel::Full;
                }
                // Aggregated: 1 circle per node + at least one bundle path
                // per owning cluster (the direct-edge quota only spends
                // what remains).
                let aggregated = self.overhead() + n + self.stats.k + 1;
                if aggregated <= cap {
                    return DetailLevel::Aggregated;
                }
                DetailLevel::Glyph
            }
            concrete => concrete,
        }
    }

    /// Renders to SVG.
    pub fn render(&self) -> String {
        self.render_with_buffer(String::new()).0
    }

    /// Renders to SVG and also reports the emitted element count (what
    /// the budget is accounted against).
    pub fn render_counted(&self) -> (String, usize) {
        self.render_with_buffer(String::new())
    }

    /// Renders into a recycled buffer (see [`SvgDoc::with_buffer`]),
    /// returning the finished document and its element count.
    pub fn render_with_buffer(&self, buf: String) -> (String, usize) {
        let (w, h) = self.size;
        let mut doc = SvgDoc::with_buffer(w, h, buf);
        doc.rect(0.0, 0.0, w, h, "#ffffff", "none");
        doc.text(w / 2.0, 18.0, &self.title, 12.0, "middle", "#111111");
        let g = self.graph;
        if g.node_count() == 0 {
            doc.text(w / 2.0, h / 2.0, "(empty graph)", 11.0, "middle", "#777777");
            let count = doc.element_count();
            return (doc.finish(), count);
        }
        let layout = layout_graph(
            g,
            self.engine,
            BarnesHutOptions {
                force: ForceOptions {
                    seed: self.seed,
                    ..Default::default()
                },
                theta: self.theta,
            },
        );
        let pos = fit_to_viewport(&layout, w, h - 40.0, 30.0);
        let pos: Vec<(f64, f64)> = pos.into_iter().map(|(x, y)| (x, y + 30.0)).collect();

        match self.resolve_detail() {
            DetailLevel::Full => self.render_full(&mut doc, &pos),
            DetailLevel::Aggregated => self.render_aggregated(&mut doc, &pos),
            DetailLevel::Glyph => self.render_glyph(&mut doc, &pos),
            DetailLevel::Auto => unreachable!("resolve_detail() never returns Auto"),
        }
        self.render_legend(&mut doc);
        let count = doc.element_count();
        (doc.finish(), count)
    }

    /// Node radius rule shared by every detail level.
    fn radius_fn(&self) -> impl Fn(usize) -> f64 {
        let max_count = self
            .graph
            .nodes_iter()
            .map(|(_, n)| n.count)
            .max()
            .unwrap_or(1)
            .max(1) as f64;
        move |count: usize| 3.0 + 9.0 * (count as f64 / max_count).sqrt()
    }

    /// The classic render: one arrow per edge, one circle per node.
    fn render_full(&self, doc: &mut SvgDoc, pos: &[(f64, f64)]) {
        let g = self.graph;
        let radius = self.radius_fn();
        // Edges first (under nodes).
        let max_weight = g.edges_iter().map(|(_, _, _, &w)| w).fold(1.0f64, f64::max);
        for (e, s, t, &weight) in g.edges_iter() {
            let color = match self.edge_owner(e.index()) {
                Some(c) => category_color(c).to_string(),
                None => MUTED.to_string(),
            };
            let (x1, y1) = pos[s.index()];
            let (x2, y2) = pos[t.index()];
            // Shorten toward the target so the arrow tip meets the circle.
            let rt = radius(g.node(t).count);
            let dx = x2 - x1;
            let dy = y2 - y1;
            let len = (dx * dx + dy * dy).sqrt().max(1e-9);
            let (ex, ey) = (x2 - dx / len * rt, y2 - dy / len * rt);
            let width = 0.5 + 2.0 * (weight / max_weight);
            doc.arrow(x1, y1, ex, ey, &color, width);
        }
        // Nodes.
        for (id, node) in g.nodes_iter() {
            let color = match self.node_owner(id.index()) {
                Some(c) => category_color(c).to_string(),
                None => MUTED.to_string(),
            };
            let (x, y) = pos[id.index()];
            doc.circle(x, y, radius(node.count), &color, "#555555");
        }
    }

    /// Individual nodes, bundled low-weight edges: the heaviest edges (up
    /// to the budget's remainder) draw as single lines, the tail folds
    /// into one `<path>` per owning cluster; node circles share `<g>`
    /// style groups per colour.
    fn render_aggregated(&self, doc: &mut SvgDoc, pos: &[(f64, f64)]) {
        let g = self.graph;
        let n = g.node_count();
        let radius = self.radius_fn();
        let k = self.stats.k;

        // Owner per edge (None → the muted bucket at index k).
        let owners: Vec<usize> = (0..g.edge_count())
            .map(|e| self.edge_owner(e).unwrap_or(k))
            .collect();
        let bundles_present = {
            let mut seen = vec![false; k + 1];
            for &o in &owners {
                seen[o] = true;
            }
            seen
        };
        let bundle_count = bundles_present.iter().filter(|&&s| s).count();

        // Direct-edge quota: whatever the budget leaves after the fixed
        // cost; defaults to ~one direct edge per node when uncapped.
        let quota = if self.budget.is_unlimited() {
            n
        } else {
            self.budget
                .max_elements
                .saturating_sub(self.overhead() + n + bundle_count)
        };
        // Heaviest edges first, ties broken by edge id for determinism.
        let mut by_weight: Vec<usize> = (0..g.edge_count()).collect();
        let weights: Vec<f64> = g.edges_iter().map(|(_, _, _, &w)| w).collect();
        by_weight.sort_by(|&a, &b| {
            weights[b]
                .partial_cmp(&weights[a])
                .expect("NaN edge weight")
                .then(a.cmp(&b))
        });
        let mut direct = vec![false; g.edge_count()];
        for &e in by_weight.iter().take(quota) {
            direct[e] = true;
        }

        // Bundle tails: one path per owner bucket, segments in edge order.
        let max_weight = weights.iter().copied().fold(1.0f64, f64::max);
        let mut bundle_d: Vec<String> = vec![String::new(); k + 1];
        for (e, s, t, _) in g.edges_iter() {
            if direct[e.index()] {
                continue;
            }
            let (x1, y1) = pos[s.index()];
            let (x2, y2) = pos[t.index()];
            let d = &mut bundle_d[owners[e.index()]];
            let _ = write!(d, "M{x1:.1} {y1:.1}L{x2:.1} {y2:.1}");
        }
        for (c, d) in bundle_d.iter().enumerate() {
            if d.is_empty() {
                continue;
            }
            let color = if c < k { category_color(c) } else { MUTED };
            doc.path(d, color, 0.6);
        }
        // Direct edges as plain lines (arrowheads are 2 extra elements
        // each — aggregation spends them on more edges instead).
        for (e, s, t, &weight) in g.edges_iter() {
            if !direct[e.index()] {
                continue;
            }
            let color = if owners[e.index()] < k {
                category_color(owners[e.index()])
            } else {
                MUTED
            };
            let (x1, y1) = pos[s.index()];
            let (x2, y2) = pos[t.index()];
            let width = 0.5 + 2.0 * (weight / max_weight);
            doc.line(x1, y1, x2, y2, color, width);
        }
        // Nodes: bare circles in per-colour style groups.
        for c in 0..=k {
            let color = if c < k { category_color(c) } else { MUTED };
            let mut open = false;
            for (id, node) in g.nodes_iter() {
                if self.node_owner(id.index()).unwrap_or(k) != c {
                    continue;
                }
                if !open {
                    doc.begin_group(&format!(r##"fill="{color}" stroke="#555555""##));
                    open = true;
                }
                let (x, y) = pos[id.index()];
                doc.plain_circle(x, y, radius(node.count));
            }
            if open {
                doc.end_group();
            }
        }
    }

    /// The zoomed-out view: one glyph per cluster at the centroid of its
    /// nodes, aggregate inter-cluster edges, O(k) elements total.
    fn render_glyph(&self, doc: &mut SvgDoc, pos: &[(f64, f64)]) {
        let g = self.graph;
        let k = self.stats.k;
        // Per-bucket centroid and crossing mass (bucket k = unowned).
        let mut sums = vec![(0.0f64, 0.0f64); k + 1];
        let mut members = vec![0usize; k + 1];
        let mut mass = vec![0usize; k + 1];
        let node_bucket: Vec<usize> = (0..g.node_count())
            .map(|n| self.node_owner(n).unwrap_or(k))
            .collect();
        for (id, node) in g.nodes_iter() {
            let b = node_bucket[id.index()];
            sums[b].0 += pos[id.index()].0;
            sums[b].1 += pos[id.index()].1;
            members[b] += 1;
            mass[b] += node.count;
        }
        let centroid = |b: usize| {
            (
                sums[b].0 / members[b].max(1) as f64,
                sums[b].1 / members[b].max(1) as f64,
            )
        };
        // Aggregate inter-bucket edge weight.
        let mut flow = vec![0.0f64; (k + 1) * (k + 1)];
        for (_, s, t, &w) in g.edges_iter() {
            let (a, b) = (node_bucket[s.index()], node_bucket[t.index()]);
            if a != b && members[a] > 0 && members[b] > 0 {
                flow[a * (k + 1) + b] += w;
            }
        }
        let max_flow = flow.iter().copied().fold(1e-12f64, f64::max);
        for a in 0..=k {
            for b in 0..=k {
                let f = flow[a * (k + 1) + b];
                if f <= 0.0 {
                    continue;
                }
                let (x1, y1) = centroid(a);
                let (x2, y2) = centroid(b);
                let color = if a < k { category_color(a) } else { MUTED };
                doc.line(x1, y1, x2, y2, color, 1.0 + 5.0 * (f / max_flow));
            }
        }
        // Glyphs on top, sized by crossing share.
        let total_mass = mass.iter().sum::<usize>().max(1) as f64;
        for b in 0..=k {
            if members[b] == 0 {
                continue;
            }
            let (x, y) = centroid(b);
            let color = if b < k { category_color(b) } else { MUTED };
            let r = 10.0 + 40.0 * (mass[b] as f64 / total_mass).sqrt();
            doc.circle(x, y, r, color, "#555555");
            let label = if b < k {
                format!("C{b} ({} nodes)", members[b])
            } else {
                format!("unassigned ({} nodes)", members[b])
            };
            doc.text(x, y + 3.0, &label, 9.0, "middle", "#111111");
        }
    }

    /// Legend: one swatch per cluster plus the thresholds.
    fn render_legend(&self, doc: &mut SvgDoc) {
        let h = self.size.1;
        let mut lx = 30.0;
        for c in 0..self.stats.k {
            doc.circle(lx, h - 14.0, 5.0, category_color(c), "#555555");
            doc.text(
                lx + 9.0,
                h - 10.0,
                &format!("cluster {c}"),
                9.0,
                "start",
                "#333333",
            );
            lx += 80.0;
        }
        doc.text(
            lx + 10.0,
            h - 10.0,
            &format!("λ={:.2} γ={:.2}", self.lambda, self.gamma),
            9.0,
            "start",
            "#333333",
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgraph::{KGraph, KGraphConfig};
    use tscore::{Dataset, DatasetKind, TimeSeries};

    fn model() -> kgraph::KGraphModel {
        let mut series = Vec::new();
        for f in [0.2f64, 0.9] {
            for p in 0..5 {
                series.push(TimeSeries::new(
                    (0..80).map(|i| ((i + p) as f64 * f).sin()).collect(),
                ));
            }
        }
        let ds = Dataset::new("toy", DatasetKind::Simulated, series);
        let cfg = KGraphConfig {
            n_lengths: 2,
            psi: 10,
            pca_sample: 400,
            n_init: 2,
            ..KGraphConfig::new(2)
        };
        KGraph::new(cfg).fit(&ds)
    }

    #[test]
    fn renders_nodes_and_edges() {
        let m = model();
        let stats = m.best_stats();
        let plot = GraphPlot::new(m.best(), &stats, 0.5, 0.7);
        let svg = plot.render();
        assert!(svg.contains("k-Graph graph"));
        assert!(svg.matches("<circle").count() >= m.best().graph.node_count());
        assert!(svg.contains("cluster 0"));
        assert!(svg.contains("cluster 1"));
    }

    #[test]
    fn muted_color_for_thresholds_of_one() {
        let m = model();
        let stats = m.best_stats();
        // λ = γ = 1.01 cannot be satisfied → everything muted.
        let plot = GraphPlot::new(m.best(), &stats, 1.01, 1.01);
        for n in 0..m.best().graph.node_count() {
            assert!(plot.node_owner(n).is_none());
        }
        let svg = plot.render();
        assert!(svg.contains(MUTED));
    }

    #[test]
    fn zero_thresholds_color_everything_crossed() {
        let m = model();
        let stats = m.best_stats();
        let plot = GraphPlot::new(m.best(), &stats, 0.0, 0.0);
        let owned = (0..m.best().graph.node_count())
            .filter(|&n| plot.node_owner(n).is_some())
            .count();
        assert_eq!(owned, m.best().graph.node_count());
    }

    #[test]
    fn owner_picks_max_exclusivity() {
        let m = model();
        let stats = m.best_stats();
        let plot = GraphPlot::new(m.best(), &stats, 0.0, 0.0);
        for n in 0..m.best().graph.node_count() {
            if let Some(c) = plot.node_owner(n) {
                let e_owner = stats.node_exclusivity(c, n);
                for other in 0..stats.k {
                    assert!(e_owner >= stats.node_exclusivity(other, n) - 1e-12);
                }
            }
        }
    }

    #[test]
    fn detail_levels_render_and_shrink() {
        let m = model();
        let stats = m.best_stats();
        let base = GraphPlot::new(m.best(), &stats, 0.5, 0.7);
        let (full, full_n) = base.render_counted();
        let plot = GraphPlot::new(m.best(), &stats, 0.5, 0.7);
        let (agg, agg_n) = plot.with_detail(DetailLevel::Aggregated).render_counted();
        let plot = GraphPlot::new(m.best(), &stats, 0.5, 0.7);
        let (glyph, glyph_n) = plot.with_detail(DetailLevel::Glyph).render_counted();
        assert!(full.contains("<line"));
        assert!(agg.contains("<g "), "aggregated uses style groups");
        assert!(glyph.contains("nodes)"), "glyph labels clusters");
        assert!(glyph_n < agg_n, "glyph {glyph_n} < aggregated {agg_n}");
        assert!(agg_n < full_n, "aggregated {agg_n} < full {full_n}");
    }

    #[test]
    fn auto_detail_obeys_budget() {
        let m = model();
        let stats = m.best_stats();
        let n = m.best().graph.node_count();
        // A budget too small for full detail but enough for nodes.
        let budget = RenderBudget::capped(2 + 2 * stats.k + 1 + n + stats.k + 1 + 4);
        let plot = GraphPlot::new(m.best(), &stats, 0.5, 0.7).with_budget(budget);
        assert_eq!(plot.resolve_detail(), DetailLevel::Aggregated);
        let (_, count) = plot.render_counted();
        assert!(
            count <= budget.max_elements,
            "{count} > {}",
            budget.max_elements
        );
        // A budget below the node count forces glyphs.
        let tiny = RenderBudget::capped(n);
        let plot = GraphPlot::new(m.best(), &stats, 0.5, 0.7).with_budget(tiny);
        assert_eq!(plot.resolve_detail(), DetailLevel::Glyph);
    }

    #[test]
    fn detail_parsing() {
        assert_eq!(DetailLevel::parse("auto"), Some(DetailLevel::Auto));
        assert_eq!(DetailLevel::parse("full"), Some(DetailLevel::Full));
        assert_eq!(DetailLevel::parse("agg"), Some(DetailLevel::Aggregated));
        assert_eq!(DetailLevel::parse("glyph"), Some(DetailLevel::Glyph));
        assert_eq!(DetailLevel::parse("bogus"), None);
    }

    #[test]
    fn render_reuses_buffer() {
        let m = model();
        let stats = m.best_stats();
        let plot = GraphPlot::new(m.best(), &stats, 0.5, 0.7);
        let (first, _) = plot.render_counted();
        let cap = first.capacity();
        let (second, _) = plot.render_with_buffer(first);
        assert_eq!(second.capacity(), cap, "buffer allocation was reused");
        let (third, _) = plot.render_counted();
        assert_eq!(second, third, "recycled render is byte-identical");
    }
}
