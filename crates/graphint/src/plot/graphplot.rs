//! Node-link rendering of k-Graph graphs — the heart of the Graph frame.
//!
//! Nodes are sized by crossing count and coloured by the cluster whose
//! γ-graphoid (and λ-graphoid) they belong to; unselected elements are
//! muted grey, exactly like the demo's "nodes and edges are colored if
//! their representativity and exclusivity exceed the values the user
//! selects".
//!
//! The renderer reads the layer's CSR view: edge iteration order is
//! deterministic ((source, target)-sorted), so the emitted SVG is
//! byte-stable across re-renders of the same model.

use crate::color::{category_color, MUTED};
use crate::svg::SvgDoc;
use kgraph::graphoid::ClusterStats;
use kgraph::GraphLayer;
use tsgraph::layout::{fit_to_viewport, force_directed, ForceOptions};

/// Renderer for one graph layer.
#[derive(Debug)]
pub struct GraphPlot<'a> {
    /// Chart title.
    pub title: String,
    /// The layer to draw.
    pub layer: &'a GraphLayer,
    /// Crossing statistics under the final labels.
    pub stats: &'a ClusterStats,
    /// Representativity threshold λ for colouring.
    pub lambda: f64,
    /// Exclusivity threshold γ for colouring.
    pub gamma: f64,
    /// Pixel size.
    pub size: (f64, f64),
    /// Layout seed.
    pub seed: u64,
}

impl<'a> GraphPlot<'a> {
    /// Creates a renderer with the thresholds of the advanced-settings
    /// window (size 640 × 520).
    pub fn new(layer: &'a GraphLayer, stats: &'a ClusterStats, lambda: f64, gamma: f64) -> Self {
        GraphPlot {
            title: format!("k-Graph graph (ℓ = {})", layer.length),
            layer,
            stats,
            lambda,
            gamma,
            size: (640.0, 520.0),
            seed: 42,
        }
    }

    /// The cluster that "owns" node `n` under (λ, γ), if any: the cluster
    /// with maximal exclusivity among those where both thresholds hold.
    pub fn node_owner(&self, n: usize) -> Option<usize> {
        let mut best: Option<(usize, f64)> = None;
        for c in 0..self.stats.k {
            let repr = self.stats.node_representativity(c, n);
            let excl = self.stats.node_exclusivity(c, n);
            if repr >= self.lambda && excl >= self.gamma && best.is_none_or(|(_, e)| excl > e) {
                best = Some((c, excl));
            }
        }
        best.map(|(c, _)| c)
    }

    /// Same ownership rule for edge `e`.
    pub fn edge_owner(&self, e: usize) -> Option<usize> {
        let mut best: Option<(usize, f64)> = None;
        for c in 0..self.stats.k {
            let repr = self.stats.edge_representativity(c, e);
            let excl = self.stats.edge_exclusivity(c, e);
            if repr >= self.lambda && excl >= self.gamma && best.is_none_or(|(_, x)| excl > x) {
                best = Some((c, excl));
            }
        }
        best.map(|(c, _)| c)
    }

    /// Renders to SVG.
    pub fn render(&self) -> String {
        let (w, h) = self.size;
        let mut doc = SvgDoc::new(w, h);
        doc.rect(0.0, 0.0, w, h, "#ffffff", "none");
        doc.text(w / 2.0, 18.0, &self.title, 12.0, "middle", "#111111");
        let g = &self.layer.graph;
        if g.node_count() == 0 {
            doc.text(w / 2.0, h / 2.0, "(empty graph)", 11.0, "middle", "#777777");
            return doc.finish();
        }
        let layout = force_directed(
            g,
            ForceOptions {
                seed: self.seed,
                ..Default::default()
            },
        );
        let pos = fit_to_viewport(&layout, w, h - 40.0, 30.0);
        let pos: Vec<(f64, f64)> = pos.into_iter().map(|(x, y)| (x, y + 30.0)).collect();

        // Node radii by sqrt(count).
        let max_count = g
            .nodes_iter()
            .map(|(_, n)| n.count)
            .max()
            .unwrap_or(1)
            .max(1) as f64;
        let radius = |count: usize| 3.0 + 9.0 * (count as f64 / max_count).sqrt();

        // Edges first (under nodes).
        let max_weight = g.edges_iter().map(|(_, _, _, &w)| w).fold(1.0f64, f64::max);
        for (e, s, t, &weight) in g.edges_iter() {
            let color = match self.edge_owner(e.index()) {
                Some(c) => category_color(c).to_string(),
                None => MUTED.to_string(),
            };
            let (x1, y1) = pos[s.index()];
            let (x2, y2) = pos[t.index()];
            // Shorten toward the target so the arrow tip meets the circle.
            let rt = radius(g.node(t).count);
            let dx = x2 - x1;
            let dy = y2 - y1;
            let len = (dx * dx + dy * dy).sqrt().max(1e-9);
            let (ex, ey) = (x2 - dx / len * rt, y2 - dy / len * rt);
            let width = 0.5 + 2.0 * (weight / max_weight);
            doc.arrow(x1, y1, ex, ey, &color, width);
        }
        // Nodes.
        for (id, node) in g.nodes_iter() {
            let color = match self.node_owner(id.index()) {
                Some(c) => category_color(c).to_string(),
                None => MUTED.to_string(),
            };
            let (x, y) = pos[id.index()];
            doc.circle(x, y, radius(node.count), &color, "#555555");
        }
        // Legend: one swatch per cluster.
        let mut lx = 30.0;
        for c in 0..self.stats.k {
            doc.circle(lx, h - 14.0, 5.0, category_color(c), "#555555");
            doc.text(
                lx + 9.0,
                h - 10.0,
                &format!("cluster {c}"),
                9.0,
                "start",
                "#333333",
            );
            lx += 80.0;
        }
        doc.text(
            lx + 10.0,
            h - 10.0,
            &format!("λ={:.2} γ={:.2}", self.lambda, self.gamma),
            9.0,
            "start",
            "#333333",
        );
        doc.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgraph::{KGraph, KGraphConfig};
    use tscore::{Dataset, DatasetKind, TimeSeries};

    fn model() -> kgraph::KGraphModel {
        let mut series = Vec::new();
        for f in [0.2f64, 0.9] {
            for p in 0..5 {
                series.push(TimeSeries::new(
                    (0..80).map(|i| ((i + p) as f64 * f).sin()).collect(),
                ));
            }
        }
        let ds = Dataset::new("toy", DatasetKind::Simulated, series);
        let cfg = KGraphConfig {
            n_lengths: 2,
            psi: 10,
            pca_sample: 400,
            n_init: 2,
            ..KGraphConfig::new(2)
        };
        KGraph::new(cfg).fit(&ds)
    }

    #[test]
    fn renders_nodes_and_edges() {
        let m = model();
        let stats = m.best_stats();
        let plot = GraphPlot::new(m.best(), &stats, 0.5, 0.7);
        let svg = plot.render();
        assert!(svg.contains("k-Graph graph"));
        assert!(svg.matches("<circle").count() >= m.best().graph.node_count());
        assert!(svg.contains("cluster 0"));
        assert!(svg.contains("cluster 1"));
    }

    #[test]
    fn muted_color_for_thresholds_of_one() {
        let m = model();
        let stats = m.best_stats();
        // λ = γ = 1.01 cannot be satisfied → everything muted.
        let plot = GraphPlot::new(m.best(), &stats, 1.01, 1.01);
        for n in 0..m.best().graph.node_count() {
            assert!(plot.node_owner(n).is_none());
        }
        let svg = plot.render();
        assert!(svg.contains(MUTED));
    }

    #[test]
    fn zero_thresholds_color_everything_crossed() {
        let m = model();
        let stats = m.best_stats();
        let plot = GraphPlot::new(m.best(), &stats, 0.0, 0.0);
        let owned = (0..m.best().graph.node_count())
            .filter(|&n| plot.node_owner(n).is_some())
            .count();
        assert_eq!(owned, m.best().graph.node_count());
    }

    #[test]
    fn owner_picks_max_exclusivity() {
        let m = model();
        let stats = m.best_stats();
        let plot = GraphPlot::new(m.best(), &stats, 0.0, 0.0);
        for n in 0..m.best().graph.node_count() {
            if let Some(c) = plot.node_owner(n) {
                let e_owner = stats.node_exclusivity(c, n);
                for other in 0..stats.k {
                    assert!(e_owner >= stats.node_exclusivity(other, n) - 1e-12);
                }
            }
        }
    }
}
