//! Chart builders on top of the [`crate::svg`] writer.
//!
//! Each chart is a small builder struct with a `render() -> String`
//! producing a standalone SVG fragment suitable for direct embedding in
//! the HTML report.

pub mod boxplot;
pub mod graphplot;
pub mod heatmap;
pub mod histogram;
pub mod line;
pub mod scatter;

pub use boxplot::BoxPlot;
pub use graphplot::{DetailLevel, GraphPlot, RenderBudget};
pub use heatmap::Heatmap;
pub use histogram::Histogram;
pub use line::LineChart;
pub use scatter::ScatterPlot;
