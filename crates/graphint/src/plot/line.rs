//! Multi-series line chart (time series panels, Wc/We curves).

use crate::color::category_color;
use crate::svg::{draw_axes, LinearScale, SvgDoc};

/// One line in a [`LineChart`].
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// `(x, y)` points.
    pub points: Vec<(f64, f64)>,
    /// Stroke colour (empty = palette colour by index).
    pub color: String,
    /// Stroke width.
    pub width: f64,
}

impl Series {
    /// Builds a series from y-values against their indices.
    pub fn from_values(label: impl Into<String>, values: &[f64]) -> Self {
        Series {
            label: label.into(),
            points: values
                .iter()
                .enumerate()
                .map(|(i, &v)| (i as f64, v))
                .collect(),
            color: String::new(),
            width: 1.2,
        }
    }

    /// Sets an explicit colour (builder style).
    pub fn with_color(mut self, color: impl Into<String>) -> Self {
        self.color = color.into();
        self
    }
}

/// A line chart with axes, title and legend.
#[derive(Debug, Clone)]
pub struct LineChart {
    /// Chart title.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// The lines.
    pub series: Vec<Series>,
    /// Pixel size.
    pub size: (f64, f64),
    /// Optional vertical marker lines (e.g. the selected length ℓ̄).
    pub vlines: Vec<(f64, String)>,
    /// Draw the legend.
    pub legend: bool,
}

impl LineChart {
    /// Creates an empty chart of default size 560 × 280.
    pub fn new(title: impl Into<String>) -> Self {
        LineChart {
            title: title.into(),
            x_label: String::new(),
            y_label: String::new(),
            series: Vec::new(),
            size: (560.0, 280.0),
            vlines: Vec::new(),
            legend: true,
        }
    }

    /// Adds a series (builder style).
    #[allow(clippy::should_implement_trait)] // builder verb, not arithmetic
    pub fn add(mut self, series: Series) -> Self {
        self.series.push(series);
        self
    }

    /// Renders to SVG.
    pub fn render(&self) -> String {
        let (w, h) = self.size;
        let (left, right, top, bottom) = (52.0, w - 14.0, 30.0, h - 40.0);
        let mut doc = SvgDoc::new(w, h);
        doc.rect(0.0, 0.0, w, h, "#ffffff", "none");
        doc.text(w / 2.0, 18.0, &self.title, 12.0, "middle", "#111111");

        let all: Vec<(f64, f64)> = self.series.iter().flat_map(|s| s.points.clone()).collect();
        if all.is_empty() {
            doc.text(w / 2.0, h / 2.0, "(no data)", 11.0, "middle", "#777777");
            return doc.finish();
        }
        let (mut x0, mut x1) = (f64::INFINITY, f64::NEG_INFINITY);
        let (mut y0, mut y1) = (f64::INFINITY, f64::NEG_INFINITY);
        for &(x, y) in &all {
            x0 = x0.min(x);
            x1 = x1.max(x);
            y0 = y0.min(y);
            y1 = y1.max(y);
        }
        // Pad the y range slightly so lines do not hug the frame.
        let pad = ((y1 - y0) * 0.05).max(1e-9);
        let xs = LinearScale::new((x0, x1), (left, right));
        let ys = LinearScale::new((y0 - pad, y1 + pad), (bottom, top));
        draw_axes(
            &mut doc,
            &xs,
            &ys,
            &self.x_label,
            &self.y_label,
            left,
            bottom,
            right,
            top,
        );

        for (x, label) in &self.vlines {
            let px = xs.apply(*x);
            doc.dashed_line(px, top, px, bottom, "#888888", 1.0);
            if !label.is_empty() {
                doc.text(px + 3.0, top + 10.0, label, 9.0, "start", "#555555");
            }
        }

        for (i, s) in self.series.iter().enumerate() {
            let color = if s.color.is_empty() {
                category_color(i).to_string()
            } else {
                s.color.clone()
            };
            let pts: Vec<(f64, f64)> = s
                .points
                .iter()
                .map(|&(x, y)| (xs.apply(x), ys.apply(y)))
                .collect();
            doc.polyline(&pts, &color, s.width);
        }

        if self.legend && self.series.len() > 1 {
            let mut lx = left + 8.0;
            let ly = top + 6.0;
            for (i, s) in self.series.iter().enumerate() {
                if s.label.is_empty() {
                    continue;
                }
                let color = if s.color.is_empty() {
                    category_color(i).to_string()
                } else {
                    s.color.clone()
                };
                doc.line(lx, ly, lx + 14.0, ly, &color, 2.0);
                doc.text(lx + 18.0, ly + 3.0, &s.label, 9.0, "start", "#333333");
                lx += 18.0 + 7.0 * s.label.chars().count() as f64 + 14.0;
            }
        }
        doc.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_series_and_title() {
        let chart = LineChart::new("Wc per length")
            .add(Series::from_values("Wc", &[0.1, 0.5, 0.9]))
            .add(Series::from_values("We", &[0.9, 0.5, 0.1]));
        let svg = chart.render();
        assert!(svg.contains("Wc per length"));
        assert_eq!(svg.matches("<polyline").count(), 2);
        assert!(svg.contains("Wc"));
        assert!(svg.contains("We"));
    }

    #[test]
    fn empty_chart_is_graceful() {
        let svg = LineChart::new("empty").render();
        assert!(svg.contains("(no data)"));
    }

    #[test]
    fn vline_marker() {
        let chart = LineChart::new("t").add(Series::from_values("a", &[1.0, 2.0]));
        let mut chart = chart;
        chart.vlines.push((0.5, "ℓ̄".into()));
        let svg = chart.render();
        assert!(svg.contains("stroke-dasharray"));
    }

    #[test]
    fn custom_color_respected() {
        let chart =
            LineChart::new("c").add(Series::from_values("a", &[1.0, 2.0]).with_color("#123456"));
        assert!(chart.render().contains("#123456"));
    }

    #[test]
    fn flat_series_does_not_divide_by_zero() {
        let chart = LineChart::new("flat").add(Series::from_values("a", &[2.0, 2.0, 2.0]));
        let svg = chart.render();
        assert!(!svg.contains("NaN"));
    }
}
