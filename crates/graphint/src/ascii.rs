//! Terminal rendering: tables, sparklines and horizontal bar charts.
//!
//! The experiment binaries print these alongside writing SVG, so results
//! are inspectable without opening the HTML report.

/// Renders an aligned text table. `headers.len()` must match every row.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    assert!(rows.iter().all(|r| r.len() == cols), "ragged table rows");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.chars().count()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.chars().count());
        }
    }
    let mut out = String::new();
    let sep = |out: &mut String| {
        for w in &widths {
            out.push('+');
            out.push_str(&"-".repeat(w + 2));
        }
        out.push_str("+\n");
    };
    sep(&mut out);
    for (i, h) in headers.iter().enumerate() {
        out.push_str("| ");
        out.push_str(h);
        out.push_str(&" ".repeat(widths[i] - h.chars().count() + 1));
    }
    out.push_str("|\n");
    sep(&mut out);
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            out.push_str("| ");
            out.push_str(cell);
            out.push_str(&" ".repeat(widths[i] - cell.chars().count() + 1));
        }
        out.push_str("|\n");
    }
    sep(&mut out);
    out
}

/// Unicode sparkline of a value series (8 block levels).
pub fn sparkline(values: &[f64]) -> String {
    const BLOCKS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if values.is_empty() {
        return String::new();
    }
    let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let span = (hi - lo).max(1e-12);
    values
        .iter()
        .map(|v| {
            let t = ((v - lo) / span * 7.0).round() as usize;
            BLOCKS[t.min(7)]
        })
        .collect()
}

/// Horizontal bar chart: one labelled bar per entry, scaled to `width`
/// characters at the maximum value.
pub fn bar_chart(entries: &[(String, f64)], width: usize) -> String {
    if entries.is_empty() {
        return String::new();
    }
    let label_w = entries
        .iter()
        .map(|(l, _)| l.chars().count())
        .max()
        .unwrap_or(0);
    let max = entries
        .iter()
        .map(|(_, v)| *v)
        .fold(f64::NEG_INFINITY, f64::max);
    let max = if max <= 0.0 { 1.0 } else { max };
    let mut out = String::new();
    for (label, value) in entries {
        let bar_len = ((value / max).max(0.0) * width as f64).round() as usize;
        out.push_str(&format!(
            "{label:label_w$} | {} {value:.3}\n",
            "█".repeat(bar_len)
        ));
    }
    out
}

/// Compact rendering of a partition: `cluster -> count` pairs.
pub fn partition_summary(labels: &[usize]) -> String {
    let k = labels.iter().copied().max().map_or(0, |m| m + 1);
    let mut counts = vec![0usize; k];
    for &l in labels {
        counts[l] += 1;
    }
    counts
        .iter()
        .enumerate()
        .map(|(c, n)| format!("C{c}:{n}"))
        .collect::<Vec<_>>()
        .join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let t = render_table(
            &["method", "ARI"],
            &[
                vec!["k-Graph".into(), "0.91".into()],
                vec!["k-Means".into(), "0.5".into()],
            ],
        );
        assert!(t.contains("| method  | ARI  |"));
        assert!(t.contains("| k-Graph | 0.91 |"));
        // All lines same width.
        let widths: std::collections::HashSet<usize> =
            t.lines().map(|l| l.chars().count()).collect();
        assert_eq!(widths.len(), 1, "{t}");
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_panic() {
        render_table(&["a"], &[vec!["x".into(), "y".into()]]);
    }

    #[test]
    fn sparkline_levels() {
        let s = sparkline(&[0.0, 1.0]);
        assert_eq!(s, "▁█");
        let flat = sparkline(&[5.0, 5.0, 5.0]);
        assert_eq!(flat.chars().count(), 3);
        assert!(sparkline(&[]).is_empty());
    }

    #[test]
    fn bar_chart_scaling() {
        let c = bar_chart(&[("a".into(), 1.0), ("bb".into(), 2.0)], 10);
        let lines: Vec<&str> = c.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[1].matches('█').count() == 10);
        assert!(lines[0].matches('█').count() == 5);
        assert!(bar_chart(&[], 10).is_empty());
    }

    #[test]
    fn bar_chart_non_positive_values() {
        let c = bar_chart(&[("a".into(), 0.0), ("b".into(), -1.0)], 10);
        assert!(c.contains("a"));
        assert!(!c.contains('█'));
    }

    #[test]
    fn partition_summary_counts() {
        assert_eq!(partition_summary(&[0, 0, 1, 2, 2, 2]), "C0:2 C1:1 C2:3");
        assert_eq!(partition_summary(&[]), "");
    }
}
