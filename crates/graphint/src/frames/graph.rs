//! Graph frame — "k-Graph in action" (Figure 3, frame 2).
//!
//! Draws the selected graph with λ/γ colouring, lets callers inspect a
//! node (its pattern and per-cluster representativity/exclusivity
//! histogram) and highlights a node's subsequences on a chosen series —
//! the three interactions of the demo's Graph frame.

use crate::color::category_color;
use crate::plot::graphplot::{DetailLevel, GraphPlot, RenderBudget};
use crate::plot::line::{LineChart, Series};
use crate::svg::{LinearScale, SvgDoc};
use kgraph::graphoid::ClusterStats;
use kgraph::KGraphModel;
use tsgraph::layout::LayoutEngine;

/// Per-node inspection data (bottom-right panel of the Graph frame).
#[derive(Debug, Clone)]
pub struct NodeDetail {
    /// Node index in the selected layer's graph.
    pub node: usize,
    /// The pattern the node represents (mean z-normalised subsequence).
    pub pattern: Vec<f64>,
    /// Crossing count.
    pub count: usize,
    /// Per-cluster representativity.
    pub representativity: Vec<f64>,
    /// Per-cluster exclusivity.
    pub exclusivity: Vec<f64>,
}

/// The assembled Graph frame for one fitted model.
#[derive(Debug)]
pub struct GraphFrame<'a> {
    model: &'a KGraphModel,
    stats: ClusterStats,
    /// Representativity threshold λ.
    pub lambda: f64,
    /// Exclusivity threshold γ.
    pub gamma: f64,
}

impl<'a> GraphFrame<'a> {
    /// Creates the frame with explicit thresholds.
    pub fn new(model: &'a KGraphModel, lambda: f64, gamma: f64) -> Self {
        GraphFrame {
            stats: model.best_stats(),
            model,
            lambda,
            gamma,
        }
    }

    /// Creates the frame with automatically searched thresholds
    /// (Scenario 2's goal: ≥ 1 coloured node per cluster).
    pub fn with_auto_thresholds(model: &'a KGraphModel) -> Self {
        let stats = model.best_stats();
        let (lambda, gamma) = kgraph::graphoid::auto_thresholds(&stats, model.best(), 20);
        GraphFrame {
            stats,
            model,
            lambda,
            gamma,
        }
    }

    /// The crossing statistics in use.
    pub fn stats(&self) -> &ClusterStats {
        &self.stats
    }

    /// Renders the node-link view.
    pub fn render_graph(&self) -> String {
        GraphPlot::new(self.model.best(), &self.stats, self.lambda, self.gamma).render()
    }

    /// Renders the node-link view with explicit layout engine, detail
    /// level and element budget, returning the SVG and the emitted
    /// element count (what the budget is accounted against).
    pub fn render_graph_with(
        &self,
        engine: LayoutEngine,
        detail: DetailLevel,
        budget: RenderBudget,
    ) -> (String, usize) {
        GraphPlot::new(self.model.best(), &self.stats, self.lambda, self.gamma)
            .with_engine(engine)
            .with_detail(detail)
            .with_budget(budget)
            .render_counted()
    }

    /// Inspection data for one node.
    pub fn node_detail(&self, node: usize) -> NodeDetail {
        let g = &self.model.best().graph;
        assert!(node < g.node_count(), "node {node} out of range");
        let payload = g.node(tsgraph::NodeId(node as u32));
        let k = self.model.k();
        NodeDetail {
            node,
            pattern: payload.pattern.clone(),
            count: payload.count,
            representativity: (0..k)
                .map(|c| self.stats.node_representativity(c, node))
                .collect(),
            exclusivity: (0..k)
                .map(|c| self.stats.node_exclusivity(c, node))
                .collect(),
        }
    }

    /// Renders a node's pattern plus its per-cluster histogram.
    pub fn render_node_detail(&self, node: usize) -> String {
        let detail = self.node_detail(node);
        let chart = LineChart::new(format!(
            "node {} pattern (count {})",
            detail.node, detail.count
        ))
        .add(Series::from_values("pattern", &detail.pattern).with_color("#d62728"));
        let mut svg = chart.render();
        svg.push_str(&render_cluster_histogram(&detail));
        svg
    }

    /// Windows `(start, len)` of `series_idx` that pass through `node` —
    /// the subsequences the frame highlights below the graph.
    pub fn node_windows(&self, series_idx: usize, node: usize) -> Vec<(usize, usize)> {
        let layer = self.model.best();
        let path = &layer.paths[series_idx];
        let len = layer.length;
        let stride = self.model.config.stride;
        path.iter()
            .enumerate()
            .filter(|(_, n)| n.index() == node)
            .map(|(w, _)| (w * stride, len))
            .collect()
    }

    /// Renders `series_idx` with the subsequences of `node` highlighted.
    pub fn render_highlighted_series(
        &self,
        series_idx: usize,
        node: usize,
        dataset: &tscore::Dataset,
    ) -> String {
        let values = dataset.series()[series_idx].values();
        let windows = self.node_windows(series_idx, node);
        let w = 560.0;
        let h = 150.0;
        let mut doc = SvgDoc::new(w, h);
        doc.rect(0.0, 0.0, w, h, "#ffffff", "none");
        doc.text(
            w / 2.0,
            14.0,
            &format!("series {series_idx}: subsequences of node {node}"),
            11.0,
            "middle",
            "#111111",
        );
        let xs = LinearScale::new((0.0, (values.len() - 1).max(1) as f64), (14.0, w - 14.0));
        let lo = tscore::stats::min(values);
        let hi = tscore::stats::max(values);
        let ys = LinearScale::new((lo, hi), (h - 12.0, 26.0));
        // Highlight bands under the curve.
        for (start, len) in &windows {
            let x0 = xs.apply(*start as f64);
            let x1 = xs.apply((start + len - 1) as f64);
            doc.rect(x0, 26.0, (x1 - x0).max(1.0), h - 38.0, "#ffe8a3", "none");
        }
        let pts: Vec<(f64, f64)> = values
            .iter()
            .enumerate()
            .map(|(t, &v)| (xs.apply(t as f64), ys.apply(v)))
            .collect();
        doc.polyline(&pts, "#1f77b4", 1.0);
        doc.finish()
    }

    /// Nodes whose owner (per the current λ/γ) is each cluster — used by
    /// tests and the report to check "≥ 1 coloured node per cluster".
    pub fn colored_nodes_per_cluster(&self) -> Vec<usize> {
        let plot = GraphPlot::new(self.model.best(), &self.stats, self.lambda, self.gamma);
        let mut counts = vec![0usize; self.model.k()];
        for n in 0..self.model.best().graph.node_count() {
            if let Some(c) = plot.node_owner(n) {
                counts[c] += 1;
            }
        }
        counts
    }

    /// Node exploration order: PageRank over the transition weights,
    /// most central patterns first. This is the order in which the frame
    /// suggests nodes to inspect. Runs CSR-native — the push loop walks
    /// each node's contiguous target/weight slices.
    pub fn exploration_order(&self) -> Vec<usize> {
        let g = &self.model.best().graph;
        let pr = tsgraph::algo::pagerank(g, 0.85, 60, |&w: &f64| w);
        let mut order: Vec<usize> = (0..g.node_count()).collect();
        order.sort_by(|&a, &b| pr[b].partial_cmp(&pr[a]).expect("NaN pagerank"));
        order
    }
}

/// Bar histogram of per-cluster representativity and exclusivity.
fn render_cluster_histogram(detail: &NodeDetail) -> String {
    let k = detail.representativity.len();
    let w = 280.0;
    let h = 160.0;
    let mut doc = SvgDoc::new(w, h);
    doc.rect(0.0, 0.0, w, h, "#ffffff", "none");
    doc.text(
        w / 2.0,
        14.0,
        "representativity / exclusivity",
        10.0,
        "middle",
        "#111111",
    );
    let band = (w - 40.0) / k as f64;
    let base = h - 24.0;
    let scale = base - 30.0;
    for c in 0..k {
        let x = 24.0 + band * c as f64;
        let r = detail.representativity[c];
        let e = detail.exclusivity[c];
        doc.rect(
            x,
            base - r * scale,
            band * 0.3,
            r * scale,
            category_color(c),
            "none",
        );
        doc.rect(
            x + band * 0.35,
            base - e * scale,
            band * 0.3,
            e * scale,
            "#999999",
            "none",
        );
        doc.text(
            x + band * 0.3,
            base + 12.0,
            &format!("C{c}"),
            9.0,
            "middle",
            "#333333",
        );
    }
    doc.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgraph::{KGraph, KGraphConfig};
    use tscore::{Dataset, DatasetKind, TimeSeries};

    fn fixture() -> (Dataset, KGraphModel) {
        let mut series = Vec::new();
        for f in [0.2f64, 0.9] {
            for p in 0..5 {
                series.push(TimeSeries::new(
                    (0..80).map(|i| ((i + p) as f64 * f).sin()).collect(),
                ));
            }
        }
        let ds = Dataset::new("toy", DatasetKind::Simulated, series);
        let cfg = KGraphConfig {
            n_lengths: 2,
            psi: 10,
            pca_sample: 400,
            n_init: 2,
            ..KGraphConfig::new(2)
        };
        let model = KGraph::new(cfg).fit(&ds);
        (ds, model)
    }

    #[test]
    fn auto_thresholds_color_every_cluster() {
        let (_, model) = fixture();
        let frame = GraphFrame::with_auto_thresholds(&model);
        let counts = frame.colored_nodes_per_cluster();
        assert!(counts.iter().all(|&c| c >= 1), "counts {counts:?}");
        assert!(frame.lambda > 0.0);
        assert!(frame.gamma > 0.0);
    }

    #[test]
    fn node_detail_fields() {
        let (_, model) = fixture();
        let frame = GraphFrame::new(&model, 0.5, 0.5);
        let d = frame.node_detail(0);
        assert_eq!(d.pattern.len(), model.best_length());
        assert_eq!(d.representativity.len(), 2);
        assert_eq!(d.exclusivity.len(), 2);
        assert!(d.representativity.iter().all(|&v| (0.0..=1.0).contains(&v)));
        assert!(d.exclusivity.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_node_panics() {
        let (_, model) = fixture();
        GraphFrame::new(&model, 0.5, 0.5).node_detail(10_000);
    }

    #[test]
    fn node_windows_match_path() {
        let (_, model) = fixture();
        let frame = GraphFrame::new(&model, 0.5, 0.5);
        let node = model.best().paths[0][0].index();
        let windows = frame.node_windows(0, node);
        assert!(!windows.is_empty());
        assert!(
            windows.iter().any(|&(s, _)| s == 0),
            "first window starts at 0"
        );
        for (start, len) in windows {
            assert_eq!(len, model.best_length());
            assert!(start + len <= 80);
        }
    }

    #[test]
    fn exploration_order_is_a_permutation_led_by_central_nodes() {
        let (_, model) = fixture();
        let frame = GraphFrame::new(&model, 0.5, 0.5);
        let order = frame.exploration_order();
        let n = model.best().graph.node_count();
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..n).collect::<Vec<_>>());
        // The top node should have above-average crossing count: central
        // patterns are visited by many series.
        let counts: Vec<usize> = model
            .best()
            .graph
            .nodes_iter()
            .map(|(_, p)| p.count)
            .collect();
        let mean = counts.iter().sum::<usize>() as f64 / n as f64;
        assert!(
            counts[order[0]] as f64 >= mean * 0.5,
            "top-ranked node unexpectedly peripheral"
        );
    }

    #[test]
    fn renders_all_panels() {
        let (ds, model) = fixture();
        let frame = GraphFrame::with_auto_thresholds(&model);
        assert!(frame.render_graph().contains("k-Graph graph"));
        let node = model.best().paths[0][0].index();
        let detail_svg = frame.render_node_detail(node);
        assert!(detail_svg.contains("pattern"));
        assert!(detail_svg.contains("representativity"));
        let hl = frame.render_highlighted_series(0, node, &ds);
        assert!(hl.contains("subsequences of node"));
        assert!(hl.contains("#ffe8a3"), "highlight bands present");
    }
}
