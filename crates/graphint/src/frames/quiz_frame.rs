//! Interpretability-test frame (Figure 3, frame 3; demo Scenario 1).
//!
//! Runs the paper's quiz protocol with simulated users: first with the
//! centroid representations of k-Means and k-Shape, then with k-Graph's
//! graphoid representation, over several trials, and compares the scores.
//! "A high score means that the representation of clusters is highly
//! interpretative."

use crate::ascii::{bar_chart, render_table};
use crate::quiz::{CentroidUser, GraphUser, Quiz, QuizScore};
use clustering::kmeans::KMeans;
use clustering::kshape::KShape;
use kgraph::{KGraph, KGraphConfig};
use tscore::Dataset;

/// Configuration of the interpretability test.
#[derive(Debug, Clone, Copy)]
pub struct QuizConfig {
    /// Number of clusters.
    pub k: usize,
    /// Questions per trial (the demo uses 5).
    pub questions: usize,
    /// Number of independent trials.
    pub trials: usize,
    /// Perception noise for both user types.
    pub noise: f64,
    /// γ threshold for the graph user's graphoids.
    pub gamma: f64,
    /// Master seed.
    pub seed: u64,
}

impl QuizConfig {
    /// Demo-faithful defaults: 5 questions, 20 trials, moderate noise.
    pub fn new(k: usize, seed: u64) -> Self {
        QuizConfig {
            k,
            questions: 5,
            trials: 20,
            noise: 0.35,
            gamma: 0.7,
            seed,
        }
    }
}

/// Scores of one method over all trials.
#[derive(Debug, Clone)]
pub struct MethodQuizScores {
    /// Method name.
    pub method: String,
    /// Per-trial fraction correct.
    pub fractions: Vec<f64>,
}

impl MethodQuizScores {
    /// Mean fraction correct.
    pub fn mean(&self) -> f64 {
        tscore::stats::mean(&self.fractions)
    }
}

/// The assembled frame: per-method quiz scores.
#[derive(Debug, Clone)]
pub struct QuizFrame {
    /// Dataset name.
    pub dataset_name: String,
    /// Scores per method (k-Means, k-Shape, k-Graph).
    pub scores: Vec<MethodQuizScores>,
}

impl QuizFrame {
    /// Runs the full interpretability test on a dataset.
    ///
    /// Per trial: one quiz (5 random series) answered by a centroid user
    /// against k-Means, the same against k-Shape, and a graph user against
    /// k-Graph — all with the same noise budget and trial seed.
    pub fn run(dataset: &Dataset, cfg: QuizConfig, kgraph_cfg: Option<KGraphConfig>) -> QuizFrame {
        assert!(
            cfg.questions <= dataset.len(),
            "dataset too small for the quiz"
        );
        let rows = dataset.znormed_rows();
        let kmeans = KMeans::new(cfg.k, cfg.seed).fit(&rows);
        let kshape = KShape::new(cfg.k, cfg.seed).fit(&rows);
        let kg_cfg = kgraph_cfg.unwrap_or_else(|| KGraphConfig::new(cfg.k).with_seed(cfg.seed));
        let model = KGraph::new(kg_cfg).fit(dataset);

        let mut km_scores = Vec::with_capacity(cfg.trials);
        let mut ks_scores = Vec::with_capacity(cfg.trials);
        let mut kg_scores = Vec::with_capacity(cfg.trials);
        for t in 0..cfg.trials {
            let trial_seed = cfg.seed.wrapping_add(1 + t as u64);
            let quiz = Quiz::generate(dataset.len(), cfg.questions, trial_seed);
            let cu = CentroidUser {
                noise: cfg.noise,
                seed: trial_seed,
            };
            km_scores.push(score_fraction(cu.run(
                dataset,
                &kmeans.labels,
                &kmeans.centroids,
                &quiz,
            )));
            ks_scores.push(score_fraction(cu.run(
                dataset,
                &kshape.labels,
                &kshape.centroids,
                &quiz,
            )));
            let gu = GraphUser {
                noise: cfg.noise,
                seed: trial_seed,
                gamma: cfg.gamma,
            };
            kg_scores.push(score_fraction(gu.run(&model, &quiz)));
        }
        QuizFrame {
            dataset_name: dataset.name().to_string(),
            scores: vec![
                MethodQuizScores {
                    method: "k-Means (centroid)".into(),
                    fractions: km_scores,
                },
                MethodQuizScores {
                    method: "k-Shape (centroid)".into(),
                    fractions: ks_scores,
                },
                MethodQuizScores {
                    method: "k-Graph (graph)".into(),
                    fractions: kg_scores,
                },
            ],
        }
    }

    /// Mean score of a method by (partial) name match.
    pub fn mean_of(&self, needle: &str) -> Option<f64> {
        self.scores
            .iter()
            .find(|s| s.method.contains(needle))
            .map(MethodQuizScores::mean)
    }

    /// Text summary: table + bar chart.
    pub fn summary(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .scores
            .iter()
            .map(|s| {
                vec![
                    s.method.clone(),
                    format!("{:.3}", s.mean()),
                    format!("{}", s.fractions.len()),
                ]
            })
            .collect();
        let bars: Vec<(String, f64)> = self
            .scores
            .iter()
            .map(|s| (s.method.clone(), s.mean()))
            .collect();
        format!(
            "Interpretability test on {} (simulated users)\n{}\n{}",
            self.dataset_name,
            render_table(&["representation", "mean score", "trials"], &rows),
            bar_chart(&bars, 40)
        )
    }
}

fn score_fraction(s: QuizScore) -> f64 {
    s.fraction()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tscore::{DatasetKind, TimeSeries};

    /// Motif-based classes: same global stats, different local patterns at
    /// varying positions — centroids blur, graphoids stay crisp.
    fn motif_dataset() -> Dataset {
        let n = 96;
        let mut series = Vec::new();
        let mut labels = Vec::new();
        for rep in 0..8 {
            let offset = rep * 7 % 30;
            // Class 0: two sharp spikes motif.
            let mut s0 = vec![0.0; n];
            for (i, v) in s0.iter_mut().enumerate() {
                *v = ((i * (rep + 2)) as f64 * 0.05).sin() * 0.2;
            }
            s0[20 + offset] = 3.0;
            s0[24 + offset] = -3.0;
            series.push(TimeSeries::new(s0));
            labels.push(0);
            // Class 1: slow oscillation motif.
            let s1: Vec<f64> = (0..n)
                .map(|i| {
                    if (30 + offset..60 + offset).contains(&i) {
                        ((i - 30 - offset) as f64 * 0.45).sin() * 2.0
                    } else {
                        ((i * (rep + 2)) as f64 * 0.05).cos() * 0.2
                    }
                })
                .collect();
            series.push(TimeSeries::new(s1));
            labels.push(1);
        }
        Dataset::with_labels("motifs", DatasetKind::Simulated, series, labels).unwrap()
    }

    fn quick_kg(k: usize, seed: u64) -> KGraphConfig {
        KGraphConfig {
            n_lengths: 2,
            psi: 12,
            pca_sample: 400,
            n_init: 2,
            ..KGraphConfig::new(k).with_seed(seed)
        }
    }

    #[test]
    fn runs_three_methods() {
        let ds = motif_dataset();
        let cfg = QuizConfig {
            trials: 4,
            ..QuizConfig::new(2, 0)
        };
        let frame = QuizFrame::run(&ds, cfg, Some(quick_kg(2, 0)));
        assert_eq!(frame.scores.len(), 3);
        for s in &frame.scores {
            assert_eq!(s.fractions.len(), 4);
            assert!(s.fractions.iter().all(|&f| (0.0..=1.0).contains(&f)));
        }
    }

    #[test]
    fn summary_contains_all_methods() {
        let ds = motif_dataset();
        let cfg = QuizConfig {
            trials: 2,
            ..QuizConfig::new(2, 1)
        };
        let frame = QuizFrame::run(&ds, cfg, Some(quick_kg(2, 1)));
        let s = frame.summary();
        assert!(s.contains("k-Means"));
        assert!(s.contains("k-Shape"));
        assert!(s.contains("k-Graph"));
        assert!(s.contains('█'));
        assert!(frame.mean_of("k-Graph").is_some());
        assert!(frame.mean_of("nope").is_none());
    }

    #[test]
    fn deterministic() {
        let ds = motif_dataset();
        let cfg = QuizConfig {
            trials: 3,
            ..QuizConfig::new(2, 5)
        };
        let a = QuizFrame::run(&ds, cfg, Some(quick_kg(2, 5)));
        let b = QuizFrame::run(&ds, cfg, Some(quick_kg(2, 5)));
        for (x, y) in a.scores.iter().zip(&b.scores) {
            assert_eq!(x.fractions, y.fractions);
        }
    }

    #[test]
    #[should_panic(expected = "dataset too small")]
    fn tiny_dataset_panics() {
        let ds = Dataset::with_labels(
            "t",
            DatasetKind::Other,
            vec![TimeSeries::new(vec![0.0; 30])],
            vec![0],
        )
        .unwrap();
        QuizFrame::run(&ds, QuizConfig::new(1, 0), None);
    }
}
