//! Under-the-hood frame (Figure 3, frame 4).
//!
//! Exposes k-Graph's internals for the selected dataset: 4.1 the length
//! selection (Wc, We and their product per length, with ℓ̄ marked), 4.2 the
//! feature matrix of the selected length, 4.3 the consensus matrix — all
//! reordered by the final clustering so block structure is visible.

use crate::ascii::render_table;
use crate::plot::heatmap::Heatmap;
use crate::plot::line::{LineChart, Series};
use kgraph::features::feature_matrix;
use kgraph::KGraphModel;
use linalg::matrix::Matrix;

/// The assembled Under-the-hood frame.
#[derive(Debug)]
pub struct UnderTheHoodFrame<'a> {
    model: &'a KGraphModel,
}

impl<'a> UnderTheHoodFrame<'a> {
    /// Creates the frame for a fitted model.
    pub fn new(model: &'a KGraphModel) -> Self {
        UnderTheHoodFrame { model }
    }

    /// 4.1 — length-selection chart: `Wc(ℓ)`, `We(ℓ)` and `Wc·We`, with a
    /// marker at the selected ℓ̄.
    pub fn render_length_selection(&self) -> String {
        let lengths: Vec<f64> = self.model.scores.iter().map(|s| s.length as f64).collect();
        let wc: Vec<(f64, f64)> = self
            .model
            .scores
            .iter()
            .map(|s| (s.length as f64, s.wc))
            .collect();
        let we: Vec<(f64, f64)> = self
            .model
            .scores
            .iter()
            .map(|s| (s.length as f64, s.we))
            .collect();
        let prod: Vec<(f64, f64)> = self
            .model
            .scores
            .iter()
            .map(|s| (s.length as f64, s.product()))
            .collect();
        let mut chart = LineChart::new("4.1 Length selection");
        chart.x_label = "subsequence length ℓ".into();
        chart.y_label = "score".into();
        chart.series.push(Series {
            label: "Wc (consistency)".into(),
            points: wc,
            color: "#1f77b4".into(),
            width: 1.5,
        });
        chart.series.push(Series {
            label: "We (interpretability)".into(),
            points: we,
            color: "#ff7f0e".into(),
            width: 1.5,
        });
        chart.series.push(Series {
            label: "Wc x We".into(),
            points: prod,
            color: "#2ca02c".into(),
            width: 2.0,
        });
        let best = self.model.best_length() as f64;
        let _ = lengths; // lengths used implicitly through the series
        chart
            .vlines
            .push((best, format!("selected ℓ = {}", self.model.best_length())));
        chart.render()
    }

    /// Series order that groups rows by final cluster (for heatmaps).
    fn cluster_order(&self) -> (Vec<usize>, Vec<usize>) {
        let labels = &self.model.labels;
        let k = self.model.k();
        let mut order = Vec::with_capacity(labels.len());
        let mut boundaries = Vec::new();
        for c in 0..k {
            for (i, &l) in labels.iter().enumerate() {
                if l == c {
                    order.push(i);
                }
            }
            if c + 1 < k {
                boundaries.push(order.len());
            }
        }
        (order, boundaries)
    }

    /// 4.2 — feature-matrix heatmap of the selected layer (rows = series
    /// grouped by final cluster, columns = node then edge features).
    pub fn render_feature_matrix(&self) -> String {
        let layer = self.model.best();
        let features = feature_matrix(
            layer,
            self.model.config.node_features,
            self.model.config.edge_features,
        );
        let (order, boundaries) = self.cluster_order();
        let reordered: Vec<Vec<f64>> = order.iter().map(|&i| features[i].clone()).collect();
        let mut hm = Heatmap::new(
            format!("4.2 Feature matrix (ℓ = {})", layer.length),
            Matrix::from_rows(&reordered),
        );
        hm.row_groups = boundaries;
        hm.render()
    }

    /// 4.3 — consensus-matrix heatmap (rows and columns grouped by final
    /// cluster; block-diagonal structure = stable consensus).
    pub fn render_consensus_matrix(&self) -> String {
        let (order, boundaries) = self.cluster_order();
        let n = order.len();
        let mc = &self.model.consensus;
        let reordered = Matrix::from_fn(n, n, |i, j| mc[(order[i], order[j])]);
        let mut hm = Heatmap::new("4.3 Consensus matrix", reordered);
        hm.domain = Some((0.0, 1.0));
        hm.row_groups = boundaries;
        hm.render()
    }

    /// Text summary of the per-length scores.
    pub fn summary(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .model
            .scores
            .iter()
            .enumerate()
            .map(|(i, s)| {
                vec![
                    s.length.to_string(),
                    format!("{:.3}", s.wc),
                    format!("{:.3}", s.we),
                    format!("{:.3}", s.product()),
                    if i == self.model.best_layer {
                        "<- selected".into()
                    } else {
                        String::new()
                    },
                ]
            })
            .collect();
        render_table(&["length", "Wc", "We", "Wc*We", ""], &rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgraph::{KGraph, KGraphConfig};
    use tscore::{Dataset, DatasetKind, TimeSeries};

    fn model() -> KGraphModel {
        let mut series = Vec::new();
        for f in [0.2f64, 0.9] {
            for p in 0..5 {
                series.push(TimeSeries::new(
                    (0..80).map(|i| ((i + p) as f64 * f).sin()).collect(),
                ));
            }
        }
        let ds = Dataset::new("toy", DatasetKind::Simulated, series);
        let cfg = KGraphConfig {
            n_lengths: 3,
            psi: 10,
            pca_sample: 400,
            n_init: 2,
            ..KGraphConfig::new(2)
        };
        KGraph::new(cfg).fit(&ds)
    }

    #[test]
    fn length_selection_chart() {
        let m = model();
        let svg = UnderTheHoodFrame::new(&m).render_length_selection();
        assert!(svg.contains("4.1 Length selection"));
        assert!(svg.contains("Wc (consistency)"));
        assert!(svg.contains("We (interpretability)"));
        assert!(svg.contains(&format!("selected ℓ = {}", m.best_length())));
        assert_eq!(svg.matches("<polyline").count(), 3);
    }

    #[test]
    fn feature_matrix_heatmap() {
        let m = model();
        let svg = UnderTheHoodFrame::new(&m).render_feature_matrix();
        assert!(svg.contains("4.2 Feature matrix"));
        assert!(svg.contains(&format!("ℓ = {}", m.best_length())));
    }

    #[test]
    fn consensus_heatmap() {
        let m = model();
        let svg = UnderTheHoodFrame::new(&m).render_consensus_matrix();
        assert!(svg.contains("4.3 Consensus matrix"));
        // Domain pinned to [0, 1].
        assert!(svg.contains("1.00"));
        assert!(svg.contains("0.00"));
    }

    #[test]
    fn summary_marks_selected() {
        let m = model();
        let s = UnderTheHoodFrame::new(&m).summary();
        assert!(s.contains("<- selected"));
        assert!(s.contains("Wc*We"));
        // One row per length.
        assert!(s.matches('\n').count() >= m.scores.len());
    }

    #[test]
    fn cluster_order_is_permutation() {
        let m = model();
        let frame = UnderTheHoodFrame::new(&m);
        let (order, boundaries) = frame.cluster_order();
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..m.labels.len()).collect::<Vec<_>>());
        assert!(boundaries.len() <= m.k().saturating_sub(1));
    }
}
