//! Benchmark frame (Figure 3, frame 1.2).
//!
//! "An overall accuracy evaluation of k-Graph against 14 baselines. The
//! user can select the evaluation measure (among four measures) and filter
//! the time series based on the dataset types, the time series length, the
//! number of classes, and the number of time series. A box plot … is
//! updated based on the filters."

use crate::ascii::render_table;
use crate::plot::boxplot::{Box, BoxPlot};
use tscore::DatasetKind;

/// The four evaluation measures offered by the frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Measure {
    /// Adjusted Rand Index.
    Ari,
    /// Rand Index.
    Ri,
    /// Normalised Mutual Information.
    Nmi,
    /// Adjusted Mutual Information.
    Ami,
}

impl Measure {
    /// All four, in display order.
    pub const ALL: [Measure; 4] = [Measure::Ari, Measure::Ri, Measure::Nmi, Measure::Ami];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Measure::Ari => "ARI",
            Measure::Ri => "RI",
            Measure::Nmi => "NMI",
            Measure::Ami => "AMI",
        }
    }
}

/// One (dataset × method) evaluation record.
#[derive(Debug, Clone)]
pub struct BenchmarkRecord {
    /// Dataset name.
    pub dataset: String,
    /// Dataset type tag.
    pub kind: DatasetKind,
    /// Series length (after any resampling).
    pub length: usize,
    /// Number of series.
    pub n_series: usize,
    /// Number of ground-truth classes.
    pub n_classes: usize,
    /// Method name.
    pub method: String,
    /// ARI score.
    pub ari: f64,
    /// RI score.
    pub ri: f64,
    /// NMI score.
    pub nmi: f64,
    /// AMI score.
    pub ami: f64,
}

impl BenchmarkRecord {
    /// Value of one measure.
    pub fn get(&self, m: Measure) -> f64 {
        match m {
            Measure::Ari => self.ari,
            Measure::Ri => self.ri,
            Measure::Nmi => self.nmi,
            Measure::Ami => self.ami,
        }
    }
}

/// The frame's filter controls.
#[derive(Debug, Clone, Default)]
pub struct Filter {
    /// Keep only these dataset types (`None` = all).
    pub kinds: Option<Vec<DatasetKind>>,
    /// Series length range (inclusive).
    pub length: Option<(usize, usize)>,
    /// Class count range (inclusive).
    pub classes: Option<(usize, usize)>,
    /// Series count range (inclusive).
    pub n_series: Option<(usize, usize)>,
}

impl Filter {
    /// Whether a record passes the filter.
    pub fn matches(&self, r: &BenchmarkRecord) -> bool {
        if let Some(kinds) = &self.kinds {
            if !kinds.contains(&r.kind) {
                return false;
            }
        }
        if let Some((lo, hi)) = self.length {
            if r.length < lo || r.length > hi {
                return false;
            }
        }
        if let Some((lo, hi)) = self.classes {
            if r.n_classes < lo || r.n_classes > hi {
                return false;
            }
        }
        if let Some((lo, hi)) = self.n_series {
            if r.n_series < lo || r.n_series > hi {
                return false;
            }
        }
        true
    }
}

/// The assembled Benchmark frame.
#[derive(Debug, Clone)]
pub struct BenchmarkFrame {
    /// All evaluation records.
    pub records: Vec<BenchmarkRecord>,
}

impl BenchmarkFrame {
    /// Creates the frame over a set of records.
    pub fn new(records: Vec<BenchmarkRecord>) -> Self {
        BenchmarkFrame { records }
    }

    /// Method names in first-appearance order.
    pub fn methods(&self) -> Vec<String> {
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        for r in &self.records {
            if seen.insert(r.method.clone()) {
                out.push(r.method.clone());
            }
        }
        out
    }

    /// Per-method score samples under a filter.
    pub fn scores_by_method(&self, measure: Measure, filter: &Filter) -> Vec<(String, Vec<f64>)> {
        let methods = self.methods();
        methods
            .into_iter()
            .map(|m| {
                let scores: Vec<f64> = self
                    .records
                    .iter()
                    .filter(|r| r.method == m && filter.matches(r))
                    .map(|r| r.get(measure))
                    .collect();
                (m, scores)
            })
            .collect()
    }

    /// Renders the frame's box plot for one measure + filter; methods with
    /// no surviving records are dropped. `highlight` names the method drawn
    /// in colour (Graphint highlights k-Graph).
    pub fn render_boxplot(
        &self,
        measure: Measure,
        filter: &Filter,
        highlight: Option<&str>,
    ) -> String {
        let mut plot = BoxPlot::new(
            format!("Benchmark ({} over filtered datasets)", measure.name()),
            measure.name(),
        );
        for (method, scores) in self.scores_by_method(measure, filter) {
            if scores.is_empty() {
                continue;
            }
            plot.boxes.push(Box::from_samples(method, &scores));
        }
        plot.highlight = highlight.map(str::to_string);
        plot.render()
    }

    /// Text summary: per-method mean/median of one measure, best first.
    pub fn summary_table(&self, measure: Measure, filter: &Filter) -> String {
        let mut rows: Vec<(String, f64, f64, usize)> = self
            .scores_by_method(measure, filter)
            .into_iter()
            .filter(|(_, s)| !s.is_empty())
            .map(|(m, s)| {
                let mean = tscore::stats::mean(&s);
                let median = tscore::stats::median(&s);
                (m, mean, median, s.len())
            })
            .collect();
        rows.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("NaN mean"));
        let table: Vec<Vec<String>> = rows
            .into_iter()
            .map(|(m, mean, median, n)| {
                vec![
                    m,
                    format!("{mean:.3}"),
                    format!("{median:.3}"),
                    n.to_string(),
                ]
            })
            .collect();
        render_table(
            &[
                "method",
                &format!("mean {}", measure.name()),
                "median",
                "#datasets",
            ],
            &table,
        )
    }

    /// Mean score of one method under a filter (`None` if no records).
    pub fn mean_score(&self, method: &str, measure: Measure, filter: &Filter) -> Option<f64> {
        let scores: Vec<f64> = self
            .records
            .iter()
            .filter(|r| r.method == method && filter.matches(r))
            .map(|r| r.get(measure))
            .collect();
        if scores.is_empty() {
            None
        } else {
            Some(tscore::stats::mean(&scores))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(dataset: &str, kind: DatasetKind, method: &str, ari: f64) -> BenchmarkRecord {
        BenchmarkRecord {
            dataset: dataset.into(),
            kind,
            length: 128,
            n_series: 60,
            n_classes: 3,
            method: method.into(),
            ari,
            ri: ari * 0.5 + 0.5,
            nmi: ari.max(0.0),
            ami: ari.max(0.0) * 0.9,
        }
    }

    fn frame() -> BenchmarkFrame {
        BenchmarkFrame::new(vec![
            record("A", DatasetKind::Simulated, "k-Graph", 0.9),
            record("A", DatasetKind::Simulated, "k-Means", 0.4),
            record("B", DatasetKind::Ecg, "k-Graph", 0.7),
            record("B", DatasetKind::Ecg, "k-Means", 0.6),
        ])
    }

    #[test]
    fn methods_in_order() {
        assert_eq!(
            frame().methods(),
            vec!["k-Graph".to_string(), "k-Means".to_string()]
        );
    }

    #[test]
    fn measures_accessible() {
        let r = record("A", DatasetKind::Simulated, "m", 0.8);
        assert_eq!(r.get(Measure::Ari), 0.8);
        assert_eq!(r.get(Measure::Ri), 0.9);
        assert_eq!(r.get(Measure::Nmi), 0.8);
        assert!((r.get(Measure::Ami) - 0.72).abs() < 1e-12);
        assert_eq!(Measure::ALL.len(), 4);
    }

    #[test]
    fn unfiltered_scores() {
        let f = frame();
        let scores = f.scores_by_method(Measure::Ari, &Filter::default());
        assert_eq!(scores[0].0, "k-Graph");
        assert_eq!(scores[0].1, vec![0.9, 0.7]);
    }

    #[test]
    fn kind_filter() {
        let f = frame();
        let filter = Filter {
            kinds: Some(vec![DatasetKind::Ecg]),
            ..Default::default()
        };
        let scores = f.scores_by_method(Measure::Ari, &filter);
        assert_eq!(scores[0].1, vec![0.7]);
    }

    #[test]
    fn range_filters() {
        let f = frame();
        let too_long = Filter {
            length: Some((200, 300)),
            ..Default::default()
        };
        assert!(f.scores_by_method(Measure::Ari, &too_long)[0].1.is_empty());
        let class_band = Filter {
            classes: Some((2, 3)),
            ..Default::default()
        };
        assert_eq!(f.scores_by_method(Measure::Ari, &class_band)[0].1.len(), 2);
        let size_band = Filter {
            n_series: Some((0, 10)),
            ..Default::default()
        };
        assert!(f.scores_by_method(Measure::Ari, &size_band)[0].1.is_empty());
    }

    #[test]
    fn boxplot_renders_with_highlight() {
        let f = frame();
        let svg = f.render_boxplot(Measure::Ari, &Filter::default(), Some("k-Graph"));
        assert!(svg.contains("k-Graph"));
        assert!(svg.contains("k-Means"));
        assert!(svg.contains("#bbbbbb"), "non-highlighted methods muted");
    }

    #[test]
    fn summary_sorted_by_mean() {
        let f = frame();
        let s = f.summary_table(Measure::Ari, &Filter::default());
        let kg = s.find("k-Graph").unwrap();
        let km = s.find("k-Means").unwrap();
        assert!(kg < km, "{s}");
        assert!(s.contains("0.800")); // k-Graph mean
    }

    #[test]
    fn mean_score_lookup() {
        let f = frame();
        assert_eq!(
            f.mean_score("k-Graph", Measure::Ari, &Filter::default()),
            Some(0.8)
        );
        assert_eq!(
            f.mean_score("missing", Measure::Ari, &Filter::default()),
            None
        );
    }
}
