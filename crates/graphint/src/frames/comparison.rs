//! Clustering-comparison frame (Figure 3, frame 1.1).
//!
//! Shows the dataset organised by each method's partition, with series
//! coloured by their **true** labels — "mixed colors mean low clustering
//! accuracy" — plus a ground-truth panel, and each method's ARI.

use crate::ascii::render_table;
use crate::color::category_color;
use crate::svg::{LinearScale, SvgDoc};
use clustering::metrics::adjusted_rand_index;
use tscore::Dataset;

/// One method's entry in the comparison.
#[derive(Debug, Clone)]
pub struct MethodPartition {
    /// Display name.
    pub name: String,
    /// The partition it produced.
    pub labels: Vec<usize>,
}

/// The assembled frame.
#[derive(Debug, Clone)]
pub struct ComparisonFrame {
    /// Dataset name.
    pub dataset_name: String,
    /// Per-method `(name, ARI)` in input order.
    pub aris: Vec<(String, f64)>,
    /// Rendered SVG panels: one per method + one ground-truth panel.
    pub panels: Vec<(String, String)>,
}

impl ComparisonFrame {
    /// Builds the frame. The dataset must be labelled; every partition must
    /// cover the dataset.
    pub fn build(dataset: &Dataset, methods: &[MethodPartition]) -> ComparisonFrame {
        let truth = dataset
            .labels()
            .expect("comparison frame needs true labels");
        let mut aris = Vec::with_capacity(methods.len());
        let mut panels = Vec::with_capacity(methods.len() + 1);
        for m in methods {
            assert_eq!(m.labels.len(), dataset.len(), "{} partition size", m.name);
            let ari = adjusted_rand_index(truth, &m.labels);
            aris.push((m.name.clone(), ari));
            panels.push((
                m.name.clone(),
                render_partition_panel(dataset, &m.labels, &format!("{} (ARI {:.3})", m.name, ari)),
            ));
        }
        panels.push((
            "true labels".to_string(),
            render_partition_panel(dataset, truth, "True labels"),
        ));
        ComparisonFrame {
            dataset_name: dataset.name().to_string(),
            aris,
            panels,
        }
    }

    /// Text summary: methods ranked by ARI.
    pub fn summary(&self) -> String {
        let mut rows: Vec<(String, f64)> = self.aris.clone();
        rows.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("NaN ARI"));
        let table: Vec<Vec<String>> = rows
            .into_iter()
            .map(|(name, ari)| vec![name, format!("{ari:.3}")])
            .collect();
        format!(
            "Clustering comparison on {}\n{}",
            self.dataset_name,
            render_table(&["method", "ARI"], &table)
        )
    }
}

/// Renders one partition panel: one horizontal band per cluster, member
/// series overlaid and coloured by their true label.
pub fn render_partition_panel(dataset: &Dataset, labels: &[usize], title: &str) -> String {
    let truth = dataset.labels().expect("panel needs true labels");
    let k = labels.iter().copied().max().map_or(0, |m| m + 1);
    let band_h = 76.0;
    let w = 560.0;
    let h = 34.0 + band_h * k as f64;
    let mut doc = SvgDoc::new(w, h);
    doc.rect(0.0, 0.0, w, h, "#ffffff", "none");
    doc.text(w / 2.0, 16.0, title, 11.0, "middle", "#111111");
    for c in 0..k {
        let top = 26.0 + band_h * c as f64;
        let bottom = top + band_h - 12.0;
        doc.rect(40.0, top, w - 54.0, band_h - 12.0, "#fafafa", "#dddddd");
        doc.text(
            8.0,
            (top + bottom) / 2.0,
            &format!("C{c}"),
            10.0,
            "start",
            "#333333",
        );
        // Global y-range of members keeps bands comparable.
        let members: Vec<usize> = (0..dataset.len()).filter(|&i| labels[i] == c).collect();
        if members.is_empty() {
            doc.text(
                w / 2.0,
                (top + bottom) / 2.0,
                "(empty)",
                9.0,
                "middle",
                "#999999",
            );
            continue;
        }
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        let mut max_len = 1usize;
        for &i in &members {
            let s = dataset.series()[i].values();
            lo = lo.min(tscore::stats::min(s));
            hi = hi.max(tscore::stats::max(s));
            max_len = max_len.max(s.len());
        }
        let xs = LinearScale::new((0.0, (max_len - 1).max(1) as f64), (42.0, w - 16.0));
        let ys = LinearScale::new((lo, hi), (bottom - 2.0, top + 2.0));
        for &i in &members {
            let pts: Vec<(f64, f64)> = dataset.series()[i]
                .values()
                .iter()
                .enumerate()
                .map(|(t, &v)| (xs.apply(t as f64), ys.apply(v)))
                .collect();
            doc.polyline(&pts, category_color(truth[i]), 0.8);
        }
    }
    doc.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tscore::{DatasetKind, TimeSeries};

    fn toy() -> Dataset {
        let mut series = Vec::new();
        let mut labels = Vec::new();
        for (label, base) in [0.0f64, 5.0].into_iter().enumerate() {
            for p in 0..4 {
                series.push(TimeSeries::new(
                    (0..30)
                        .map(|i| base + ((i + p) as f64 * 0.4).sin())
                        .collect(),
                ));
                labels.push(label);
            }
        }
        Dataset::with_labels("toy", DatasetKind::Simulated, series, labels).unwrap()
    }

    #[test]
    fn frame_builds_with_aris() {
        let ds = toy();
        let perfect = ds.labels().unwrap().to_vec();
        let broken: Vec<usize> = (0..ds.len()).map(|i| i % 2).collect();
        let frame = ComparisonFrame::build(
            &ds,
            &[
                MethodPartition {
                    name: "good".into(),
                    labels: perfect,
                },
                MethodPartition {
                    name: "bad".into(),
                    labels: broken,
                },
            ],
        );
        assert_eq!(frame.panels.len(), 3); // 2 methods + truth
        assert!((frame.aris[0].1 - 1.0).abs() < 1e-12);
        assert!(frame.aris[1].1 < 0.3);
        assert!(frame.panels[0].1.contains("ARI 1.000"));
        assert!(frame.panels[2].0.contains("true"));
    }

    #[test]
    fn summary_ranked() {
        let ds = toy();
        let perfect = ds.labels().unwrap().to_vec();
        let broken: Vec<usize> = (0..ds.len()).map(|i| i % 2).collect();
        let frame = ComparisonFrame::build(
            &ds,
            &[
                MethodPartition {
                    name: "bad".into(),
                    labels: broken,
                },
                MethodPartition {
                    name: "good".into(),
                    labels: perfect,
                },
            ],
        );
        let s = frame.summary();
        let good_pos = s.find("good").unwrap();
        let bad_pos = s.find("bad").unwrap();
        assert!(good_pos < bad_pos, "ranked by ARI:\n{s}");
    }

    #[test]
    fn panel_draws_every_series() {
        let ds = toy();
        let labels = ds.labels().unwrap().to_vec();
        let svg = render_partition_panel(&ds, &labels, "p");
        assert_eq!(svg.matches("<polyline").count(), ds.len());
    }

    #[test]
    fn empty_cluster_marked() {
        let ds = toy();
        // Partition that uses label 2 but leaves label 1 empty.
        let labels: Vec<usize> = (0..ds.len()).map(|i| if i < 4 { 0 } else { 2 }).collect();
        let svg = render_partition_panel(&ds, &labels, "p");
        assert!(svg.contains("(empty)"));
    }

    #[test]
    #[should_panic(expected = "partition size")]
    fn wrong_partition_size_panics() {
        let ds = toy();
        ComparisonFrame::build(
            &ds,
            &[MethodPartition {
                name: "x".into(),
                labels: vec![0, 1],
            }],
        );
    }
}
