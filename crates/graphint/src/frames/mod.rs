//! The five Graphint frames (paper Figures 2 and 3).

pub mod benchmark;
pub mod comparison;
pub mod graph;
pub mod quiz_frame;
pub mod under_the_hood;
