//! The interpretability test (paper Scenario 1) with simulated users.
//!
//! The demo asks a human: *given the representation a clustering method
//! offers (centroids for k-Means/k-Shape, the graph for k-Graph), assign
//! five random series to the cluster the method chose*. A high score means
//! the representation is easy to interpret.
//!
//! Humans are replaced by two simulated readers:
//!
//! * [`CentroidUser`] — compares a series to each centroid under
//!   z-normalised Euclidean distance, with multiplicative perception noise
//!   (humans cannot judge distances exactly),
//! * [`GraphUser`] — follows the series through the selected graph and
//!   votes for the cluster whose γ-graphoid its path overlaps most, seeing
//!   only a random subset of the path (perception noise).
//!
//! Both users get the *same* noise budget, so score differences measure the
//! representation, not the reader.

use kgraph::KGraphModel;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tscore::transform::znorm;
use tscore::Dataset;

/// A quiz: which series must be assigned, and the method's own labels.
#[derive(Debug, Clone)]
pub struct Quiz {
    /// Indices of the series to present.
    pub questions: Vec<usize>,
}

impl Quiz {
    /// Samples `n` distinct question series (dataset must have ≥ n series).
    pub fn generate(dataset_len: usize, n: usize, seed: u64) -> Quiz {
        assert!(n >= 1, "quiz needs at least one question");
        assert!(dataset_len >= n, "not enough series for {n} questions");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut pool: Vec<usize> = (0..dataset_len).collect();
        for i in (1..pool.len()).rev() {
            let j = rng.gen_range(0..=i);
            pool.swap(i, j);
        }
        pool.truncate(n);
        Quiz { questions: pool }
    }
}

/// Result of one quiz run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuizScore {
    /// Correct answers.
    pub correct: usize,
    /// Total questions.
    pub total: usize,
}

impl QuizScore {
    /// Fraction of correct answers.
    pub fn fraction(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.correct as f64 / self.total as f64
        }
    }
}

/// Simulated centroid reader.
#[derive(Debug, Clone, Copy)]
pub struct CentroidUser {
    /// Multiplicative distance-perception noise (0 = oracle).
    pub noise: f64,
    /// RNG seed.
    pub seed: u64,
}

impl CentroidUser {
    /// Answers one question: index of the apparently-nearest centroid.
    pub fn answer(&self, series: &[f64], centroids: &[Vec<f64>], rng: &mut StdRng) -> usize {
        let z = znorm(series);
        let mut best = 0usize;
        let mut best_d = f64::INFINITY;
        for (c, centroid) in centroids.iter().enumerate() {
            if centroid.len() != z.len() {
                continue;
            }
            let zc = znorm(centroid);
            let d: f64 = z
                .iter()
                .zip(&zc)
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f64>()
                .sqrt();
            // Perception noise: the reader mis-estimates each distance by a
            // log-normal-ish multiplicative factor.
            let u: f64 = rng.gen_range(-1.0..1.0);
            let perceived = d * (1.0 + self.noise * u);
            if perceived < best_d {
                best_d = perceived;
                best = c;
            }
        }
        best
    }

    /// Runs a full quiz against a method's own labels.
    pub fn run(
        &self,
        dataset: &Dataset,
        method_labels: &[usize],
        centroids: &[Vec<f64>],
        quiz: &Quiz,
    ) -> QuizScore {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut correct = 0;
        for &q in &quiz.questions {
            let answer = self.answer(dataset.series()[q].values(), centroids, &mut rng);
            if answer == method_labels[q] {
                correct += 1;
            }
        }
        QuizScore {
            correct,
            total: quiz.questions.len(),
        }
    }
}

/// Simulated graphoid reader.
#[derive(Debug, Clone, Copy)]
pub struct GraphUser {
    /// Fraction of the node path the reader overlooks (0 = sees all).
    pub noise: f64,
    /// RNG seed.
    pub seed: u64,
    /// Exclusivity threshold used to build the per-cluster graphoids.
    pub gamma: f64,
}

impl GraphUser {
    /// Answers one question: the cluster whose γ-graphoid the (partially
    /// observed) node path overlaps most, normalised by graphoid size.
    /// When the observed path misses every graphoid (silent overlap), the
    /// reader falls back to the node *colour intensities* — the per-cluster
    /// exclusivities the Graph frame displays — summed along the path.
    pub fn answer(
        &self,
        model: &KGraphModel,
        graphoid_nodes: &[std::collections::HashSet<u32>],
        exclusivity: &[Vec<f64>],
        series_idx: usize,
        rng: &mut StdRng,
    ) -> usize {
        let path = &model.best().paths[series_idx];
        let mut votes = vec![0.0f64; graphoid_nodes.len()];
        let mut fallback = vec![0.0f64; graphoid_nodes.len()];
        for node in path {
            // Perception noise: the reader misses some path nodes.
            if rng.gen_range(0.0..1.0) < self.noise {
                continue;
            }
            for (c, nodes) in graphoid_nodes.iter().enumerate() {
                if nodes.contains(&node.0) {
                    // Normalising by graphoid size keeps big graphoids from
                    // dominating purely by area.
                    votes[c] += 1.0 / (nodes.len() as f64).max(1.0);
                }
                fallback[c] += exclusivity[c][node.index()];
            }
        }
        let tally = if votes.iter().all(|&v| v == 0.0) {
            &fallback
        } else {
            &votes
        };
        tally
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("NaN vote"))
            .map(|(c, _)| c)
            .unwrap_or(0)
    }

    /// Runs a full quiz against k-Graph's own labels.
    ///
    /// The requested γ is clamped per cluster so that no cluster's graphoid
    /// is empty (the demo's Scenario 2 establishes exactly such thresholds
    /// before the quiz is taken).
    pub fn run(&self, model: &KGraphModel, quiz: &Quiz) -> QuizScore {
        let stats = model.best_stats();
        let k = model.k();
        // Largest γ ≤ requested that keeps every cluster represented.
        let mut gamma_eff = self.gamma;
        for c in 0..k {
            gamma_eff = gamma_eff.min(stats.max_node_exclusivity(c));
        }
        let graphoids = model.all_gamma_graphoids(gamma_eff.max(1e-9));
        let node_sets: Vec<std::collections::HashSet<u32>> = graphoids
            .iter()
            .map(|g| g.nodes.iter().map(|n| n.0).collect())
            .collect();
        let n_nodes = model.best().graph.node_count();
        let exclusivity: Vec<Vec<f64>> = (0..k)
            .map(|c| (0..n_nodes).map(|n| stats.node_exclusivity(c, n)).collect())
            .collect();
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut correct = 0;
        for &q in &quiz.questions {
            let answer = self.answer(model, &node_sets, &exclusivity, q, &mut rng);
            if answer == model.labels[q] {
                correct += 1;
            }
        }
        QuizScore {
            correct,
            total: quiz.questions.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clustering::kmeans::KMeans;
    use kgraph::{KGraph, KGraphConfig};
    use tscore::{DatasetKind, TimeSeries};

    fn toy_dataset() -> Dataset {
        let mut series = Vec::new();
        let mut labels = Vec::new();
        for (label, f) in [0.2f64, 0.9].into_iter().enumerate() {
            for p in 0..6 {
                series.push(TimeSeries::new(
                    (0..80).map(|i| ((i + p) as f64 * f).sin()).collect(),
                ));
                labels.push(label);
            }
        }
        Dataset::with_labels("toy", DatasetKind::Simulated, series, labels).unwrap()
    }

    #[test]
    fn quiz_generation_distinct_and_deterministic() {
        let a = Quiz::generate(20, 5, 3);
        let b = Quiz::generate(20, 5, 3);
        assert_eq!(a.questions, b.questions);
        assert_eq!(a.questions.len(), 5);
        let unique: std::collections::HashSet<_> = a.questions.iter().collect();
        assert_eq!(unique.len(), 5);
        assert!(a.questions.iter().all(|&q| q < 20));
    }

    #[test]
    #[should_panic(expected = "not enough series")]
    fn oversized_quiz_panics() {
        Quiz::generate(3, 5, 0);
    }

    #[test]
    fn score_fraction() {
        assert_eq!(
            QuizScore {
                correct: 3,
                total: 5
            }
            .fraction(),
            0.6
        );
        assert_eq!(
            QuizScore {
                correct: 0,
                total: 0
            }
            .fraction(),
            0.0
        );
    }

    #[test]
    fn noiseless_centroid_user_matches_kmeans_well() {
        let ds = toy_dataset();
        let rows = ds.znormed_rows();
        let km = KMeans::new(2, 0).fit(&rows);
        let quiz = Quiz::generate(ds.len(), 6, 1);
        let user = CentroidUser {
            noise: 0.0,
            seed: 0,
        };
        let score = user.run(&ds, &km.labels, &km.centroids, &quiz);
        // A noiseless nearest-centroid reader reproduces k-Means almost
        // exactly (it *is* the assignment rule, modulo z-norm of centroids).
        assert!(score.fraction() >= 0.8, "{score:?}");
    }

    #[test]
    fn noisy_user_degrades() {
        let ds = toy_dataset();
        let rows = ds.znormed_rows();
        let km = KMeans::new(2, 0).fit(&rows);
        let quiz = Quiz::generate(ds.len(), 6, 1);
        // Average over several seeds: heavy noise must not beat no noise.
        let avg = |noise: f64| -> f64 {
            (0..10)
                .map(|s| {
                    CentroidUser { noise, seed: s }
                        .run(&ds, &km.labels, &km.centroids, &quiz)
                        .fraction()
                })
                .sum::<f64>()
                / 10.0
        };
        assert!(avg(0.0) >= avg(3.0) - 1e-9);
    }

    #[test]
    fn graph_user_reads_graphoids() {
        let ds = toy_dataset();
        let cfg = KGraphConfig {
            n_lengths: 2,
            psi: 12,
            pca_sample: 500,
            n_init: 3,
            ..KGraphConfig::new(2)
        };
        let model = KGraph::new(cfg).fit(&ds);
        let quiz = Quiz::generate(ds.len(), 6, 2);
        let user = GraphUser {
            noise: 0.1,
            seed: 0,
            gamma: 0.7,
        };
        let score = user.run(&model, &quiz);
        assert!(
            score.fraction() >= 0.8,
            "graph user should read exclusive structure: {score:?}"
        );
    }

    #[test]
    fn graph_user_deterministic() {
        let ds = toy_dataset();
        let cfg = KGraphConfig {
            n_lengths: 2,
            psi: 12,
            pca_sample: 500,
            n_init: 3,
            ..KGraphConfig::new(2)
        };
        let model = KGraph::new(cfg).fit(&ds);
        let quiz = Quiz::generate(ds.len(), 5, 2);
        let user = GraphUser {
            noise: 0.2,
            seed: 7,
            gamma: 0.7,
        };
        assert_eq!(user.run(&model, &quiz), user.run(&model, &quiz));
    }
}
