//! Tiny CSV writer (no external dependency).

/// Quotes a CSV field when needed (RFC 4180 style).
pub fn quote_field(field: &str) -> String {
    if field.contains([',', '"', '\n']) {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

/// Serialises rows (first row = header) into CSV text.
pub fn to_csv(rows: &[Vec<String>]) -> String {
    rows.iter()
        .map(|row| {
            row.iter()
                .map(|f| quote_field(f))
                .collect::<Vec<_>>()
                .join(",")
        })
        .collect::<Vec<_>>()
        .join("\n")
        + "\n"
}

/// Writes CSV rows to a file, creating parent directories as needed.
pub fn write_csv(path: &std::path::Path, rows: &[Vec<String>]) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(path, to_csv(rows))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_fields_untouched() {
        assert_eq!(quote_field("abc"), "abc");
        assert_eq!(quote_field("1.5"), "1.5");
    }

    #[test]
    fn special_fields_quoted() {
        assert_eq!(quote_field("a,b"), "\"a,b\"");
        assert_eq!(quote_field("say \"hi\""), "\"say \"\"hi\"\"\"");
        assert_eq!(quote_field("two\nlines"), "\"two\nlines\"");
    }

    #[test]
    fn csv_assembly() {
        let rows = vec![
            vec!["name".to_string(), "value".to_string()],
            vec!["a,b".to_string(), "1".to_string()],
        ];
        let csv = to_csv(&rows);
        assert_eq!(csv, "name,value\n\"a,b\",1\n");
    }

    #[test]
    fn file_roundtrip() {
        let path = std::env::temp_dir().join("graphint-csv-test/out.csv");
        write_csv(&path, &[vec!["x".into()], vec!["1".into()]]).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content, "x\n1\n");
        std::fs::remove_dir_all(path.parent().unwrap()).ok();
    }
}
