//! `graphint` — the command-line face of the tool.
//!
//! Mirrors the demo's sidebar: choose a dataset, then open one of the
//! frames. Output is printed to the terminal (tables, sparklines) and full
//! visual artefacts are written as a self-contained HTML report.
//!
//! ```text
//! graphint list                          # available datasets
//! graphint compare <dataset>             # frame 1.1
//! graphint graph   <dataset>             # frame 2
//! graphint quiz    <dataset> [trials]    # frame 3 (simulated users)
//! graphint hood    <dataset>             # frame 4
//! graphint report  <dataset> [out.html]  # all frames into one HTML page
//! ```

use clustering::method::{ClusteringMethod, MethodKind};
use graphint::frames::comparison::{ComparisonFrame, MethodPartition};
use graphint::frames::graph::GraphFrame;
use graphint::frames::quiz_frame::{QuizConfig, QuizFrame};
use graphint::frames::under_the_hood::UnderTheHoodFrame;
use graphint::Report;
use kgraph::{KGraph, KGraphConfig, KGraphModel};
use tscore::Dataset;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = run(&args);
    std::process::exit(code);
}

/// Dispatches a parsed command line; returns the process exit code.
/// Split from `main` so tests can drive it.
pub fn run(args: &[String]) -> i32 {
    match args.first().map(String::as_str) {
        Some("list") => {
            println!("available datasets:");
            for spec in datasets::default_collection() {
                let d = (spec.build)();
                println!(
                    "  {:<18} {:<10} {:>4} series x {:>4} points, {} classes",
                    spec.name,
                    d.kind().as_str(),
                    d.len(),
                    d.min_len(),
                    d.n_classes()
                );
            }
            0
        }
        Some("compare") => with_dataset(args.get(1), |ds, model| {
            let k = ds.n_classes().max(2);
            let kmeans = ClusteringMethod::new(MethodKind::KMeansZnorm, k, 3).run(ds);
            let kshape = ClusteringMethod::new(MethodKind::KShape, k, 3).run(ds);
            let frame = ComparisonFrame::build(
                ds,
                &[
                    MethodPartition {
                        name: "k-Graph".into(),
                        labels: model.labels.clone(),
                    },
                    MethodPartition {
                        name: "k-Means".into(),
                        labels: kmeans,
                    },
                    MethodPartition {
                        name: "k-Shape".into(),
                        labels: kshape,
                    },
                ],
            );
            println!("{}", frame.summary());
        }),
        Some("graph") => with_dataset(args.get(1), |_, model| {
            let frame = GraphFrame::with_auto_thresholds(model);
            println!(
                "selected length ℓ̄ = {}; auto thresholds λ = {:.2}, γ = {:.2}",
                model.best_length(),
                frame.lambda,
                frame.gamma
            );
            println!(
                "coloured nodes per cluster: {:?}",
                frame.colored_nodes_per_cluster()
            );
        }),
        Some("quiz") => {
            let trials: usize = args.get(2).and_then(|t| t.parse().ok()).unwrap_or(10);
            with_dataset(args.get(1), move |ds, _| {
                let k = ds.n_classes().max(2);
                let frame = QuizFrame::run(
                    ds,
                    QuizConfig {
                        trials,
                        ..QuizConfig::new(k, 3)
                    },
                    None,
                );
                println!("{}", frame.summary());
            })
        }
        Some("hood") => with_dataset(args.get(1), |_, model| {
            println!("{}", UnderTheHoodFrame::new(model).summary());
        }),
        Some("report") => {
            let default_out = args
                .get(1)
                .map(|d| format!("out/graphint_{d}.html"))
                .unwrap_or_else(|| "out/graphint.html".into());
            let out = args.get(2).cloned().unwrap_or(default_out);
            with_dataset(args.get(1), move |ds, model| {
                let k = ds.n_classes().max(2);
                let kmeans = ClusteringMethod::new(MethodKind::KMeansZnorm, k, 3).run(ds);
                let comparison = ComparisonFrame::build(
                    ds,
                    &[
                        MethodPartition {
                            name: "k-Graph".into(),
                            labels: model.labels.clone(),
                        },
                        MethodPartition {
                            name: "k-Means".into(),
                            labels: kmeans,
                        },
                    ],
                );
                let graph_frame = GraphFrame::with_auto_thresholds(model);
                let hood = UnderTheHoodFrame::new(model);
                let mut report = Report::new(format!("Graphint — {}", ds.name()));
                report.section("Clustering comparison");
                report.add_pre(&comparison.summary());
                for (_, svg) in &comparison.panels {
                    report.add_svg(svg);
                }
                report.section("k-Graph in action");
                report.add_svg(&graph_frame.render_graph());
                report.section("Under the hood");
                report.add_pre(&hood.summary());
                report.add_svg(&hood.render_length_selection());
                report.add_svg(&hood.render_consensus_matrix());
                let path = std::path::PathBuf::from(&out);
                report.write(&path).expect("write report");
                println!("wrote {}", path.display());
            })
        }
        _ => {
            eprintln!(
                "usage: graphint <list|compare|graph|quiz|hood|report> [dataset] [extra]\n\
                 datasets: `graphint list`"
            );
            2
        }
    }
}

/// Builds the named dataset, fits k-Graph once and hands both to `f`.
fn with_dataset(name: Option<&String>, f: impl FnOnce(&Dataset, &KGraphModel)) -> i32 {
    let Some(name) = name else {
        eprintln!("missing dataset name; try `graphint list`");
        return 2;
    };
    let Some(dataset) = datasets::registry::by_name(name) else {
        eprintln!("unknown dataset {name}; try `graphint list`");
        return 2;
    };
    let k = dataset.n_classes().max(2);
    let cfg = KGraphConfig {
        n_lengths: 4,
        psi: 20,
        ..KGraphConfig::new(k).with_seed(3)
    };
    let model = KGraph::new(cfg).fit(&dataset);
    f(&dataset, &model);
    0
}
