//! Colour palettes and colormaps for the frames.

/// Categorical palette (matplotlib "tab10"), used for cluster colours —
/// the comparison frame colours series by their *true* label with these.
pub const CATEGORY10: [&str; 10] = [
    "#1f77b4", "#ff7f0e", "#2ca02c", "#d62728", "#9467bd", "#8c564b", "#e377c2", "#7f7f7f",
    "#bcbd22", "#17becf",
];

/// Colour for cluster `c` (cycles after 10).
pub fn category_color(c: usize) -> &'static str {
    CATEGORY10[c % CATEGORY10.len()]
}

/// An RGB colour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rgb(pub u8, pub u8, pub u8);

impl Rgb {
    /// `#rrggbb` notation.
    pub fn to_hex(self) -> String {
        format!("#{:02x}{:02x}{:02x}", self.0, self.1, self.2)
    }
}

/// Linear interpolation between two colours.
pub fn lerp(a: Rgb, b: Rgb, t: f64) -> Rgb {
    let t = t.clamp(0.0, 1.0);
    let mix = |x: u8, y: u8| -> u8 { (x as f64 + (y as f64 - x as f64) * t).round() as u8 };
    Rgb(mix(a.0, b.0), mix(a.1, b.1), mix(a.2, b.2))
}

/// Viridis anchors (5-point approximation of the perceptual map).
const VIRIDIS: [Rgb; 5] = [
    Rgb(68, 1, 84),
    Rgb(59, 82, 139),
    Rgb(33, 145, 140),
    Rgb(94, 201, 98),
    Rgb(253, 231, 37),
];

/// Viridis-like colormap: maps `t ∈ [0, 1]` to a perceptual colour.
/// Used by the heatmaps (feature and consensus matrices).
pub fn viridis(t: f64) -> Rgb {
    let t = t.clamp(0.0, 1.0);
    let scaled = t * (VIRIDIS.len() - 1) as f64;
    let lo = scaled.floor() as usize;
    let hi = (lo + 1).min(VIRIDIS.len() - 1);
    lerp(VIRIDIS[lo], VIRIDIS[hi], scaled - lo as f64)
}

/// Diverging white→red map for correlation-like values.
pub fn white_red(t: f64) -> Rgb {
    lerp(Rgb(255, 255, 255), Rgb(202, 32, 38), t)
}

/// Grey for "unselected" graph elements.
pub const MUTED: &str = "#cccccc";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn category_cycles() {
        assert_eq!(category_color(0), CATEGORY10[0]);
        assert_eq!(category_color(10), CATEGORY10[0]);
        assert_eq!(category_color(13), CATEGORY10[3]);
    }

    #[test]
    fn hex_format() {
        assert_eq!(Rgb(255, 0, 16).to_hex(), "#ff0010");
        assert_eq!(Rgb(0, 0, 0).to_hex(), "#000000");
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Rgb(0, 0, 0);
        let b = Rgb(100, 200, 50);
        assert_eq!(lerp(a, b, 0.0), a);
        assert_eq!(lerp(a, b, 1.0), b);
        assert_eq!(lerp(a, b, 0.5), Rgb(50, 100, 25));
        // Clamped outside [0, 1].
        assert_eq!(lerp(a, b, -1.0), a);
        assert_eq!(lerp(a, b, 2.0), b);
    }

    #[test]
    fn viridis_endpoints() {
        assert_eq!(viridis(0.0), VIRIDIS[0]);
        assert_eq!(viridis(1.0), VIRIDIS[4]);
        // Monotone brightness-ish: green channel increases.
        assert!(viridis(0.8).1 > viridis(0.2).1);
    }

    #[test]
    fn white_red_range() {
        assert_eq!(white_red(0.0), Rgb(255, 255, 255));
        assert_eq!(white_red(1.0), Rgb(202, 32, 38));
    }
}
